"""Legacy setup shim.

The execution environment ships an older setuptools without the ``wheel``
package, so editable installs go through ``setup.py develop``.  All real
metadata lives in ``pyproject.toml``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
