"""IL — the inverted-list baseline (Section III-A).

"The basic idea is to firstly filter out the trajectories in database that
do not contain all the activities specified in the query.  Then for the
remaining candidates, we will sequentially process each of them to compute
the minimum match distance with respect to the query, and then return the
top-k results."

Activity-only pruning: no spatial information is consulted at retrieval
time, which is why the paper finds IL insensitive to ``k`` and to the query
diameter, and roughly an order of magnitude slower than GAT.
"""

from __future__ import annotations

from typing import List, Optional

from repro.baselines.base import Searcher
from repro.core.match import INFINITY
from repro.core.query import Query
from repro.core.results import SearchResult, TopKCollector
from repro.index.inverted import InvertedIndex
from repro.model.database import TrajectoryDatabase
from repro.model.distance import DistanceMetric


class InvertedListSearch(Searcher):
    """ATSQ/OATSQ by exhaustive scoring of activity-complete trajectories."""

    def __init__(self, db: TrajectoryDatabase, metric: Optional[DistanceMetric] = None):
        super().__init__(db, metric)
        self.index = InvertedIndex.build(db)

    def _search(self, query: Query, k: int, order_sensitive: bool) -> List[SearchResult]:
        candidates = self.index.trajectories_with_all(query.all_activities)
        self.stats.candidates_retrieved = len(candidates)
        results = TopKCollector(k)
        # Sorted iteration keeps the scan deterministic; the threshold fed
        # into the Dmom early-exit tightens as results accumulate.
        for tid in sorted(candidates):
            distance = self.score_candidate(
                query, tid, order_sensitive, results.kth_distance()
            )
            if distance != INFINITY:
                results.offer(SearchResult(tid, distance))
        return results.results()
