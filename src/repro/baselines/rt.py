"""RT — the R-tree baseline (Section III-B), adapting the k-BCT search of
Chen et al. (SIGMOD 2010) to activity trajectories.

All trajectory points go into one R-tree.  For each query point an
incremental best-first stream retrieves ever-farther points; every
retrieved point surfaces its trajectory as a candidate, which is scored
with the full minimum (order-sensitive) match distance if it matches the
query activities.  The best match distance ``Dbm`` — the sum over query
points of the distance to the *nearest unretrieved point* — lower-bounds
``Dmm`` (Lemma 2) and, via Lemma 3, ``Dmom``; the search stops when the
running k-th best distance beats it.

Spatial-only pruning: activity information plays no part in retrieval, so
the paper finds RT insensitive to ``|q.Φ|`` and increasingly ineffective on
datasets whose nearest points rarely match the activities.
"""

from __future__ import annotations

import heapq
import itertools
from typing import List, Optional, Tuple

from repro.baselines.base import Searcher
from repro.core.match import INFINITY
from repro.core.query import Query
from repro.core.results import SearchResult, TopKCollector
from repro.index.rtree import RTree, RTreeEntry, RTreeNode
from repro.model.database import TrajectoryDatabase
from repro.model.distance import DistanceMetric


class _NearestStream:
    """Incremental nearest-point iterator over an R-tree for one query
    point (the classic best-first MINDIST traversal)."""

    __slots__ = ("coord", "heap", "_tick", "stats")

    def __init__(self, tree: RTree, coord: Tuple[float, float], stats) -> None:
        self.coord = coord
        self.heap: List[Tuple[float, int, object]] = []
        self._tick = itertools.count()
        self.stats = stats
        if tree.size:
            heapq.heappush(self.heap, (tree.root.min_dist(coord), next(self._tick), tree.root))

    def top_distance(self) -> float:
        """Lower bound on the distance of every not-yet-returned point."""
        return self.heap[0][0] if self.heap else INFINITY

    def pop_point(self) -> Optional[Tuple[float, RTreeEntry]]:
        """Return the next nearest point entry, or None when exhausted.

        Expanding a node computes every child's key in one batched NumPy
        call (:meth:`RTreeNode.child_min_dists`) — point distances for
        leaves, MINDIST for internal nodes — instead of one Python metric
        call per child.
        """
        while self.heap:
            dist, _tick, item = heapq.heappop(self.heap)
            if isinstance(item, RTreeEntry):
                self.stats.points_popped += 1
                return dist, item
            node: RTreeNode = item
            self.stats.nodes_accessed += 1
            for d, child in zip(node.child_min_dists(self.coord), node.children):
                heapq.heappush(self.heap, (d, next(self._tick), child))
        return None


class RTreeSearch(Searcher):
    """ATSQ/OATSQ via incremental spatial retrieval (k-BCT style)."""

    def __init__(
        self,
        db: TrajectoryDatabase,
        metric: Optional[DistanceMetric] = None,
        max_entries: int = 32,
    ) -> None:
        super().__init__(db, metric)
        items = [
            (p.x, p.y, (tr.trajectory_id, pos))
            for tr in db
            for pos, p in enumerate(tr)
        ]
        self.tree = RTree.bulk_load(items, max_entries=max_entries)

    def _make_streams(self, query: Query) -> List[_NearestStream]:
        return [_NearestStream(self.tree, q.coord, self.stats) for q in query]

    def _search(self, query: Query, k: int, order_sensitive: bool) -> List[SearchResult]:
        streams = self._make_streams(query)
        results = TopKCollector(k)
        seen: set[int] = set()

        while True:
            # Advance the stream whose next point is globally nearest: this
            # grows the Dbm lower bound as slowly as possible, maximising
            # the chance of early termination.
            best_idx = -1
            best_top = INFINITY
            for idx, stream in enumerate(streams):
                top = stream.top_distance()
                if top < best_top:
                    best_top = top
                    best_idx = idx
            if best_idx < 0:
                break  # every stream exhausted: all points seen
            popped = streams[best_idx].pop_point()
            if popped is None:
                continue
            _dist, entry = popped
            tid = self._entry_tid(entry)
            if tid not in seen:
                seen.add(tid)
                self.stats.candidates_retrieved += 1
                distance = self.score_candidate(
                    query, tid, order_sensitive, results.kth_distance()
                )
                if distance != INFINITY:
                    results.offer(SearchResult(tid, distance))
            lower = sum(s.top_distance() for s in streams)
            if results.kth_distance() < lower:
                break  # Lemma 2 (and Lemma 3 for OATSQ): unseen can't win
        return results.results()

    @staticmethod
    def _entry_tid(entry: RTreeEntry) -> int:
        tid, _pos = entry.payload
        return tid
