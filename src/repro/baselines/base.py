"""Common machinery of the baseline searchers.

Every searcher validates and scores candidates through the exact same
:class:`~repro.core.evaluator.MatchEvaluator` the GAT engine uses — the
paper is explicit that the four methods "only differ in the index structure
and how they retrieve candidates" (Section VII-A).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Optional

from repro.core.evaluator import MatchEvaluator
from repro.core.match import INFINITY
from repro.core.order_match import order_feasible
from repro.core.query import Query
from repro.core.results import SearchResult, TopKCollector
from repro.model.database import TrajectoryDatabase
from repro.model.distance import DistanceMetric


@dataclass(slots=True)
class BaselineStats:
    """Work counters shared by the baseline searchers."""

    candidates_retrieved: int = 0
    candidates_scored: int = 0
    nodes_accessed: int = 0
    points_popped: int = 0
    pruned_invalid: int = 0

    def reset(self) -> None:
        self.candidates_retrieved = 0
        self.candidates_scored = 0
        self.nodes_accessed = 0
        self.points_popped = 0
        self.pruned_invalid = 0


class Searcher(ABC):
    """Abstract ATSQ/OATSQ searcher over one database."""

    def __init__(self, db: TrajectoryDatabase, metric: Optional[DistanceMetric] = None):
        self.db = db
        self.evaluator = MatchEvaluator(metric)
        self.stats = BaselineStats()

    # ------------------------------------------------------------------
    # Public API (same shape as GATSearchEngine)
    # ------------------------------------------------------------------
    def atsq(self, query: Query, k: int, explain: bool = False) -> List[SearchResult]:
        self.stats.reset()
        results = self._search(query, k, order_sensitive=False)
        return self._maybe_explain(query, results, False, explain)

    def oatsq(self, query: Query, k: int, explain: bool = False) -> List[SearchResult]:
        self.stats.reset()
        results = self._search(query, k, order_sensitive=True)
        return self._maybe_explain(query, results, True, explain)

    @abstractmethod
    def _search(self, query: Query, k: int, order_sensitive: bool) -> List[SearchResult]:
        """Index-specific candidate retrieval + scoring."""

    # ------------------------------------------------------------------
    # Shared scoring path
    # ------------------------------------------------------------------
    def score_candidate(
        self,
        query: Query,
        trajectory_id: int,
        order_sensitive: bool,
        threshold: float = INFINITY,
    ) -> float:
        """Validate activity containment and compute Dmm / Dmom.

        Returns ``inf`` for non-matches, exactly mirroring the GAT engine's
        tail so cross-method results are comparable.
        """
        trajectory = self.db.get(trajectory_id)
        if not query.all_activities <= trajectory.activity_union:
            self.stats.pruned_invalid += 1
            return INFINITY
        self.stats.candidates_scored += 1
        if order_sensitive:
            return self.evaluator.dmom(query, trajectory, threshold)
        return self.evaluator.dmm(query, trajectory)

    def _maybe_explain(
        self,
        query: Query,
        results: List[SearchResult],
        order_sensitive: bool,
        explain: bool,
    ) -> List[SearchResult]:
        if not explain:
            return results
        out = []
        for r in results:
            trajectory = self.db.get(r.trajectory_id)
            if order_sensitive:
                _d, matches = self.evaluator.dmom_explained(query, trajectory)
            else:
                _d, matches = self.evaluator.dmm_explained(query, trajectory)
            out.append(SearchResult(r.trajectory_id, r.distance, matches))
        return out
