"""Baseline searchers (Section III) sharing the core distance code.

* :class:`~repro.baselines.il.InvertedListSearch` — activity-only pruning.
* :class:`~repro.baselines.rt.RTreeSearch` — spatial-only pruning via
  incremental best-first retrieval over an R-tree (the k-BCT adaptation).
* :class:`~repro.baselines.irt.IRTreeSearch` — the IR-tree hybrid: spatial
  best-first with whole-query activity pruning of subtrees.

All three expose the same ``atsq(query, k)`` / ``oatsq(query, k)`` surface
as :class:`~repro.core.engine.GATSearchEngine` so experiments can swap
searchers freely.
"""

from repro.baselines.base import BaselineStats, Searcher
from repro.baselines.il import InvertedListSearch
from repro.baselines.rt import RTreeSearch
from repro.baselines.irt import IRTreeSearch

__all__ = [
    "Searcher",
    "BaselineStats",
    "InvertedListSearch",
    "RTreeSearch",
    "IRTreeSearch",
]
