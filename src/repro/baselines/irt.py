"""IRT — the IR-tree baseline (Section III-C).

Identical search skeleton to the RT baseline, with one extra pruning rule:
"before probing the entries in a node of IR-tree, we first check its
inverted file to see if it contains any activity of the query.  If not,
all the places enclosed in this node can be pruned directly."

The per-query-point stream therefore only surfaces points that carry at
least one *whole-query* activity.  The sum of stream tops still
lower-bounds ``Dmm`` of unseen trajectories: a minimum point match only
ever uses points with at least one query activity, and every such point of
an unseen trajectory is still in some unexplored, unpruned subtree.
"""

from __future__ import annotations

import heapq
import itertools
from typing import FrozenSet, List, Optional, Tuple

from repro.baselines.base import Searcher
from repro.core.match import INFINITY
from repro.core.query import Query
from repro.core.results import SearchResult, TopKCollector
from repro.index.irtree import IRTree
from repro.index.rtree import RTreeEntry, RTreeNode
from repro.model.database import TrajectoryDatabase
from repro.model.distance import DistanceMetric


class _FilteredStream:
    """Best-first nearest-point stream that skips subtrees and points with
    no query activity (the IR-tree inverted-file check)."""

    __slots__ = ("coord", "activities", "heap", "_tick", "stats")

    def __init__(
        self,
        tree: IRTree,
        coord: Tuple[float, float],
        activities: FrozenSet[int],
        stats,
    ) -> None:
        self.coord = coord
        self.activities = activities
        self.heap: List[Tuple[float, int, object]] = []
        self._tick = itertools.count()
        self.stats = stats
        if tree.size and IRTree.node_has_any(tree.root, activities):
            heapq.heappush(self.heap, (tree.root.min_dist(coord), next(self._tick), tree.root))

    def top_distance(self) -> float:
        return self.heap[0][0] if self.heap else INFINITY

    def pop_point(self) -> Optional[Tuple[float, RTreeEntry]]:
        while self.heap:
            dist, _tick, item = heapq.heappop(self.heap)
            if isinstance(item, RTreeEntry):
                self.stats.points_popped += 1
                return dist, item
            node: RTreeNode = item
            self.stats.nodes_accessed += 1
            # One batched key computation per expanded node (point
            # distances for leaves, MINDIST for internal nodes — NumPy
            # when available, scalar fallback inside), then the
            # inverted-file admission filter over the zipped pairs.
            dists = node.child_min_dists(self.coord)
            if node.is_leaf:
                for entry, d in zip(node.children, dists):
                    if IRTree.entry_activities(entry).isdisjoint(self.activities):
                        continue  # point carries no query activity
                    heapq.heappush(self.heap, (d, next(self._tick), entry))
            else:
                for child, d in zip(node.children, dists):
                    if not IRTree.node_has_any(child, self.activities):
                        continue  # inverted-file pruning (Section III-C)
                    heapq.heappush(self.heap, (d, next(self._tick), child))
        return None


class IRTreeSearch(Searcher):
    """ATSQ/OATSQ over the IR-tree with whole-query activity pruning."""

    def __init__(
        self,
        db: TrajectoryDatabase,
        metric: Optional[DistanceMetric] = None,
        max_entries: int = 32,
    ) -> None:
        super().__init__(db, metric)
        items = [
            (p.x, p.y, (tr.trajectory_id, pos), p.activities)
            for tr in db
            for pos, p in enumerate(tr)
        ]
        self.tree = IRTree.bulk_load(items, max_entries=max_entries)

    def _search(self, query: Query, k: int, order_sensitive: bool) -> List[SearchResult]:
        # The paper prunes with "any activity of the query" — the union
        # over all query points — not per-query-point activity sets.
        query_activities = query.all_activities
        streams = [
            _FilteredStream(self.tree, q.coord, query_activities, self.stats)
            for q in query
        ]
        results = TopKCollector(k)
        seen: set[int] = set()

        while True:
            best_idx = -1
            best_top = INFINITY
            for idx, stream in enumerate(streams):
                top = stream.top_distance()
                if top < best_top:
                    best_top = top
                    best_idx = idx
            if best_idx < 0:
                break
            popped = streams[best_idx].pop_point()
            if popped is None:
                continue
            _dist, entry = popped
            tid, _pos = IRTree.entry_payload(entry)
            if tid not in seen:
                seen.add(tid)
                self.stats.candidates_retrieved += 1
                distance = self.score_candidate(
                    query, tid, order_sensitive, results.kth_distance()
                )
                if distance != INFINITY:
                    results.offer(SearchResult(tid, distance))
            lower = sum(s.top_distance() for s in streams)
            if results.kth_distance() < lower:
                break
        return results.results()
