"""Seedable disk-fault injection.

A :class:`FaultInjector` sits on a :class:`~repro.storage.disk.SimulatedDisk`
and is consulted once per read (after accounting, before the latency
model), so injected faults never corrupt the deterministic I/O counters —
they only decide whether the read *returns*.  Three fault shapes, each
independently seedable and optionally scoped to a key pattern:

* **errors** — the read raises :class:`InjectedDiskError` (a media error /
  dead replica device);
* **latency spikes** — the read pays extra wall time before returning
  (a degraded device or noisy neighbour);
* **stalls** — the read blocks on an event until :meth:`FaultInjector.
  lift_stalls` is called (a hung controller).  Stalled reads *resume
  normally* once lifted, so test teardown can always drain a pool instead
  of orphaning worker threads.

Determinism: one ``random.Random(seed)`` drives every probabilistic
decision under a lock, so a serial replay with the same seed injects the
same fault sequence.  Concurrent backends interleave draws
nondeterministically — then the per-rule ``max_errors``/``max_stalls``
caps are the reproducible knob ("exactly the first read fails").

The injector is deliberately **not** picklable: it holds a lock and an
event, and its counters are the test's observability.  Process-backend
workers therefore never see injected *disk* faults — the process fleet's
fault axis is worker death (:func:`repro.faults.chaos.kill_fleet_workers`),
which is the failure mode that tier actually has.
"""

from __future__ import annotations

import random
import re
import threading
import time
from dataclasses import dataclass
from typing import Hashable, Optional, Sequence, Union

from repro.obs.trace import current_span


class InjectedDiskError(RuntimeError):
    """A read that an active :class:`FaultInjector` decided should fail."""


@dataclass(frozen=True)
class FaultRule:
    """One fault profile, applied to every read whose key matches.

    ``error_rate`` / ``stall_rate`` / ``latency_rate`` are per-read
    probabilities in ``[0, 1]``; ``extra_latency_s`` is the spike paid
    when the latency draw fires (``latency_rate`` defaults to 1.0 so a
    bare ``extra_latency_s`` slows every matching read).  ``key_pattern``
    is a regex searched against ``str(key)`` (``None`` matches all keys).
    ``max_errors`` / ``max_stalls`` cap how many faults the rule injects
    over its lifetime — ``max_errors=1`` with ``error_rate=1.0`` means
    "exactly the first matching read fails", the deterministic shape the
    retry tests lean on.
    """

    error_rate: float = 0.0
    stall_rate: float = 0.0
    extra_latency_s: float = 0.0
    latency_rate: float = 1.0
    key_pattern: Optional[str] = None
    max_errors: Optional[int] = None
    max_stalls: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("error_rate", "stall_rate", "latency_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.extra_latency_s < 0.0:
            raise ValueError("extra_latency_s must be >= 0")
        for name in ("max_errors", "max_stalls"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ValueError(f"{name} must be >= 0 (or None for unbounded)")


class FaultInjector:
    """Decides, per read, whether to error, stall, or slow the caller.

    Thread-safe; attach one to a :class:`~repro.storage.disk.SimulatedDisk`
    via its ``fault_injector`` parameter.  Every matching rule of a read is
    evaluated in order: injected delays accumulate, and the first rule
    whose stall or error draw fires wins (stall takes precedence — a hung
    controller never gets to report the media error).  Flip :attr:`enabled`
    off to turn the same disk healthy again without rebuilding anything.
    """

    def __init__(
        self,
        rules: Union[FaultRule, Sequence[FaultRule]],
        seed: int = 0,
        stall_timeout_s: Optional[float] = None,
    ) -> None:
        if isinstance(rules, FaultRule):
            rules = (rules,)
        self.rules = tuple(rules)
        self._patterns = [
            re.compile(rule.key_pattern) if rule.key_pattern is not None else None
            for rule in self.rules
        ]
        self.stall_timeout_s = stall_timeout_s
        self.enabled = True
        self._lock = threading.Lock()
        self._rng = random.Random(seed)
        # Stalled readers block here; lift_stalls() releases them (and any
        # future stall draws fall straight through) so pools always drain.
        self._stall_gate = threading.Event()
        self._rule_errors = [0] * len(self.rules)
        self._rule_stalls = [0] * len(self.rules)
        self.reads_seen = 0
        self.errors_injected = 0
        self.stalls_injected = 0
        self.delays_injected = 0
        #: Optional :class:`repro.obs.trace.Tracer`; when set and enabled,
        #: each injected fault attaches a ``fault_*`` event to the
        #: thread's active span (see :meth:`Observability.bind_disk`).
        self.tracer = None

    # ------------------------------------------------------------------
    # Stall control
    # ------------------------------------------------------------------
    def lift_stalls(self) -> None:
        """Release every stalled reader (they resume normally) and let all
        future stall draws pass through.  Idempotent; call from teardown."""
        self._stall_gate.set()

    def arm_stalls(self) -> None:
        """Re-arm stalling after :meth:`lift_stalls` (fresh test phase)."""
        self._stall_gate.clear()

    # ------------------------------------------------------------------
    # The disk-side hook
    # ------------------------------------------------------------------
    def on_read(self, key: Hashable) -> None:
        """Called by the disk once per read, after accounting.  Returns
        normally, sleeps, blocks, or raises :class:`InjectedDiskError`."""
        if not self.enabled or not self.rules:
            return
        text = None
        stall = False
        error = False
        delay = 0.0
        with self._lock:
            self.reads_seen += 1
            for i, (rule, pattern) in enumerate(zip(self.rules, self._patterns)):
                if pattern is not None:
                    if text is None:
                        text = str(key)
                    if pattern.search(text) is None:
                        continue
                if (
                    rule.stall_rate > 0.0
                    and (rule.max_stalls is None or self._rule_stalls[i] < rule.max_stalls)
                    and self._rng.random() < rule.stall_rate
                ):
                    self._rule_stalls[i] += 1
                    self.stalls_injected += 1
                    stall = True
                    break
                if (
                    rule.error_rate > 0.0
                    and (rule.max_errors is None or self._rule_errors[i] < rule.max_errors)
                    and self._rng.random() < rule.error_rate
                ):
                    self._rule_errors[i] += 1
                    self.errors_injected += 1
                    error = True
                    break
                if rule.extra_latency_s > 0.0 and (
                    rule.latency_rate >= 1.0 or self._rng.random() < rule.latency_rate
                ):
                    self.delays_injected += 1
                    delay += rule.extra_latency_s
        # Effects happen outside the lock: a stalled or sleeping reader
        # must never block other readers' draws (or lift_stalls itself).
        tracer = self.tracer
        if (stall or error or delay > 0.0) and tracer is not None and tracer.enabled:
            span = current_span()
            if span is not None:
                if stall:
                    span.add_event("fault_stall", key=str(key))
                elif error:
                    span.add_event("fault_error", key=str(key))
                else:
                    span.add_event("fault_delay", key=str(key), delay_s=delay)
        if stall:
            self._stall_gate.wait(self.stall_timeout_s)
            return
        if error:
            raise InjectedDiskError(f"injected read error for key {key!r}")
        if delay > 0.0:
            time.sleep(delay)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def counters(self) -> dict:
        """Snapshot of the injected-fault counters (test observability)."""
        with self._lock:
            return {
                "reads_seen": self.reads_seen,
                "errors_injected": self.errors_injected,
                "stalls_injected": self.stalls_injected,
                "delays_injected": self.delays_injected,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "enabled" if self.enabled else "disabled"
        return (
            f"FaultInjector({len(self.rules)} rule(s), {state}, "
            f"errors={self.errors_injected}, stalls={self.stalls_injected})"
        )
