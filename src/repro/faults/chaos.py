"""Chaos helpers for the process fleet: kill workers, on purpose.

The process backend's real-world failure mode is not a tidy exception —
it is a worker OOM-killed or segfaulted mid-task, which surfaces parent-
side as :class:`concurrent.futures.process.BrokenProcessPool` on *every*
in-flight future.  :func:`kill_fleet_workers` reproduces exactly that,
seedably, against a live :class:`~repro.shard.executor.ProcessShardExecutor`
so the self-healing path (pool re-init from the spec + task replay) is a
test subject instead of a hope.
"""

from __future__ import annotations

import os
import random
import signal
from typing import List, Optional


def kill_fleet_workers(
    executor,
    count: int = 1,
    seed: Optional[int] = None,
    sig: int = signal.SIGKILL,
) -> List[int]:
    """SIGKILL *count* workers of a :class:`ProcessShardExecutor`.

    Victims are sampled with ``random.Random(seed)`` from the live worker
    pids (``executor.worker_pids()``); pass ``count`` >= the pool width to
    take the whole fleet down.  Returns the pids actually signalled.
    Workers spawn on first use — call :meth:`ProcessShardExecutor.warm_up`
    (or run a batch) first; killing an empty fleet is a usage error, not a
    silent no-op.
    """
    pids = executor.worker_pids()
    if not pids:
        raise RuntimeError(
            "process fleet has no live workers to kill — warm the pool "
            "first (executor.warm_up() or any completed batch)"
        )
    rng = random.Random(seed)
    victims = rng.sample(pids, min(count, len(pids)))
    for pid in victims:
        try:
            os.kill(pid, sig)
        except ProcessLookupError:  # pragma: no cover - racy exit
            pass
    return victims
