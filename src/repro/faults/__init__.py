"""Fault injection: make failure a first-class, reproducible test axis.

:mod:`repro.faults.injector` hooks seedable read errors, latency spikes,
and indefinite stalls into :class:`~repro.storage.disk.SimulatedDisk`;
:mod:`repro.faults.chaos` SIGKILLs process-fleet workers mid-batch.  The
serving tier's answer to both lives in :mod:`repro.shard.resilience`
(deadlines, retries, hedging) and :mod:`repro.shard.replicas` (per-replica
health + circuit breaking).
"""

from repro.faults.chaos import kill_fleet_workers
from repro.faults.injector import FaultInjector, FaultRule, InjectedDiskError

__all__ = [
    "FaultInjector",
    "FaultRule",
    "InjectedDiskError",
    "kill_fleet_workers",
]
