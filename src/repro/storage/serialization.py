"""Compact binary serialisation for the structures the GAT index persists.

The simulated disk stores opaque byte strings.  We serialise with the
standard-library :mod:`pickle` at the highest protocol — the point of the
storage layer is to *count* bytes and pages, not to be portable — but keep
the functions behind a seam so a schema-aware encoder could be dropped in.
"""

from __future__ import annotations

import pickle
from typing import Any


def serialize_obj(obj: Any) -> bytes:
    """Encode *obj* to bytes."""
    return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


def deserialize_obj(payload: bytes) -> Any:
    """Decode bytes produced by :func:`serialize_obj`."""
    return pickle.loads(payload)
