"""Simulated two-tier storage.

The paper's GAT index splits its components between main memory (high HICL
levels, ITL, TAS) and hard disk (low HICL levels, APL).  Since this
reproduction runs on a single process with everything in RAM, we *simulate*
the disk: a :class:`~repro.storage.disk.SimulatedDisk` is a byte-serialised
object store that counts logical page reads and writes.  Experiments can
then report logical I/O alongside wall-clock time, which is the faithful
signal for the paper's memory-budget discussion.

:mod:`repro.storage.shm` is the real-storage exception: a zero-copy
shared-memory trajectory store (:class:`~repro.storage.shm.SharedTrajectoryStore`)
that lets process workers and replica banks attach to one columnar copy
of the dataset instead of rebuilding it from pickles.
"""

from repro.storage.cache import CacheStats, LRUCache
from repro.storage.disk import DiskStats, SimulatedDisk
from repro.storage.serialization import deserialize_obj, serialize_obj

__all__ = [
    "SimulatedDisk",
    "DiskStats",
    "LRUCache",
    "CacheStats",
    "serialize_obj",
    "deserialize_obj",
    "SharedTrajectoryStore",
    "SharedStoreSpec",
    "attach_database",
]

try:  # the shared store needs NumPy, which stays an optional dependency
    from repro.storage.shm import (
        SharedStoreSpec,
        SharedTrajectoryStore,
        attach_database,
    )
except ImportError:  # pragma: no cover - NumPy-less environments
    pass
