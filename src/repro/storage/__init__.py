"""Simulated two-tier storage.

The paper's GAT index splits its components between main memory (high HICL
levels, ITL, TAS) and hard disk (low HICL levels, APL).  Since this
reproduction runs on a single process with everything in RAM, we *simulate*
the disk: a :class:`~repro.storage.disk.SimulatedDisk` is a byte-serialised
object store that counts logical page reads and writes.  Experiments can
then report logical I/O alongside wall-clock time, which is the faithful
signal for the paper's memory-budget discussion.
"""

from repro.storage.cache import CacheStats, LRUCache
from repro.storage.disk import DiskStats, SimulatedDisk
from repro.storage.serialization import deserialize_obj, serialize_obj

__all__ = [
    "SimulatedDisk",
    "DiskStats",
    "LRUCache",
    "CacheStats",
    "serialize_obj",
    "deserialize_obj",
]
