"""Shared-memory trajectory store: attach, don't rebuild.

The process fan-out backend's original sin was shipping the whole fleet
through pickles: every worker re-inflated millions of point objects from
the ``ShardEngineSpec`` before serving its first task, and every insert
re-shipped the world.  This module keeps exactly one copy of the
trajectory set in a ``multiprocessing.shared_memory`` segment — the
columnar image of :mod:`repro.model.columnar` packed end to end — and
lets any process map it by name:

* the **writer** (:class:`SharedTrajectoryStore`) packs the base dataset
  once at build time and owns the segment's lifetime (:meth:`close`
  unlinks it);
* **readers** attach via the picklable :class:`SharedStoreSpec` — segment
  names plus per-array offsets/dtypes/shapes — and view the columns
  zero-copy (:func:`attach_database`), a few milliseconds instead of an
  engine-spec unpickle;
* **inserts** accumulate in a small append-only *delta*: the writer's
  :meth:`~SharedTrajectoryStore.sync` publishes the trajectories added
  since build as one fresh cumulative delta segment (and unlinks the
  previous one), so a refresh ships only the delta's names and offsets,
  never the base.

Segments are immutable once published — readers never observe a write —
and POSIX unlink semantics keep an attached mapping valid until the
reader drops it, so an in-flight worker can finish on the old delta
while the parent publishes the next.

Lifecycle accounting: every writer-owned segment is registered in a
module-level table; :func:`active_segments` lists the ones not yet
unlinked, which the test suite asserts empty after the shard/replica
suites (no leaked shared memory).  On Python < 3.13
``SharedMemory(name=...)`` registers *attached* segments with
``multiprocessing.resource_tracker`` as if the attacher created them —
under spawn the reader's tracker then unlinks live segments at exit and
warns about "leaks", under fork the shared tracker ends up with a
registration the writer's unlink doesn't own.  :func:`_attach_segment`
therefore suppresses the tracker ``register`` call for the duration of
the attach (serialised with segment creation through one module lock),
so exactly one registration — the writer's — ever exists per segment,
and the writer's ``close()`` (or its ``weakref.finalize`` backstop)
retires it exactly once.
"""

from __future__ import annotations

import os
import secrets
import threading
import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.model.columnar import ColumnarArrays, trajectories_to_arrays
from repro.model.database import TrajectoryDatabase

#: Byte alignment of every array inside a segment (>= any column itemsize).
_ALIGN = 16

#: Writer segments are named ``repro-shm-<creator pid>-<hex>`` so a
#: crashed writer's leftovers are attributable: the sweeper
#: (:func:`cleanup_orphans`) reclaims exactly the segments whose creator
#: pid no longer exists, and nothing else in ``/dev/shm``.
_NAME_PREFIX = "repro-shm-"

#: Serialises segment creation (which must reach the resource tracker)
#: with attaches (whose tracker registration is suppressed — see the
#: module docstring), so suppression can never swallow a writer's
#: registration.
_TRACKER_LOCK = threading.Lock()

#: Writer-owned segments not yet unlinked, name -> human-readable role.
_LIVE_SEGMENTS: Dict[str, str] = {}

#: Reader-side cache of attached segments (kept referenced so the views
#: handed out stay valid for the process lifetime).
_ATTACHED: Dict[str, shared_memory.SharedMemory] = {}

#: Reader-side cache of fully attached databases, keyed by the segment
#: names they were built from — one worker serving several shards of the
#: same fleet attaches the dataset once, not once per shard.
_DB_CACHE: Dict[Tuple[str, Optional[str], str], TrajectoryDatabase] = {}


@dataclass(frozen=True)
class SegmentSpec:
    """One shared-memory segment's name plus its array directory:
    ``(field, byte offset, dtype, shape)`` per column, in
    :meth:`ColumnarArrays.field_arrays` order.  Pure data — picklable,
    value-comparable (executor refresh coalescing relies on ``==``)."""

    name: str
    layout: Tuple[Tuple[str, int, str, Tuple[int, ...]], ...]
    size: int


@dataclass(frozen=True)
class SharedStoreSpec:
    """Everything a reader needs to attach: the base segment and the
    optional cumulative-delta segment (trajectories added since build)."""

    base: SegmentSpec
    delta: Optional[SegmentSpec] = None


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def _pack(arrays: ColumnarArrays, role: str):
    """Copy a columnar image into one fresh segment; returns the live
    ``SharedMemory`` (writer keeps it) and its :class:`SegmentSpec`."""
    layout: List[Tuple[str, int, str, Tuple[int, ...]]] = []
    offset = 0
    for name, arr in arrays.field_arrays():
        offset = _aligned(offset)
        layout.append((name, offset, arr.dtype.str, tuple(arr.shape)))
        offset += arr.nbytes
    size = max(1, offset)
    with _TRACKER_LOCK:
        while True:
            candidate = f"{_NAME_PREFIX}{os.getpid()}-{secrets.token_hex(4)}"
            try:
                shm = shared_memory.SharedMemory(
                    name=candidate, create=True, size=size
                )
                break
            except FileExistsError:  # pragma: no cover - 2^32 collision
                continue
    for (name, off, dtype, shape), (_n, arr) in zip(layout, arrays.field_arrays()):
        view = np.ndarray(shape, dtype=dtype, buffer=shm.buf, offset=off)
        view[...] = arr
    _LIVE_SEGMENTS[shm.name] = role
    return shm, SegmentSpec(name=shm.name, layout=tuple(layout), size=size)


def _views(shm: shared_memory.SharedMemory, spec: SegmentSpec) -> ColumnarArrays:
    """Zero-copy :class:`ColumnarArrays` over a mapped segment."""
    columns = {
        name: np.ndarray(shape, dtype=dtype, buffer=shm.buf, offset=off)
        for name, off, dtype, shape in spec.layout
    }
    return ColumnarArrays(**columns)


def _unlink_quietly(shm: Optional[shared_memory.SharedMemory]) -> None:
    if shm is None:
        return
    _LIVE_SEGMENTS.pop(shm.name, None)
    try:
        shm.close()
        shm.unlink()
    except FileNotFoundError:  # already gone (double close / races at exit)
        pass


def active_segments() -> List[str]:
    """Names of writer-owned segments not yet unlinked — the leak probe
    the test suite asserts empty after the shard/replica suites."""
    return sorted(_LIVE_SEGMENTS)


#: Where POSIX shared memory lives on Linux — the sweeper's scan root.
_SHM_DIR = "/dev/shm"


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # alive, owned by someone else
        return True
    return True


def cleanup_orphans(dry_run: bool = False) -> List[str]:
    """Unlink shared-memory segments left behind by dead store writers.

    A SIGKILLed (or OOM-killed) process never runs ``close()`` or its
    finalizer, and the resource tracker dies with the process tree — the
    segment then sits in ``/dev/shm`` until reboot.  Every writer segment
    embeds its creator's pid in the name (``repro-shm-<pid>-<hex>``), so
    the sweep is precise: scan ``/dev/shm`` for this store's prefix,
    parse the pid, and unlink exactly the segments whose creator is gone.
    Segments of live processes — including this one's, which are also in
    :data:`_LIVE_SEGMENTS` — are never touched, so the sweeper is safe to
    run while a fleet is serving.

    With ``dry_run`` the orphans are reported but left in place.  Returns
    the orphaned segment names (removed, or — dry run — removable).  On
    platforms without ``/dev/shm`` the sweep is an empty no-op.
    """
    if not os.path.isdir(_SHM_DIR):  # pragma: no cover - non-Linux
        return []
    orphans: List[str] = []
    for entry in sorted(os.listdir(_SHM_DIR)):
        if not entry.startswith(_NAME_PREFIX):
            continue
        if entry in _LIVE_SEGMENTS:  # ours, alive by construction
            continue
        pid_part = entry[len(_NAME_PREFIX) :].split("-", 1)[0]
        try:
            pid = int(pid_part)
        except ValueError:
            continue  # not a name this store wrote; leave it alone
        if _pid_alive(pid):
            continue
        orphans.append(entry)
        if not dry_run:
            try:
                os.unlink(os.path.join(_SHM_DIR, entry))
            except FileNotFoundError:  # pragma: no cover - lost a race
                pass
    return orphans


class SharedTrajectoryStore:
    """Writer side: one trajectory set in shared memory, plus its delta.

    Build with :meth:`for_database`; hand :meth:`spec` (or the result of
    :meth:`sync`) to readers; call :meth:`close` exactly once when the
    owning index is done — idempotent, and a GC backstop unlinks the
    segments if the owner forgot.
    """

    def __init__(self, db: TrajectoryDatabase) -> None:
        arrays = db.to_arrays()
        self._base_shm, self._base_spec = _pack(arrays, f"base:{db.name}")
        self._delta_shm: Optional[shared_memory.SharedMemory] = None
        self._delta_spec: Optional[SegmentSpec] = None
        self.n_base = len(db)
        self._n_published = len(db)
        self._closed = False
        self._finalizer = weakref.finalize(
            self, _unlink_quietly, self._base_shm
        )

    @classmethod
    def for_database(cls, db: TrajectoryDatabase) -> "SharedTrajectoryStore":
        return cls(db)

    # ------------------------------------------------------------------
    # Writer-side views / specs
    # ------------------------------------------------------------------
    def base_arrays(self) -> ColumnarArrays:
        """Zero-copy columns over the base segment (the writer's own view
        — the parent's array-backed database reads the same bytes the
        workers map)."""
        self._check_open()
        return _views(self._base_shm, self._base_spec)

    def spec(self) -> SharedStoreSpec:
        """The current picklable attach recipe (base + published delta)."""
        self._check_open()
        return SharedStoreSpec(base=self._base_spec, delta=self._delta_spec)

    def sync(self, db: TrajectoryDatabase) -> SharedStoreSpec:
        """Publish any trajectories *db* gained since the last publish and
        return the refreshed spec.

        The delta is **cumulative** (everything past the base), packed
        into a fresh segment; the superseded delta segment is unlinked —
        readers that already mapped it keep a valid mapping until they
        re-attach.  When nothing changed this is pure read, the spec
        compares equal to the previous one, and the executor's refresh
        coalescing skips the pool re-init entirely.
        """
        self._check_open()
        if len(db) < self.n_base:
            raise ValueError(
                f"database shrank below the shared base "
                f"({len(db)} < {self.n_base}); rebuild the store"
            )
        if len(db) == self._n_published:
            return self.spec()
        delta = trajectories_to_arrays(db.trajectories[self.n_base :])
        old = self._delta_shm
        self._delta_shm, self._delta_spec = _pack(
            delta, f"delta:{db.name}"
        )
        _unlink_quietly(old)
        self._n_published = len(db)
        return self.spec()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("SharedTrajectoryStore used after close()")

    def close(self) -> None:
        """Unlink every segment this writer owns (idempotent).  Views
        handed out earlier — the parent's array-backed database included
        — become invalid; close the store only after its index fleet and
        services are done."""
        if self._closed:
            return
        self._closed = True
        self._finalizer.detach()
        _unlink_quietly(self._base_shm)
        _unlink_quietly(self._delta_shm)

    def __enter__(self) -> "SharedTrajectoryStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return (
            f"SharedTrajectoryStore({self._base_spec.name}, "
            f"n_base={self.n_base}, published={self._n_published}, {state})"
        )


# ----------------------------------------------------------------------
# Reader side
# ----------------------------------------------------------------------
def _attach_segment(name: str) -> shared_memory.SharedMemory:
    shm = _ATTACHED.get(name)
    if shm is not None:
        return shm
    # Python < 3.13 registers *attached* segments with the resource
    # tracker as if this process created them — at exit the tracker would
    # unlink segments the writer still owns (spawn) or hold registrations
    # the writer's unlink doesn't retire (fork).  Ownership stays with the
    # writer: suppress the register call for the duration of the attach.
    from multiprocessing import resource_tracker

    with _TRACKER_LOCK:
        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            shm = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            raise RuntimeError(
                f"shared trajectory store segment {name!r} is gone — the "
                "writer closed it or exited; refresh the spec from a live store"
            ) from None
        finally:
            resource_tracker.register = original_register
    _ATTACHED[name] = shm
    return shm


def attach_arrays(spec: SegmentSpec) -> ColumnarArrays:
    """Map one segment and return zero-copy columns over it.  The mapping
    is cached for the process lifetime so the views stay valid."""
    return _views(_attach_segment(spec.name), spec)


def attach_database(
    spec: SharedStoreSpec, vocabulary, name: str = "dataset"
) -> TrajectoryDatabase:
    """Attach the full trajectory set behind *spec* as an array-backed
    :class:`TrajectoryDatabase` (base columns viewed zero-copy, delta
    trajectories appended on top).  Cached per ``(base, delta, name)``:
    one worker process attaches a fleet's dataset exactly once, however
    many shards it ends up serving.
    """
    key = (spec.base.name, spec.delta.name if spec.delta else None, name)
    db = _DB_CACHE.get(key)
    if db is not None:
        return db
    db = TrajectoryDatabase.from_arrays(attach_arrays(spec.base), vocabulary, name=name)
    if spec.delta is not None:
        from repro.model.columnar import arrays_to_trajectories

        for trajectory in arrays_to_trajectories(attach_arrays(spec.delta)):
            db.add(trajectory)
    _DB_CACHE[key] = db
    return db
