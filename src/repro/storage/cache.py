"""A thread-safe bounded LRU cache with hit/miss accounting.

Shared by the concurrency-safe layers of the index: HICL uses one for its
disk-resident inverted cell lists (replacing the old per-query cache that
was cleared between queries), and the search engine uses one for hot APL
posting-list fetches.  Both caches are shared across concurrent queries,
so every operation takes an internal lock; ``get_or_load`` releases the
lock while the loader runs so a slow (counted) disk read never serialises
unrelated queries.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Optional


@dataclass(frozen=True, slots=True)
class CacheStats:
    """Immutable snapshot of a cache's accounting."""

    hits: int
    misses: int
    size: int
    capacity: int

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from memory (0.0 when never used)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @classmethod
    def combined(cls, parts: "list[Optional[CacheStats]]") -> Optional["CacheStats"]:
        """Sum several caches' accounting into one snapshot.

        Used by the sharded layers to report fleet-wide hit rates: each
        shard owns its own cache, so hits/misses/sizes/capacities add up
        without double-counting.  ``None`` entries (disabled caches) are
        skipped; all-``None`` input returns ``None``.
        """
        present = [p for p in parts if p is not None]
        if not present:
            return None
        return cls(
            hits=sum(p.hits for p in present),
            misses=sum(p.misses for p in present),
            size=sum(p.size for p in present),
            capacity=sum(p.capacity for p in present),
        )


class LRUCache:
    """Bounded least-recently-used mapping, safe for concurrent readers.

    Parameters
    ----------
    capacity:
        Maximum number of entries; the least recently used entry is
        evicted when a new key would exceed it.
    """

    __slots__ = ("capacity", "_lock", "_entries", "_hits", "_misses")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._hits = 0
        self._misses = 0

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------
    def get(self, key: Hashable, default: Any = None) -> Any:
        """Return the cached value (refreshing its recency) or *default*."""
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self._misses += 1
                return default
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert or refresh an entry, evicting the LRU one when full."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    _MISS = object()

    def get_or_load(self, key: Hashable, loader: Callable[[], Any]) -> Any:
        """Return the cached value, calling *loader* (outside the lock) on
        a miss and caching its result.

        Two threads racing on the same cold key may both invoke *loader*;
        the loaders used here are idempotent reads, so the only cost is a
        duplicated counted I/O — never a wrong value.
        """
        value = self.get(key, self._MISS)
        if value is not self._MISS:
            return value
        value = loader()
        self.put(key, value)
        return value

    def clear(self) -> None:
        """Drop every entry (accounting counters are preserved)."""
        with self._lock:
            self._entries.clear()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(self._hits, self._misses, len(self._entries), self.capacity)
