"""A simulated disk: a keyed object store with logical-I/O accounting.

Why simulate?  The paper stores the Activity Posting Lists and the two
lowest HICL levels "on hard disk" and argues about memory budgets
(Section IV).  Reproducing spinning-disk latencies would make benchmarks
nondeterministic and machine-bound; what actually matters for comparing
index designs is *how many page accesses* each strategy performs.  So the
store serialises values to bytes (their true on-disk size), rounds sizes up
to pages, and counts reads/writes.  An optional per-read latency can be
injected for demonstrations but defaults to zero.

Concurrency: the global :class:`DiskStats` counters are updated under a
lock, and :meth:`SimulatedDisk.track` opens a *per-context* tracker —
a :class:`DiskStats` that accumulates only the I/O issued by the current
thread while the ``with`` block is open.  Each query runs on one thread,
so trackers attribute disk work to the query that caused it even when
many queries share the disk (the old snapshot/delta protocol misattributed
reads across concurrent queries).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Iterator, List, Optional

from repro.obs.trace import current_span
from repro.storage.serialization import deserialize_obj, serialize_obj

DEFAULT_PAGE_SIZE = 4096


@dataclass(slots=True)
class DiskStats:
    """Running counters of logical disk activity."""

    reads: int = 0
    writes: int = 0
    pages_read: int = 0
    pages_written: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    def reset(self) -> None:
        self.reads = 0
        self.writes = 0
        self.pages_read = 0
        self.pages_written = 0
        self.bytes_read = 0
        self.bytes_written = 0

    def snapshot(self) -> "DiskStats":
        return DiskStats(
            self.reads,
            self.writes,
            self.pages_read,
            self.pages_written,
            self.bytes_read,
            self.bytes_written,
        )

    def delta(self, earlier: "DiskStats") -> "DiskStats":
        """Counters accumulated since *earlier* (a snapshot)."""
        return DiskStats(
            self.reads - earlier.reads,
            self.writes - earlier.writes,
            self.pages_read - earlier.pages_read,
            self.pages_written - earlier.pages_written,
            self.bytes_read - earlier.bytes_read,
            self.bytes_written - earlier.bytes_written,
        )

    def merge(self, other: "DiskStats") -> None:
        """Accumulate another disk's counters into this one (the sharded
        index sums its per-shard disks into one fleet-wide view; each read
        happened on exactly one shard disk, so summing never double-counts)."""
        self.reads += other.reads
        self.writes += other.writes
        self.pages_read += other.pages_read
        self.pages_written += other.pages_written
        self.bytes_read += other.bytes_read
        self.bytes_written += other.bytes_written


@dataclass(slots=True)
class _Record:
    payload: bytes
    n_pages: int


class SimulatedDisk:
    """Keyed byte store with page-granular accounting.

    Parameters
    ----------
    page_size:
        Logical page size in bytes; every object occupies a whole number of
        pages (minimum one).
    read_latency_s:
        Optional artificial latency injected per *read call* (not per page).
        Zero by default so tests and benchmarks stay fast and deterministic.
    concurrent_reads:
        How many latency-bearing reads the device serves at once.  ``None``
        (default) keeps the historical contention-free model — every
        sleeping reader overlaps freely, as if the store had unbounded
        internal parallelism.  A positive value models a real device's
        command depth: ``1`` is a single spinning-disk arm (concurrent
        readers of one disk queue behind each other), higher values model
        SSD-style parallelism.  Only the *latency* is gated; accounting is
        untouched, so counters stay deterministic either way.  This is the
        knob that makes shard **replication** a real serving axis: with one
        copy of a shard there is one arm for all its readers, with N
        replicas there are N.
    fault_injector:
        Optional :class:`~repro.faults.injector.FaultInjector` consulted
        once per read, after accounting and before the latency model —
        injected errors/stalls never touch the deterministic counters,
        they decide whether the read returns.  Faults belong to *this*
        device only: :meth:`ShardedGATIndex.replicate` clones a disk's
        cost model, never its injector, so a replica is a healthy copy on
        independent hardware — exactly what failover needs to fail over
        *to*.
    """

    def __init__(
        self,
        page_size: int = DEFAULT_PAGE_SIZE,
        read_latency_s: float = 0.0,
        concurrent_reads: Optional[int] = None,
        fault_injector=None,
    ) -> None:
        if page_size <= 0:
            raise ValueError("page size must be positive")
        if concurrent_reads is not None and concurrent_reads < 1:
            raise ValueError("concurrent_reads must be >= 1 (or None for unbounded)")
        self.page_size = page_size
        self.read_latency_s = read_latency_s
        self.concurrent_reads = concurrent_reads
        self.fault_injector = fault_injector
        self._read_gate: Optional[threading.Semaphore] = (
            threading.BoundedSemaphore(concurrent_reads)
            if concurrent_reads is not None
            else None
        )
        self.stats = DiskStats()
        self._records: Dict[Hashable, _Record] = {}
        self._stats_lock = threading.Lock()
        self._local = threading.local()
        #: Optional :class:`repro.obs.trace.Tracer`; when set and enabled,
        #: each read attaches a ``disk_read`` event to the thread's active
        #: span (see :meth:`Observability.bind_disk`).  ``None`` keeps the
        #: read path at one attribute load of overhead.
        self.tracer = None

    def _pay_read_latency(self, n_reads: int = 1) -> None:
        """Sleep out *n_reads* worth of read latency, queueing on the
        device gate when the disk models bounded concurrency.  A multi-read
        batch holds the gate once for its whole latency train — one
        sequential command burst on one device, cheaper than n independent
        seeks interleaved with other readers."""
        if self.read_latency_s <= 0.0 or n_reads <= 0:
            return
        if self._read_gate is None:
            time.sleep(self.read_latency_s * n_reads)
            return
        with self._read_gate:
            time.sleep(self.read_latency_s * n_reads)

    # ------------------------------------------------------------------
    # Per-context accounting
    # ------------------------------------------------------------------
    def _trackers(self) -> List[DiskStats]:
        trackers = getattr(self._local, "trackers", None)
        if trackers is None:
            trackers = []
            self._local.trackers = trackers
        return trackers

    @contextmanager
    def track(self):
        """Attribute this thread's I/O to a fresh :class:`DiskStats`.

        Yields the tracker; on exit it holds exactly the reads/writes this
        thread issued inside the block.  Trackers nest, and concurrent
        queries on different threads never see each other's I/O.
        """
        tracker = DiskStats()
        stack = self._trackers()
        stack.append(tracker)
        try:
            yield tracker
        finally:
            # Remove by identity: DiskStats compares by value, so two
            # nested trackers with equal counters would alias under
            # list.remove() and swallow each other's subsequent I/O.
            for i in range(len(stack) - 1, -1, -1):
                if stack[i] is tracker:
                    del stack[i]
                    break

    def _account_read(self, n_pages: int, n_bytes: int) -> None:
        with self._stats_lock:
            self.stats.reads += 1
            self.stats.pages_read += n_pages
            self.stats.bytes_read += n_bytes
        for tracker in self._trackers():
            tracker.reads += 1
            tracker.pages_read += n_pages
            tracker.bytes_read += n_bytes

    def _account_write(self, n_pages: int, n_bytes: int) -> None:
        with self._stats_lock:
            self.stats.writes += 1
            self.stats.pages_written += n_pages
            self.stats.bytes_written += n_bytes
        for tracker in self._trackers():
            tracker.writes += 1
            tracker.pages_written += n_pages
            tracker.bytes_written += n_bytes

    # ------------------------------------------------------------------
    # Store / load
    # ------------------------------------------------------------------
    def put(self, key: Hashable, value: Any) -> int:
        """Serialise and store *value* under *key*; returns pages written."""
        payload = serialize_obj(value)
        n_pages = max(1, -(-len(payload) // self.page_size))
        self._records[key] = _Record(payload, n_pages)
        self._account_write(n_pages, len(payload))
        return n_pages

    def get(self, key: Hashable) -> Any:
        """Load and deserialise the value stored under *key*.

        Raises
        ------
        KeyError
            If nothing was stored under *key*.
        """
        record = self._records[key]
        self._account_read(record.n_pages, len(record.payload))
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            span = current_span()
            if span is not None:
                span.add_event("disk_read", key=str(key), pages=record.n_pages)
        if self.fault_injector is not None:
            self.fault_injector.on_read(key)
        self._pay_read_latency()
        return deserialize_obj(record.payload)

    def get_many(self, keys: List[Hashable], executor=None) -> List[Any]:
        """Load several keys as one grouped I/O round.

        Accounting is identical to ``len(keys)`` individual :meth:`get`
        calls — every read is counted, *on the calling thread*, so
        per-query :meth:`track` attribution keeps working even when the
        latency is overlapped.  With an *executor*, the per-read latencies
        are served concurrently (wall time ≈ ``ceil(n / workers) *
        read_latency_s`` — the thread-offloaded gather); without one the
        latencies are paid back to back, exactly like sequential gets.

        Under a bounded device (``concurrent_reads``) the two shapes
        model different command streams, deliberately: the on-thread
        gather holds the gate once for its whole latency train (one
        contiguous burst, like a sequential read of a sorted batch),
        while the offloaded gather acquires the gate per read (NCQ-style
        independent commands that interleave with other readers).  Both
        respect the same device concurrency bound.

        Raises
        ------
        KeyError
            If any key was never stored (before any latency is paid).
        """
        records = [self._records[key] for key in keys]
        for record in records:
            self._account_read(record.n_pages, len(record.payload))
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            span = current_span()
            if span is not None:
                # One event per grouped round, not per key — events are
                # bounded per span, and the batch is the I/O unit here.
                span.add_event(
                    "disk_read_batch",
                    n=len(records),
                    pages=sum(r.n_pages for r in records),
                )
        if self.fault_injector is not None:
            # Per-key, like len(keys) individual gets — a batch aborts on
            # its first injected error, after all accounting (the seeks
            # happened) and before any latency is paid.
            for key in keys:
                self.fault_injector.on_read(key)
        if self.read_latency_s > 0.0 and records:
            if executor is not None and len(records) > 1:
                list(executor.map(lambda _r: self._pay_read_latency(), records))
            else:
                self._pay_read_latency(len(records))
        return [deserialize_obj(record.payload) for record in records]

    def get_or_none(self, key: Hashable) -> Optional[Any]:
        """Like :meth:`get` but returns ``None`` for a missing key.

        A miss still counts as a read call (the seek happened), with zero
        pages transferred.
        """
        record = self._records.get(key)
        if record is None:
            self._account_read(0, 0)
            return None
        return self.get(key)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._records

    def __len__(self) -> int:
        return len(self._records)

    def keys(self) -> Iterator[Hashable]:
        return iter(self._records)

    # ------------------------------------------------------------------
    # Sizing
    # ------------------------------------------------------------------
    def total_bytes(self) -> int:
        """Total serialised bytes currently stored."""
        return sum(len(r.payload) for r in self._records.values())

    def total_pages(self) -> int:
        """Total pages currently occupied."""
        return sum(r.n_pages for r in self._records.values())

    def reset_stats(self) -> None:
        self.stats.reset()
