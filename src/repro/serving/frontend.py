"""ServingFrontend — the asyncio admission layer over the query services.

One front-end wraps one backend service (:class:`~repro.service.QueryService`,
:class:`~repro.shard.service.ShardedQueryService`, or the replicated
tier — anything with ``search(request) -> QueryResponse``) and turns it
into an open-loop endpoint that degrades gracefully under overload:

* a bounded admission queue (reject fast when full — backpressure),
* a concurrency limiter sized to the backend executor (admitted
  requests wait for a permit; the wait is tracked per request),
* SLO-aware shedding at admission and at dispatch
  (:mod:`repro.serving.admission`),
* deadline propagation: the remaining budget at dispatch is stamped
  into ``QueryRequest.deadline_s`` so a ``FaultPolicy``-supervised
  backend's retries/hedges never outlive the caller.

The backend's ``search`` is synchronous (thread-pooled internally), so
the front-end bridges with ``loop.run_in_executor`` over its own pool of
exactly ``max_concurrency`` threads — the semaphore guarantees a permit
holder never waits for a pool thread.

Exactness: admission decides *whether* a query runs, never *how*.  Every
response the front-end returns is a complete, full-coverage answer
(``require_complete=True`` converts partials into
:class:`~repro.serving.admission.ExpiredError`), byte-identical to the
same query served closed-loop.
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from dataclasses import replace as dc_replace
from typing import Optional, Union

from repro.core.query import Query
from repro.obs.metrics import nearest_rank
from repro.serving.admission import (
    AdmissionController,
    AdmissionError,
    ExpiredError,
    ServingConfig,
)
from repro.service.service import QueryRequest, QueryResponse, as_request

__all__ = ["ServingFrontend", "FrontendStats"]

#: Latency/queue-wait percentiles cover the most recent window only —
#: same policy as the backend services' ServingMetrics.
_WINDOW = 10_000


@dataclass(slots=True)
class FrontendStats:
    """Admission-layer accounting since construction (or ``reset_stats``).

    ``submitted = completed + rejected + shed + expired + failed`` once
    the stream drains.  Queue-wait percentiles cover admitted requests;
    latency percentiles cover completed ones (admission → response).
    """

    submitted: int = 0
    completed: int = 0
    rejected: int = 0
    shed: int = 0
    expired: int = 0
    failed: int = 0
    queue_depth: int = 0
    queue_wait_p50_s: float = 0.0
    queue_wait_p99_s: float = 0.0
    latency_p50_s: float = 0.0
    latency_p95_s: float = 0.0
    latency_p99_s: float = 0.0
    service_time_ewma_s: Optional[float] = None


class ServingFrontend:
    """Asyncio front-end: ``await frontend.submit(query)`` under a
    :class:`~repro.serving.admission.ServingConfig`.

    The front-end may be driven by successive event loops (each
    ``asyncio.run`` of a bench sweep point), but not by two loops at
    once: the concurrency semaphore is rebound when a new loop is
    observed, which assumes the previous loop has fully drained.
    """

    def __init__(self, service, config: Optional[ServingConfig] = None, obs=None) -> None:
        self.service = service
        self.config = config if config is not None else ServingConfig()
        self.obs = obs
        self.admission = AdmissionController(self.config, obs=obs)
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.max_concurrency,
            thread_name_prefix="repro-serve",
        )
        self._sem: Optional[asyncio.Semaphore] = None
        self._sem_loop: Optional[asyncio.AbstractEventLoop] = None
        self._lock = threading.Lock()
        self._submitted = 0
        self._completed = 0
        self._rejected = 0
        self._shed = 0
        self._expired = 0
        self._failed = 0
        self._queue_waits: deque = deque(maxlen=_WINDOW)
        self._latencies: deque = deque(maxlen=_WINDOW)

    # ------------------------------------------------------------------
    def _semaphore(self) -> asyncio.Semaphore:
        loop = asyncio.get_running_loop()
        if self._sem is None or self._sem_loop is not loop:
            self._sem = asyncio.Semaphore(self.config.max_concurrency)
            self._sem_loop = loop
        return self._sem

    def _count(self, outcome: str) -> None:
        with self._lock:
            if outcome == "completed":
                self._completed += 1
            elif outcome == "rejected":
                self._rejected += 1
            elif outcome == "shed":
                self._shed += 1
            elif outcome == "expired":
                self._expired += 1
            else:
                self._failed += 1
        if self.obs is not None:
            self.obs.observe_admission(outcome)

    # ------------------------------------------------------------------
    async def submit(
        self,
        query: Union[QueryRequest, Query],
        k: int = 10,
        order_sensitive: bool = False,
        explain: bool = False,
        deadline_s: Optional[float] = None,
    ) -> QueryResponse:
        """Serve one request through admission control.

        Raises :class:`~repro.serving.admission.RejectedError` /
        :class:`ShedError` / :class:`ExpiredError` on the refusal paths;
        returns a complete :class:`QueryResponse` otherwise.  A bare
        deadline on the *request* (``QueryRequest.deadline_s``) is used
        when the ``deadline_s`` argument is omitted.
        """
        request = as_request(
            query, k=k, order_sensitive=order_sensitive, explain=explain
        )
        if deadline_s is None:
            deadline_s = request.deadline_s
        with self._lock:
            self._submitted += 1
        tracing = self.obs is not None and self.obs.tracer.enabled
        span = (
            self.obs.tracer.start_span(
                "admission", attrs={"deadline_s": deadline_s}
            )
            if tracing
            else None
        )
        try:
            response = await self._submit_admitted(request, deadline_s, span)
        except AdmissionError as exc:
            self._count(exc.outcome)
            if span is not None:
                span.set_attrs(outcome=exc.outcome, error=True)
            raise
        except Exception:
            self._count("failed")
            if span is not None:
                span.set_attrs(outcome="failed", error=True)
            raise
        else:
            if span is not None:
                span.set_attr("outcome", "completed")
            return response
        finally:
            if span is not None:
                span.end()

    async def _submit_admitted(
        self,
        request: QueryRequest,
        deadline_s: Optional[float],
        span,
    ) -> QueryResponse:
        ticket = self.admission.admit(deadline_s)  # RejectedError / ShedError
        sem = self._semaphore()
        try:
            await sem.acquire()
        except BaseException:
            self.admission.abandon(ticket)
            raise
        try:
            # ShedError(stage='dispatch') when the budget drained in queue.
            remaining = self.admission.dispatch(ticket)
            wait_s = max(0.0, time.monotonic() - ticket.admitted_at)
            with self._lock:
                self._queue_waits.append(wait_s)
            if span is not None:
                span.set_attr("queue_wait_s", wait_s)
            backend_request = request
            if remaining is not None and self.config.propagate_deadline:
                backend_request = dc_replace(request, deadline_s=remaining)
            loop = asyncio.get_running_loop()
            started = time.monotonic()
            response = await loop.run_in_executor(
                self._executor, self.service.search, backend_request
            )
            finished = time.monotonic()
            self.admission.observe_service(finished - started)
            latency_s = finished - ticket.admitted_at
            if self.config.require_complete and not response.complete:
                raise ExpiredError(
                    latency_s,
                    ticket.deadline_s if ticket.deadline_s is not None else 0.0,
                    response=response,
                    reason="partial",
                )
            if ticket.deadline_at is not None and finished > ticket.deadline_at:
                raise ExpiredError(
                    latency_s, ticket.deadline_s, response=response, reason="late"
                )
            with self._lock:
                self._latencies.append(latency_s)
            self._count("completed")
            if span is not None:
                span.set_attr("latency_s", latency_s)
            return response
        finally:
            sem.release()

    # ------------------------------------------------------------------
    def prime(self, service_time_s: float) -> None:
        """Seed the service-time EWMA (e.g. from a closed-loop warmup) so
        the first burst is shed against a real estimate."""
        self.admission.ewma.prime(service_time_s)

    def stats(self) -> FrontendStats:
        with self._lock:
            waits = sorted(self._queue_waits)
            lats = sorted(self._latencies)
            stats = FrontendStats(
                submitted=self._submitted,
                completed=self._completed,
                rejected=self._rejected,
                shed=self._shed,
                expired=self._expired,
                failed=self._failed,
            )
        stats.queue_depth = self.admission.queue_depth
        stats.service_time_ewma_s = self.admission.ewma.value
        if waits:
            stats.queue_wait_p50_s = nearest_rank(waits, 0.50)
            stats.queue_wait_p99_s = nearest_rank(waits, 0.99)
        if lats:
            stats.latency_p50_s = nearest_rank(lats, 0.50)
            stats.latency_p95_s = nearest_rank(lats, 0.95)
            stats.latency_p99_s = nearest_rank(lats, 0.99)
        return stats

    def reset_stats(self) -> None:
        with self._lock:
            self._submitted = 0
            self._completed = 0
            self._rejected = 0
            self._shed = 0
            self._expired = 0
            self._failed = 0
            self._queue_waits.clear()
            self._latencies.clear()

    def close(self) -> None:
        """Shut down the bridge pool (idempotent).  The backend service
        is owned by the caller and is not closed here."""
        self._executor.shutdown(wait=True)

    def __enter__(self) -> "ServingFrontend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
