"""Open-loop load generation against a :class:`ServingFrontend`.

``run_open_loop`` replays a seeded arrival schedule against the
front-end: every arrival becomes an asyncio task that sleeps until its
offset and then submits, whether or not earlier requests have finished —
the generator never slows down to match the service, which is the whole
point.  Each request resolves to one :class:`RequestOutcome`; the run
aggregates into an :class:`OpenLoopReport` whose headline number is
**goodput** — requests completed within the SLO, per second of offered
window.

Rankings are captured per completed request (``(trajectory_id,
distance)`` pairs) so benches can assert that every answered query is
byte-identical to its closed-loop oracle: overload handling may refuse
queries, never corrupt them.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.query import Query
from repro.obs.metrics import nearest_rank
from repro.serving.admission import ExpiredError, RejectedError, ShedError
from repro.serving.arrivals import ArrivalProcess
from repro.serving.frontend import ServingFrontend
from repro.service.service import QueryRequest

__all__ = ["RequestOutcome", "OpenLoopReport", "run_open_loop"]

Ranking = Tuple[Tuple[int, float], ...]


@dataclass(slots=True)
class RequestOutcome:
    """One open-loop request's fate."""

    index: int  # position in the arrival schedule
    offset_s: float  # scheduled arrival offset
    outcome: str  # completed | rejected | shed | expired | failed
    latency_s: float = 0.0  # submit -> response, completed requests only
    within_slo: bool = False
    ranking: Optional[Ranking] = None  # completed requests only


@dataclass(slots=True)
class OpenLoopReport:
    """Aggregates of one open-loop run.

    ``goodput_qps`` divides completed-within-SLO requests by the offered
    window (``duration_s``), not by busy time: an overloaded service that
    refuses most arrivals *should* score low here unless shedding keeps
    the admitted stream fast.
    """

    duration_s: float
    slo_s: float
    offered: int
    completed: int = 0
    completed_within_slo: int = 0
    rejected: int = 0
    shed: int = 0
    expired: int = 0
    failed: int = 0
    latency_p50_s: float = 0.0
    latency_p95_s: float = 0.0
    latency_p99_s: float = 0.0
    outcomes: List[RequestOutcome] = field(default_factory=list)

    @property
    def offered_qps(self) -> float:
        return self.offered / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def goodput_qps(self) -> float:
        return (
            self.completed_within_slo / self.duration_s
            if self.duration_s > 0
            else 0.0
        )

    @property
    def drop_frac(self) -> float:
        """Fraction of offered requests not completed (any refusal)."""
        if self.offered == 0:
            return 0.0
        return 1.0 - self.completed / self.offered

    @property
    def shed_frac(self) -> float:
        return self.shed / self.offered if self.offered else 0.0

    @property
    def within_slo_frac(self) -> float:
        """Of the *offered* requests, the fraction answered within SLO."""
        return self.completed_within_slo / self.offered if self.offered else 0.0

    def rankings(self) -> Dict[int, Ranking]:
        """Completed requests' rankings, keyed by workload index (the
        arrival index modulo the workload size is applied by the caller
        that knows the workload)."""
        return {
            o.index: o.ranking for o in self.outcomes if o.ranking is not None
        }

    def row(self) -> dict:
        """A flat JSON-able summary row for ``BENCH_*.json``."""
        return {
            "duration_s": round(self.duration_s, 3),
            "offered": self.offered,
            "offered_qps": round(self.offered_qps, 2),
            "completed": self.completed,
            "completed_within_slo": self.completed_within_slo,
            "goodput_qps": round(self.goodput_qps, 2),
            "rejected": self.rejected,
            "shed": self.shed,
            "expired": self.expired,
            "failed": self.failed,
            "shed_frac": round(self.shed_frac, 4),
            "drop_frac": round(self.drop_frac, 4),
            "latency_p50_ms": round(self.latency_p50_s * 1e3, 2),
            "latency_p95_ms": round(self.latency_p95_s * 1e3, 2),
            "latency_p99_ms": round(self.latency_p99_s * 1e3, 2),
        }


async def _drive(
    frontend: ServingFrontend,
    requests: Sequence[Union[QueryRequest, Query]],
    times: Sequence[float],
    slo_s: float,
    deadline_s: Optional[float],
    k: int,
) -> List[RequestOutcome]:
    loop = asyncio.get_running_loop()
    start = loop.time()

    async def one(i: int, offset: float) -> RequestOutcome:
        delay = (start + offset) - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        request = requests[i % len(requests)]
        submitted = time.monotonic()
        try:
            response = await frontend.submit(request, k=k, deadline_s=deadline_s)
        except RejectedError:
            return RequestOutcome(i, offset, "rejected")
        except ShedError:
            return RequestOutcome(i, offset, "shed")
        except ExpiredError:
            return RequestOutcome(i, offset, "expired")
        except Exception:
            return RequestOutcome(i, offset, "failed")
        latency = time.monotonic() - submitted
        return RequestOutcome(
            i,
            offset,
            "completed",
            latency_s=latency,
            within_slo=latency <= slo_s,
            ranking=tuple((r.trajectory_id, r.distance) for r in response.results),
        )

    tasks = [asyncio.create_task(one(i, t)) for i, t in enumerate(times)]
    return list(await asyncio.gather(*tasks))


def run_open_loop(
    frontend: ServingFrontend,
    requests: Sequence[Union[QueryRequest, Query]],
    arrivals: Union[ArrivalProcess, Sequence[float]],
    duration_s: float,
    slo_s: float,
    deadline_s: Optional[float] = None,
    k: int = 10,
) -> OpenLoopReport:
    """Replay one open-loop run and aggregate it.

    ``arrivals`` is either an :class:`ArrivalProcess` (its seeded
    schedule over ``duration_s`` is generated here) or a prebuilt list of
    offsets.  Arrival *i* submits ``requests[i % len(requests)]``; the
    per-request ``deadline_s`` (defaulting to each request's own) rides
    through the front-end's admission control.  Runs its own event loop —
    call from synchronous code (benches, the CLI).
    """
    if not requests:
        raise ValueError("need at least one request to replay")
    times = (
        arrivals.times(duration_s)
        if isinstance(arrivals, ArrivalProcess)
        else sorted(float(t) for t in arrivals)
    )
    outcomes = asyncio.run(
        _drive(frontend, requests, times, slo_s, deadline_s, k)
    )
    report = OpenLoopReport(
        duration_s=duration_s, slo_s=slo_s, offered=len(times), outcomes=outcomes
    )
    latencies: List[float] = []
    for o in outcomes:
        if o.outcome == "completed":
            report.completed += 1
            latencies.append(o.latency_s)
            if o.within_slo:
                report.completed_within_slo += 1
        elif o.outcome == "rejected":
            report.rejected += 1
        elif o.outcome == "shed":
            report.shed += 1
        elif o.outcome == "expired":
            report.expired += 1
        else:
            report.failed += 1
    if latencies:
        latencies.sort()
        report.latency_p50_s = nearest_rank(latencies, 0.50)
        report.latency_p95_s = nearest_rank(latencies, 0.95)
        report.latency_p99_s = nearest_rank(latencies, 0.99)
    return report
