"""repro.serving — the overload-resilient open-loop serving front-end.

Closed-loop batches (``search_many``) cannot overload the stack; open
production traffic can.  This package adds the missing tier:

* :class:`ServingFrontend` — an asyncio admission layer over any query
  service: bounded queue (backpressure), concurrency limiter sized to
  the backend, SLO-aware load shedding, deadline propagation into the
  backend's :class:`~repro.shard.resilience.FaultPolicy`;
* :mod:`~repro.serving.admission` — the typed refusals
  (:class:`RejectedError` / :class:`ShedError` / :class:`ExpiredError`),
  the :class:`ServingConfig` knobs, and the service-time EWMA behind the
  shedding estimate;
* :mod:`~repro.serving.arrivals` — seeded Poisson / diurnal /
  square-wave arrival processes;
* :mod:`~repro.serving.loadgen` — the open-loop driver and its
  goodput-centric :class:`OpenLoopReport`.

>>> from repro.serving import ServingFrontend, ServingConfig, run_open_loop
>>> from repro.serving import arrival_process
>>> frontend = ServingFrontend(service, ServingConfig(max_concurrency=8))  # doctest: +SKIP
>>> report = run_open_loop(                                                # doctest: +SKIP
...     frontend, queries, arrival_process("poisson", 50.0, seed=7),
...     duration_s=5.0, slo_s=0.25, deadline_s=0.25)
>>> report.goodput_qps                                                     # doctest: +SKIP
"""

from repro.serving.admission import (
    AdmissionController,
    AdmissionError,
    AdmissionTicket,
    ExpiredError,
    RejectedError,
    ServiceTimeEWMA,
    ServingConfig,
    ShedError,
)
from repro.serving.arrivals import (
    ARRIVAL_KINDS,
    ArrivalProcess,
    DiurnalArrivals,
    PoissonArrivals,
    SquareWaveArrivals,
    arrival_process,
)
from repro.serving.frontend import FrontendStats, ServingFrontend
from repro.serving.loadgen import OpenLoopReport, RequestOutcome, run_open_loop

__all__ = [
    "ServingFrontend",
    "FrontendStats",
    "ServingConfig",
    "AdmissionController",
    "AdmissionTicket",
    "ServiceTimeEWMA",
    "AdmissionError",
    "RejectedError",
    "ShedError",
    "ExpiredError",
    "ArrivalProcess",
    "PoissonArrivals",
    "DiurnalArrivals",
    "SquareWaveArrivals",
    "ARRIVAL_KINDS",
    "arrival_process",
    "OpenLoopReport",
    "RequestOutcome",
    "run_open_loop",
]
