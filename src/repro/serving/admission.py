"""Admission control: bounded queueing, SLO-aware shedding, typed refusals.

The front-end's first line of defence is deciding — *before* any backend
work happens — whether a request can still be served within its budget:

* **Backpressure** (:class:`RejectedError`): the admission queue is a
  hard bound.  When ``queued >= queue_capacity`` the request fails fast;
  nothing ever buffers without limit.
* **Load shedding** (:class:`ShedError`): each request carries a
  deadline.  If the estimated wait — queue position over concurrency,
  times the observed service-time EWMA — already exceeds the remaining
  budget, the request is shed at admission instead of timing out after
  consuming a permit and backend work.  A second, cheaper check fires at
  dispatch (permit acquired, budget already gone).
* **Expiry** (:class:`ExpiredError`): a request that was admitted and
  executed but finished past its deadline (or returned partial coverage
  when the front-end requires complete answers).  The late response rides
  on the error for callers that want a degraded answer anyway.

All bookkeeping runs on an injectable monotonic clock
(``time.monotonic`` by default) — wall-clock jumps can never expire a
budget (see ``tests/shard/test_deadline_monotonic.py``).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional

__all__ = [
    "AdmissionError",
    "RejectedError",
    "ShedError",
    "ExpiredError",
    "ServingConfig",
    "ServiceTimeEWMA",
    "AdmissionController",
    "AdmissionTicket",
]


class AdmissionError(RuntimeError):
    """Base of every typed refusal the serving front-end raises.

    :attr:`outcome` is the accounting bucket (``rejected`` / ``shed`` /
    ``expired``) — the same names the metrics registry counts under.
    """

    outcome = "error"


class RejectedError(AdmissionError):
    """Backpressure: the bounded admission queue is full."""

    outcome = "rejected"

    def __init__(self, queue_depth: int, capacity: int) -> None:
        self.queue_depth = queue_depth
        self.capacity = capacity
        super().__init__(
            f"admission queue full ({queue_depth}/{capacity}); request rejected"
        )


class ShedError(AdmissionError):
    """SLO-aware shedding: the estimated wait exceeds the remaining
    deadline budget, so serving this request would only waste capacity."""

    outcome = "shed"

    def __init__(
        self, estimated_wait_s: float, remaining_s: float, stage: str = "admission"
    ) -> None:
        self.estimated_wait_s = estimated_wait_s
        self.remaining_s = remaining_s
        self.stage = stage  # 'admission' (predictive) or 'dispatch' (budget gone)
        super().__init__(
            f"shed at {stage}: estimated wait {estimated_wait_s * 1e3:.1f}ms "
            f"exceeds remaining budget {remaining_s * 1e3:.1f}ms"
        )


class ExpiredError(AdmissionError):
    """The request was served but its answer arrived past the deadline
    (or with partial shard coverage when complete answers are required).
    ``response`` carries the late/partial answer when one exists."""

    outcome = "expired"

    def __init__(
        self, latency_s: float, deadline_s: float, response=None, reason: str = "late"
    ) -> None:
        self.latency_s = latency_s
        self.deadline_s = deadline_s
        self.response = response
        self.reason = reason  # 'late' or 'partial'
        super().__init__(
            f"request expired ({reason}): {latency_s * 1e3:.1f}ms elapsed "
            f"against a {deadline_s * 1e3:.1f}ms deadline"
        )


@dataclass(frozen=True)
class ServingConfig:
    """Knobs of the asyncio serving front-end.

    Attributes
    ----------
    queue_capacity:
        Hard bound on requests admitted but not yet finished dispatching
        (waiting + executing).  Arrivals beyond it are **rejected**.
    max_concurrency:
        Requests concurrently in the backend — size this to the backend
        executor's real parallelism; admitted requests above it wait for
        a permit (that wait is the queue).
    default_deadline_s:
        Deadline applied when a request does not carry one.  ``None``
        means no deadline: nothing is shed or expired, only the bounded
        queue protects the service.
    shed:
        Master switch for SLO-aware shedding (admission *and* dispatch
        checks).  Off, requests are only rejected on queue overflow —
        the collapse-prone baseline the overload bench compares against.
    propagate_deadline:
        Stamp each dispatched request's *remaining* budget into
        ``QueryRequest.deadline_s`` so a ``FaultPolicy``-supervised
        backend tightens its fan-out deadline to the caller's — retries
        and hedges never outlive the caller.
    require_complete:
        Treat a partial-coverage backend response as expired
        (:class:`ExpiredError` with ``reason='partial'``).  Keeps every
        answer the front-end returns byte-identical to the exact,
        full-coverage ranking.
    ewma_alpha:
        Weight of the newest sample in the service-time EWMA.
    shed_headroom:
        Safety factor on the shedding estimate: shed when
        ``estimated_wait × shed_headroom > remaining``.  Above 1.0 sheds
        earlier, trading a few servable requests for queue waits that
        stay well inside the SLO (the overload bench runs at 2.0 so
        admitted requests finish with budget to spare).
    """

    queue_capacity: int = 64
    max_concurrency: int = 8
    default_deadline_s: Optional[float] = None
    shed: bool = True
    propagate_deadline: bool = True
    require_complete: bool = True
    ewma_alpha: float = 0.2
    shed_headroom: float = 1.0

    def __post_init__(self) -> None:
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if self.max_concurrency < 1:
            raise ValueError("max_concurrency must be >= 1")
        if self.default_deadline_s is not None and self.default_deadline_s <= 0:
            raise ValueError("default_deadline_s must be > 0 (or None)")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if self.shed_headroom <= 0:
            raise ValueError("shed_headroom must be > 0")


class ServiceTimeEWMA:
    """Thread-safe exponentially weighted moving average of backend
    service times — the one-number model behind the shedding estimate."""

    def __init__(self, alpha: float = 0.2) -> None:
        self._alpha = alpha
        self._lock = threading.Lock()
        self._value: Optional[float] = None

    def record(self, service_s: float) -> None:
        with self._lock:
            if self._value is None:
                self._value = service_s
            else:
                self._value += self._alpha * (service_s - self._value)

    def prime(self, service_s: float) -> None:
        """Seed the average (e.g. from a closed-loop warmup measurement)
        so the first open-loop burst is shed against a real estimate."""
        with self._lock:
            self._value = service_s

    @property
    def value(self) -> Optional[float]:
        with self._lock:
            return self._value


@dataclass(frozen=True)
class AdmissionTicket:
    """One admitted request's timestamps (monotonic-clock seconds)."""

    admitted_at: float
    deadline_at: Optional[float]  # absolute, on the controller's clock
    deadline_s: Optional[float]  # the original relative budget


class AdmissionController:
    """Synchronous admission bookkeeping shared by the async front-end.

    The controller owns the queue-depth counter, the shedding estimate,
    and the typed refusals; the front-end owns the actual waiting (an
    ``asyncio.Semaphore``) and the backend dispatch.  Keeping the
    decision logic synchronous makes it directly unit-testable with a
    fake clock.
    """

    def __init__(
        self,
        config: ServingConfig,
        obs=None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config
        self.obs = obs
        self._clock = clock
        self.ewma = ServiceTimeEWMA(config.ewma_alpha)
        self._lock = threading.Lock()
        self._queued = 0  # admitted, not yet finished dispatching

    # -- introspection --------------------------------------------------
    @property
    def queue_depth(self) -> int:
        with self._lock:
            return self._queued

    def estimated_wait_s(self, queued: Optional[int] = None) -> float:
        """Expected wait before a request admitted *now* would dispatch:
        its queue position spread over the permit slots, plus its own
        service time, scaled by the observed service-time EWMA.  Zero
        until the EWMA has a sample (nothing is shed blind)."""
        service = self.ewma.value
        if service is None:
            return 0.0
        if queued is None:
            queued = self.queue_depth
        rounds = queued / self.config.max_concurrency + 1.0
        return rounds * service

    # -- the admission decision -----------------------------------------
    def admit(self, deadline_s: Optional[float] = None) -> AdmissionTicket:
        """Admit one request or raise a typed refusal.

        Raises :class:`RejectedError` when the bounded queue is full,
        :class:`ShedError` when shedding is on and the estimated wait
        (with headroom) exceeds the request's deadline budget.  On
        success the queue-depth counter includes the new request; every
        ticket must be retired via :meth:`dispatch` or :meth:`abandon`.
        """
        config = self.config
        if deadline_s is None:
            deadline_s = config.default_deadline_s
        now = self._clock()
        with self._lock:
            queued = self._queued
            if queued >= config.queue_capacity:
                raise RejectedError(queued, config.queue_capacity)
            if config.shed and deadline_s is not None:
                estimate = self.estimated_wait_s(queued)
                if estimate * config.shed_headroom > deadline_s:
                    raise ShedError(estimate, deadline_s, stage="admission")
            self._queued = queued + 1
            depth = self._queued
        if self.obs is not None:
            self.obs.observe_queue_depth(depth)
        return AdmissionTicket(
            admitted_at=now,
            deadline_at=now + deadline_s if deadline_s is not None else None,
            deadline_s=deadline_s,
        )

    def dispatch(self, ticket: AdmissionTicket) -> Optional[float]:
        """Retire a ticket into execution: record its queue wait and
        return the remaining deadline budget (``None`` = unbounded).

        Raises :class:`ShedError` (``stage='dispatch'``) when the budget
        ran out while the request waited for a permit — the queue slot is
        released either way.
        """
        now = self._clock()
        self._release()
        wait_s = max(0.0, now - ticket.admitted_at)
        if self.obs is not None:
            self.obs.observe_queue_wait(wait_s)
        if ticket.deadline_at is None:
            return None
        remaining = ticket.deadline_at - now
        if self.config.shed and remaining <= 0:
            raise ShedError(wait_s, max(0.0, remaining), stage="dispatch")
        # Without shedding the backend still gets a floor of the budget:
        # a non-positive remaining would instantly expire the fan-out.
        return max(remaining, 1e-4)

    def abandon(self, ticket: AdmissionTicket) -> None:
        """Release an admitted request that never dispatched (the wait
        was cancelled or errored) — queue accounting must not leak."""
        self._release()

    def _release(self) -> None:
        with self._lock:
            self._queued -= 1
            depth = self._queued
        if self.obs is not None:
            self.obs.observe_queue_depth(depth)

    def observe_service(self, service_s: float) -> None:
        self.ewma.record(service_s)
