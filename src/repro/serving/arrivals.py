"""Seeded open-loop arrival processes for the serving front-end.

Closed-loop load (submit a batch, wait) cannot overload a service: the
generator slows down exactly when the service does.  Open-loop load
arrives on its own schedule — requests keep coming whether or not the
fleet is keeping up — which is what production traffic does and what the
admission/shedding machinery in :mod:`repro.serving.frontend` exists to
survive.

Every process here is deterministic given its seed: :meth:`times`
returns the full arrival schedule (offsets in seconds from the start of
the run) up front, so a bench re-run replays the identical workload and
two configurations under comparison see the same bursts.

Shapes
------
* :class:`PoissonArrivals` — homogeneous Poisson at ``rate_qps``
  (i.i.d. exponential gaps): the memoryless baseline.
* :class:`DiurnalArrivals` — a raised-cosine rate curve between
  ``low_qps`` and ``high_qps`` with period ``period_s`` (a day compressed
  to seconds); mean rate is the midpoint.
* :class:`SquareWaveArrivals` — alternating quiet/burst plateaus
  (``low_qps`` / ``high_qps``, duty-cycled), the adversarial shape for
  admission control: the burst's leading edge is a step, not a ramp.

The non-homogeneous shapes sample by thinning (Lewis & Shedler): draw
candidate arrivals at the peak rate and keep each with probability
``rate(t) / peak``.  Exact for any bounded rate function, and the
candidate stream stays reproducible because acceptance consumes draws
from the same seeded generator.
"""

from __future__ import annotations

import math
import random
from typing import List

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "DiurnalArrivals",
    "SquareWaveArrivals",
    "ARRIVAL_KINDS",
    "arrival_process",
]


class ArrivalProcess:
    """Base class: a seeded generator of arrival-time offsets."""

    name = "base"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    # -- the rate curve (QPS at offset t) -------------------------------
    def rate(self, t: float) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def peak_rate(self) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def mean_rate(self) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    # -- sampling -------------------------------------------------------
    def times(self, duration_s: float) -> List[float]:
        """All arrival offsets in ``[0, duration_s)``, ascending.

        Thinning against :meth:`peak_rate`; a fresh ``random.Random``
        seeded from :attr:`seed` per call, so repeated calls return the
        identical schedule.
        """
        peak = self.peak_rate()
        if peak <= 0 or duration_s <= 0:
            return []
        rng = random.Random(self.seed)
        out: List[float] = []
        t = 0.0
        while True:
            t += rng.expovariate(peak)
            if t >= duration_s:
                return out
            if rng.random() * peak <= self.rate(t):
                out.append(t)


class PoissonArrivals(ArrivalProcess):
    """Homogeneous Poisson arrivals at ``rate_qps``."""

    name = "poisson"

    def __init__(self, rate_qps: float, seed: int = 0) -> None:
        if rate_qps < 0:
            raise ValueError("rate_qps must be >= 0")
        super().__init__(seed)
        self.rate_qps = rate_qps

    def rate(self, t: float) -> float:
        return self.rate_qps

    def peak_rate(self) -> float:
        return self.rate_qps

    def mean_rate(self) -> float:
        return self.rate_qps


class DiurnalArrivals(ArrivalProcess):
    """Raised-cosine diurnal curve: trough at ``t=0``, peak at half the
    period.  ``rate(t) = low + (high-low) · (1 - cos(2πt/T)) / 2``."""

    name = "diurnal"

    def __init__(
        self,
        low_qps: float,
        high_qps: float,
        period_s: float,
        seed: int = 0,
    ) -> None:
        if not 0 <= low_qps <= high_qps:
            raise ValueError("need 0 <= low_qps <= high_qps")
        if period_s <= 0:
            raise ValueError("period_s must be > 0")
        super().__init__(seed)
        self.low_qps = low_qps
        self.high_qps = high_qps
        self.period_s = period_s

    def rate(self, t: float) -> float:
        phase = (1.0 - math.cos(2.0 * math.pi * t / self.period_s)) / 2.0
        return self.low_qps + (self.high_qps - self.low_qps) * phase

    def peak_rate(self) -> float:
        return self.high_qps

    def mean_rate(self) -> float:
        return (self.low_qps + self.high_qps) / 2.0


class SquareWaveArrivals(ArrivalProcess):
    """Alternating plateaus: ``high_qps`` for the first ``duty`` fraction
    of each period, ``low_qps`` for the rest.  The burst arrives as a
    step — no ramp for the EWMA to anticipate."""

    name = "square"

    def __init__(
        self,
        low_qps: float,
        high_qps: float,
        period_s: float,
        duty: float = 0.5,
        seed: int = 0,
    ) -> None:
        if not 0 <= low_qps <= high_qps:
            raise ValueError("need 0 <= low_qps <= high_qps")
        if period_s <= 0:
            raise ValueError("period_s must be > 0")
        if not 0.0 < duty < 1.0:
            raise ValueError("duty must be in (0, 1)")
        super().__init__(seed)
        self.low_qps = low_qps
        self.high_qps = high_qps
        self.period_s = period_s
        self.duty = duty

    def rate(self, t: float) -> float:
        in_burst = (t % self.period_s) < self.duty * self.period_s
        return self.high_qps if in_burst else self.low_qps

    def peak_rate(self) -> float:
        return self.high_qps

    def mean_rate(self) -> float:
        return self.duty * self.high_qps + (1.0 - self.duty) * self.low_qps


#: Shapes the factory (and the CLI's ``--arrivals``) accepts.
ARRIVAL_KINDS = ("poisson", "diurnal", "square")


def arrival_process(
    kind: str,
    rate_qps: float,
    seed: int = 0,
    period_s: float = 4.0,
    swing: float = 0.5,
) -> ArrivalProcess:
    """Build an arrival process with **mean** rate ``rate_qps``.

    The time-varying shapes oscillate between ``(1-swing)`` and
    ``(1+swing)`` times the mean (the square wave at 50% duty), so
    sweeping ``rate_qps`` moves every shape's offered load identically —
    the bench's saturation point means the same thing for all three.
    """
    if kind == "poisson":
        return PoissonArrivals(rate_qps, seed=seed)
    if not 0.0 <= swing <= 1.0:
        raise ValueError("swing must be in [0, 1]")
    low = rate_qps * (1.0 - swing)
    high = rate_qps * (1.0 + swing)
    if kind == "diurnal":
        return DiurnalArrivals(low, high, period_s, seed=seed)
    if kind == "square":
        return SquareWaveArrivals(low, high, period_s, duty=0.5, seed=seed)
    raise ValueError(f"unknown arrival kind {kind!r} (want one of {ARRIVAL_KINDS})")
