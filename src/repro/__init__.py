"""repro — a reproduction of "Towards Efficient Search for Activity
Trajectories" (Zheng, Shang, Yuan, Yang; ICDE 2013).

The library implements activity-trajectory similarity search end to end:

* the data model (activity trajectories over a frequency-ordered activity
  vocabulary) and a synthetic Foursquare-like check-in generator with
  LA/NY presets mirroring the paper's Table IV;
* the **GAT** hybrid grid index — HICL, ITL, TAS and APL — with a
  simulated two-tier memory/disk layout;
* exact algorithms for the minimum match distance (Algorithm 3) and the
  minimum order-sensitive match distance (Algorithm 4);
* the best-first search engine — a **stateless staged pipeline**
  (candidate retrieval → TAS/APL/MIB validation filters → scoring) with
  the tight unseen-trajectory lower bound (Algorithms 1-2), answering
  **ATSQ** and **OATSQ** top-k queries;
* a concurrent **QueryService** that batches queries over one shared
  engine with thread-pooled fan-out, shared LRU caches, and aggregate
  serving statistics (QPS, latency percentiles, cache hit rates);
* a **sharded subsystem** (:mod:`repro.shard`) — trajectory-partitioned
  per-shard GAT indexes behind a :class:`ShardedQueryService` that fans
  queries out over threads or a process pool and k-way merges the ranked
  lists, byte-identical to the single index — with optional replication,
  and fault-tolerant serving (:class:`FaultPolicy` deadlines / retries /
  hedges, circuit-breaking replica failover, a self-healing process
  fleet) exercised by the seedable fault injection in
  :mod:`repro.faults`;
* the paper's three baselines (IL, RT, IRT) over from-scratch inverted
  lists, an R-tree and an IR-tree;
* a unified observability layer (:mod:`repro.obs`) — per-query span
  trees, a sharded metric registry fed by the serving stack, and
  JSONL/Prometheus exporters — attached to any service via
  ``obs=Observability.enabled()``;
* an overload-resilient **open-loop serving front-end**
  (:mod:`repro.serving`) — an asyncio admission layer over any query
  service with a bounded queue, SLO-aware load shedding, deadline
  propagation into the fault policy, seeded Poisson/diurnal/burst
  arrival processes, and a goodput-centric open-loop load driver.

Quickstart — single query
-------------------------
>>> from repro import dataset_from_preset, GATIndex, GATSearchEngine, Query
>>> db = dataset_from_preset("la", scale=0.01)
>>> engine = GATSearchEngine(GATIndex.build(db))
>>> some_tr = db.trajectories[0]
>>> q = Query.from_named(db.vocabulary, [
...     (some_tr[0].x, some_tr[0].y,
...      [db.vocabulary.name_of(next(iter(some_tr.activity_union)))]),
... ])
>>> results = engine.atsq(q, k=3)

Quickstart — batched serving
----------------------------
One engine serves many queries concurrently; responses come back in
request order, bitwise-identical to a sequential loop:

>>> from repro import QueryService
>>> service = QueryService(engine, max_workers=8)
>>> responses = service.search_many([q, q, q], k=3)
>>> [r.results[0].trajectory_id for r in responses]  # doctest: +SKIP
>>> service.stats().qps  # doctest: +SKIP
"""

from repro.model import (
    ActivityTrajectory,
    TrajectoryDatabase,
    TrajectoryPoint,
    Vocabulary,
    EuclideanDistance,
    HaversineDistance,
    MatrixDistance,
)
from repro.core import (
    EngineConfig,
    ExecutionContext,
    GATSearchEngine,
    MatchEvaluator,
    Query,
    QueryPoint,
    SearchResult,
    SearchStats,
    minimum_point_match_distance,
    minimum_order_match_distance,
)
from repro.service import QueryRequest, QueryResponse, QueryService, ServiceStats
from repro.shard import (
    BreakerConfig,
    FaultPolicy,
    ReplicatedShardedService,
    ShardedGATIndex,
    ShardedQueryService,
    ShardRouter,
)
from repro.obs import Observability
from repro.serving import (
    ExpiredError,
    RejectedError,
    ServingConfig,
    ServingFrontend,
    ShedError,
)
from repro.index import GATIndex, InvertedIndex, IRTree, RTree
from repro.index.gat.index import GATConfig
from repro.baselines import InvertedListSearch, IRTreeSearch, RTreeSearch
from repro.data import dataset_from_preset, CheckInGenerator, GeneratorConfig

__version__ = "1.0.0"

__all__ = [
    "ActivityTrajectory",
    "TrajectoryDatabase",
    "TrajectoryPoint",
    "Vocabulary",
    "EuclideanDistance",
    "HaversineDistance",
    "MatrixDistance",
    "Query",
    "QueryPoint",
    "SearchResult",
    "MatchEvaluator",
    "minimum_point_match_distance",
    "minimum_order_match_distance",
    "GATIndex",
    "GATConfig",
    "GATSearchEngine",
    "EngineConfig",
    "SearchStats",
    "ExecutionContext",
    "QueryService",
    "QueryRequest",
    "QueryResponse",
    "ServiceStats",
    "ShardRouter",
    "ShardedGATIndex",
    "ShardedQueryService",
    "ReplicatedShardedService",
    "FaultPolicy",
    "BreakerConfig",
    "Observability",
    "ServingFrontend",
    "ServingConfig",
    "RejectedError",
    "ShedError",
    "ExpiredError",
    "InvertedIndex",
    "RTree",
    "IRTree",
    "InvertedListSearch",
    "RTreeSearch",
    "IRTreeSearch",
    "dataset_from_preset",
    "CheckInGenerator",
    "GeneratorConfig",
    "__version__",
]
