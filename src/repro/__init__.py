"""repro — a reproduction of "Towards Efficient Search for Activity
Trajectories" (Zheng, Shang, Yuan, Yang; ICDE 2013).

The library implements activity-trajectory similarity search end to end:

* the data model (activity trajectories over a frequency-ordered activity
  vocabulary) and a synthetic Foursquare-like check-in generator with
  LA/NY presets mirroring the paper's Table IV;
* the **GAT** hybrid grid index — HICL, ITL, TAS and APL — with a
  simulated two-tier memory/disk layout;
* exact algorithms for the minimum match distance (Algorithm 3) and the
  minimum order-sensitive match distance (Algorithm 4);
* the best-first search engine with the tight unseen-trajectory lower
  bound (Algorithms 1-2), answering **ATSQ** and **OATSQ** top-k queries;
* the paper's three baselines (IL, RT, IRT) over from-scratch inverted
  lists, an R-tree and an IR-tree.

Quickstart
----------
>>> from repro import dataset_from_preset, GATIndex, GATSearchEngine, Query
>>> db = dataset_from_preset("la", scale=0.01)
>>> engine = GATSearchEngine(GATIndex.build(db))
>>> some_tr = db.trajectories[0]
>>> q = Query.from_named(db.vocabulary, [
...     (some_tr[0].x, some_tr[0].y,
...      [db.vocabulary.name_of(next(iter(some_tr.activity_union)))]),
... ])
>>> results = engine.atsq(q, k=3)
"""

from repro.model import (
    ActivityTrajectory,
    TrajectoryDatabase,
    TrajectoryPoint,
    Vocabulary,
    EuclideanDistance,
    HaversineDistance,
    MatrixDistance,
)
from repro.core import (
    GATSearchEngine,
    MatchEvaluator,
    Query,
    QueryPoint,
    SearchResult,
    minimum_point_match_distance,
    minimum_order_match_distance,
)
from repro.index import GATIndex, InvertedIndex, IRTree, RTree
from repro.index.gat.index import GATConfig
from repro.baselines import InvertedListSearch, IRTreeSearch, RTreeSearch
from repro.data import dataset_from_preset, CheckInGenerator, GeneratorConfig

__version__ = "1.0.0"

__all__ = [
    "ActivityTrajectory",
    "TrajectoryDatabase",
    "TrajectoryPoint",
    "Vocabulary",
    "EuclideanDistance",
    "HaversineDistance",
    "MatrixDistance",
    "Query",
    "QueryPoint",
    "SearchResult",
    "MatchEvaluator",
    "minimum_point_match_distance",
    "minimum_order_match_distance",
    "GATIndex",
    "GATConfig",
    "GATSearchEngine",
    "InvertedIndex",
    "RTree",
    "IRTree",
    "InvertedListSearch",
    "RTreeSearch",
    "IRTreeSearch",
    "dataset_from_preset",
    "CheckInGenerator",
    "GeneratorConfig",
    "__version__",
]
