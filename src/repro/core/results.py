"""Top-k result collection shared by every searcher."""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass(frozen=True, slots=True)
class SearchResult:
    """One ranked trajectory.

    ``matches`` is optional reconstruction detail: for ATSQ a tuple of
    position tuples (one per query point, the minimum point match); for
    OATSQ the order-sensitive assignment.  Populated only when the caller
    asked to ``explain`` — reconstruction costs extra work.
    """

    trajectory_id: int
    distance: float
    matches: Optional[Tuple[Tuple[int, ...], ...]] = None


class TopKCollector:
    """Bounded max-heap of the best (smallest-distance) k trajectories.

    Ties are broken by trajectory ID so result ordering is deterministic
    across searchers (needed by the cross-method agreement tests).
    """

    __slots__ = ("k", "_heap", "_members")

    def __init__(self, k: int) -> None:
        if k <= 0:
            raise ValueError("k must be positive")
        self.k = k
        # Max-heap via negated keys: worst kept entry on top.
        self._heap: List[Tuple[float, int, SearchResult]] = []
        self._members: set[int] = set()

    def __len__(self) -> int:
        return len(self._heap)

    def __contains__(self, trajectory_id: int) -> bool:
        return trajectory_id in self._members

    def offer(self, result: SearchResult) -> bool:
        """Consider *result*; returns True when it entered the top-k.

        A trajectory already present is never re-offered (searchers
        deduplicate, this is a safety net that keeps results distinct as
        the query definition demands).
        """
        if result.trajectory_id in self._members or math.isinf(result.distance):
            return False
        key = (-result.distance, -result.trajectory_id)
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, (key[0], key[1], result))
            self._members.add(result.trajectory_id)
            return True
        worst_key = (self._heap[0][0], self._heap[0][1])
        if key > worst_key:  # smaller distance (keys are negated)
            _, _, evicted = heapq.heapreplace(self._heap, (key[0], key[1], result))
            self._members.discard(evicted.trajectory_id)
            self._members.add(result.trajectory_id)
            return True
        return False

    def kth_distance(self) -> float:
        """The current k-th smallest distance (``D^k_mm`` / ``D^k_mom``), or
        ``inf`` while fewer than k results are held — the pruning threshold
        of Algorithm 1."""
        if len(self._heap) < self.k:
            return math.inf
        return -self._heap[0][0]

    def results(self) -> List[SearchResult]:
        """Final ranking: ascending distance, ties by trajectory ID."""
        return sorted(
            (entry[2] for entry in self._heap),
            key=lambda r: (r.distance, r.trajectory_id),
        )
