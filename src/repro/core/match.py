"""Minimum point match distance — Algorithm 3 of the paper (Section V-D).

Given a query point ``q`` with activity set ``q.Φ`` and a candidate
trajectory, the *minimum point match* is the cheapest set of trajectory
points whose activity union covers ``q.Φ``, where the cost of a set is the
sum of its points' distances to ``q`` (Definitions 3-4).  This is a
min-cost set-cover over a tiny universe (``|q.Φ|`` is 1-5 in the paper), so
exponential-in-``|q.Φ|`` state is fine while the number of candidate points
can be large.

The paper's algorithm keeps a hash table ``H`` mapping each *subset of the
query activity set* to the best cover cost found so far, processes candidate
points in ascending distance order, and terminates early as soon as the
full-set entry is at most the distance of the next unprocessed point (any
cover using that point or a farther one costs at least that much on its
own).

Implementation notes
--------------------
* Activity subsets are represented as bitmasks over the query's activities
  (``q.Φ`` is re-indexed to bits 0..n-1).  :meth:`PointMatchTable.snapshot`
  translates back to frozensets so tests can compare against the hash-table
  states printed in the paper's Table II.
* :class:`PointMatchTable` is *incremental*: points may be added in any
  order and ``best()`` is exact after every addition.  Algorithm 4 (the
  order-sensitive DP) exploits this by extending sub-trajectories one point
  at a time — "the evaluation of Dmpm can be done incrementally since only
  one more point is added to Tr[k, j] each time" (Section VI-C).
  Ascending-distance order is *only* needed for the early-termination rule,
  which lives in :func:`minimum_point_match_distance`, not in the table.
* Two brute-force oracles (`*_oracle` functions) back the property-based
  tests: a textbook increasing-mask set-cover DP and an explicit
  enumeration over point subsets.
"""

from __future__ import annotations

import math
from collections import deque
from itertools import combinations
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.model.distance import DistanceMetric
from repro.model.point import TrajectoryPoint

Coord = Tuple[float, float]

INFINITY = math.inf


class PointMatchTable:
    """The hash table ``H`` of Algorithm 3, with exact incremental updates.

    Parameters
    ----------
    query_activities:
        ``q.Φ`` as an iterable of activity IDs.  Order of iteration fixes
        the bit assignment (only relevant for internals).
    track_matches:
        When true, parent pointers are kept so :meth:`match_positions` can
        reconstruct *which* points realise the minimum point match (used by
        the ``explain=True`` query API and by tests).
    """

    __slots__ = ("_bit_of", "_activity_of_bit", "n_bits", "full_mask", "_h", "_parent")

    def __init__(self, query_activities: Iterable[int], track_matches: bool = False) -> None:
        activities = list(dict.fromkeys(query_activities))
        if not activities:
            raise ValueError("query activity set must be non-empty")
        self._bit_of: Dict[int, int] = {a: i for i, a in enumerate(activities)}
        self._activity_of_bit: List[int] = activities
        self.n_bits = len(activities)
        self.full_mask = (1 << self.n_bits) - 1
        self._h: Dict[int, float] = {}
        # parent[mask] is either ("pt", payload) — mask covered by a single
        # point — or ("combo", s, ks) — mask = s | ks via line 19.
        self._parent: Optional[Dict[int, tuple]] = {} if track_matches else None

    # ------------------------------------------------------------------
    # Mask helpers
    # ------------------------------------------------------------------
    def overlap_mask(self, activities: FrozenSet[int]) -> int:
        """Bitmask of ``activities ∩ q.Φ`` (``p.Φ'`` in the paper)."""
        bit_of = self._bit_of
        mask = 0
        for a in activities:
            bit = bit_of.get(a)
            if bit is not None:
                mask |= 1 << bit
        return mask

    def mask_to_set(self, mask: int) -> FrozenSet[int]:
        """Translate a bitmask back to the activity-ID subset it denotes."""
        return frozenset(
            self._activity_of_bit[i] for i in range(self.n_bits) if mask & (1 << i)
        )

    # ------------------------------------------------------------------
    # Core update (lines 7-19 of Algorithm 3, for one point)
    # ------------------------------------------------------------------
    def add(self, mask: int, dist: float, payload=None) -> None:
        """Fold one candidate point (overlap *mask*, distance *dist*) in.

        Follows the paper: push ``p.Φ'`` onto a FIFO queue; for every popped
        subset ``ks`` that improves, record it, enqueue its
        ``(|ks|-1)``-sized subsets, and combine it with every other entry of
        ``H`` that is neither a subset nor a superset.
        """
        if mask == 0:
            return
        h = self._h
        parent = self._parent
        queue: deque[int] = deque((mask,))
        while queue:
            ks = queue.popleft()
            if h.get(ks, INFINITY) <= dist:
                # A better (or equal) cover of ks exists; its subsets are
                # at least as good too (paper line 11-12).
                continue
            h[ks] = dist
            if parent is not None:
                parent[ks] = ("pt", payload)
            # Enqueue all subsets of ks with one fewer activity (line 15).
            bits = ks
            while bits:
                low = bits & (-bits)
                sub = ks & ~low
                if sub:
                    queue.append(sub)
                bits &= bits - 1
            # Combine ks with every incomparable existing key (lines 16-19).
            d_ks = h[ks]
            for s, d_s in list(h.items()):
                if (s & ks) == s or (s & ks) == ks:
                    continue  # subset or superset of ks — skip (line 17)
                key = s | ks
                combined = d_s + d_ks
                if combined < h.get(key, INFINITY):
                    h[key] = combined
                    if parent is not None:
                        parent[key] = ("combo", s, ks)

    def add_point(
        self,
        point: TrajectoryPoint,
        dist: float,
        payload=None,
    ) -> None:
        """Convenience: compute the overlap mask of *point* and :meth:`add`."""
        self.add(self.overlap_mask(point.activities), dist, payload)

    # ------------------------------------------------------------------
    # Queries on the table
    # ------------------------------------------------------------------
    def best(self) -> float:
        """``H[q.Φ]`` — the minimum point match distance so far (inf if the
        points added so far cannot cover the query activities)."""
        return self._h.get(self.full_mask, INFINITY)

    def best_for(self, mask: int) -> float:
        return self._h.get(mask, INFINITY)

    def snapshot(self) -> Dict[FrozenSet[int], float]:
        """Current ``H`` keyed by activity-ID subsets (Table II's notation)."""
        return {self.mask_to_set(mask): dist for mask, dist in self._h.items()}

    def match_positions(self) -> Tuple:
        """Payloads of the points realising ``best()``.

        Requires ``track_matches=True``.  Payloads are deduplicated, so the
        result is the *set* of points of the minimum point match.
        """
        if self._parent is None:
            raise RuntimeError("construct the table with track_matches=True")
        if self.full_mask not in self._h:
            return ()
        payloads: List = []
        stack = [self.full_mask]
        while stack:
            mask = stack.pop()
            entry = self._parent[mask]
            if entry[0] == "pt":
                payloads.append(entry[1])
            else:
                _tag, s, ks = entry
                stack.append(s)
                stack.append(ks)
        seen = set()
        unique = []
        for p in payloads:
            if p not in seen:
                seen.add(p)
                unique.append(p)
        return tuple(unique)


# ----------------------------------------------------------------------
# Algorithm 3 proper: sorted scan with early termination
# ----------------------------------------------------------------------
def candidate_points(
    trajectory_points: Sequence[TrajectoryPoint],
    query_activities: FrozenSet[int],
) -> List[Tuple[int, TrajectoryPoint]]:
    """``CP`` — the (position, point) pairs sharing ≥1 activity with ``q.Φ``.

    In the full system this set comes from the trajectory's Activity
    Posting Lists; this helper is the from-first-principles equivalent used
    when the points are already in hand.
    """
    return [
        (pos, p)
        for pos, p in enumerate(trajectory_points)
        if not p.activities.isdisjoint(query_activities)
    ]


def minimum_point_match_distance(
    query_coord: Coord,
    query_activities: FrozenSet[int],
    points: Iterable[Tuple[int, TrajectoryPoint]],
    metric: DistanceMetric,
    trace: Optional[List[Dict[FrozenSet[int], float]]] = None,
) -> float:
    """``Dmpm(q, Tr)`` via Algorithm 3.

    Parameters
    ----------
    query_coord, query_activities:
        The query point ``q`` and its ``q.Φ``.
    points:
        ``(position, point)`` pairs of the candidate point set ``CP`` (any
        order; they are sorted by distance here, as in line 2).
    metric:
        Distance strategy (Euclidean in production, matrix-backed in the
        paper-example tests).
    trace:
        When a list is supplied, a snapshot of ``H`` is appended after each
        processed point — this reproduces the rows of the paper's Table II.

    Returns
    -------
    The minimum point match distance, or ``inf`` when no point match exists.
    """
    table = PointMatchTable(query_activities)
    scored = sorted(
        ((metric(query_coord, p.coord), pos, p) for pos, p in points),
        key=lambda t: (t[0], t[1]),
    )
    for dist, pos, point in scored:
        if table.best() <= dist:
            break  # early termination (lines 5-6)
        table.add(table.overlap_mask(point.activities), dist, payload=pos)
        if trace is not None:
            trace.append(table.snapshot())
    return table.best()


def minimum_point_match(
    query_coord: Coord,
    query_activities: FrozenSet[int],
    points: Iterable[Tuple[int, TrajectoryPoint]],
    metric: DistanceMetric,
) -> Tuple[float, Tuple[int, ...]]:
    """Like :func:`minimum_point_match_distance` but also reconstructs the
    positions of the matched points (``Tr.MPM(q)``), sorted ascending."""
    table = PointMatchTable(query_activities, track_matches=True)
    scored = sorted(
        ((metric(query_coord, p.coord), pos, p) for pos, p in points),
        key=lambda t: (t[0], t[1]),
    )
    for dist, pos, point in scored:
        if table.best() <= dist:
            break
        table.add(table.overlap_mask(point.activities), dist, payload=pos)
    if table.best() is INFINITY or table.best() == INFINITY:
        return INFINITY, ()
    return table.best(), tuple(sorted(table.match_positions()))


# ----------------------------------------------------------------------
# Oracles (test-only reference implementations)
# ----------------------------------------------------------------------
def mpm_oracle_mask_dp(
    scored_points: Sequence[Tuple[float, FrozenSet[int]]],
    query_activities: FrozenSet[int],
) -> float:
    """Textbook exact min-cost set-cover DP in increasing-mask order.

    ``dp[mask]`` = cheapest cost to cover exactly the activities in
    ``mask``; transitions consider every point from every mask.  O(2^n * P)
    and obviously correct — the gold standard the paper's Algorithm 3 is
    tested against.
    """
    activities = sorted(query_activities)
    bit_of = {a: i for i, a in enumerate(activities)}
    full = (1 << len(activities)) - 1
    point_masks: List[Tuple[float, int]] = []
    for dist, acts in scored_points:
        mask = 0
        for a in acts:
            if a in bit_of:
                mask |= 1 << bit_of[a]
        if mask:
            point_masks.append((dist, mask))
    dp = [INFINITY] * (full + 1)
    dp[0] = 0.0
    for mask in range(full + 1):
        if dp[mask] is INFINITY or dp[mask] == INFINITY:
            continue
        base = dp[mask]
        for dist, pmask in point_masks:
            nxt = mask | pmask
            if base + dist < dp[nxt]:
                dp[nxt] = base + dist
    return dp[full]


def mpm_oracle_subset_enum(
    scored_points: Sequence[Tuple[float, FrozenSet[int]]],
    query_activities: FrozenSet[int],
    max_points: int = 14,
) -> float:
    """Explicit enumeration over subsets of candidate points.

    Exponential in the number of points; the test suite only calls it on
    small inputs.  Definitionally identical to Definition 4.
    """
    pts = list(scored_points)
    if len(pts) > max_points:
        raise ValueError(f"subset enumeration capped at {max_points} points")
    best = INFINITY
    target = set(query_activities)
    for r in range(1, len(pts) + 1):
        for combo in combinations(pts, r):
            covered: set[int] = set()
            cost = 0.0
            for dist, acts in combo:
                covered |= acts
                cost += dist
            if target <= covered and cost < best:
                best = cost
    return best
