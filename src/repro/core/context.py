"""Per-query execution state.

The engine object itself holds only immutable configuration and index
references; everything mutable that one query needs — work counters, the
top-k collector, the evaluator with its own counters, and the running
distance threshold — lives in an :class:`ExecutionContext` created per
call.  That is what makes one engine safe to share between concurrent
queries: two contexts never touch the same mutable state.
"""

from __future__ import annotations

from dataclasses import MISSING, dataclass, field, fields
from typing import Callable, List, Optional

from repro.core.evaluator import MatchEvaluator
from repro.core.query import Query
from repro.core.results import SearchResult, TopKCollector


@dataclass(slots=True)
class SearchStats:
    """Work counters for one query execution."""

    rounds: int = 0
    cells_popped: int = 0
    leaf_cells_visited: int = 0
    candidates_retrieved: int = 0
    tas_pruned: int = 0
    apl_pruned: int = 0
    mib_pruned: int = 0
    validated: int = 0
    distance_computations: int = 0
    disk_reads: int = 0
    disk_pages_read: int = 0

    def reset(self) -> None:
        """Restore every counter to its declared default.

        Driven by :func:`dataclasses.fields` so a newly added counter can
        never be silently missed here (``default_factory`` fields are
        rebuilt, not set to the MISSING sentinel).
        """
        for f in fields(self):
            if f.default_factory is not MISSING:
                setattr(self, f.name, f.default_factory())
            else:
                setattr(self, f.name, f.default)

    def merge(self, other: "SearchStats") -> None:
        """Accumulate another execution's counters into this one.

        Field-driven like :meth:`reset` so new counters can never be
        silently dropped from an aggregate.  Used by the sharded fan-out
        to sum per-shard work into one query-level view; each shard runs
        on its own disk and caches, so plain summation never double-counts.
        """
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    @classmethod
    def merged(cls, parts: "list[SearchStats]") -> "SearchStats":
        """A fresh :class:`SearchStats` holding the sum of *parts*."""
        total = cls()
        for part in parts:
            total.merge(part)
        return total


@dataclass(slots=True)
class ExecutionContext:
    """Everything mutable about one query's execution.

    Built by :meth:`~repro.core.engine.GATSearchEngine.execute`; the
    pipeline stages write their counters into ``stats`` and their results
    into ``results``, and the finished context is returned to the caller
    (``ranked`` carries the final ordering, ``latency_s`` the wall time).
    """

    query: Query
    k: int
    order_sensitive: bool
    evaluator: MatchEvaluator
    explain: bool = False
    stats: SearchStats = field(default_factory=SearchStats)
    results: TopKCollector = field(init=False)
    ranked: Optional[List[SearchResult]] = None
    latency_s: float = 0.0
    #: Optional external pruning threshold (a callable returning the
    #: current k-th best distance over a *wider* candidate population,
    #: e.g. the cross-shard merged top-k).  Sound whenever that population
    #: is a superset of this execution's own: any candidate worse than the
    #: wider k-th can never reach the wider top-k, so pruning against
    #: ``min(local, external)`` loses nothing the caller cares about.
    external_threshold: Optional[Callable[[], float]] = None
    #: Optional tracing span this execution reports into (a
    #: :class:`repro.obs.trace.Span`).  ``None`` — the default — means no
    #: tracing; the engine then skips every stage-timing branch, keeping
    #: the untraced hot path free of instrumentation cost.
    trace_span: Optional[object] = None

    def __post_init__(self) -> None:
        self.results = TopKCollector(self.k)

    @property
    def query_activities(self):
        """The union of activities over all query points (``Q.Φ``)."""
        return self.query.all_activities

    @property
    def block_scoring(self) -> bool:
        """True when this execution's evaluator runs the round-batched
        block kernel — the engine then scores each validation round
        through :meth:`~repro.core.pipeline.ScoringStage.score_batch`
        instead of one evaluator call per candidate."""
        return self.evaluator.kernel == "block"

    def threshold(self) -> float:
        """The current k-th best distance — the running pruning threshold
        of Algorithm 1 (``inf`` until k results are held), tightened by
        the external threshold when one is wired in."""
        local = self.results.kth_distance()
        if self.external_threshold is None:
            return local
        return min(local, self.external_threshold())
