"""Lower bound for "unseen" trajectories — Algorithm 2 (Section V-B).

During candidate retrieval the engine must know how good a trajectory it
has *not* seen yet could possibly be.  The trivial bound (the ``mdist`` at
the top of the priority queue) "is too loose to be useful in practice"; the
paper instead keeps, per query point ``q_i``, the sorted frontier of
not-yet-visited cells that contain at least one of ``q_i``'s activities,
and builds a *virtual trajectory* from the ``m`` nearest frontier cells:
one virtual point per cell, carrying the cell's query-activity overlap at
distance ``mdist(q_i, cell)``.  The minimum point match distance over those
virtual points lower-bounds the true ``Dmpm`` of every unseen trajectory,
and is capped by the ``m``-th cell's distance (any match reaching past the
kept cells costs at least that much for a single point).

Soundness at the edges (where the paper's prose is silent):

* when the frontier holds fewer than ``m`` cells there are no dropped
  cells, so the cap is ``+inf`` rather than the last cell's distance;
* when the frontier is *empty*, every cell containing any of ``q_i``'s
  activities has been visited, so every trajectory able to match ``q_i``
  has already been retrieved as a candidate — the contribution for unseen
  trajectories is ``+inf`` (the paper falls back to the queue-top
  ``mdist``; ``+inf`` is both sound and tighter, and makes termination on
  exhausted frontiers immediate).
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Tuple

from repro.core.kernels import min_cover_cost
from repro.core.match import INFINITY
from repro.core.query import Query
from repro.index.gat.hicl import HICL

# A frontier entry: (mdist, level, cell code).
FrontierEntry = Tuple[float, int, int]


class Frontier:
    """Sorted list of not-yet-visited cells for one query point
    (the paper's ``cellsn(q_i)``).

    Kept *complete* (not truncated to ``m``): dropping far cells would make
    the cap unsound once nearer cells are consumed.  ``m`` only limits how
    many cells feed the virtual trajectory.
    """

    __slots__ = ("_entries",)

    def __init__(self) -> None:
        self._entries: List[FrontierEntry] = []

    def add(self, mdist: float, level: int, code: int) -> None:
        bisect.insort(self._entries, (mdist, level, code))

    def remove(self, mdist: float, level: int, code: int) -> None:
        """Remove an entry (no-op when absent, mirroring the paper's
        'remove cellID from cellsn (if it exists)')."""
        idx = bisect.bisect_left(self._entries, (mdist, level, code))
        if idx < len(self._entries) and self._entries[idx] == (mdist, level, code):
            self._entries.pop(idx)

    def nearest(self, m: int) -> List[FrontierEntry]:
        return self._entries[:m]

    def mth_distance(self, m: int) -> float:
        """Distance of the ``m``-th nearest frontier cell, ``+inf`` when the
        frontier is shorter than ``m`` (no dropped cells to guard against)."""
        if len(self._entries) >= m:
            return self._entries[m - 1][0]
        return INFINITY

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)


def lower_bound_distance(
    query: Query,
    frontiers: Dict[int, Frontier],
    hicl: HICL,
    m: int,
) -> float:
    """``D_lb`` — Algorithm 2 summed over all query points.

    Parameters
    ----------
    query:
        The query whose per-point frontiers are maintained by the engine.
    frontiers:
        ``query point index -> Frontier``.
    hicl:
        Supplies each cell's query-activity overlap (the virtual points'
        activity sets, line 6 of Algorithm 2).
    m:
        Number of nearest frontier cells forming the virtual trajectory.
    """
    total = 0.0
    for qi, q in enumerate(query):
        frontier = frontiers[qi]
        if not frontier:
            return INFINITY  # no unseen trajectory can match q_i at all
        # The virtual trajectory's point match, via the kernel set-cover
        # (identical values to a PointMatchTable fed the same entries).
        activities = list(dict.fromkeys(q.activities))
        bit_of = {a: 1 << i for i, a in enumerate(activities)}
        entries: List[Tuple[float, int]] = []
        for mdist, level, code in frontier.nearest(m):
            overlap = hicl.cell_activity_overlap(code, q.activities, level)
            if overlap:
                mask = 0
                for a in overlap:
                    bit = bit_of.get(a)
                    if bit is not None:
                        mask |= bit
                entries.append((mdist, mask))
        cover = min_cover_cost(entries, len(activities))
        contribution = min(cover, frontier.mth_distance(m))
        if contribution == INFINITY:
            return INFINITY
        total += contribution
    return total
