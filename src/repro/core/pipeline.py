"""The staged query pipeline: retrieval → validation → scoring.

Algorithm 1's loop body is factored into three explicit, composable
stages, each stateless apart from what it reads from the index and writes
into the per-query :class:`~repro.core.context.ExecutionContext`:

* :class:`CandidateRetriever` — the best-first priority queue over the
  HICL hierarchy and the leaf ITL lists (Section V-A).  One instance per
  query: it owns the heap, the per-query-point frontiers that feed
  Algorithm 2, and the seen-set.
* :class:`ValidationStage` — an ordered chain of candidate filters, each
  with its own pruning counter on :class:`SearchStats`.  The paper's
  chain is TAS (cheap superset sketch, Section V-C) → APL (exact, one
  counted disk read) → MIB order-feasibility for OATSQ (Section VI-B).
  Ablations compose a different chain instead of branching on flags.
* :class:`ScoringStage` — the evaluator dispatch: ``Dmm`` (Algorithm 3)
  for ATSQ, ``Dmom`` (Algorithm 4, threshold-pruned) for OATSQ.

Filters communicate through the per-candidate :class:`Candidate` record
so expensive loads happen once: the APL filter leaves the fetched posting
lists on the record, the MIB filter the materialised trajectory, and the
scoring stage reuses both.

Validation runs one retrieval round at a time
(:meth:`ValidationStage.admit_batch`): candidates flow filter-by-filter
so a filter exposing a ``prefetch`` hook can batch its I/O — the APL
filter pulls the whole round's posting lists in a single
``fetch_many`` (optionally overlapped on a thread pool).  Per-candidate
semantics, counters, and counted reads are identical to the sequential
:meth:`ValidationStage.admit` path.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.context import ExecutionContext, SearchStats
from repro.core.lower_bound import Frontier
from repro.core.match import INFINITY
from repro.core.order_match import order_feasible
from repro.core.query import Query
from repro.index.gat.apl import APLStore, PostingLists
from repro.index.gat.index import GATIndex
from repro.index.gat.tas import TrajectorySketch
from repro.model.database import TrajectoryDatabase
from repro.model.trajectory import ActivityTrajectory
from repro.storage.cache import LRUCache


@dataclass(slots=True)
class Candidate:
    """One retrieved trajectory flowing through the validation chain.

    Filters attach what they had to load so later stages don't pay twice.
    """

    trajectory_id: int
    posting: Optional[PostingLists] = None
    trajectory: Optional[ActivityTrajectory] = None


# ----------------------------------------------------------------------
# Stage 1 — candidate retrieval (Section V-A)
# ----------------------------------------------------------------------
class CandidateRetriever:
    """Best-first traversal state for one query.

    A single priority queue holds ``(mdist, tiebreak, level, cell,
    query-point index)`` entries across all query points; popping a
    non-leaf cell expands only the children containing at least one of
    that query point's activities, popping a leaf harvests its ITL lists.
    Work counters go to the per-query *stats*, never to shared state.
    """

    __slots__ = ("index", "query", "stats", "heap", "frontiers", "seen", "exhausted", "_tick")

    def __init__(self, index: GATIndex, query: Query, stats: SearchStats) -> None:
        self.index = index
        self.query = query
        self.stats = stats
        self.heap: List[Tuple[float, int, int, int, int]] = []
        self.frontiers: Dict[int, Frontier] = {qi: Frontier() for qi in range(len(query))}
        self.seen: Set[int] = set()
        self.exhausted = False
        self._tick = itertools.count()

        hicl = index.hicl
        grid = index.grid
        for qi, q in enumerate(query):
            for code in hicl.cells_with_any(q.activities, 1):
                mdist = grid.level(1).min_dist(q.coord, code)
                self._push(mdist, 1, code, qi)

    def _push(self, mdist: float, level: int, code: int, qi: int) -> None:
        heapq.heappush(self.heap, (mdist, next(self._tick), level, code, qi))
        self.frontiers[qi].add(mdist, level, code)

    def queue_top_mdist(self) -> float:
        return self.heap[0][0] if self.heap else INFINITY

    def retrieve(self, batch: int, stop_mdist: float = INFINITY) -> List[int]:
        """Pop cells best-first until ``batch`` *new* candidate trajectories
        have been collected (Section V-A), or the queue runs dry.

        *stop_mdist* bounds the expansion: popping stops (entries stay
        queued) once the queue top's MINDIST exceeds it.  Exact whenever
        the bound is a current top-k threshold: a trajectory with
        ``Dmm ≤ τ`` has, for every query point, a matching point whose
        cell chain carries ``mdist ≤ Dmm ≤ τ``, so its discovery entries
        sort *before* anything the bound skips.  The sharded fan-out
        passes the cross-shard merged k-th here; the single-index path
        leaves it at ``inf`` (the paper's loop shape, untouched).
        """
        hicl = self.index.hicl
        itl = self.index.itl
        grid = self.index.grid
        depth = grid.depth
        stats = self.stats
        new_candidates: List[int] = []

        while self.heap and len(new_candidates) < batch:
            if self.heap[0][0] > stop_mdist:
                break
            mdist, _tick, level, code, qi = heapq.heappop(self.heap)
            stats.cells_popped += 1
            q = self.query[qi]
            self.frontiers[qi].remove(mdist, level, code)
            if level < depth:
                child_level = grid.level(level + 1)
                for child in hicl.children_with_any(code, level, q.activities):
                    child_mdist = child_level.min_dist(q.coord, child)
                    self._push(child_mdist, level + 1, child, qi)
            else:
                stats.leaf_cells_visited += 1
                for tid in itl.trajectories_with_any(code, q.activities):
                    if tid not in self.seen:
                        self.seen.add(tid)
                        new_candidates.append(tid)

        if not self.heap:
            self.exhausted = True
        stats.candidates_retrieved += len(new_candidates)
        return new_candidates


# ----------------------------------------------------------------------
# Stage 2 — validation filters (Sections V-C, VI-B)
# ----------------------------------------------------------------------
class TASFilter:
    """Trajectory Activity Sketch superset check — cheap, in memory, no
    false dismissals (Section V-C)."""

    stat_field = "tas_pruned"
    __slots__ = ("sketches",)

    def __init__(self, sketches: Dict[int, TrajectorySketch]) -> None:
        self.sketches = sketches

    def admits(self, ctx: ExecutionContext, candidate: Candidate) -> bool:
        return self.sketches[candidate.trajectory_id].covers_all(ctx.query_activities)


class APLFilter:
    """Exact coverage check against the trajectory's Activity Posting
    Lists — one counted disk read, served from the engine's LRU when the
    trajectory is hot (Section V-C).

    Implements the batched-I/O hook: :meth:`prefetch` pulls the posting
    lists of a whole validation round through
    :meth:`~repro.index.gat.apl.APLStore.fetch_many` — one cache pass,
    grouped simulated-disk reads, optionally overlapped on *executor* —
    before the per-candidate checks run.  The per-candidate fetch count
    is unchanged (one per candidate reaching this filter), so disk-read
    accounting is identical to the unbatched path.
    """

    stat_field = "apl_pruned"
    __slots__ = ("apl", "cache", "executor")

    def __init__(
        self, apl: APLStore, cache: Optional[LRUCache] = None, executor=None
    ) -> None:
        self.apl = apl
        self.cache = cache
        self.executor = executor

    def prefetch(self, ctx: ExecutionContext, candidates: Sequence[Candidate]) -> None:
        tids = [c.trajectory_id for c in candidates if c.posting is None]
        if not tids:
            return
        fetched = self.apl.fetch_many(tids, self.cache, executor=self.executor)
        for c in candidates:
            if c.posting is None:
                c.posting = fetched[c.trajectory_id]

    def admits(self, ctx: ExecutionContext, candidate: Candidate) -> bool:
        if candidate.posting is None:
            candidate.posting = self.apl.fetch_cached(
                candidate.trajectory_id, self.cache
            )
        return APLStore.covers_query(candidate.posting, ctx.query_activities)


class MIBFilter:
    """Maximum-index-based order feasibility for OATSQ (Section VI-B):
    reject candidates that cannot match the query points in order."""

    stat_field = "mib_pruned"
    __slots__ = ("db",)

    def __init__(self, db: TrajectoryDatabase) -> None:
        self.db = db

    def admits(self, ctx: ExecutionContext, candidate: Candidate) -> bool:
        candidate.trajectory = self.db.get(candidate.trajectory_id)
        return order_feasible(candidate.trajectory, ctx.query)


class ValidationStage:
    """An ordered filter chain; the first rejecting filter's counter on
    ``ctx.stats`` is bumped and the candidate is dropped.

    Filter protocol: ``admits(ctx, candidate) -> bool`` plus an optional
    ``stat_field`` naming the :class:`SearchStats` counter to bump on
    rejection (a custom filter without one simply goes uncounted).
    """

    __slots__ = ("filters",)

    def __init__(self, filters: Sequence) -> None:
        self.filters = tuple(filters)

    def admit(self, ctx: ExecutionContext, candidate: Candidate) -> bool:
        for f in self.filters:
            if not f.admits(ctx, candidate):
                self._count_rejection(ctx, f)
                return False
        return True

    def admit_batch(
        self,
        ctx: ExecutionContext,
        candidates: Sequence[Candidate],
        prefetch: bool = True,
    ) -> List[Candidate]:
        """Run one retrieval round's candidates through the chain filter by
        filter, preserving candidate order.

        Functionally identical to calling :meth:`admit` per candidate —
        the same candidates reach each filter, so every pruning counter
        lands on the same value — but evaluating a whole round against one
        filter at a time lets a filter exposing ``prefetch(ctx,
        candidates)`` (the APL filter) batch its I/O for the round.
        *prefetch=False* keeps the per-candidate fetch path (the
        ``batch_io`` ablation).
        """
        survivors = list(candidates)
        for f in self.filters:
            if not survivors:
                break
            if prefetch:
                hook = getattr(f, "prefetch", None)
                if hook is not None:
                    hook(ctx, survivors)
            kept: List[Candidate] = []
            for candidate in survivors:
                if f.admits(ctx, candidate):
                    kept.append(candidate)
                else:
                    self._count_rejection(ctx, f)
            survivors = kept
        return survivors

    @staticmethod
    def _count_rejection(ctx: ExecutionContext, f) -> None:
        stat_field = getattr(f, "stat_field", None)
        if stat_field is not None:
            setattr(ctx.stats, stat_field, getattr(ctx.stats, stat_field) + 1)


# ----------------------------------------------------------------------
# Stage 3 — scoring (Sections V-D, VI-C)
# ----------------------------------------------------------------------
class ScoringStage:
    """Evaluator dispatch for validated candidates.

    OATSQ calls ``dmom`` with ``check_order=False`` when (as in the
    paper's chain) the MIB filter already established feasibility; the
    DP itself still returns ``inf`` for infeasible candidates, so a
    chain composed *without* the MIB filter stays correct — it only
    loses the cheap pre-prune.
    """

    __slots__ = ("db", "check_order")

    def __init__(self, db: TrajectoryDatabase, check_order: bool = False) -> None:
        self.db = db
        self.check_order = check_order

    def score(self, ctx: ExecutionContext, candidate: Candidate) -> float:
        trajectory = candidate.trajectory
        if trajectory is None:
            trajectory = candidate.trajectory = self.db.get(candidate.trajectory_id)
        ctx.stats.validated += 1
        ctx.stats.distance_computations += 1
        if ctx.order_sensitive:
            return ctx.evaluator.dmom(
                ctx.query, trajectory, ctx.threshold(), check_order=self.check_order
            )
        return ctx.evaluator.dmm(ctx.query, trajectory)

    def score_batch(
        self, ctx: ExecutionContext, candidates: Sequence[Candidate]
    ) -> List[float]:
        """Score one validation round's admitted candidates in a single
        block-kernel call (``kernel='block'``), in candidate order.

        Each candidate bumps the same ``validated`` / work counters as
        :meth:`score`, and the block reuses the posting lists the APL
        filter fetched for the round, so nothing is read twice.  The
        running k-th threshold is sampled once at round start: a looser
        bound than the per-candidate loop's intra-round tightening, which
        can only turn an over-threshold ``inf`` into a finite value the
        top-k collector rejects anyway — rankings and counters are
        identical (the engine parity suite pins this down).
        """
        items = []
        for candidate in candidates:
            trajectory = candidate.trajectory
            if trajectory is None:
                trajectory = candidate.trajectory = self.db.get(
                    candidate.trajectory_id
                )
            ctx.stats.validated += 1
            ctx.stats.distance_computations += 1
            items.append((trajectory, candidate.posting))
        threshold = ctx.threshold()
        if ctx.order_sensitive:
            return ctx.evaluator.dmom_batch(
                ctx.query, items, threshold, check_order=self.check_order, k=ctx.k
            )
        return ctx.evaluator.dmm_batch(ctx.query, items, threshold, k=ctx.k)
