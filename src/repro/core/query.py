"""Query model for ATSQ / OATSQ (Section II of the paper).

A query ``Q = (q1, ..., qm)`` is a sequence of :class:`QueryPoint`, each a
location with a non-empty set of desired activities ``q.Φ``.  For ATSQ the
sequence order is ignored; for OATSQ it is the order the point matches must
respect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Iterator, Sequence, Tuple

from repro.model.distance import DistanceMetric, EuclideanDistance
from repro.model.vocabulary import Vocabulary

Coord = Tuple[float, float]


@dataclass(frozen=True, slots=True)
class QueryPoint:
    """One query location ``q`` with its desired activity set ``q.Φ``.

    The activity set must be non-empty: a query point without activities
    has no point match by Definition 3 (the empty union can never be a
    superset of nothing meaningfully — the paper always issues 1–5
    activities per location, Table V).
    """

    x: float
    y: float
    activities: FrozenSet[int]

    def __post_init__(self) -> None:
        if not self.activities:
            raise ValueError("a query point needs at least one activity")

    @property
    def coord(self) -> Coord:
        return (self.x, self.y)


class Query:
    """A sequence of query points.

    ``Query`` is deliberately index-agnostic: the same object is handed to
    GAT and to every baseline searcher, and to both ATSQ and OATSQ
    processing.
    """

    __slots__ = ("points", "_all_activities")

    def __init__(self, points: Sequence[QueryPoint]) -> None:
        if not points:
            raise ValueError("a query needs at least one query point")
        self.points: Tuple[QueryPoint, ...] = tuple(points)
        union: set[int] = set()
        for q in self.points:
            union |= q.activities
        self._all_activities: FrozenSet[int] = frozenset(union)

    @classmethod
    def from_named(
        cls,
        vocabulary: Vocabulary,
        raw_points: Iterable[Tuple[float, float, Iterable[str]]],
    ) -> "Query":
        """Build a query from ``(x, y, [activity names...])`` triples."""
        return cls(
            [QueryPoint(x, y, vocabulary.encode(names)) for x, y, names in raw_points]
        )

    # ------------------------------------------------------------------
    # Sequence protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self) -> Iterator[QueryPoint]:
        return iter(self.points)

    def __getitem__(self, index: int) -> QueryPoint:
        return self.points[index]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Query({len(self.points)} points, {len(self._all_activities)} activities)"

    # ------------------------------------------------------------------
    # Derived facts
    # ------------------------------------------------------------------
    @property
    def all_activities(self) -> FrozenSet[int]:
        """``Q.Φ`` — union of the activity sets of all query points.

        A trajectory is a (whole) match only if its activity union covers
        this set (Definition 5 via Definition 3)."""
        return self._all_activities

    def diameter(self, metric: DistanceMetric | None = None) -> float:
        """``δ(Q)`` — the maximum pairwise distance between query locations
        (the spread parameter of the paper's Figure 6)."""
        metric = metric or EuclideanDistance()
        coords = [q.coord for q in self.points]
        best = 0.0
        for i in range(len(coords)):
            for j in range(i + 1, len(coords)):
                d = metric(coords[i], coords[j])
                if d > best:
                    best = d
        return best
