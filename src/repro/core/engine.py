"""The best-first search framework over the GAT index — Algorithm 1
(Section V) with the candidate-retrieval strategy of Section V-A.

Query processing alternates two phases until the pruning condition fires:

1. **Candidate retrieval** — a single best-first priority queue holds
   ``(mdist, level, cell, query-point)`` entries across *all* query points.
   Popping a non-leaf cell expands only the children that contain at least
   one of that query point's activities (a HICL lookup); popping a leaf
   cell harvests the trajectories in its ITL lists for those activities.
   The round ends once at least ``λ`` new candidates have been gathered.
2. **Validation + scoring** — each new candidate runs the TAS superset
   check (cheap, in memory, no false dismissals), then the APL check (one
   counted disk read, exact), then — for OATSQ — the MIB order check, and
   finally the shared distance computation (Algorithm 3 / Algorithm 4 via
   :class:`~repro.core.evaluator.MatchEvaluator`).

After every round the lower bound ``D_lb`` for all unseen trajectories is
recomputed (Algorithm 2); the search stops when the current k-th best
distance beats it.  OATSQ reuses the identical retrieval machinery because
``Dmm`` lower-bounds ``Dmom`` (Lemma 3).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.evaluator import MatchEvaluator
from repro.core.lower_bound import Frontier, lower_bound_distance
from repro.core.match import INFINITY
from repro.core.order_match import order_feasible
from repro.core.query import Query
from repro.core.results import SearchResult, TopKCollector
from repro.index.gat.apl import APLStore
from repro.index.gat.index import GATIndex
from repro.model.distance import DistanceMetric


@dataclass(slots=True)
class SearchStats:
    """Work counters for one query (reset per call)."""

    rounds: int = 0
    cells_popped: int = 0
    leaf_cells_visited: int = 0
    candidates_retrieved: int = 0
    tas_pruned: int = 0
    apl_pruned: int = 0
    mib_pruned: int = 0
    validated: int = 0
    distance_computations: int = 0
    disk_reads: int = 0
    disk_pages_read: int = 0

    def reset(self) -> None:
        self.rounds = 0
        self.cells_popped = 0
        self.leaf_cells_visited = 0
        self.candidates_retrieved = 0
        self.tas_pruned = 0
        self.apl_pruned = 0
        self.mib_pruned = 0
        self.validated = 0
        self.distance_computations = 0
        self.disk_reads = 0
        self.disk_pages_read = 0


class GATSearchEngine:
    """ATSQ / OATSQ processing over a :class:`~repro.index.gat.index.GATIndex`.

    Parameters
    ----------
    index:
        A built GAT index (owns the database it indexes).
    metric:
        Distance strategy; defaults to the evaluator's Euclidean.
    retrieval_batch:
        ``λ`` of Algorithm 1 — the minimum number of *new* candidates per
        retrieval round.  The paper leaves it unspecified; 32 balances
        round overhead against over-retrieval (see the ablation benchmark).
    lb_cells:
        ``m`` of Algorithm 2 — frontier cells per virtual trajectory.
    use_tas / use_tight_lower_bound:
        Ablation switches (both on by default = the paper's design).
        Disabling TAS skips the sketch filter; disabling the tight lower
        bound falls back to the loose queue-top bound the paper rejects.
    """

    def __init__(
        self,
        index: GATIndex,
        metric: Optional[DistanceMetric] = None,
        retrieval_batch: int = 32,
        lb_cells: int = 8,
        use_tas: bool = True,
        use_tight_lower_bound: bool = True,
    ) -> None:
        if retrieval_batch < 1:
            raise ValueError("retrieval_batch (λ) must be >= 1")
        if lb_cells < 1:
            raise ValueError("lb_cells (m) must be >= 1")
        self.index = index
        self.db = index.db
        self.evaluator = MatchEvaluator(metric)
        self.retrieval_batch = retrieval_batch
        self.lb_cells = lb_cells
        self.use_tas = use_tas
        self.use_tight_lower_bound = use_tight_lower_bound
        self.stats = SearchStats()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def atsq(self, query: Query, k: int, explain: bool = False) -> List[SearchResult]:
        """Top-k trajectories by minimum match distance (ATSQ)."""
        return self._search(query, k, order_sensitive=False, explain=explain)

    def oatsq(self, query: Query, k: int, explain: bool = False) -> List[SearchResult]:
        """Top-k trajectories by minimum order-sensitive match distance."""
        return self._search(query, k, order_sensitive=True, explain=explain)

    # ------------------------------------------------------------------
    # Algorithm 1
    # ------------------------------------------------------------------
    def _search(
        self, query: Query, k: int, order_sensitive: bool, explain: bool
    ) -> List[SearchResult]:
        self.stats.reset()
        self.index.hicl.clear_cache()
        disk_before = self.index.disk.stats.snapshot()

        state = _RetrievalState(self, query)
        results = TopKCollector(k)
        query_activities = query.all_activities

        while True:
            self.stats.rounds += 1
            new_candidates = state.retrieve(self.retrieval_batch)
            lower = self._lower_bound(query, state)
            for tid in new_candidates:
                distance = self._score_candidate(
                    query, tid, query_activities, order_sensitive, results.kth_distance()
                )
                if distance != INFINITY:
                    results.offer(SearchResult(tid, distance))
            if results.kth_distance() < lower:
                break  # no unseen trajectory can beat the current top-k
            if not new_candidates and state.exhausted:
                break  # the whole index has been harvested

        delta = self.index.disk.stats.delta(disk_before)
        self.stats.disk_reads = delta.reads
        self.stats.disk_pages_read = delta.pages_read

        ranked = results.results()
        if explain:
            ranked = [self._explain(query, r, order_sensitive) for r in ranked]
        return ranked

    def _lower_bound(self, query: Query, state: "_RetrievalState") -> float:
        if not self.use_tight_lower_bound:
            # Ablation: the loose bound the paper rejects — the smallest
            # mdist still in the queue, one per query point is not even
            # attempted; a single global queue top bounds a single Dmpm.
            return state.queue_top_mdist()
        return lower_bound_distance(query, state.frontiers, self.index.hicl, self.lb_cells)

    # ------------------------------------------------------------------
    # Validation + scoring (Sections V-C, V-D, VI-B, VI-C)
    # ------------------------------------------------------------------
    def _score_candidate(
        self,
        query: Query,
        tid: int,
        query_activities,
        order_sensitive: bool,
        threshold: float,
    ) -> float:
        if self.use_tas:
            sketch = self.index.sketches[tid]
            if not sketch.covers_all(query_activities):
                self.stats.tas_pruned += 1
                return INFINITY
        posting = self.index.apl.fetch(tid)  # counted disk read
        if not APLStore.covers_query(posting, query_activities):
            self.stats.apl_pruned += 1
            return INFINITY
        trajectory = self.db.get(tid)
        if order_sensitive:
            if not order_feasible(trajectory, query):
                self.stats.mib_pruned += 1
                return INFINITY
            self.stats.validated += 1
            self.stats.distance_computations += 1
            return self.evaluator.dmom(query, trajectory, threshold, check_order=False)
        self.stats.validated += 1
        self.stats.distance_computations += 1
        return self.evaluator.dmm(query, trajectory)

    def _explain(
        self, query: Query, result: SearchResult, order_sensitive: bool
    ) -> SearchResult:
        trajectory = self.db.get(result.trajectory_id)
        if order_sensitive:
            _d, matches = self.evaluator.dmom_explained(query, trajectory)
        else:
            _d, matches = self.evaluator.dmm_explained(query, trajectory)
        return SearchResult(result.trajectory_id, result.distance, matches)


class _RetrievalState:
    """The best-first traversal state shared across retrieval rounds."""

    __slots__ = ("engine", "query", "heap", "frontiers", "seen", "exhausted", "_tick")

    def __init__(self, engine: GATSearchEngine, query: Query) -> None:
        self.engine = engine
        self.query = query
        self.heap: List[Tuple[float, int, int, int, int]] = []
        # (mdist, tiebreak, level, code, query-point index)
        self.frontiers: Dict[int, Frontier] = {qi: Frontier() for qi in range(len(query))}
        self.seen: Set[int] = set()
        self.exhausted = False
        self._tick = itertools.count()

        hicl = engine.index.hicl
        grid = engine.index.grid
        for qi, q in enumerate(query):
            for code in hicl.cells_with_any(q.activities, 1):
                mdist = grid.level(1).min_dist(q.coord, code)
                self._push(mdist, 1, code, qi)

    def _push(self, mdist: float, level: int, code: int, qi: int) -> None:
        heapq.heappush(self.heap, (mdist, next(self._tick), level, code, qi))
        self.frontiers[qi].add(mdist, level, code)

    def queue_top_mdist(self) -> float:
        return self.heap[0][0] if self.heap else INFINITY

    def retrieve(self, batch: int) -> List[int]:
        """Pop cells best-first until ``batch`` *new* candidate trajectories
        have been collected (Section V-A), or the queue runs dry."""
        engine = self.engine
        hicl = engine.index.hicl
        itl = engine.index.itl
        grid = engine.index.grid
        depth = grid.depth
        new_candidates: List[int] = []

        while self.heap and len(new_candidates) < batch:
            mdist, _tick, level, code, qi = heapq.heappop(self.heap)
            engine.stats.cells_popped += 1
            q = self.query[qi]
            self.frontiers[qi].remove(mdist, level, code)
            if level < depth:
                child_level = grid.level(level + 1)
                for child in hicl.children_with_any(code, level, q.activities):
                    child_mdist = child_level.min_dist(q.coord, child)
                    self._push(child_mdist, level + 1, child, qi)
            else:
                engine.stats.leaf_cells_visited += 1
                for tid in itl.trajectories_with_any(code, q.activities):
                    if tid not in self.seen:
                        self.seen.add(tid)
                        new_candidates.append(tid)

        if not self.heap:
            self.exhausted = True
        engine.stats.candidates_retrieved += len(new_candidates)
        return new_candidates
