"""The best-first search framework over the GAT index — Algorithm 1
(Section V) with the candidate-retrieval strategy of Section V-A.

Query processing alternates two phases until the pruning condition fires:

1. **Candidate retrieval** — :class:`~repro.core.pipeline.CandidateRetriever`
   pops cells from a single best-first priority queue across *all* query
   points, expanding HICL children or harvesting leaf ITL lists, until at
   least ``λ`` new candidates have been gathered.
2. **Validation + scoring** — each new candidate runs the
   :class:`~repro.core.pipeline.ValidationStage` chain (TAS superset
   check → APL exact check → MIB order check for OATSQ), then the
   :class:`~repro.core.pipeline.ScoringStage` distance computation
   (Algorithm 3 / Algorithm 4 via
   :class:`~repro.core.evaluator.MatchEvaluator`).

After every round the lower bound ``D_lb`` for all unseen trajectories is
recomputed (Algorithm 2); the search stops when the current k-th best
distance beats it.  OATSQ reuses the identical retrieval machinery because
``Dmm`` lower-bounds ``Dmom`` (Lemma 3).

Concurrency: the engine object holds only immutable configuration and
index references — every mutable per-query artefact (counters, heap,
frontiers, top-k collector, evaluator) lives in the
:class:`~repro.core.context.ExecutionContext` built per call, and disk
I/O is attributed per query via :meth:`SimulatedDisk.track`.  One engine
can therefore serve many threads at once (see
:class:`repro.service.QueryService`); ``engine.stats`` remains available
as the *calling thread's* last-query counters for backward compatibility.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass, replace
from typing import List, Optional

from repro.obs.trace import activate

from repro.core.context import ExecutionContext, SearchStats
from repro.core.evaluator import MatchEvaluator
from repro.core.kernels import resolve_kernel
from repro.core.lower_bound import lower_bound_distance
from repro.core.match import INFINITY
from repro.core.pipeline import (
    APLFilter,
    Candidate,
    CandidateRetriever,
    MIBFilter,
    ScoringStage,
    TASFilter,
    ValidationStage,
)
from repro.core.query import Query
from repro.core.results import SearchResult
from repro.index.gat.index import GATIndex
from repro.model.distance import DistanceMetric
from repro.storage.cache import CacheStats, LRUCache

__all__ = ["EngineConfig", "GATSearchEngine", "SearchStats", "ExecutionContext"]


@dataclass(frozen=True, slots=True)
class EngineConfig:
    """Immutable engine knobs — search parameters, ablations, and the
    kernel/I-O strategy switches.

    Attributes
    ----------
    retrieval_batch:
        ``λ`` of Algorithm 1 — minimum *new* candidates per retrieval
        round.
    lb_cells:
        ``m`` of Algorithm 2 — frontier cells per virtual trajectory.
    use_tas / use_tight_lower_bound:
        Ablation switches (both on = the paper's design).
    apl_cache_size:
        Engine-level LRU over APL posting-list fetches; ``0`` disables.
    kernel:
        Scoring kernel: ``'auto'`` (block when NumPy is available),
        ``'scalar'`` (the seed oracles), ``'vectorized'`` (one NumPy
        matrix per candidate), or ``'block'`` (one padded tensor per
        validation round, with early abandonment against the running
        k-th threshold).  All kernels return the same rankings and
        pruning counters (see :mod:`repro.core.kernels`).
    batch_io:
        Fetch all APL posting lists of one validation round in a single
        :meth:`~repro.index.gat.apl.APLStore.fetch_many` call instead of
        one fetch per candidate.  Counted reads are identical; only the
        I/O shape changes.
    io_workers:
        When > 0 and *batch_io* is on, the grouped APL read overlaps its
        per-record simulated-disk latencies on a thread pool of this
        width (the ROADMAP's thread-offloaded gather).  ``0`` keeps the
        gather on the calling thread.
    """

    retrieval_batch: int = 32
    lb_cells: int = 8
    use_tas: bool = True
    use_tight_lower_bound: bool = True
    apl_cache_size: int = 2048
    kernel: str = "auto"
    batch_io: bool = True
    io_workers: int = 0

    def __post_init__(self) -> None:
        if self.retrieval_batch < 1:
            raise ValueError("retrieval_batch (λ) must be >= 1")
        if self.lb_cells < 1:
            raise ValueError("lb_cells (m) must be >= 1")
        if self.apl_cache_size < 0:
            raise ValueError("apl_cache_size must be >= 0")
        if self.io_workers < 0:
            raise ValueError("io_workers must be >= 0")
        resolve_kernel(self.kernel)  # fail fast on bad/unavailable kernels


class GATSearchEngine:
    """ATSQ / OATSQ processing over a :class:`~repro.index.gat.index.GATIndex`.

    Parameters
    ----------
    index:
        A built GAT index (owns the database it indexes).
    metric:
        Distance strategy; defaults to the evaluator's Euclidean.
    retrieval_batch:
        ``λ`` of Algorithm 1 — the minimum number of *new* candidates per
        retrieval round.  The paper leaves it unspecified; 32 balances
        round overhead against over-retrieval (see the ablation benchmark).
    lb_cells:
        ``m`` of Algorithm 2 — frontier cells per virtual trajectory.
    use_tas / use_tight_lower_bound:
        Ablation switches (both on by default = the paper's design).
        Disabling TAS drops the sketch filter from the validation chain;
        disabling the tight lower bound falls back to the loose queue-top
        bound the paper rejects.
    apl_cache_size:
        Capacity of the engine-level LRU over APL posting-list fetches
        (hot trajectories skip the counted disk read).  ``0`` disables it,
        restoring the seed behaviour of one APL read per surviving
        candidate per query.
    config:
        An :class:`EngineConfig` carrying all of the above plus the
        ``kernel`` / ``batch_io`` / ``io_workers`` switches; individual
        keyword arguments override its fields.
    kernel / batch_io / io_workers:
        See :class:`EngineConfig`.
    """

    def __init__(
        self,
        index: GATIndex,
        metric: Optional[DistanceMetric] = None,
        retrieval_batch: Optional[int] = None,
        lb_cells: Optional[int] = None,
        use_tas: Optional[bool] = None,
        use_tight_lower_bound: Optional[bool] = None,
        apl_cache_size: Optional[int] = None,
        config: Optional[EngineConfig] = None,
        kernel: Optional[str] = None,
        batch_io: Optional[bool] = None,
        io_workers: Optional[int] = None,
    ) -> None:
        overrides = {
            name: value
            for name, value in (
                ("retrieval_batch", retrieval_batch),
                ("lb_cells", lb_cells),
                ("use_tas", use_tas),
                ("use_tight_lower_bound", use_tight_lower_bound),
                ("apl_cache_size", apl_cache_size),
                ("kernel", kernel),
                ("batch_io", batch_io),
                ("io_workers", io_workers),
            )
            if value is not None
        }
        self.config = replace(config if config is not None else EngineConfig(), **overrides)
        self.index = index
        self.db = index.db
        self.metric = metric
        # Convenience instance for callers wanting ad-hoc dmm/dmom
        # computations with the engine's metric.  The engine itself never
        # scores through it — each ExecutionContext gets its own
        # evaluator — so its counters stay at zero under execute().
        self.kernel = resolve_kernel(self.config.kernel)
        self.evaluator = MatchEvaluator(metric, kernel=self.kernel)
        self.retrieval_batch = self.config.retrieval_batch
        self.lb_cells = self.config.lb_cells
        self.use_tas = self.config.use_tas
        self.use_tight_lower_bound = self.config.use_tight_lower_bound
        self.apl_cache: Optional[LRUCache] = (
            LRUCache(self.config.apl_cache_size)
            if self.config.apl_cache_size > 0
            else None
        )
        self._scoring = ScoringStage(self.db)
        self._local = threading.local()
        self._io_executor: Optional[ThreadPoolExecutor] = None
        self._io_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def atsq(self, query: Query, k: int, explain: bool = False) -> List[SearchResult]:
        """Top-k trajectories by minimum match distance (ATSQ)."""
        return self.execute(query, k, order_sensitive=False, explain=explain).ranked

    def oatsq(self, query: Query, k: int, explain: bool = False) -> List[SearchResult]:
        """Top-k trajectories by minimum order-sensitive match distance."""
        return self.execute(query, k, order_sensitive=True, explain=explain).ranked

    @property
    def stats(self) -> SearchStats:
        """The calling thread's most recent query counters.

        Kept for the seed's ``engine.atsq(...); engine.stats`` idiom; each
        thread sees only its own queries.  Prefer the
        :class:`ExecutionContext` returned by :meth:`execute`.
        """
        stats = getattr(self._local, "stats", None)
        if stats is None:
            stats = SearchStats()
            self._local.stats = stats
        return stats

    def apl_cache_stats(self) -> Optional[CacheStats]:
        """Hit/miss accounting of the engine's APL LRU (None if disabled)."""
        return self.apl_cache.stats() if self.apl_cache is not None else None

    def close(self) -> None:
        """Shut down the lazily created APL-gather thread pool (idempotent;
        a later query simply recreates it).  Only engines constructed with
        ``io_workers > 0`` ever own one, but long-running hosts and
        engine-per-sweep loops should close explicitly rather than rely on
        interpreter-exit joins."""
        with self._io_lock:
            executor, self._io_executor = self._io_executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    def _gather_executor(self) -> Optional[ThreadPoolExecutor]:
        """The shared thread pool for overlapped APL gathers (lazily
        created; ``None`` when ``io_workers`` is 0)."""
        if self.config.io_workers <= 0:
            return None
        if self._io_executor is None:
            with self._io_lock:
                if self._io_executor is None:
                    self._io_executor = ThreadPoolExecutor(
                        max_workers=self.config.io_workers,
                        thread_name_prefix="repro-apl-io",
                    )
        return self._io_executor

    # ------------------------------------------------------------------
    # Pipeline assembly
    # ------------------------------------------------------------------
    def filter_chain(self, order_sensitive: bool) -> list:
        """The validation chain for one query — the paper's TAS → APL
        (→ MIB for OATSQ) order.  Ablations and experiments can compose
        their own chain and pass it to :meth:`execute`."""
        filters: list = []
        if self.use_tas:
            filters.append(TASFilter(self.index.sketches))
        filters.append(
            APLFilter(
                self.index.apl,
                self.apl_cache,
                executor=self._gather_executor() if self.config.batch_io else None,
            )
        )
        if order_sensitive:
            filters.append(MIBFilter(self.db))
        return filters

    # ------------------------------------------------------------------
    # Algorithm 1
    # ------------------------------------------------------------------
    def execute(
        self,
        query: Query,
        k: int,
        order_sensitive: bool = False,
        explain: bool = False,
        filters: Optional[list] = None,
        external_threshold=None,
        result_sink=None,
        trace_span=None,
    ) -> ExecutionContext:
        """Run one query through the staged pipeline and return its
        completed :class:`ExecutionContext` (results in ``ranked``,
        counters in ``stats``).

        *external_threshold* / *result_sink* are the distributed-top-k
        hooks used by the sharded fan-out: the sink receives every result
        entering the local top-k (feeding a cross-shard merged collector),
        and the threshold callable supplies that merged collector's k-th
        distance, which tightens both the Lemma-4 scoring prune and
        Algorithm 1's termination test.  Sound because the merged
        population is a superset of this shard's: anything worse than the
        merged k-th can't be in the merged top-k, and when the merged k-th
        beats this shard's unseen lower bound no unseen local trajectory
        can either.  With both hooks unset the behaviour is exactly the
        paper's single-index Algorithm 1.

        *trace_span* (a :class:`repro.obs.trace.Span`) turns on per-stage
        tracing: the span becomes the thread's active span for the
        duration (so disk reads and injected faults attach to it as
        events) and retrieve/validate/score stage children are emitted
        under it, each covering that stage's first entry to last exit
        with the accumulated in-stage time as a ``busy_s`` attribute.
        ``None`` — the default — skips every instrumentation branch.
        """
        ctx = ExecutionContext(
            query=query,
            k=k,
            order_sensitive=order_sensitive,
            explain=explain,
            evaluator=MatchEvaluator(self.metric, kernel=self.kernel),
            external_threshold=external_threshold,
            trace_span=trace_span,
        )
        validation = ValidationStage(
            self.filter_chain(order_sensitive) if filters is None else filters
        )
        span = trace_span
        if span is not None:
            # Per-stage [first_entry_s, last_exit_s, busy_s] accumulators;
            # stage spans are emitted once after the loop, so tracing adds
            # clock reads per round, never per-round span churn.
            stage_clock = {
                "retrieve": [None, 0.0, 0.0],
                "validate": [None, 0.0, 0.0],
                "score": [None, 0.0, 0.0],
            }
        t0 = time.perf_counter()

        with activate(span) if span is not None else nullcontext(), self.index.disk.track() as disk:
            # Inside the tracked block: seeding the retriever reads the
            # level-1 HICL lists, which count toward this query's I/O.
            retriever = CandidateRetriever(self.index, query, ctx.stats)
            shared_mode = external_threshold is not None
            while True:
                ctx.stats.rounds += 1
                # Distributed-top-k only: bound the best-first expansion by
                # the merged threshold (exact — see retrieve()).  The
                # single-index path keeps the paper's unbounded rounds.
                stop_mdist = ctx.threshold() if shared_mode else INFINITY
                if span is not None:
                    t_stage = time.time()
                new_candidates = retriever.retrieve(
                    self.retrieval_batch, stop_mdist=stop_mdist
                )
                lower = self._lower_bound(query, retriever)
                if span is not None:
                    t_stage = self._stage_tick(stage_clock["retrieve"], t_stage)
                admitted = validation.admit_batch(
                    ctx,
                    [Candidate(tid) for tid in new_candidates],
                    prefetch=self.config.batch_io,
                )
                if span is not None:
                    t_stage = self._stage_tick(stage_clock["validate"], t_stage)
                if ctx.block_scoring and admitted:
                    # Block kernel: the whole round in one scoring call —
                    # one distance evaluation, block lower bounds, early
                    # abandonment against the round-start k-th threshold.
                    scored = zip(admitted, self._scoring.score_batch(ctx, admitted))
                else:
                    # Per-candidate kernels keep the interleaved loop: each
                    # score sees the threshold tightened by the round's
                    # earlier offers (same rankings either way).
                    scored = (
                        (candidate, self._scoring.score(ctx, candidate))
                        for candidate in admitted
                    )
                for candidate, distance in scored:
                    if distance != INFINITY:
                        result = SearchResult(candidate.trajectory_id, distance)
                        ctx.results.offer(result)
                        if result_sink is not None:
                            result_sink(result)
                if span is not None:
                    self._stage_tick(stage_clock["score"], t_stage)
                if ctx.threshold() < lower:
                    break  # no unseen trajectory can beat the current top-k
                if not new_candidates and retriever.exhausted:
                    break  # the whole index has been harvested
                if shared_mode and retriever.queue_top_mdist() > ctx.threshold():
                    break  # merged-top-k bound: all undiscovered trajectories
                    # sort behind the queue top, hence behind the k-th best

        ctx.stats.disk_reads = disk.reads
        ctx.stats.disk_pages_read = disk.pages_read

        ranked = ctx.results.results()
        if explain:
            ranked = [self._explain(ctx, r) for r in ranked]
        ctx.ranked = ranked
        ctx.latency_s = time.perf_counter() - t0
        if span is not None:
            self._emit_stage_spans(span, ctx, stage_clock)
        self._local.stats = ctx.stats
        return ctx

    @staticmethod
    def _stage_tick(clock: list, entered_s: float) -> float:
        """Fold one stage visit into its ``[first, last, busy]`` clock and
        return the exit timestamp (the next stage's entry)."""
        now = time.time()
        if clock[0] is None:
            clock[0] = entered_s
        clock[1] = now
        clock[2] += now - entered_s
        return now

    def _emit_stage_spans(self, span, ctx: ExecutionContext, stage_clock: dict) -> None:
        """One child span per pipeline stage, spanning that stage's first
        entry to last exit across every round, with the stage's summed
        in-stage time (``busy_s``) and its work counters as attributes."""
        stats = ctx.stats
        stage_attrs = {
            "retrieve": {
                "rounds": stats.rounds,
                "cells_popped": stats.cells_popped,
                "candidates_retrieved": stats.candidates_retrieved,
            },
            "validate": {
                "tas_pruned": stats.tas_pruned,
                "apl_pruned": stats.apl_pruned,
                "mib_pruned": stats.mib_pruned,
                "validated": stats.validated,
            },
            "score": {
                "distance_computations": stats.distance_computations,
            },
        }
        for stage in ("retrieve", "validate", "score"):
            first, last, busy = stage_clock[stage]
            if first is None:
                continue
            child = span.child(stage, attrs=dict(stage_attrs[stage], busy_s=busy))
            child.start_s = first
            child.end(at=last)

    def _lower_bound(self, query: Query, retriever: CandidateRetriever) -> float:
        if not self.use_tight_lower_bound:
            # Ablation: the loose bound the paper rejects — the smallest
            # mdist still in the queue, one per query point is not even
            # attempted; a single global queue top bounds a single Dmpm.
            return retriever.queue_top_mdist()
        return lower_bound_distance(
            query, retriever.frontiers, self.index.hicl, self.lb_cells
        )

    def _explain(self, ctx: ExecutionContext, result: SearchResult) -> SearchResult:
        trajectory = self.db.get(result.trajectory_id)
        if ctx.order_sensitive:
            _d, matches = ctx.evaluator.dmom_explained(ctx.query, trajectory)
        else:
            _d, matches = ctx.evaluator.dmm_explained(ctx.query, trajectory)
        return SearchResult(result.trajectory_id, result.distance, matches)
