"""Vectorized scoring kernels — NumPy distance matrices feeding array DPs.

The scalar hot path of the engine spends almost all of its time inside
Algorithm 3's minimum-point-match and Algorithm 4's order-sensitive DP:
profiling one cold-cache mixed workload shows >95% of query latency in
per-point ``DistanceMetric`` calls and per-``(i, j, k)``
:class:`~repro.core.match.PointMatchTable` updates.  This module replaces
both with a *prepare once, scan arrays* scheme:

1. :class:`QueryKernel` precomputes the per-query-point activity→bit
   assignment and the query-side halves of the distance formula (planar
   coordinates for Euclidean, radians + cosines for Haversine — computed
   once per query instead of once per metric call).
2. :func:`prepare_candidate` computes, per surviving candidate, the full
   ``|Q| x |rel(Tr)|`` query-point→trajectory-point distance matrix in one
   vectorized NumPy call (``rel(Tr)`` being the points carrying at least
   one query activity — exactly the sub-sequence the compressed scalar DP
   runs over), plus the per-query-point activity-overlap bitmask of every
   relevant point, built from the posting lists.
3. :func:`dmm_prepared` / :func:`dmom_prepared` run the combinatorics over
   those arrays: the set-cover of Algorithm 3 becomes an in-place DP over
   ``2^|q.Φ|`` floats (|q.Φ| ≤ 5 in the paper), and Algorithm 4's row
   recurrence collapses from O(n²) incremental table rebuilds to a single
   O(n · 2^|q.Φ|) left-to-right scan (see :func:`dmom_prepared`).

Exactness
---------
The scalar implementations in :mod:`repro.core.match` and
:mod:`repro.core.order_match` are kept untouched as oracles; the
property-based suite (``tests/property/test_kernel_parity.py``) checks the
kernels against them on randomized inputs.  The combinatorics are
float-identical by construction: given the same distances, the cover DP
performs the same additions in the same order as ``PointMatchTable``
(each entry is ``best(remainder) + dist``).  Two last-ulp (≲2e-16
relative) discrepancy sources remain: NumPy's elementwise ``hypot``/trig
can round differently from ``libm``'s on ~0.5% of inputs, and the
``Dmom`` row scan folds multi-point cover sums in ascending-position
instead of descending-position order.  Neither moves a ranking or a
pruning counter except on exact distance ties, which the engine-level
parity suite checks never happens on real workloads (ids and counters
are compared exactly, distances to 1e-9 relative).

NumPy is optional: ``kernel='auto'`` silently degrades to the scalar path
when it is missing, ``kernel='vectorized'`` raises loudly.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.model.distance import (
    DistanceMetric,
    EuclideanDistance,
    HaversineDistance,
    euclidean_matrix,
    haversine_matrix,
)

try:  # pragma: no cover - exercised implicitly by every kernel test
    import numpy as _np
except ImportError:  # pragma: no cover - the image bakes numpy in
    _np = None

HAVE_NUMPY = _np is not None

INFINITY = math.inf

KERNELS = ("auto", "scalar", "vectorized")


def resolve_kernel(kernel: str) -> str:
    """Map a kernel request to the concrete implementation to run.

    ``'auto'`` picks ``'vectorized'`` when NumPy is importable and
    ``'scalar'`` otherwise; asking for ``'vectorized'`` without NumPy is an
    error (silent fallback would invalidate benchmark claims).
    """
    if kernel == "auto":
        return "vectorized" if HAVE_NUMPY else "scalar"
    if kernel == "vectorized" and not HAVE_NUMPY:
        raise ValueError("kernel='vectorized' requires numpy (use 'auto' or 'scalar')")
    if kernel not in ("scalar", "vectorized"):
        raise ValueError(f"unknown kernel {kernel!r}; expected one of {KERNELS}")
    return kernel


# ----------------------------------------------------------------------
# Array set-cover — the kernel equivalent of PointMatchTable
# ----------------------------------------------------------------------
def min_cover_cost(entries: Sequence[Tuple[float, int]], n_bits: int) -> float:
    """Exact min-cost set cover over ``(dist, mask)`` entries.

    ``dp[t]`` is the cheapest cost of a point set whose mask union covers
    ``t``; folding one entry in performs exactly the additions
    ``dp[t & ~mask] + dist`` that :class:`~repro.core.match.PointMatchTable`
    performs (best remainder plus the new distance), so the result is
    bit-identical to adding the same entries to a table in the same order.
    """
    full = (1 << n_bits) - 1
    dp = [INFINITY] * (full + 1)
    dp[0] = 0.0
    for dist, pm in entries:
        if not pm:
            continue
        for t in range(1, full + 1):
            if t & pm:
                v = dp[t & ~pm] + dist
                if v < dp[t]:
                    dp[t] = v
    return dp[full]


def _mpm_scan(
    row: List[float], mrow: List[int], order: Sequence[int], n_bits: int
) -> float:
    """Algorithm 3 over precomputed arrays: ascending-distance scan with the
    paper's early termination (stop as soon as the best full cover is at
    most the next unprocessed point's distance)."""
    full = (1 << n_bits) - 1
    dp = [INFINITY] * (full + 1)
    dp[0] = 0.0
    best = INFINITY
    for c in order:
        d = row[c]
        if best <= d:
            break
        pm = mrow[c]
        for t in range(1, full + 1):
            if t & pm:
                v = dp[t & ~pm] + d
                if v < dp[t]:
                    dp[t] = v
        best = dp[full]
    return best


# ----------------------------------------------------------------------
# Per-query preparation
# ----------------------------------------------------------------------
class QueryKernel:
    """Query-side precomputation shared by every candidate of one query.

    Holds the per-query-point bit assignment (same iteration order as
    ``PointMatchTable`` uses, so masks are comparable in tests) and the
    query half of the vectorized distance formula.  Metrics other than
    Euclidean/Haversine fall back to per-pair Python calls — still through
    one matrix, so the combinatorial kernels stay identical.
    """

    __slots__ = ("query", "m", "n_bits", "bit_values", "metric", "_mode", "_q0", "_q1", "_q2")

    def __init__(self, query, metric: DistanceMetric) -> None:
        self.query = query
        self.m = len(query)
        self.metric = metric
        self.n_bits: List[int] = []
        self.bit_values: List[Dict[int, int]] = []
        for q in query:
            activities = list(dict.fromkeys(q.activities))
            self.n_bits.append(len(activities))
            self.bit_values.append({a: 1 << i for i, a in enumerate(activities)})

        if not HAVE_NUMPY:
            raise RuntimeError("QueryKernel requires numpy")
        xs = _np.array([q.x for q in query], dtype=float)
        ys = _np.array([q.y for q in query], dtype=float)
        if type(metric) is EuclideanDistance:
            self._mode = "euclidean"
            self._q0, self._q1, self._q2 = xs, ys, None
        elif type(metric) is HaversineDistance:
            self._mode = "haversine"
            lon = _np.radians(xs)
            lat = _np.radians(ys)
            self._q0, self._q1, self._q2 = lon, lat, _np.cos(lat)
        else:
            self._mode = "generic"
            self._q0 = self._q1 = self._q2 = None

    def distance_rows(self, trajectory, positions: List[int]) -> List[List[float]]:
        """The ``|Q| x len(positions)`` distance matrix, as Python rows
        (list indexing is what the scan loops do; one ``tolist`` beats a
        million boxed NumPy scalar reads)."""
        if self._mode == "generic":
            pts = trajectory.points
            metric = self.metric
            coords = [pts[p].coord for p in positions]
            return [[metric(q.coord, c) for c in coords] for q in self.query]
        sub = trajectory.coord_array()[positions]
        px = sub[:, 0]
        py = sub[:, 1]
        if self._mode == "euclidean":
            matrix = euclidean_matrix(self._q0, self._q1, px, py)
        else:
            matrix = haversine_matrix(
                self._q0, self._q1, self._q2, _np.radians(px), _np.radians(py)
            )
        return matrix.tolist()


class CandidateArrays:
    """Everything the kernels need about one (query, trajectory) pair."""

    __slots__ = ("positions", "dist_rows", "mask_rows")

    def __init__(
        self,
        positions: List[int],
        dist_rows: List[List[float]],
        mask_rows: List[List[int]],
    ) -> None:
        self.positions = positions
        self.dist_rows = dist_rows
        self.mask_rows = mask_rows


def prepare_candidate(qk: QueryKernel, trajectory) -> Optional[CandidateArrays]:
    """Build the distance matrix and overlap masks for one candidate.

    Relevant positions are the union of the trajectory's posting lists over
    all query activities — the same compressed sub-sequence the scalar DP
    runs over (:func:`repro.core.order_match.relevant_points`).  Returns
    ``None`` when the trajectory carries no query activity at all.
    """
    posting = trajectory.posting_lists
    pos_set: set = set()
    for activity in qk.query.all_activities:
        ps = posting.get(activity)
        if ps:
            pos_set.update(ps)
    if not pos_set:
        return None
    positions = sorted(pos_set)
    col_of = {p: c for c, p in enumerate(positions)}
    n = len(positions)

    dist_rows = qk.distance_rows(trajectory, positions)

    mask_rows: List[List[int]] = []
    for bit_values in qk.bit_values:
        mrow = [0] * n
        for activity, bit in bit_values.items():
            ps = posting.get(activity)
            if ps:
                for p in ps:
                    mrow[col_of[p]] |= bit
        mask_rows.append(mrow)
    return CandidateArrays(positions, dist_rows, mask_rows)


# ----------------------------------------------------------------------
# Dmm — Lemma 1 over the prepared arrays
# ----------------------------------------------------------------------
def dmm_prepared(qk: QueryKernel, cand: CandidateArrays, stats=None) -> float:
    """``Dmm(Q, Tr)``: per-query-point Algorithm 3 over the distance rows.

    Single-activity query points (the common case) reduce to a plain
    ``min`` over the candidate columns — no cover DP at all.
    """
    total = 0.0
    for i in range(qk.m):
        row = cand.dist_rows[i]
        mrow = cand.mask_rows[i]
        cols = [c for c, pm in enumerate(mrow) if pm]
        if stats is not None:
            stats.point_match_points += len(cols)
        if not cols:
            return INFINITY
        if qk.n_bits[i] == 1:
            d = min(row[c] for c in cols)
        else:
            # Stable sort on distance keeps equal-distance columns in
            # ascending position order — the scalar (dist, pos) tie-break.
            order = sorted(cols, key=row.__getitem__)
            d = _mpm_scan(row, mrow, order, qk.n_bits[i])
        if d == INFINITY:
            return INFINITY
        total += d
    return total


# ----------------------------------------------------------------------
# Dmom — Algorithm 4 as a single left-to-right scan per row
# ----------------------------------------------------------------------
def dmom_prepared(
    qk: QueryKernel, cand: CandidateArrays, threshold: float = INFINITY
) -> float:
    """``Dmom(Q, Tr)`` over the prepared arrays.

    The scalar Algorithm 4 evaluates ``G(i, j) = min_k G(i-1, k) +
    Dmpm(q_i, Tr[k, j])`` by rebuilding an incremental point-match table
    per cell — O(n²) table updates per row.  Here each row is one O(n·2^b)
    scan: ``A[t]`` is the cheapest ``G(i-1, k) + (cover of mask t by
    points k..j)`` over all segment starts ``k ≤ j``.  Folding point ``j``
    in updates ``A[0]`` with ``G(i-1, j)`` (the empty cover can start a
    new segment at ``j``) and then relaxes ``A[t] ← A[t & ~mask_j] + d_j``
    in ascending mask order; ``G(i, j)`` is ``A[full]`` after the fold.
    This is the same min-cost-cover relaxation as the table (a point used
    twice can never beat using it once, costs being non-negative), with
    the segment base folded into ``A[0]`` as a running prefix minimum.

    The paper's row-level threshold early-exit (Lemma 4) is preserved:
    when a finished row's last entry exceeds *threshold* the candidate can
    never beat the current k-th best, and the scan aborts.
    """
    n = len(cand.positions)
    prev = [0.0] * (n + 1)  # G(0, *) = 0 — guardian row
    for i in range(qk.m):
        row = cand.dist_rows[i]
        mrow = cand.mask_rows[i]
        cur = [INFINITY] * (n + 1)
        if qk.n_bits[i] == 1:
            # Covers are single points: A collapses to (prefix-min of
            # prev, best value so far).
            a0 = INFINITY
            best = INFINITY
            for j in range(1, n + 1):
                pj = prev[j]
                if pj < a0:
                    a0 = pj
                if mrow[j - 1]:
                    v = a0 + row[j - 1]
                    if v < best:
                        best = v
                cur[j] = best
        else:
            size = 1 << qk.n_bits[i]
            full = size - 1
            a = [INFINITY] * size
            for j in range(1, n + 1):
                pj = prev[j]
                if pj < a[0]:
                    a[0] = pj
                pm = mrow[j - 1]
                if pm:
                    d = row[j - 1]
                    for t in range(1, size):
                        if t & pm:
                            v = a[t & ~pm] + d
                            if v < a[t]:
                                a[t] = v
                cur[j] = a[full]
        if cur[n] > threshold:
            return INFINITY
        prev = cur
    return prev[n]
