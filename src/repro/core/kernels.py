"""Vectorized scoring kernels — NumPy distance matrices feeding array DPs.

The scalar hot path of the engine spends almost all of its time inside
Algorithm 3's minimum-point-match and Algorithm 4's order-sensitive DP:
profiling one cold-cache mixed workload shows >95% of query latency in
per-point ``DistanceMetric`` calls and per-``(i, j, k)``
:class:`~repro.core.match.PointMatchTable` updates.  This module replaces
both with a *prepare once, scan arrays* scheme:

1. :class:`QueryKernel` precomputes the per-query-point activity→bit
   assignment and the query-side halves of the distance formula (planar
   coordinates for Euclidean, radians + cosines for Haversine — computed
   once per query instead of once per metric call).
2. :func:`prepare_candidate` computes, per surviving candidate, the full
   ``|Q| x |rel(Tr)|`` query-point→trajectory-point distance matrix in one
   vectorized NumPy call (``rel(Tr)`` being the points carrying at least
   one query activity — exactly the sub-sequence the compressed scalar DP
   runs over), plus the per-query-point activity-overlap bitmask of every
   relevant point, built from the posting lists.
3. :func:`dmm_prepared` / :func:`dmom_prepared` run the combinatorics over
   those arrays: the set-cover of Algorithm 3 becomes an in-place DP over
   ``2^|q.Φ|`` floats (|q.Φ| ≤ 5 in the paper), and Algorithm 4's row
   recurrence collapses from O(n²) incremental table rebuilds to a single
   O(n · 2^|q.Φ|) left-to-right scan (see :func:`dmom_prepared`).

On top of the per-candidate kernels sits the *block* kernel
(``kernel='block'``, the ``'auto'`` default): a whole validation round's
admitted candidates go into one :class:`CandidateBlock` — a flat
``[|Q|, N]`` distance matrix over every candidate's concatenated relevant
points, built by a **single** Euclidean/Haversine evaluation per round,
plus a boolean relevance pattern and per-candidate column segments — and
are scored together:

* :func:`block_dmm` computes every candidate's exact ``Dmm`` in
  whole-round array ops: per-row masked minima via one
  segment-``reduceat`` for single-activity rows, and the *set-partition
  decomposition* of the minimum cover for multi-activity rows (the
  optimal cover equals, over all partitions of the row's activity bits,
  the cheapest sum of per-group nearest-covering-point minima — each
  group minimum one more masked ``reduceat``).  All-single-activity
  queries take :func:`block_dmm_all_single`, a dedup-free
  posting-concatenation layout with no per-candidate work at all.
* :func:`block_dmom` gates on the block ``Dmm`` (Lemma 3) and walks the
  survivors cheapest-gate-first with a running k-th threshold, so most
  candidates are **abandoned** before the per-candidate DP; all-single-
  activity queries instead run the whole DP batched — each of the
  ``|Q|`` rows is two ``minimum.accumulate`` passes over a
  ``[survivors, Lmax]`` matrix.

Abandonment never moves a ranking or a counter: the values it replaces
with ``inf`` all exceed the final k-th distance (so the top-k collector
would reject them anyway), and every pruning counter is derived from the
relevance pattern exactly as the per-candidate scans would have counted
them — the block/vectorized/scalar engine parity suites compare ids and
counters exactly.

Exactness
---------
The scalar implementations in :mod:`repro.core.match` and
:mod:`repro.core.order_match` are kept untouched as oracles; the
property-based suite (``tests/property/test_kernel_parity.py``) checks the
kernels against them on randomized inputs.  The combinatorics are
float-identical by construction: given the same distances, the cover DP
performs the same additions in the same order as ``PointMatchTable``
(each entry is ``best(remainder) + dist``).  Two last-ulp (≲2e-16
relative) discrepancy sources remain: NumPy's elementwise ``hypot``/trig
can round differently from ``libm``'s on ~0.5% of inputs, and the
``Dmom`` row scan folds multi-point cover sums in ascending-position
instead of descending-position order.  Neither moves a ranking or a
pruning counter except on exact distance ties, which the engine-level
parity suite checks never happens on real workloads (ids and counters
are compared exactly, distances to 1e-9 relative).

NumPy is optional: ``kernel='auto'`` silently degrades to the scalar path
when it is missing, ``kernel='vectorized'`` raises loudly.

Every coordinate access below goes through ``trajectory.coord_array()``:
for array-backed trajectories (:meth:`ActivityTrajectory.from_arrays`,
the shared-memory store of :mod:`repro.storage.shm`) that is a zero-copy
view into the columnar store, so the block and vectorized kernels read
the mapped segment directly — no point objects, no per-trajectory
coordinate copies — and a process worker scores against the same bytes
the parent packed.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.model.distance import (
    DistanceMetric,
    EuclideanDistance,
    HaversineDistance,
    euclidean_matrix,
    haversine_matrix,
)

try:  # pragma: no cover - exercised implicitly by every kernel test
    import numpy as _np
except ImportError:  # pragma: no cover - the image bakes numpy in
    _np = None

HAVE_NUMPY = _np is not None

INFINITY = math.inf

KERNELS = ("auto", "scalar", "vectorized", "block")


def resolve_kernel(kernel: str) -> str:
    """Map a kernel request to the concrete implementation to run.

    ``'auto'`` picks ``'block'`` when NumPy is importable and ``'scalar'``
    otherwise; asking for ``'vectorized'`` or ``'block'`` without NumPy is
    an error (silent fallback would invalidate benchmark claims).
    """
    if kernel == "auto":
        return "block" if HAVE_NUMPY else "scalar"
    if kernel in ("vectorized", "block") and not HAVE_NUMPY:
        raise ValueError(
            f"kernel={kernel!r} requires numpy (use 'auto' or 'scalar')"
        )
    if kernel not in ("scalar", "vectorized", "block"):
        raise ValueError(f"unknown kernel {kernel!r}; expected one of {KERNELS}")
    return kernel


# ----------------------------------------------------------------------
# Array set-cover — the kernel equivalent of PointMatchTable
# ----------------------------------------------------------------------
def min_cover_cost(entries: Sequence[Tuple[float, int]], n_bits: int) -> float:
    """Exact min-cost set cover over ``(dist, mask)`` entries.

    ``dp[t]`` is the cheapest cost of a point set whose mask union covers
    ``t``; folding one entry in performs exactly the additions
    ``dp[t & ~mask] + dist`` that :class:`~repro.core.match.PointMatchTable`
    performs (best remainder plus the new distance), so the result is
    bit-identical to adding the same entries to a table in the same order.
    """
    full = (1 << n_bits) - 1
    dp = [INFINITY] * (full + 1)
    dp[0] = 0.0
    for dist, pm in entries:
        if not pm:
            continue
        for t in range(1, full + 1):
            if t & pm:
                v = dp[t & ~pm] + dist
                if v < dp[t]:
                    dp[t] = v
    return dp[full]


def _mpm_scan(
    row: List[float], mrow: List[int], order: Sequence[int], n_bits: int
) -> float:
    """Algorithm 3 over precomputed arrays: ascending-distance scan with the
    paper's early termination (stop as soon as the best full cover is at
    most the next unprocessed point's distance)."""
    full = (1 << n_bits) - 1
    dp = [INFINITY] * (full + 1)
    dp[0] = 0.0
    best = INFINITY
    for c in order:
        d = row[c]
        if best <= d:
            break
        pm = mrow[c]
        for t in range(1, full + 1):
            if t & pm:
                v = dp[t & ~pm] + d
                if v < dp[t]:
                    dp[t] = v
        best = dp[full]
    return best


# ----------------------------------------------------------------------
# Per-query preparation
# ----------------------------------------------------------------------
class QueryKernel:
    """Query-side precomputation shared by every candidate of one query.

    Holds the per-query-point bit assignment (same iteration order as
    ``PointMatchTable`` uses, so masks are comparable in tests) and the
    query half of the vectorized distance formula.  Metrics other than
    Euclidean/Haversine fall back to per-pair Python calls — still through
    one matrix, so the combinatorial kernels stay identical.
    """

    __slots__ = (
        "query",
        "m",
        "n_bits",
        "bit_values",
        "all_single",
        "metric",
        "_mode",
        "_q0",
        "_q1",
        "_q2",
    )

    def __init__(self, query, metric: DistanceMetric) -> None:
        self.query = query
        self.m = len(query)
        self.metric = metric
        self.n_bits: List[int] = []
        self.bit_values: List[Dict[int, int]] = []
        for q in query:
            activities = list(dict.fromkeys(q.activities))
            self.n_bits.append(len(activities))
            self.bit_values.append({a: 1 << i for i, a in enumerate(activities)})
        #: Every query point carries one activity — the common query shape,
        #: and the one whose whole candidate preparation and DP can stay in
        #: NumPy arrays (see prepare_candidate / _dmom_all_single_np).
        self.all_single = all(b == 1 for b in self.n_bits)

        if not HAVE_NUMPY:
            raise RuntimeError("QueryKernel requires numpy")
        xs = _np.array([q.x for q in query], dtype=float)
        ys = _np.array([q.y for q in query], dtype=float)
        if type(metric) is EuclideanDistance:
            self._mode = "euclidean"
            self._q0, self._q1, self._q2 = xs, ys, None
        elif type(metric) is HaversineDistance:
            self._mode = "haversine"
            lon = _np.radians(xs)
            lat = _np.radians(ys)
            self._q0, self._q1, self._q2 = lon, lat, _np.cos(lat)
        else:
            self._mode = "generic"
            self._q0 = self._q1 = self._q2 = None

    def _generic_rows(self, trajectory, positions: List[int]) -> List[List[float]]:
        pts = trajectory.points
        metric = self.metric
        coords = [pts[p].coord for p in positions]
        return [[metric(q.coord, c) for c in coords] for q in self.query]

    def distance_matrix(self, trajectory, positions: List[int]):
        """The ``|Q| x len(positions)`` distance matrix as a NumPy array
        (non-stock metrics go through per-pair Python calls, then one
        ``asarray`` — the combinatorial kernels downstream are identical)."""
        if self._mode == "generic":
            return _np.asarray(self._generic_rows(trajectory, positions), dtype=float)
        sub = trajectory.coord_array()[positions]
        px = sub[:, 0]
        py = sub[:, 1]
        if self._mode == "euclidean":
            return euclidean_matrix(self._q0, self._q1, px, py)
        return haversine_matrix(
            self._q0, self._q1, self._q2, _np.radians(px), _np.radians(py)
        )

    def distance_rows(self, trajectory, positions: List[int]) -> List[List[float]]:
        """The same matrix as Python rows (list indexing is what the scan
        loops do; one ``tolist`` beats a million boxed NumPy scalar reads)."""
        if self._mode == "generic":
            return self._generic_rows(trajectory, positions)
        return self.distance_matrix(trajectory, positions).tolist()

    def distance_matrix_for(self, coords):
        """The ``|Q| x N`` distance matrix against a raw ``(N, 2)`` float
        array of point coordinates.

        This is the block kernel's single per-round distance evaluation:
        the concatenated relevant points of *every* candidate go through
        one elementwise NumPy call, so each entry is bit-identical to the
        per-candidate :meth:`distance_matrix` value for the same pair
        (elementwise ufuncs do not round differently with array size).
        Only meaningful for the stock metrics — generic metrics have no
        array formula, and the block builder keeps their per-pair Python
        path per candidate.
        """
        px = coords[:, 0]
        py = coords[:, 1]
        if self._mode == "euclidean":
            return euclidean_matrix(self._q0, self._q1, px, py)
        if self._mode == "haversine":
            return haversine_matrix(
                self._q0, self._q1, self._q2, _np.radians(px), _np.radians(py)
            )
        raise ValueError("distance_matrix_for requires a stock metric")


class CandidateArrays:
    """Everything the kernels need about one (query, trajectory) pair.

    Two storage shapes, chosen by :func:`prepare_candidate`:

    * list rows (``dist_rows`` / ``mask_rows``) — what the mixed
      single/multi-activity scan loops index;
    * NumPy matrices (``dist_matrix`` / ``mask_matrix``) — the all-single-
      activity fast path, where both ``Dmm`` and the ``Dmom`` DP run as
      whole-array ops and a per-candidate ``tolist`` would cost more than
      the arithmetic it feeds.

    Whichever shape was not built is derived lazily, so ad-hoc consumers
    (tests, notebooks) can read either view of any candidate.
    """

    __slots__ = ("positions", "_dist_rows", "_mask_rows", "dist_matrix", "mask_matrix")

    def __init__(
        self,
        positions: List[int],
        dist_rows: Optional[List[List[float]]] = None,
        mask_rows: Optional[List[List[int]]] = None,
        dist_matrix=None,
        mask_matrix=None,
    ) -> None:
        if dist_rows is None and dist_matrix is None:
            raise ValueError("either dist_rows or dist_matrix is required")
        self.positions = positions
        self._dist_rows = dist_rows
        self._mask_rows = mask_rows
        self.dist_matrix = dist_matrix
        self.mask_matrix = mask_matrix

    @property
    def dist_rows(self) -> List[List[float]]:
        if self._dist_rows is None:
            self._dist_rows = self.dist_matrix.tolist()
        return self._dist_rows

    @property
    def mask_rows(self) -> List[List[int]]:
        if self._mask_rows is None:
            # Boolean columns become bit 0 — exactly the single-activity
            # bitmask the scalar scans expect.
            self._mask_rows = self.mask_matrix.astype(int).tolist()
        return self._mask_rows


def prepare_candidate(qk: QueryKernel, trajectory) -> Optional[CandidateArrays]:
    """Build the distance matrix and overlap masks for one candidate.

    Relevant positions are the union of the trajectory's posting lists over
    all query activities — the same compressed sub-sequence the scalar DP
    runs over (:func:`repro.core.order_match.relevant_points`).  Returns
    ``None`` when the trajectory carries no query activity at all.
    """
    posting = trajectory.posting_lists
    pos_set: set = set()
    for activity in qk.query.all_activities:
        ps = posting.get(activity)
        if ps:
            pos_set.update(ps)
    if not pos_set:
        return None
    positions = sorted(pos_set)
    col_of = {p: c for c, p in enumerate(positions)}
    n = len(positions)

    if qk.all_single:
        # All-single-activity fast path: keep the distance matrix in array
        # form (it is born as one) and scatter the posting columns into a
        # boolean mask matrix — no per-candidate tolist, no bitmask lists.
        mask = _np.zeros((qk.m, n), dtype=bool)
        for i, bit_values in enumerate(qk.bit_values):
            for activity in bit_values:
                ps = posting.get(activity)
                if ps:
                    mask[i, [col_of[p] for p in ps]] = True
        return CandidateArrays(
            positions,
            dist_matrix=qk.distance_matrix(trajectory, positions),
            mask_matrix=mask,
        )

    dist_rows = qk.distance_rows(trajectory, positions)

    mask_rows: List[List[int]] = []
    for bit_values in qk.bit_values:
        mrow = [0] * n
        for activity, bit in bit_values.items():
            ps = posting.get(activity)
            if ps:
                for p in ps:
                    mrow[col_of[p]] |= bit
        mask_rows.append(mrow)
    return CandidateArrays(positions, dist_rows=dist_rows, mask_rows=mask_rows)


# ----------------------------------------------------------------------
# Dmm — Lemma 1 over the prepared arrays
# ----------------------------------------------------------------------
def _dmm_all_single_np(qk: QueryKernel, cand: CandidateArrays, stats=None) -> float:
    """``Dmm`` over the array-form candidate: each row is one masked min.

    Mirrors the scalar fold exactly, including its stats accounting — the
    per-row candidate count is added *before* the empty-row early exit, so
    ``point_match_points`` matches the scalar path even on misses.  ``min``
    is order-independent for floats, so the value is bit-identical.
    """
    dist = cand.dist_matrix
    mask = cand.mask_matrix
    total = 0.0
    for i in range(qk.m):
        mi = mask[i]
        count = int(mi.sum())
        if stats is not None:
            stats.point_match_points += count
        if count == 0:
            return INFINITY
        total += float(dist[i][mi].min())
    return total


def dmm_prepared(qk: QueryKernel, cand: CandidateArrays, stats=None) -> float:
    """``Dmm(Q, Tr)``: per-query-point Algorithm 3 over the distance rows.

    Single-activity query points (the common case) reduce to a plain
    ``min`` over the candidate columns — no cover DP at all; when *every*
    point is single-activity the whole computation stays in NumPy
    (:func:`_dmm_all_single_np`).
    """
    if cand.mask_matrix is not None:
        return _dmm_all_single_np(qk, cand, stats)
    total = 0.0
    for i in range(qk.m):
        row = cand.dist_rows[i]
        mrow = cand.mask_rows[i]
        cols = [c for c, pm in enumerate(mrow) if pm]
        if stats is not None:
            stats.point_match_points += len(cols)
        if not cols:
            return INFINITY
        if qk.n_bits[i] == 1:
            d = min(row[c] for c in cols)
        else:
            # Stable sort on distance keeps equal-distance columns in
            # ascending position order — the scalar (dist, pos) tie-break.
            order = sorted(cols, key=row.__getitem__)
            d = _mpm_scan(row, mrow, order, qk.n_bits[i])
        if d == INFINITY:
            return INFINITY
        total += d
    return total


# ----------------------------------------------------------------------
# Dmom — Algorithm 4 as a single left-to-right scan per row
# ----------------------------------------------------------------------
def _dmom_row_single(prev: List[float], row: List[float], mrow: List[int]) -> List[float]:
    """One single-activity Dmom row as the scalar recurrence.

    Covers are single points, so the cover state ``A`` collapses to
    ``(a0, best)``: ``a0`` is the running prefix-min of ``prev[1..j]``
    (the cheapest place a new segment may start) and ``best`` the best
    ``a0 + d`` seen so far.  Kept as the oracle for the NumPy row below.
    """
    n = len(row)
    cur = [INFINITY] * (n + 1)
    a0 = INFINITY
    best = INFINITY
    for j in range(1, n + 1):
        pj = prev[j]
        if pj < a0:
            a0 = pj
        if mrow[j - 1]:
            v = a0 + row[j - 1]
            if v < best:
                best = v
        cur[j] = best
    return cur


def _dmom_row_single_np(prev: List[float], row: List[float], mrow: List[int]) -> List[float]:
    """The same single-activity row as three NumPy array ops (the
    ROADMAP's row-vectorized Dmom).

    ``a0[j] = min(prev[1..j])`` is one ``minimum.accumulate``; the
    candidate values ``a0 + d`` exist only where the point carries the
    activity (``inf`` elsewhere); ``cur[j] = min over j' <= j`` is a
    second accumulate.  Every addition and min is the one the scalar
    recurrence performs, in the same order, so the row is bit-identical —
    the parity suite asserts exact equality, not approximate.

    This list-in/list-out form exists for the parity tests and the mixed
    single/multi-activity DP; the hot path is :func:`_dmom_all_single_np`,
    which keeps the whole DP in arrays (per-row list↔array conversion
    costs more than the accumulate it feeds).
    """
    a0 = _np.minimum.accumulate(_np.asarray(prev[1:], dtype=float))
    d = _np.asarray(row, dtype=float)
    mask = _np.asarray(mrow, dtype=bool)
    vals = _np.where(mask, a0 + d, INFINITY)
    cur = _np.minimum.accumulate(vals).tolist()
    cur.insert(0, INFINITY)
    return cur


def _dmom_all_single_np(qk: "QueryKernel", cand: "CandidateArrays", threshold: float) -> float:
    """The whole Dmom DP as array ops when *every* query point carries a
    single activity (the paper's most common query shape).

    The candidate is already in array form (:func:`prepare_candidate`
    never built lists for it), and each of the ``|Q|`` rows is two
    ``minimum.accumulate`` passes and one masked add — the
    prefix/segment-min recurrence of :func:`_dmom_row_single_np` without
    the per-row list round-trips.  ``prev`` holds ``G(i-1, 1..n)``; the
    guardian row ``G(0, *) = 0`` is the initial zeros.  The Lemma-4 row
    threshold exit is unchanged.
    """
    dist = cand.dist_matrix
    mask = cand.mask_matrix
    prev = _np.zeros(dist.shape[1], dtype=float)
    for i in range(qk.m):
        a0 = _np.minimum.accumulate(prev)
        vals = _np.where(mask[i], a0 + dist[i], INFINITY)
        cur = _np.minimum.accumulate(vals)
        if cur[-1] > threshold:
            return INFINITY
        prev = cur
    return float(prev[-1])


def dmom_prepared(
    qk: QueryKernel, cand: CandidateArrays, threshold: float = INFINITY
) -> float:
    """``Dmom(Q, Tr)`` over the prepared arrays.

    The scalar Algorithm 4 evaluates ``G(i, j) = min_k G(i-1, k) +
    Dmpm(q_i, Tr[k, j])`` by rebuilding an incremental point-match table
    per cell — O(n²) table updates per row.  Here each row is one O(n·2^b)
    scan: ``A[t]`` is the cheapest ``G(i-1, k) + (cover of mask t by
    points k..j)`` over all segment starts ``k ≤ j``.  Folding point ``j``
    in updates ``A[0]`` with ``G(i-1, j)`` (the empty cover can start a
    new segment at ``j``) and then relaxes ``A[t] ← A[t & ~mask_j] + d_j``
    in ascending mask order; ``G(i, j)`` is ``A[full]`` after the fold.
    This is the same min-cost-cover relaxation as the table (a point used
    twice can never beat using it once, costs being non-negative), with
    the segment base folded into ``A[0]`` as a running prefix minimum.

    The paper's row-level threshold early-exit (Lemma 4) is preserved:
    when a finished row's last entry exceeds *threshold* the candidate can
    never beat the current k-th best, and the scan aborts.
    """
    if cand.mask_matrix is not None:
        # Row-vectorized fast path: every row is the single-activity
        # recurrence, so the whole DP stays in arrays (bit-identical to
        # the scalar fold below — the parity suite asserts exact equality).
        return _dmom_all_single_np(qk, cand, threshold)
    n = len(cand.positions)
    prev = [0.0] * (n + 1)  # G(0, *) = 0 — guardian row
    for i in range(qk.m):
        row = cand.dist_rows[i]
        mrow = cand.mask_rows[i]
        if qk.n_bits[i] == 1:
            # Covers are single points: A collapses to (prefix-min of
            # prev, best value so far).
            cur = _dmom_row_single(prev, row, mrow)
        else:
            cur = [INFINITY] * (n + 1)
            size = 1 << qk.n_bits[i]
            full = size - 1
            a = [INFINITY] * size
            for j in range(1, n + 1):
                pj = prev[j]
                if pj < a[0]:
                    a[0] = pj
                pm = mrow[j - 1]
                if pm:
                    d = row[j - 1]
                    for t in range(1, size):
                        if t & pm:
                            v = a[t & ~pm] + d
                            if v < a[t]:
                                a[t] = v
                cur[j] = a[full]
        if cur[n] > threshold:
            return INFINITY
        prev = cur
    return prev[n]


# ----------------------------------------------------------------------
# Block kernel — one flat tensor per validation round
# ----------------------------------------------------------------------
class CandidateBlock:
    """One validation round's candidates in flat concatenated form.

    ``big`` is the ``[|Q|, N]`` distance matrix over the concatenation of
    every candidate's relevant positions — built by a **single**
    Euclidean/Haversine evaluation per round — and ``mask`` the same-shape
    per-query-point activity-overlap bitmasks (``rel`` caches ``mask !=
    0``).  ``seg_of``/``lengths`` map a candidate to its column segment;
    candidates with no relevant position keep an empty segment so outputs
    align with the input order.  ``missing_rows`` lists ``(candidate,
    row)`` pairs where some query activity of the row never occurs in the
    candidate — recorded during the build, where the posting lists are in
    hand, because such a row can never be covered (Algorithm 3 returns
    ``inf``) even when other activities give it relevant points.
    """

    __slots__ = (
        "n",
        "lengths",
        "positions",
        "seg_of",
        "flat_ids",
        "seg_starts",
        "total",
        "big",
        "mask",
        "rel",
        "missing_rows",
    )

    def __init__(
        self, n, lengths, positions, seg_of, flat_ids, seg_starts, total,
        big, mask, missing_rows,
    ) -> None:
        self.n = n
        self.lengths = lengths
        self.positions = positions
        self.seg_of = seg_of
        self.flat_ids = flat_ids
        self.seg_starts = seg_starts
        self.total = total
        self.big = big
        self.mask = mask
        self.rel = mask != 0
        self.missing_rows = missing_rows

    def candidate_arrays(self, c: int) -> Optional[CandidateArrays]:
        """The per-candidate view of candidate *c* — the list-form
        :class:`CandidateArrays` the vectorized kernel would have built,
        sliced back out of the block (``None`` for a candidate with no
        relevant points, mirroring :func:`prepare_candidate`)."""
        n = self.lengths[c]
        if n == 0:
            return None
        s = self.seg_of[c]
        return CandidateArrays(
            list(self.positions[c]),
            dist_rows=self.big[:, s : s + n].tolist(),
            mask_rows=self.mask[:, s : s + n].tolist(),
        )


def prepare_block(qk: QueryKernel, items: Sequence[tuple]) -> CandidateBlock:
    """Stack one round's candidates into a :class:`CandidateBlock`.

    *items* is a sequence of ``(trajectory, posting)`` pairs where
    *posting* is the candidate's APL record from the round's batched fetch
    (``None`` falls back to the trajectory's in-memory posting lists — the
    APL persists exactly that mapping, so both images agree).

    Per-candidate Python work is limited to what the per-candidate kernel
    paid too (position unions, column resolution); the distance evaluation
    is a single call over the concatenated relevant points, and the
    bitmask pattern one ``bincount`` scatter for the whole round.
    """
    from repro.index.gat.apl import union_positions

    m = qk.m
    all_activities = qk.query.all_activities
    n_items = len(items)
    positions: List[Tuple[int, ...]] = []
    postings = []
    for trajectory, posting in items:
        if posting is None:
            posting = trajectory.posting_lists
        postings.append(posting)
        positions.append(union_positions(posting, all_activities))
    lengths = [len(p) for p in positions]
    seg_of = [-1] * n_items
    flat_ids: List[int] = []
    seg_starts: List[int] = []
    total = 0
    for c, n in enumerate(lengths):
        if n:
            seg_of[c] = total
            flat_ids.append(c)
            seg_starts.append(total)
            total += n

    if total == 0:
        return CandidateBlock(
            n_items, lengths, positions, seg_of, flat_ids, seg_starts, total,
            _np.zeros((m, 0)), _np.zeros((m, 0), dtype=_np.int64), [],
        )

    if qk._mode == "generic":
        big = _np.empty((m, total))
        for c in flat_ids:
            s = seg_of[c]
            big[:, s : s + lengths[c]] = qk._generic_rows(
                items[c][0], list(positions[c])
            )
    else:
        big = qk.distance_matrix_for(
            _np.concatenate(
                [items[c][0].coord_array()[list(positions[c])] for c in flat_ids]
            )
        )

    # Bitmask scatter: flat (row * N + column, bit) pairs for the whole
    # round, combined in one bincount (each (row, column) sees each bit at
    # most once, so summation equals the bitwise OR).
    flat_idx: List[int] = []
    flat_bit: List[int] = []
    missing_rows: List[Tuple[int, int]] = []
    for c in flat_ids:
        posting = postings[c]
        s = seg_of[c]
        col_of = {p: s + j for j, p in enumerate(positions[c])}
        # An activity shared by several query points scatters into several
        # rows; resolve its columns once per candidate.
        cols_of_activity: Dict[int, List[int]] = {}
        for i, bit_values in enumerate(qk.bit_values):
            base = i * total
            for activity, bit in bit_values.items():
                cols = cols_of_activity.get(activity)
                if cols is None:
                    ps = posting.get(activity)
                    cols = cols_of_activity[activity] = (
                        [col_of[p] for p in ps] if ps else []
                    )
                if cols:
                    flat_idx.extend([base + col for col in cols])
                    flat_bit.extend([bit] * len(cols))
                else:
                    missing_rows.append((c, i))
    mask = _np.bincount(
        _np.asarray(flat_idx),
        weights=_np.asarray(flat_bit, dtype=float),
        minlength=m * total,
    ).astype(_np.int64).reshape(m, total)
    return CandidateBlock(
        n_items, lengths, positions, seg_of, flat_ids, seg_starts, total,
        big, mask, missing_rows,
    )


def block_dmm_all_single(qk: QueryKernel, items: Sequence[tuple], stats=None):
    """``Dmm`` for one round of an all-single-activity query, without ever
    materialising a :class:`CandidateBlock`.

    ``Dmm`` is order-free, so the candidate columns need no position
    dedup: each candidate contributes its posting arrays for the query's
    distinct activities **concatenated as-is** (a point carrying two query
    activities simply appears twice — duplicates never move a minimum).
    Relevance is then a single code comparison (``row activity ==
    column activity``) instead of a bitmask scatter, per-row candidate
    counts are plain posting lengths (postings are distinct by
    construction), and the per-row minima fall out of one masked
    segment-``reduceat``.  Values and counter accounting are bit-identical
    to the per-candidate all-single path.  (The order-sensitive DP cannot
    ride this layout — duplicated columns break its prefix semantics — so
    :func:`block_dmom` keeps the deduplicated block.)
    """
    m = qk.m
    acts = [next(iter(bit_values)) for bit_values in qk.bit_values]
    distinct = list(dict.fromkeys(acts))
    code_of = {a: i for i, a in enumerate(distinct)}
    row_codes = [code_of[a] for a in acts]

    C = len(items)
    counts_rows: List[List[int]] = []
    pos_chunks = []
    code_chunks = []
    coord_chunks = []
    flat_ids: List[int] = []
    seg_starts: List[int] = []
    total = 0
    base_codes = _np.arange(len(distinct))
    for c, (trajectory, _posting) in enumerate(items):
        arrays = trajectory.posting_arrays()
        parts = [arrays.get(a) for a in distinct]
        lens = [0 if ps is None else len(ps) for ps in parts]
        counts_rows.append([lens[code] for code in row_codes])
        n = sum(lens)
        if n == 0:
            continue
        present = [ps for ps in parts if ps is not None and len(ps)]
        pos = present[0] if len(present) == 1 else _np.concatenate(present)
        pos_chunks.append(pos)
        code_chunks.append(_np.repeat(base_codes, lens))
        coord_chunks.append(trajectory.coord_array()[pos])
        flat_ids.append(c)
        seg_starts.append(total)
        total += n

    counts = _np.asarray(counts_rows, dtype=_np.intp).reshape(C, m)
    if stats is not None:
        invalid = counts == 0
        has_invalid = invalid.any(axis=1)
        limit = _np.where(has_invalid, invalid.argmax(axis=1), m - 1)
        cumulative = counts.cumsum(axis=1)
        stats.point_match_points += int(cumulative[_np.arange(C), limit].sum())

    rowvals = _np.full((C, m), INFINITY)
    if total:
        big = qk.distance_matrix_for(_np.concatenate(coord_chunks))
        all_codes = _np.concatenate(code_chunks)
        masked = _np.where(
            _np.asarray(row_codes)[:, None] == all_codes[None, :], big, INFINITY
        )
        rowvals[flat_ids, :] = _np.minimum.reduceat(masked, seg_starts, axis=1).T
    # Left-to-right row fold: the scalar path's float addition order.
    dmm = rowvals[:, 0].copy()
    for i in range(1, m):
        dmm = dmm + rowvals[:, i]
    return dmm


def _set_partitions(n_bits: int) -> List[Tuple[int, ...]]:
    """All partitions of ``n_bits`` bits into non-empty groups, each group
    a bitmask (Bell(n_bits) partitions: 1, 2, 5, 15, 52 for 1..5 bits —
    the paper bounds ``|q.Φ|`` at 5).  Memoised; used by the block cover.
    """
    cached = _PARTITIONS.get(n_bits)
    if cached is None:
        parts: List[List[int]] = [[]]
        for b in range(n_bits):
            bit = 1 << b
            grown: List[List[int]] = []
            for part in parts:
                for g in range(len(part)):
                    grown.append(part[:g] + [part[g] | bit] + part[g + 1 :])
                grown.append(part + [bit])
            parts = grown
        cached = _PARTITIONS[n_bits] = [tuple(p) for p in parts]
    return cached


_PARTITIONS: Dict[int, List[Tuple[int, ...]]] = {}


def _block_stage(qk: QueryKernel, block: CandidateBlock, stats):
    """Exact per-candidate ``Dmm`` over the block, plus the
    ``point_match_points`` accounting (a pure function of the relevance
    pattern, identical to the per-candidate scans' counting and
    independent of everything else).

    Single-activity rows are one masked segment-min (bit-identical to the
    per-candidate path).  Multi-activity rows use the set-partition
    decomposition of the minimum cover: the optimal cover equals, over all
    partitions of the row's activity bits into groups, the cheapest sum of
    per-group minima (``M[g]`` = nearest relevant point whose bitmask
    covers group ``g``) — any cover induces the partition that assigns
    each bit to the point covering it, and conversely each partition's
    group minima form a cover.  Every ``M[g]`` is one masked
    segment-``reduceat``, so the whole round's covers need no
    per-candidate work at all.  Sums over 3+ groups may re-associate
    relative to the per-candidate scan's fold order — the same last-ulp
    class as the documented vectorized-vs-scalar sources.
    """
    m = qk.m
    C = block.n
    rowvals = _np.full((C, m), INFINITY)
    counts = _np.zeros((C, m), dtype=_np.intp)
    if block.total:
        starts = block.seg_starts
        flat = block.flat_ids
        masked = _np.where(block.rel, block.big, INFINITY)
        rowmins = _np.minimum.reduceat(masked, starts, axis=1)  # [m, F]
        counts[flat, :] = _np.add.reduceat(
            block.rel, starts, axis=1, dtype=_np.intp
        ).T
        for i in range(m):
            if qk.n_bits[i] == 1:
                rowvals[flat, i] = rowmins[i]
                continue
            # Group minima: M[g] = min dist over columns whose bitmask
            # covers g; then the partition decomposition.
            mask_row = block.mask[i]
            dist_row = block.big[i]
            full = (1 << qk.n_bits[i]) - 1
            group_min = [None] * (full + 1)
            for g in range(1, full + 1):
                covered = (mask_row & g) == g
                group_min[g] = _np.minimum.reduceat(
                    _np.where(covered, dist_row, INFINITY), starts
                )
            best = None
            for partition in _set_partitions(qk.n_bits[i]):
                value = group_min[partition[0]]
                for g in partition[1:]:
                    value = value + group_min[g]
                best = value if best is None else _np.minimum(best, value)
            rowvals[flat, i] = best
    invalid = counts == 0
    for c, i in block.missing_rows:
        invalid[c, i] = True
    if stats is not None:
        # Identical to the per-candidate scan, which adds each row's
        # candidate count up to and including the first infeasible row.
        has_invalid = invalid.any(axis=1)
        limit = _np.where(has_invalid, invalid.argmax(axis=1), m - 1)
        cumulative = counts.cumsum(axis=1)
        stats.point_match_points += int(cumulative[_np.arange(C), limit].sum())
    rowvals[invalid] = INFINITY
    # Left-to-right row fold: the scalar path's float addition order.
    dmm = rowvals[:, 0].copy()
    for i in range(1, m):
        dmm = dmm + rowvals[:, i]
    return dmm


def block_dmm(
    qk: QueryKernel,
    block: CandidateBlock,
    stats=None,
    threshold: float = INFINITY,
    k: Optional[int] = None,
):
    """Exact ``Dmm`` for every block candidate, as a ``[C]`` float array.

    The partition-decomposed cover (see :func:`_block_stage`) computes
    every candidate's value in whole-round array ops, so — unlike a
    per-candidate walk — nothing is saved by abandoning candidates here
    and every value is returned exactly as the per-candidate path would
    (``inf`` only where ``Dmm`` truly is ``inf``).  *threshold* / *k* are
    accepted for signature symmetry with :func:`block_dmom`, which does
    abandon per-candidate DP work.
    """
    del threshold, k  # whole-round array ops: nothing to abandon
    return _block_stage(qk, block, stats)


def _block_dmom_all_single(
    qk: QueryKernel, block: CandidateBlock, todo: List[int], threshold: float
):
    """The all-single-activity Dmom DP for every surviving candidate at
    once: each row is the two-``minimum.accumulate`` recurrence of
    :func:`_dmom_row_single_np` over a ``[survivors, Lmax]`` matrix built
    from the survivors' block segments.

    Padding is inert: padded columns are masked out (their ``vals`` are
    ``inf``) and the running row minimum carries each candidate's last
    valid value into ``cur[:, -1]``, so every candidate's result — and its
    Lemma-4 row threshold exit — is bit-identical to the per-candidate DP.
    """
    res = _np.full(block.n, INFINITY)
    if not todo:
        return res
    lmax = max(block.lengths[c] for c in todo)
    t_count = len(todo)
    dist = _np.full((t_count, qk.m, lmax), INFINITY)
    nz = _np.zeros((t_count, qk.m, lmax), dtype=bool)
    for t, c in enumerate(todo):
        s = block.seg_of[c]
        n = block.lengths[c]
        dist[t, :, :n] = block.big[:, s : s + n]
        nz[t, :, :n] = block.rel[:, s : s + n]
    ids = _np.asarray(todo)
    active = _np.arange(t_count)
    prev = _np.zeros((t_count, lmax))
    for i in range(qk.m):
        a0 = _np.minimum.accumulate(prev, axis=1)
        vals = _np.where(nz[active, i, :], a0 + dist[active, i, :], INFINITY)
        cur = _np.minimum.accumulate(vals, axis=1)
        alive = cur[:, -1] <= threshold
        if not alive.all():
            active = active[alive]
            if len(active) == 0:
                return res
            cur = cur[alive]
        prev = cur
    res[ids[active]] = prev[:, -1]
    return res


def block_dmom(
    qk: QueryKernel,
    block: CandidateBlock,
    stats=None,
    threshold: float = INFINITY,
    k: Optional[int] = None,
):
    """``Dmom`` for every block candidate — blockwise gate, then the DP.

    The Lemma-3 gate is the whole-round block ``Dmm``; candidates whose
    gate exceeds the abandonment threshold are ``inf`` before any
    per-candidate work, exactly like the per-candidate gate.
    All-single-activity queries then run the batched DP; mixed queries
    walk the survivors in ascending-gate order through the per-candidate
    :func:`dmom_prepared` DP — the identical computation the vectorized
    kernel performs — so that, with *k* set, the abandonment threshold
    tightens to the k-th smallest ``Dmom`` seen so far and later
    candidates (whose gates are lower bounds on their ``Dmom``) are
    abandoned against it.  Tightening only ever happens on ``Dmom`` values
    — the ranked metric — never on the ``Dmm`` gate values, whose k-th
    could undercut the final ``Dmom`` k-th and cost a true top-k member.

    Counter accounting (``point_match_points``) covers every candidate,
    exactly as the per-candidate gate would have counted it.
    """
    gates = _block_stage(qk, block, stats)
    if qk.all_single:
        todo = _np.nonzero(_np.isfinite(gates) & (gates <= threshold))[0]
        return _block_dmom_all_single(qk, block, todo.tolist(), threshold)
    out = _np.full(block.n, INFINITY)
    order = _np.argsort(gates, kind="stable").tolist()
    tau = threshold
    heap: List[float] = []
    for c in order:
        gate = gates[c]
        if gate > tau or gate == INFINITY:
            break  # ascending gates: nothing further can beat the k-th
        cand = block.candidate_arrays(c)
        if cand is None:  # unreachable for gated candidates; stay exact
            continue
        value = dmom_prepared(qk, cand, tau)
        out[c] = value
        if k is not None and value != INFINITY:
            heapq.heappush(heap, -value)
            if len(heap) > k:
                heapq.heappop(heap)
            if len(heap) == k and -heap[0] < tau:
                tau = -heap[0]
    return out
