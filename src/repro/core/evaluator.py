"""Shared candidate scoring: the code path every searcher funnels through.

Section VII-A of the paper: "the four algorithms only differ in the index
structure and how they retrieve candidates, and they will use the same
algorithms to compute the minimum match distance (Section V-D) and minimum
order-sensitive match distance (Section VI-C)".  :class:`MatchEvaluator` is
that shared tail — GAT, IL, RT and IRT all call into it, so performance
differences between searchers are attributable to candidate retrieval and
pruning alone.

The evaluator now fronts three interchangeable kernels:

* ``'scalar'`` — the seed implementations (Algorithm 3's sorted scan over
  :class:`~repro.core.match.PointMatchTable`, Algorithm 4's incremental
  DP), kept verbatim as the correctness oracles;
* ``'vectorized'`` — :mod:`repro.core.kernels`: one NumPy distance matrix
  per candidate plus array set-cover/DP scans;
* ``'block'`` — the round-batched tensors of
  :class:`~repro.core.kernels.CandidateBlock` (the default when NumPy is
  importable, ``kernel='auto'``): a whole validation round is scored
  through :meth:`MatchEvaluator.dmm_batch` / :meth:`dmom_batch` — one
  distance evaluation, block set-cover lower bounds, and early
  per-candidate abandonment against the running k-th threshold.  The
  per-candidate entry points (:meth:`dmm` / :meth:`dmom`) remain fully
  functional under ``'block'`` and run the vectorized per-candidate path.

All kernels produce the same distances (to the last ulp — see the
kernels module docstring for the rounding sources) and bump the same
counters, so they are swappable under any searcher without moving a
benchmark's rankings or pruning numbers.  Per-query
state (the activity→bit maps, the query-side distance precomputation, and
— scalar path included — the Haversine radians of the query locations) is
prepared once per query, not once per candidate or per metric call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core import kernels
from repro.core.kernels import QueryKernel, dmm_prepared, dmom_prepared, resolve_kernel
from repro.core.match import (
    INFINITY,
    minimum_point_match,
    minimum_point_match_distance,
)
from repro.core.order_match import (
    minimum_order_match,
    minimum_order_match_distance,
    order_feasible,
)
from repro.core.query import Query, QueryPoint
from repro.model.distance import DistanceMetric, EuclideanDistance, prepare_metric
from repro.model.trajectory import ActivityTrajectory


@dataclass(slots=True)
class EvaluatorStats:
    """Work counters for the scoring stage."""

    dmm_evaluations: int = 0
    dmom_evaluations: int = 0
    point_match_points: int = 0

    def reset(self) -> None:
        self.dmm_evaluations = 0
        self.dmom_evaluations = 0
        self.point_match_points = 0


class MatchEvaluator:
    """Computes ``Dmm`` / ``Dmom`` / ``Dbm`` for (query, trajectory) pairs.

    Parameters
    ----------
    metric:
        Distance strategy; defaults to Euclidean.
    kernel:
        ``'auto'`` (vectorized when NumPy is available — the default),
        ``'scalar'``, or ``'vectorized'`` (raises without NumPy).
    """

    def __init__(
        self, metric: Optional[DistanceMetric] = None, kernel: str = "auto"
    ) -> None:
        self.metric: DistanceMetric = metric or EuclideanDistance()
        self.kernel = resolve_kernel(kernel)
        self.stats = EvaluatorStats()
        # (query, QueryKernel | None, prepared scalar metric) — rebuilt when
        # the query object changes.  Stored as one tuple so concurrent use
        # of a shared evaluator can at worst rebuild redundantly, never mix
        # one query's preparation with another's.
        self._qstate: Optional[tuple] = None

    # ------------------------------------------------------------------
    # Per-query preparation
    # ------------------------------------------------------------------
    def _state_for(self, query: Query) -> tuple:
        state = self._qstate
        if state is None or state[0] is not query:
            qkernel = (
                QueryKernel(query, self.metric)
                if self.kernel in ("vectorized", "block")
                else None
            )
            scalar_metric = prepare_metric(self.metric, [q.coord for q in query])
            state = (query, qkernel, scalar_metric)
            self._qstate = state
        return state

    # ------------------------------------------------------------------
    # Candidate point sets (the in-memory view of the APL)
    # ------------------------------------------------------------------
    def _candidate_points(self, trajectory: ActivityTrajectory, q: QueryPoint):
        """``CP`` for one query point: positions from the union of the
        trajectory's posting lists over ``q.Φ`` (Algorithm 3, line 1)."""
        posting = trajectory.posting_lists
        positions: set[int] = set()
        for activity in q.activities:
            positions.update(posting.get(activity, ()))
        self.stats.point_match_points += len(positions)
        return [(pos, trajectory.points[pos]) for pos in sorted(positions)]

    # ------------------------------------------------------------------
    # Distances
    # ------------------------------------------------------------------
    def dmpm(self, q: QueryPoint, trajectory: ActivityTrajectory) -> float:
        """Minimum point match distance for a single query point."""
        return minimum_point_match_distance(
            q.coord, q.activities, self._candidate_points(trajectory, q), self.metric
        )

    def dmm(self, query: Query, trajectory: ActivityTrajectory) -> float:
        """``Dmm(Q, Tr)`` via Lemma 1: the sum of per-query-point ``Dmpm``.

        Returns ``inf`` as soon as any query point has no point match.
        """
        self.stats.dmm_evaluations += 1
        _q, qkernel, metric = self._state_for(query)
        if qkernel is not None:
            cand = kernels.prepare_candidate(qkernel, trajectory)
            if cand is None:
                return INFINITY
            return dmm_prepared(qkernel, cand, self.stats)
        return self._dmm_scalar(query, trajectory, metric)

    def _dmm_scalar(
        self, query: Query, trajectory: ActivityTrajectory, metric: DistanceMetric
    ) -> float:
        total = 0.0
        for q in query:
            d = minimum_point_match_distance(
                q.coord, q.activities, self._candidate_points(trajectory, q), metric
            )
            if d == INFINITY:
                return INFINITY
            total += d
        return total

    def dmm_explained(
        self, query: Query, trajectory: ActivityTrajectory
    ) -> Tuple[float, Tuple[Tuple[int, ...], ...]]:
        """``Dmm`` plus the matched positions per query point (always the
        scalar tables — reconstruction needs the parent pointers)."""
        self.stats.dmm_evaluations += 1
        _q, _qk, metric = self._state_for(query)
        total = 0.0
        matches: List[Tuple[int, ...]] = []
        for q in query:
            d, positions = minimum_point_match(
                q.coord, q.activities, self._candidate_points(trajectory, q), metric
            )
            if d == INFINITY:
                return INFINITY, ()
            total += d
            matches.append(positions)
        return total, tuple(matches)

    def dmom(
        self,
        query: Query,
        trajectory: ActivityTrajectory,
        threshold: float = INFINITY,
        check_order: bool = True,
    ) -> float:
        """``Dmom(Q, Tr)`` via Algorithm 4, with three pruning layers:

        1. the MIB order-feasibility check (Section VI-B);
        2. the ``Dmm`` gate — by Lemma 3 ``Dmm <= Dmom``, so a candidate
           whose cheap ``Dmm`` already exceeds the running k-th best
           ``Dmom`` can skip the expensive DP entirely;
        3. the DP's own row-level threshold early-exit (Lemma 4).

        The vectorized kernel prepares the candidate's distance matrix
        once and reuses it for both the ``Dmm`` gate and the DP.
        """
        self.stats.dmom_evaluations += 1
        if check_order and not order_feasible(trajectory, query):
            return INFINITY
        _q, qkernel, metric = self._state_for(query)
        if qkernel is not None:
            cand = kernels.prepare_candidate(qkernel, trajectory)
            self.stats.dmm_evaluations += 1  # the gate is a Dmm evaluation
            if cand is None:
                return INFINITY
            lower = dmm_prepared(qkernel, cand, self.stats)
            if lower == INFINITY or lower > threshold:
                return INFINITY
            return dmom_prepared(qkernel, cand, threshold)
        self.stats.dmm_evaluations += 1
        lower = self._dmm_scalar(query, trajectory, metric)
        if lower == INFINITY or lower > threshold:
            return INFINITY
        return minimum_order_match_distance(query, trajectory, metric, threshold)

    # ------------------------------------------------------------------
    # Block scoring — one call per validation round (kernel='block')
    # ------------------------------------------------------------------
    def _block_kernel(self, query: Query) -> QueryKernel:
        """The per-query :class:`QueryKernel` the batch entry points run
        on, with a clear error for the scalar kernel (the per-candidate
        :meth:`dmm`/:meth:`dmom` siblings are the scalar-capable API)."""
        _q, qkernel, _metric = self._state_for(query)
        if qkernel is None:
            raise ValueError(
                "batch scoring requires kernel='block' or 'vectorized' "
                f"(this evaluator runs {self.kernel!r}); call dmm/dmom per "
                "candidate instead"
            )
        return qkernel

    def dmm_batch(
        self,
        query: Query,
        items,
        threshold: float = INFINITY,
        k: Optional[int] = None,
    ) -> List[float]:
        """``Dmm`` for one validation round's candidates in one shot.

        *items* is a sequence of ``(trajectory, posting)`` pairs (posting =
        the candidate's batched-fetch APL record, or ``None``).  Counter
        semantics match calling :meth:`dmm` once per candidate exactly,
        and so do the values — the whole-round array formulations
        (:func:`~repro.core.kernels.block_dmm` /
        :func:`~repro.core.kernels.block_dmm_all_single`) compute every
        candidate's exact ``Dmm``, so *threshold* / *k* currently have
        nothing left to abandon here (they gate real per-candidate work in
        :meth:`dmom_batch`).
        """
        self.stats.dmm_evaluations += len(items)
        if not items:
            return []
        qkernel = self._block_kernel(query)
        if qkernel.all_single and qkernel._mode != "generic":
            # Order-free Dmm needs no position dedup: the duplicated
            # activity-segment layout skips block preparation entirely.
            return kernels.block_dmm_all_single(qkernel, items, self.stats).tolist()
        block = kernels.prepare_block(qkernel, items)
        return kernels.block_dmm(qkernel, block, self.stats, threshold, k=k).tolist()

    def dmom_batch(
        self,
        query: Query,
        items,
        threshold: float = INFINITY,
        check_order: bool = True,
        k: Optional[int] = None,
    ) -> List[float]:
        """``Dmom`` for one validation round's candidates in one shot.

        The same three pruning layers as :meth:`dmom` — MIB feasibility
        (when *check_order*), the Lemma-3 ``Dmm`` gate, and the DP's
        Lemma-4 row exit — applied blockwise: the gate is one
        :func:`~repro.core.kernels.block_dmm` call whose abandonment drops
        candidates before any per-candidate DP work (the gate never
        tightens on ``Dmm`` values — the ranked metric here is ``Dmom``).
        Counters are identical to the per-candidate loop (the gate bumps
        one ``Dmm`` evaluation per order-feasible candidate, exactly like
        :meth:`dmom`).
        """
        self.stats.dmom_evaluations += len(items)
        if not items:
            return []
        if check_order:
            feasible = [order_feasible(tr, query) for tr, _posting in items]
        else:
            feasible = [True] * len(items)
        sub = [item for item, ok in zip(items, feasible) if ok]
        self.stats.dmm_evaluations += len(sub)  # the gate, one per candidate
        if not sub:
            return [INFINITY] * len(items)
        qkernel = self._block_kernel(query)
        block = kernels.prepare_block(qkernel, sub)
        values = iter(
            kernels.block_dmom(qkernel, block, self.stats, threshold, k=k).tolist()
        )
        return [next(values) if ok else INFINITY for ok in feasible]

    def dmom_explained(
        self, query: Query, trajectory: ActivityTrajectory
    ) -> Tuple[float, Tuple[Tuple[int, ...], ...]]:
        """``Dmom`` plus the order-sensitive match positions."""
        self.stats.dmom_evaluations += 1
        if not order_feasible(trajectory, query):
            return INFINITY, ()
        _q, _qk, metric = self._state_for(query)
        return minimum_order_match(query, trajectory, metric)

    def best_match_distance(self, query: Query, trajectory: ActivityTrajectory) -> float:
        """``Dbm(Q, Tr)`` — the activity-blind best match distance of the
        RT baseline (Section III-B): sum over query points of the distance
        to the nearest trajectory point.  Lower-bounds ``Dmm`` (Lemma 2)."""
        _q, _qk, metric = self._state_for(query)
        total = 0.0
        for q in query:
            total += min(metric(q.coord, p.coord) for p in trajectory)
        return total
