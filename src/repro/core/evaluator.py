"""Shared candidate scoring: the code path every searcher funnels through.

Section VII-A of the paper: "the four algorithms only differ in the index
structure and how they retrieve candidates, and they will use the same
algorithms to compute the minimum match distance (Section V-D) and minimum
order-sensitive match distance (Section VI-C)".  :class:`MatchEvaluator` is
that shared tail — GAT, IL, RT and IRT all call into it, so performance
differences between searchers are attributable to candidate retrieval and
pruning alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.match import (
    INFINITY,
    minimum_point_match,
    minimum_point_match_distance,
)
from repro.core.order_match import (
    minimum_order_match,
    minimum_order_match_distance,
    order_feasible,
)
from repro.core.query import Query, QueryPoint
from repro.model.distance import DistanceMetric, EuclideanDistance
from repro.model.trajectory import ActivityTrajectory


@dataclass(slots=True)
class EvaluatorStats:
    """Work counters for the scoring stage."""

    dmm_evaluations: int = 0
    dmom_evaluations: int = 0
    point_match_points: int = 0

    def reset(self) -> None:
        self.dmm_evaluations = 0
        self.dmom_evaluations = 0
        self.point_match_points = 0


class MatchEvaluator:
    """Computes ``Dmm`` / ``Dmom`` / ``Dbm`` for (query, trajectory) pairs."""

    def __init__(self, metric: Optional[DistanceMetric] = None) -> None:
        self.metric: DistanceMetric = metric or EuclideanDistance()
        self.stats = EvaluatorStats()

    # ------------------------------------------------------------------
    # Candidate point sets (the in-memory view of the APL)
    # ------------------------------------------------------------------
    def _candidate_points(self, trajectory: ActivityTrajectory, q: QueryPoint):
        """``CP`` for one query point: positions from the union of the
        trajectory's posting lists over ``q.Φ`` (Algorithm 3, line 1)."""
        posting = trajectory.posting_lists
        positions: set[int] = set()
        for activity in q.activities:
            positions.update(posting.get(activity, ()))
        self.stats.point_match_points += len(positions)
        return [(pos, trajectory.points[pos]) for pos in sorted(positions)]

    # ------------------------------------------------------------------
    # Distances
    # ------------------------------------------------------------------
    def dmpm(self, q: QueryPoint, trajectory: ActivityTrajectory) -> float:
        """Minimum point match distance for a single query point."""
        return minimum_point_match_distance(
            q.coord, q.activities, self._candidate_points(trajectory, q), self.metric
        )

    def dmm(self, query: Query, trajectory: ActivityTrajectory) -> float:
        """``Dmm(Q, Tr)`` via Lemma 1: the sum of per-query-point ``Dmpm``.

        Returns ``inf`` as soon as any query point has no point match.
        """
        self.stats.dmm_evaluations += 1
        total = 0.0
        for q in query:
            d = self.dmpm(q, trajectory)
            if d == INFINITY:
                return INFINITY
            total += d
        return total

    def dmm_explained(
        self, query: Query, trajectory: ActivityTrajectory
    ) -> Tuple[float, Tuple[Tuple[int, ...], ...]]:
        """``Dmm`` plus the matched positions per query point."""
        self.stats.dmm_evaluations += 1
        total = 0.0
        matches: List[Tuple[int, ...]] = []
        for q in query:
            d, positions = minimum_point_match(
                q.coord, q.activities, self._candidate_points(trajectory, q), self.metric
            )
            if d == INFINITY:
                return INFINITY, ()
            total += d
            matches.append(positions)
        return total, tuple(matches)

    def dmom(
        self,
        query: Query,
        trajectory: ActivityTrajectory,
        threshold: float = INFINITY,
        check_order: bool = True,
    ) -> float:
        """``Dmom(Q, Tr)`` via Algorithm 4, with three pruning layers:

        1. the MIB order-feasibility check (Section VI-B);
        2. the ``Dmm`` gate — by Lemma 3 ``Dmm <= Dmom``, so a candidate
           whose cheap ``Dmm`` already exceeds the running k-th best
           ``Dmom`` can skip the expensive DP entirely;
        3. the DP's own row-level threshold early-exit (Lemma 4).
        """
        self.stats.dmom_evaluations += 1
        if check_order and not order_feasible(trajectory, query):
            return INFINITY
        lower = self.dmm(query, trajectory)
        if lower == INFINITY or lower > threshold:
            return INFINITY
        return minimum_order_match_distance(query, trajectory, self.metric, threshold)

    def dmom_explained(
        self, query: Query, trajectory: ActivityTrajectory
    ) -> Tuple[float, Tuple[Tuple[int, ...], ...]]:
        """``Dmom`` plus the order-sensitive match positions."""
        self.stats.dmom_evaluations += 1
        if not order_feasible(trajectory, query):
            return INFINITY, ()
        return minimum_order_match(query, trajectory, self.metric)

    def best_match_distance(self, query: Query, trajectory: ActivityTrajectory) -> float:
        """``Dbm(Q, Tr)`` — the activity-blind best match distance of the
        RT baseline (Section III-B): sum over query points of the distance
        to the nearest trajectory point.  Lower-bounds ``Dmm`` (Lemma 2)."""
        total = 0.0
        for q in query:
            total += min(self.metric(q.coord, p.coord) for p in trajectory)
        return total
