"""Core contribution of the paper: ATSQ/OATSQ queries and their algorithms.

Contents map directly onto the paper's sections:

* :mod:`repro.core.query` — query model (Section II).
* :mod:`repro.core.match` — minimum point match distance, Algorithm 3
  (Section V-D), plus brute-force oracles used by the test suite.
* :mod:`repro.core.order_match` — minimum order-sensitive match distance,
  Algorithm 4 and the MIB validation (Section VI).
* :mod:`repro.core.lower_bound` — the tight lower bound for unseen
  trajectories, Algorithm 2 (Section V-B).
* :mod:`repro.core.evaluator` — the shared candidate-scoring path used by
  GAT *and* all three baselines (Section VII-A notes all methods share the
  distance computations).
* :mod:`repro.core.context` — per-query execution state
  (:class:`SearchStats` counters + :class:`ExecutionContext`).
* :mod:`repro.core.pipeline` — the staged pipeline: candidate retrieval,
  the composable validation filter chain (TAS → APL → MIB), scoring.
* :mod:`repro.core.engine` — the best-first search framework, Algorithm 1
  (Section V), assembling the pipeline stages over the GAT index.
"""

from repro.core.query import Query, QueryPoint
from repro.core.match import (
    PointMatchTable,
    minimum_point_match,
    minimum_point_match_distance,
)
from repro.core.order_match import (
    matching_index_bounds,
    minimum_order_match_distance,
    order_feasible,
)
from repro.core.evaluator import MatchEvaluator
from repro.core.kernels import HAVE_NUMPY, resolve_kernel
from repro.core.results import SearchResult, TopKCollector
from repro.core.context import ExecutionContext, SearchStats
from repro.core.pipeline import (
    APLFilter,
    Candidate,
    CandidateRetriever,
    MIBFilter,
    ScoringStage,
    TASFilter,
    ValidationStage,
)
from repro.core.engine import EngineConfig, GATSearchEngine

__all__ = [
    "Query",
    "QueryPoint",
    "PointMatchTable",
    "minimum_point_match",
    "minimum_point_match_distance",
    "minimum_order_match_distance",
    "matching_index_bounds",
    "order_feasible",
    "MatchEvaluator",
    "HAVE_NUMPY",
    "resolve_kernel",
    "SearchResult",
    "TopKCollector",
    "EngineConfig",
    "GATSearchEngine",
    "SearchStats",
    "ExecutionContext",
    "Candidate",
    "CandidateRetriever",
    "TASFilter",
    "APLFilter",
    "MIBFilter",
    "ValidationStage",
    "ScoringStage",
]
