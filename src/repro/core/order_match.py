"""Minimum order-sensitive match distance — Section VI of the paper.

OATSQ constrains the point matches of consecutive query points to appear in
non-decreasing trajectory-position order (Definition 7; sharing a boundary
point is allowed — "smaller than *or equal to*").  Lemma 1's decomposition
no longer holds, so ``Dmom`` is computed by the dynamic program of
Algorithm 4 over the matrix

    G(i, j) = min over k in [1, j] of  G(i-1, k) + Dmpm(q_i, Tr[k, j])

with the guardian row ``G(0, *) = 0``.  Both paper optimisations are
implemented:

* the inner ``k`` loop runs from ``j`` down to ``1`` so ``Dmpm`` over
  ``Tr[k, j]`` is evaluated *incrementally* (one
  :class:`~repro.core.match.PointMatchTable` per ``(i, j)`` cell, extended a
  point at a time), and breaks as soon as ``G(i-1, k) = +inf`` (Lemma 4);
* after each row, ``G(i, |Tr|)`` is compared against the running k-th best
  distance — if it already exceeds the threshold the whole candidate is
  abandoned (monotonicity property 2 of Lemma 4).

The module also implements the *matching index bound* (MIB) validation of
Section VI-B — a cheap necessary condition that rejects candidates whose
activity positions cannot possibly be ordered correctly — plus a stronger
per-activity greedy feasibility check as a documented extension.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.match import INFINITY, PointMatchTable, minimum_point_match
from repro.core.query import Query, QueryPoint
from repro.model.distance import DistanceMetric
from repro.model.trajectory import ActivityTrajectory


def relevant_points(
    trajectory: ActivityTrajectory, query: Query
) -> List["TrajectoryPointRef"]:
    """The subsequence of trajectory points carrying at least one query
    activity, with original positions preserved.

    Points with no query activity can never belong to a point match, and
    dropping them preserves the relative order of all points that can — so
    running Algorithm 4 over this subsequence is exactly equivalent (proved
    by mapping any order-sensitive match back and forth; the test suite
    checks equality against the uncompressed DP).  Since the DP is
    ``O(|Q| * n^2)`` table updates, the compression is the single biggest
    OATSQ optimisation.
    """
    activities = query.all_activities
    return [
        (pos, p)
        for pos, p in enumerate(trajectory.points)
        if not p.activities.isdisjoint(activities)
    ]


TrajectoryPointRef = Tuple[int, "object"]


def minimum_order_match_distance(
    query: Query,
    trajectory: ActivityTrajectory,
    metric: DistanceMetric,
    threshold: float = INFINITY,
    g_matrix: Optional[List[List[float]]] = None,
    compress: bool = True,
) -> float:
    """``Dmom(Q, Tr)`` via Algorithm 4.

    Parameters
    ----------
    query, trajectory, metric:
        The inputs of the distance function.
    threshold:
        The current k-th smallest ``Dmom`` (``D^k_mom``); rows whose final
        entry exceed it abort the computation (returning ``inf``), which is
        sound by Lemma 4.
    g_matrix:
        Optional output: when a list is supplied it is filled with the full
        ``G`` matrix (``g_matrix[i][j]``, 1-based like the paper's Table
        III, row 0 being the guardian row).  Forces full evaluation (the
        threshold early-exit is disabled) and disables compression so the
        matrix matches the paper's indexing.
    compress:
        Run the DP over the query-relevant subsequence only (equivalent,
        much faster; see :func:`relevant_points`).

    Returns
    -------
    ``Dmom(Q, Tr)`` or ``inf`` when no order-sensitive match exists (or the
    threshold pruned the computation).
    """
    m = len(query)
    keep_matrix = g_matrix is not None
    if keep_matrix or not compress:
        points = trajectory.points
    else:
        points = [p for _pos, p in relevant_points(trajectory, query)]
        if not points:
            return INFINITY
    n = len(points)

    prev: List[float] = [0.0] * (n + 1)  # G(0, *) = 0 — guardian row
    if keep_matrix:
        g_matrix.clear()
        g_matrix.append(list(prev))

    for i in range(1, m + 1):
        q = query[i - 1]
        cur: List[float] = [INFINITY] * (n + 1)
        for j in range(1, n + 1):
            table = PointMatchTable(q.activities)
            best = INFINITY
            # k descends from j to 1; the table incrementally absorbs p_k.
            for k in range(j, 0, -1):
                if prev[k] == INFINITY:
                    break  # Lemma 4: G(i-1, k') is infinite for all k' < k
                point = points[k - 1]
                table.add(table.overlap_mask(point.activities), metric(q.coord, point.coord))
                dmpm = table.best()
                if dmpm == INFINITY:
                    continue
                value = prev[k] + dmpm
                if value < best:
                    best = value
            cur[j] = best
        if keep_matrix:
            g_matrix.append(list(cur))
        elif cur[n] > threshold:
            # Early termination across rows (paper lines 9-10): by Lemma 4
            # the final G(|Q|, |Tr|) can only be larger.
            return INFINITY
        prev = cur
    return prev[n]


def minimum_order_match(
    query: Query,
    trajectory: ActivityTrajectory,
    metric: DistanceMetric,
) -> Tuple[float, Tuple[Tuple[int, ...], ...]]:
    """``Dmom`` plus the realising order-sensitive match.

    Returns ``(distance, per-query-point position tuples)``; positions are
    0-based trajectory indexes.  ``(inf, ())`` when no match exists.

    Reconstruction strategy: compute the full ``G`` matrix while remembering
    the arg-min split ``k`` of every cell, then walk back from
    ``G(m, n)`` re-deriving each row's point match over ``Tr[k, j]``.
    """
    n = len(trajectory)
    m = len(query)
    points = trajectory.points

    prev: List[float] = [0.0] * (n + 1)
    rows: List[List[float]] = [list(prev)]
    splits: List[List[int]] = [[0] * (n + 1)]

    for i in range(1, m + 1):
        q = query[i - 1]
        cur = [INFINITY] * (n + 1)
        cur_split = [0] * (n + 1)
        for j in range(1, n + 1):
            table = PointMatchTable(q.activities)
            best = INFINITY
            best_k = 0
            for k in range(j, 0, -1):
                if prev[k] == INFINITY:
                    break
                point = points[k - 1]
                table.add(table.overlap_mask(point.activities), metric(q.coord, point.coord))
                dmpm = table.best()
                if dmpm == INFINITY:
                    continue
                value = prev[k] + dmpm
                if value < best:
                    best = value
                    best_k = k
            cur[j] = best
            cur_split[j] = best_k
        rows.append(cur)
        splits.append(cur_split)
        prev = cur

    if rows[m][n] == INFINITY:
        return INFINITY, ()

    # Backtrack: at row i, the match for q_i lives inside Tr[k, j].
    matches: List[Tuple[int, ...]] = []
    j = n
    for i in range(m, 0, -1):
        k = splits[i][j]
        q = query[i - 1]
        segment = [(pos, points[pos]) for pos in range(k - 1, j)]
        _dist, positions = minimum_point_match(q.coord, q.activities, segment, metric)
        matches.append(positions)
        j = k
    matches.reverse()
    return rows[m][n], tuple(matches)


# ----------------------------------------------------------------------
# Candidate validation (Section VI-B)
# ----------------------------------------------------------------------
def matching_index_bounds(
    trajectory: ActivityTrajectory, query_point: QueryPoint
) -> Optional[Tuple[int, int]]:
    """``MIB(q)`` — the smallest and greatest positions of trajectory points
    containing *any* activity of ``q.Φ`` (0-based), or ``None`` when no
    point contains any of them."""
    lb = math.inf
    ub = -math.inf
    posting = trajectory.posting_lists
    for activity in query_point.activities:
        positions = posting.get(activity)
        if not positions:
            continue
        if positions[0] < lb:
            lb = positions[0]
        if positions[-1] > ub:
            ub = positions[-1]
    if ub < 0:
        return None
    return int(lb), int(ub)


def order_feasible(trajectory: ActivityTrajectory, query: Query) -> bool:
    """The paper's MIB check: reject when some pair ``i < j`` of query
    points has ``MIB(q_i).lb > MIB(q_j).ub``.

    A *necessary* condition only — survivors may still have ``Dmom = inf``
    (the DP is the final arbiter) — but it never rejects a trajectory that
    has an order-sensitive match.
    """
    bounds: List[Tuple[int, int]] = []
    for q in query:
        mib = matching_index_bounds(trajectory, q)
        if mib is None:
            return False
        bounds.append(mib)
    running_max_lb = -1
    for lb, ub in bounds:
        if running_max_lb > ub:
            return False
        if lb > running_max_lb:
            running_max_lb = lb
    return True


def order_feasible_strict(trajectory: ActivityTrajectory, query: Query) -> bool:
    """Extension (not in the paper): exact feasibility of the order
    constraint by per-activity greedy assignment.

    Walk the query points in order keeping ``low``, the smallest position
    the next match may use.  For each query point and each required
    activity, take the *first* posting position ``>= low``; the largest of
    those is the unavoidable frontier, which becomes the next ``low``
    (boundary sharing is allowed, hence no ``+1``).  The greedy frontier is
    minimal by an exchange argument, so this check is exact: it returns
    True iff an order-sensitive match exists.
    """
    import bisect

    posting = trajectory.posting_lists
    low = 0
    for q in query:
        frontier = low
        for activity in q.activities:
            positions = posting.get(activity)
            if not positions:
                return False
            idx = bisect.bisect_left(positions, low)
            if idx == len(positions):
                return False
            if positions[idx] > frontier:
                frontier = positions[idx]
        low = frontier
    return True


# ----------------------------------------------------------------------
# Oracle (test-only reference implementation)
# ----------------------------------------------------------------------
def dmom_oracle_enum(
    query: Query,
    trajectory: ActivityTrajectory,
    metric: DistanceMetric,
    max_states: int = 2_000_000,
) -> float:
    """Exhaustive reference for ``Dmom``: recursive enumeration over all
    split points with a memoised exact ``Dmpm`` per (query point, segment).

    Exponential-ish but fine at test sizes; raises if the state budget is
    exceeded so tests fail loudly instead of hanging.
    """
    n = len(trajectory)
    m = len(query)
    points = trajectory.points

    dmpm_cache: Dict[Tuple[int, int, int], float] = {}

    def seg_dmpm(i: int, k: int, j: int) -> float:
        key = (i, k, j)
        if key not in dmpm_cache:
            q = query[i]
            segment = [(pos, points[pos]) for pos in range(k, j + 1)]
            table = PointMatchTable(q.activities)
            for pos, p in segment:
                table.add(table.overlap_mask(p.activities), metric(q.coord, p.coord))
            dmpm_cache[key] = table.best()
        return dmpm_cache[key]

    states = 0

    def rec(i: int, j: int) -> float:
        """Best Dmom of query[0..i] matched within Tr positions [0..j]."""
        nonlocal states
        states += 1
        if states > max_states:
            raise RuntimeError("dmom_oracle_enum state budget exceeded")
        if i < 0:
            return 0.0
        best = INFINITY
        for k in range(j + 1):
            head = rec(i - 1, k)
            if head == INFINITY:
                continue
            tail = seg_dmpm(i, k, j)
            if tail == INFINITY:
                continue
            if head + tail < best:
                best = head + tail
        return best

    return rec(m - 1, n - 1)
