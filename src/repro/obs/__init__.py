"""repro.obs — the unified observability layer.

One small package gives the serving stack a single pair of primitives:

* a :class:`MetricRegistry` of :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` metrics (per-thread shards, log-spaced latency
  buckets) that the existing stats objects *feed*;
* a :class:`Tracer` producing per-query span trees — ``query`` roots,
  ``retrieve``/``validate``/``score`` stage spans from the engine,
  ``shard_task`` spans carrying shard/replica/attempt/hedge/breaker
  attributes from the fan-out, with disk reads and injected faults as
  span events — exported as JSONL or inspected in-process;

plus exporters (:func:`prometheus_text`, :func:`write_spans_jsonl`) and
the :class:`Observability` handle that wires both into a service.

Pay-for-what-you-use: ``Observability.disabled()`` carries a
:class:`NullTracer` (every span method a no-op) and a live registry; not
attaching an ``obs`` object at all costs a single ``is None`` check per
query.  ``Observability.enabled()`` turns on span collection.

>>> from repro.obs import Observability
>>> obs = Observability.enabled()
>>> service = QueryService(engine, obs=obs)           # doctest: +SKIP
>>> service.search(q, k=5)                            # doctest: +SKIP
>>> print(obs.prometheus())                           # doctest: +SKIP
>>> spans = obs.tracer.drain()                        # doctest: +SKIP
"""

from __future__ import annotations

from typing import Optional

from repro.obs.export import (
    parse_prometheus_text,
    prometheus_text,
    read_spans_jsonl,
    span_to_dict,
    spans_to_jsonl,
    validate_spans,
    write_spans_jsonl,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    nearest_rank,
)
from repro.obs.trace import (
    NULL_SPAN,
    NullTracer,
    Span,
    Tracer,
    activate,
    current_span,
)

__all__ = [
    "Observability",
    "MetricRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "nearest_rank",
    "Tracer",
    "NullTracer",
    "Span",
    "NULL_SPAN",
    "current_span",
    "activate",
    "prometheus_text",
    "parse_prometheus_text",
    "spans_to_jsonl",
    "write_spans_jsonl",
    "read_spans_jsonl",
    "span_to_dict",
    "validate_spans",
]


class Observability:
    """The handle a service is constructed with: one tracer + one registry.

    The registry handles the serving stack feeds are created eagerly so
    the hot path pays cached-attribute increments, never registry
    lookups.  Pass ``obs=None`` (every service's default) for zero
    instrumentation, :meth:`disabled` for metrics without traces, or
    :meth:`enabled` for both.
    """

    def __init__(self, tracer=None, registry: Optional[MetricRegistry] = None) -> None:
        self.tracer = tracer if tracer is not None else NullTracer()
        self.registry = registry if registry is not None else MetricRegistry()
        reg = self.registry
        self._queries = reg.counter("repro_queries_total")
        self._latency = reg.histogram("repro_query_latency_seconds")
        self._disk_reads = reg.counter("repro_disk_reads_total")
        self._partials = reg.counter("repro_partial_responses_total")
        self._retries = reg.counter("repro_task_retries_total")
        self._hedges = reg.counter("repro_task_hedges_total")
        self._hedges_denied = reg.counter("repro_task_hedges_denied_total")
        self._cache_hits = reg.counter("repro_result_cache_hits_total")
        self._cache_lookups = reg.counter("repro_result_cache_lookups_total")
        # Admission-control surface (fed by repro.serving's front-end).
        self._queue_depth = reg.gauge("repro_admission_queue_depth")
        self._queue_wait = reg.histogram("repro_admission_queue_wait_seconds")
        self._admission_outcomes = {
            "rejected": reg.counter("repro_admission_rejected_total"),
            "shed": reg.counter("repro_admission_shed_total"),
            "expired": reg.counter("repro_admission_expired_total"),
            "completed": reg.counter("repro_admission_completed_total"),
            "failed": reg.counter("repro_admission_failed_total"),
        }

    # -- constructors ---------------------------------------------------
    @classmethod
    def enabled(cls, max_spans: int = 10_000) -> "Observability":
        """Tracing on: spans are collected into a bounded buffer."""
        return cls(tracer=Tracer(max_spans=max_spans))

    @classmethod
    def disabled(cls) -> "Observability":
        """Metrics only: the tracer is the no-op object (the
        'instrumented but disabled' configuration the overhead bench
        gates within 5% of an un-instrumented service)."""
        return cls(tracer=NullTracer())

    # -- feeding hooks (called by the services) -------------------------
    def observe_response(self, response) -> None:
        """Absorb one answered :class:`QueryResponse` into the metrics."""
        self._queries.inc()
        self._latency.observe(response.latency_s)
        reads = response.stats.disk_reads
        if reads:
            self._disk_reads.inc(reads)
        if not response.complete:
            self._partials.inc()

    def observe_fanout(self, retries: int, hedges: int, hedges_denied: int = 0) -> None:
        if retries:
            self._retries.inc(retries)
        if hedges:
            self._hedges.inc(hedges)
        if hedges_denied:
            self._hedges_denied.inc(hedges_denied)

    def observe_cache(self, hit: bool) -> None:
        self._cache_lookups.inc()
        if hit:
            self._cache_hits.inc()

    # -- admission-control hooks (called by repro.serving) --------------
    def observe_queue_depth(self, depth: int) -> None:
        """Current admission-queue depth (waiting + executing requests)."""
        self._queue_depth.set(depth)

    def observe_queue_wait(self, wait_s: float) -> None:
        """One admitted request's time from admission to dispatch."""
        self._queue_wait.observe(wait_s)

    def observe_admission(self, outcome: str) -> None:
        """Count one terminal admission outcome (``rejected`` /``shed`` /
        ``expired`` / ``completed`` / ``failed``); unknown outcome names
        are ignored rather than raising on a hot path."""
        counter = self._admission_outcomes.get(outcome)
        if counter is not None:
            counter.inc()

    # -- tracer binding -------------------------------------------------
    def bind_disk(self, disk) -> None:
        """Attach the tracer to a :class:`SimulatedDisk` (and its fault
        injector, if any) so reads and injected faults surface as events
        on the active span."""
        disk.tracer = self.tracer
        injector = getattr(disk, "fault_injector", None)
        if injector is not None:
            injector.tracer = self.tracer

    def bind_index(self, index) -> None:
        """Bind every disk reachable from a :class:`GATIndex`, a
        :class:`ShardedGATIndex`, or any nesting of shard lists."""
        shards = getattr(index, "shards", None)
        if shards is not None:
            for shard in shards:
                self.bind_index(shard)
            return
        disk = getattr(index, "disk", None)
        if disk is not None:
            self.bind_disk(disk)

    # -- export ---------------------------------------------------------
    def prometheus(self) -> str:
        """The registry as a Prometheus text-exposition snapshot."""
        return prometheus_text(self.registry)

    def metrics_snapshot(self) -> dict:
        """The registry as a plain dict (``BENCH_*.json`` embedding)."""
        return self.registry.snapshot()
