"""Exporters: JSONL trace dumps and Prometheus text exposition.

Two formats, both plain text so they diff, grep, and upload as CI
artifacts without tooling:

* **JSONL traces** — one span per line (:func:`spans_to_jsonl` /
  :func:`write_spans_jsonl`), validated structurally by
  :func:`validate_spans`: unique span ids, parent links that resolve
  within the dump, and end timestamps that never precede their starts.
  The CI smoke job runs a faulted sharded batch and asserts the dump
  passes this validator.
* **Prometheus text exposition** — :func:`prometheus_text` renders a
  :class:`~repro.obs.metrics.MetricRegistry` in the ``# TYPE`` +
  samples format scrapers expect (histograms as cumulative
  ``_bucket{le=...}`` series plus ``_sum``/``_count``);
  :func:`parse_prometheus_text` reads it back into a dict, which is both
  the round-trip test and the programmatic consumer for bench rows.
"""

from __future__ import annotations

import json
import math
import re
from typing import Any, Dict, Iterable, List, Union

from repro.obs.metrics import Counter, Gauge, Histogram, MetricRegistry
from repro.obs.trace import Span

__all__ = [
    "span_to_dict",
    "spans_to_jsonl",
    "write_spans_jsonl",
    "validate_spans",
    "prometheus_text",
    "parse_prometheus_text",
]


# ----------------------------------------------------------------------
# JSONL traces
# ----------------------------------------------------------------------
def span_to_dict(span: Union[Span, Dict[str, Any]]) -> Dict[str, Any]:
    return span if isinstance(span, dict) else span.to_dict()


def spans_to_jsonl(spans: Iterable[Union[Span, Dict[str, Any]]]) -> str:
    """One compact JSON object per line; trailing newline when non-empty."""
    lines = [json.dumps(span_to_dict(s), sort_keys=True) for s in spans]
    return "\n".join(lines) + ("\n" if lines else "")

def write_spans_jsonl(path, spans: Iterable[Union[Span, Dict[str, Any]]]) -> int:
    """Write spans to *path* as JSONL; returns the number written."""
    text = spans_to_jsonl(spans)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
    return 0 if not text else text.count("\n")


def validate_spans(records: Iterable[Union[Span, Dict[str, Any]]]) -> List[Dict[str, Any]]:
    """Structural validation of a span dump; returns the parsed records.

    Raises ``ValueError`` on: missing required fields, duplicate span
    ids, a parent link that does not resolve to a span in the dump, a
    trace id differing from the parent's, or an ``end_s`` before
    ``start_s``.  Deliberately forgiving about attrs/events content —
    those are open-ended by design.
    """
    dicts = [span_to_dict(r) for r in records]
    by_id: Dict[str, Dict[str, Any]] = {}
    for rec in dicts:
        for field in ("name", "span_id", "trace_id", "start_s"):
            if rec.get(field) in (None, ""):
                raise ValueError(f"span missing required field {field!r}: {rec!r}")
        sid = rec["span_id"]
        if sid in by_id:
            raise ValueError(f"duplicate span_id {sid!r}")
        by_id[sid] = rec
        end = rec.get("end_s")
        if end is not None and end < rec["start_s"]:
            raise ValueError(
                f"span {sid!r} ends before it starts "
                f"({end} < {rec['start_s']})"
            )
    for rec in dicts:
        parent = rec.get("parent_id")
        if parent is None:
            continue
        if parent not in by_id:
            raise ValueError(
                f"span {rec['span_id']!r} parent {parent!r} not in dump"
            )
        if by_id[parent]["trace_id"] != rec["trace_id"]:
            raise ValueError(
                f"span {rec['span_id']!r} trace_id differs from its parent's"
            )
    return dicts


def read_spans_jsonl(path) -> List[Dict[str, Any]]:
    """Load a JSONL trace dump back into dicts (no validation)."""
    with open(path, "r", encoding="utf-8") as fh:
        return [json.loads(line) for line in fh if line.strip()]


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(\S+)$"
)


def _fmt(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _sample_name(name: str, labels, extra: str = "") -> str:
    parts = [f'{k}="{v}"' for k, v in labels]
    if extra:
        parts.append(extra)
    return name + ("{" + ",".join(parts) + "}" if parts else "")


def prometheus_text(registry: MetricRegistry) -> str:
    """Render every registered metric in Prometheus text exposition
    format, stable-ordered so snapshots diff cleanly."""
    lines: List[str] = []
    typed: set = set()
    for metric in registry.metrics():
        if not _NAME_OK.match(metric.name):
            raise ValueError(f"invalid metric name {metric.name!r}")
        if isinstance(metric, Counter):
            kind = "counter"
        elif isinstance(metric, Gauge):
            kind = "gauge"
        elif isinstance(metric, Histogram):
            kind = "histogram"
        else:  # pragma: no cover - registry only makes the three
            raise TypeError(f"unknown metric type {type(metric).__name__}")
        if metric.name not in typed:
            lines.append(f"# TYPE {metric.name} {kind}")
            typed.add(metric.name)
        if isinstance(metric, Histogram):
            counts, count, total, _peak = metric._merged()
            bucket_name = metric.name + "_bucket"
            seen = 0
            for bound, c in zip(metric.bounds, counts):
                seen += c
                le = 'le="' + _fmt(bound) + '"'
                lines.append(f"{_sample_name(bucket_name, metric.labels, le)} {seen}")
            inf_le = 'le="+Inf"'
            lines.append(f"{_sample_name(bucket_name, metric.labels, inf_le)} {count}")
            lines.append(
                f"{_sample_name(metric.name + '_sum', metric.labels)} {_fmt(total)}"
            )
            lines.append(
                f"{_sample_name(metric.name + '_count', metric.labels)} {count}"
            )
        else:
            lines.append(
                f"{_sample_name(metric.name, metric.labels)} {_fmt(metric.value())}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


def parse_prometheus_text(text: str) -> Dict[str, float]:
    """Parse a text-exposition snapshot back into ``{sample: value}``.

    Keys keep their label sets verbatim (``name{le="0.1"}``).  Raises
    ``ValueError`` on any line that is neither a comment nor a valid
    sample — the CI smoke job leans on that strictness.
    """
    samples: Dict[str, float] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE.match(line)
        if match is None:
            raise ValueError(f"malformed exposition line {lineno}: {line!r}")
        name, labels, raw = match.groups()
        try:
            value = float(raw)
        except ValueError:
            raise ValueError(
                f"malformed sample value on line {lineno}: {raw!r}"
            ) from None
        samples[name + (labels or "")] = value
    return samples
