"""Metric primitives: counters, gauges, and log-bucketed histograms.

The serving stack already *measures* plenty — ``SearchStats``,
``DiskStats``, ``CacheStats``, ``ServiceStats`` — but each is an ad-hoc
structure with its own locking and reset story.  This module gives those
signals one export surface without replacing them: the existing stats
objects **feed** a :class:`MetricRegistry`, which renders uniformly to a
Prometheus text snapshot (:func:`repro.obs.export.prometheus_text`) or a
plain dict for ``BENCH_*.json`` embedding.

Hot-path cost is the design constraint.  :class:`Counter` and
:class:`Histogram` write to **per-thread cells** — a thread's first
``inc``/``observe`` registers a private cell under the registry lock,
after which updates are plain attribute arithmetic on thread-owned state
(no lock, no contention); readers merge every cell under the lock.
:class:`Histogram` keeps fixed log-spaced latency buckets, so p50/p95/p99
come from ~30 integers instead of an unbounded sample list.

:func:`nearest_rank` is the one shared quantile definition — the serving
layer's ``_percentile`` and the fault supervisor's
``TaskLatencyTracker.quantile`` both delegate here, so the two can never
drift apart again.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "nearest_rank",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
]


def nearest_rank(sorted_values: Sequence[float], q: float) -> float:
    """The nearest-rank quantile *q* in ``[0, 1]`` of *sorted_values*.

    The single quantile definition shared by every latency window in the
    repo: index ``ceil(q * n) - 1`` into the ascending sequence, clamped
    to the ends.  Returns ``0.0`` for an empty sequence — the "no data
    yet" convention of both ``ServiceStats`` and ``TaskLatencyTracker``.
    """
    n = len(sorted_values)
    if n == 0:
        return 0.0
    if q <= 0.0:
        return sorted_values[0]
    rank = math.ceil(q * n)
    idx = min(max(rank - 1, 0), n - 1)
    return sorted_values[idx]


def _render_labels(labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return "{" + inner + "}"


class _Metric:
    """Shared shape: a name, sorted label pairs, and per-thread cells."""

    __slots__ = ("name", "labels", "_lock", "_cells", "_local")

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...]) -> None:
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._cells: List[object] = []
        self._local = threading.local()

    def _cell(self):
        cell = getattr(self._local, "cell", None)
        if cell is None:
            cell = self._new_cell()
            with self._lock:
                self._cells.append(cell)
            self._local.cell = cell
        return cell

    def _new_cell(self):  # pragma: no cover - overridden
        raise NotImplementedError

    @property
    def full_name(self) -> str:
        return self.name + _render_labels(self.labels)


class _CounterCell:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0


class Counter(_Metric):
    """A monotonically increasing sum, sharded per thread.

    ``inc`` touches only the calling thread's cell — one attribute add,
    no lock.  ``value()`` merges every cell under the lock; it may lag an
    in-flight increment by one scheduler quantum, which is the usual
    metrics contract.
    """

    __slots__ = ()

    def _new_cell(self) -> _CounterCell:
        return _CounterCell()

    def inc(self, n: float = 1.0) -> None:
        self._cell().value += n

    def value(self) -> float:
        with self._lock:
            return sum(cell.value for cell in self._cells)


class Gauge(_Metric):
    """A point-in-time value (pool depth, window size).  Gauges are
    read-modify-write by nature, so they take the lock — use them for
    low-frequency signals, counters/histograms for the hot path."""

    __slots__ = ("_value",)

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...]) -> None:
        super().__init__(name, labels)
        self._value = 0.0

    def _new_cell(self):  # pragma: no cover - gauges have no cells
        raise NotImplementedError("gauges are not sharded")

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, n: float = 1.0) -> None:
        with self._lock:
            self._value += n

    def dec(self, n: float = 1.0) -> None:
        self.inc(-n)

    def value(self) -> float:
        with self._lock:
            return self._value


def _default_bounds() -> Tuple[float, ...]:
    # 10 µs .. ~56 s in quarter-decade steps: log-spaced so one fixed
    # bucket set covers both a cache hit and a deadline-length straggler
    # with <78% relative quantile error, the histogram trade everyone
    # makes.  29 buckets + overflow.
    return tuple(10.0 ** (e / 4.0) for e in range(-20, 9))


class _HistogramCell:
    __slots__ = ("counts", "count", "sum", "max")

    def __init__(self, n_buckets: int) -> None:
        self.counts = [0] * n_buckets
        self.count = 0
        self.sum = 0.0
        self.max = 0.0


class Histogram(_Metric):
    """Fixed log-spaced buckets; p50/p95/p99 without unbounded lists.

    ``observe`` is a bisect plus four attribute writes on a thread-owned
    cell.  Quantiles are nearest-rank over the merged cumulative bucket
    counts and return the matched bucket's upper bound (the overflow
    bucket reports the true observed maximum, so a single straggler is
    never rounded to infinity).
    """

    __slots__ = ("bounds",)

    def __init__(
        self,
        name: str,
        labels: Tuple[Tuple[str, str], ...],
        bounds: Optional[Sequence[float]] = None,
    ) -> None:
        super().__init__(name, labels)
        self.bounds = tuple(bounds) if bounds is not None else _default_bounds()
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError("histogram bounds must be ascending")

    def _new_cell(self) -> _HistogramCell:
        return _HistogramCell(len(self.bounds) + 1)

    def observe(self, value: float) -> None:
        cell = self._cell()
        cell.counts[bisect_left(self.bounds, value)] += 1
        cell.count += 1
        cell.sum += value
        if value > cell.max:
            cell.max = value

    # -- merged views ---------------------------------------------------
    def _merged(self) -> Tuple[List[int], int, float, float]:
        with self._lock:
            counts = [0] * (len(self.bounds) + 1)
            count = 0
            total = 0.0
            peak = 0.0
            for cell in self._cells:
                for i, c in enumerate(cell.counts):
                    counts[i] += c
                count += cell.count
                total += cell.sum
                if cell.max > peak:
                    peak = cell.max
            return counts, count, total, peak

    def count(self) -> int:
        return self._merged()[1]

    def sum(self) -> float:
        return self._merged()[2]

    def quantile(self, q: float) -> float:
        counts, count, _total, peak = self._merged()
        if count == 0:
            return 0.0
        rank = min(max(math.ceil(q * count), 1), count)
        seen = 0
        for i, c in enumerate(counts):
            seen += c
            if seen >= rank:
                if i < len(self.bounds):
                    return min(self.bounds[i], peak)
                return peak
        return peak  # pragma: no cover - rank <= count guarantees a hit

    def snapshot(self) -> Dict[str, float]:
        counts, count, total, peak = self._merged()
        snap = {
            "count": count,
            "sum": total,
            "max": peak,
            "p50": 0.0,
            "p95": 0.0,
            "p99": 0.0,
        }
        if count:
            for key, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99)):
                rank = min(max(math.ceil(q * count), 1), count)
                seen = 0
                for i, c in enumerate(counts):
                    seen += c
                    if seen >= rank:
                        snap[key] = min(self.bounds[i], peak) if i < len(self.bounds) else peak
                        break
        snap["buckets"] = counts
        return snap


class MetricRegistry:
    """Named metric store: get-or-create by ``(name, labels)``.

    ``counter``/``gauge``/``histogram`` are idempotent — asking twice
    returns the same object, so callers cache handles freely.  Asking for
    an existing name with a different type raises (a silent type change
    would corrupt the export).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], _Metric] = {}

    def _get(self, cls, name: str, labels: Dict[str, str], **kwargs) -> _Metric:
        key = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = cls(name, key[1], **kwargs)
                self._metrics[key] = metric
            elif type(metric) is not cls:
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}, not {cls.__name__}"
                )
            return metric

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None, **labels: str
    ) -> Histogram:
        return self._get(Histogram, name, labels, bounds=bounds)

    def metrics(self) -> List[_Metric]:
        """Every registered metric, sorted by (name, labels) for stable
        export order."""
        with self._lock:
            return [self._metrics[key] for key in sorted(self._metrics)]

    def snapshot(self) -> Dict[str, object]:
        """A plain-dict view for embedding in ``BENCH_*.json`` rows:
        counters and gauges map to numbers, histograms to their
        count/sum/percentile summaries."""
        out: Dict[str, object] = {}
        for metric in self.metrics():
            if isinstance(metric, Histogram):
                out[metric.full_name] = metric.snapshot()
            else:
                out[metric.full_name] = metric.value()
        return out
