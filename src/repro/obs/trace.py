"""Per-query span trees: one query's journey through the serving stack.

A :class:`Tracer` produces :class:`Span` trees — ``query`` roots from the
serving layer, ``retrieve``/``validate``/``score`` stage children from
the engine pipeline, ``shard_task`` children carrying
shard/replica/attempt/hedge/breaker attributes from the supervised
fan-out, with disk reads and injected faults attached as bounded
**events** on whichever span is active on the current thread.

Three design rules keep this pay-for-what-you-use:

* **Disabled is a no-op object, not a flag check tree.**
  :class:`NullTracer` returns the shared :data:`NULL_SPAN`, whose every
  method is ``pass``; hot paths guard on ``tracer.enabled`` (one
  attribute load) before doing any real work.
* **Bounded everywhere.**  Finished spans land in a ``deque(maxlen=...)``
  and each span caps its event list (``events_dropped`` counts the
  spill), so a pathological query can't turn the tracer into a leak.
* **Cross-process by value.**  Process-fleet workers build spans with
  their own local tracer, serialize them with :meth:`Span.to_dict`
  through the task result, and the parent re-parents them under the
  query root (:meth:`Tracer.adopt`).  Timestamps are epoch seconds
  (``time.time()``) precisely so parent and worker clocks live on one
  axis.

The *active span* is thread-local: :func:`activate` pushes a span for
the duration of a ``with`` block and :func:`current_span` reads it, which
is how a ``SimulatedDisk`` deep in the engine attaches a ``disk_read``
event to the right shard task without any plumbing through the call
stack.
"""

from __future__ import annotations

import threading
import time
import uuid
from collections import deque
from contextlib import contextmanager
from typing import Any, Dict, Iterable, List, Optional

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_SPAN",
    "current_span",
    "activate",
]

MAX_EVENTS_PER_SPAN = 128

_ACTIVE = threading.local()


def current_span() -> Optional["Span"]:
    """The span the calling thread is currently inside (or ``None``)."""
    return getattr(_ACTIVE, "span", None)


@contextmanager
def activate(span: Optional["Span"]):
    """Make *span* the calling thread's active span for the block."""
    prev = getattr(_ACTIVE, "span", None)
    _ACTIVE.span = span
    try:
        yield span
    finally:
        _ACTIVE.span = prev


def _new_id() -> str:
    return uuid.uuid4().hex[:16]


class Span:
    """One timed operation with attributes, bounded events, and a parent."""

    __slots__ = (
        "name",
        "span_id",
        "trace_id",
        "parent_id",
        "start_s",
        "end_s",
        "attrs",
        "events",
        "events_dropped",
        "_tracer",
    )

    def __init__(
        self,
        name: str,
        trace_id: str,
        parent_id: Optional[str] = None,
        attrs: Optional[Dict[str, Any]] = None,
        tracer: Optional["Tracer"] = None,
        span_id: Optional[str] = None,
        start_s: Optional[float] = None,
    ) -> None:
        self.name = name
        self.span_id = span_id if span_id is not None else _new_id()
        self.trace_id = trace_id
        self.parent_id = parent_id
        self.start_s = start_s if start_s is not None else time.time()
        self.end_s: Optional[float] = None
        self.attrs: Dict[str, Any] = dict(attrs) if attrs else {}
        self.events: List[Dict[str, Any]] = []
        self.events_dropped = 0
        self._tracer = tracer

    # -- recording ------------------------------------------------------
    def set_attr(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    def set_attrs(self, **attrs: Any) -> None:
        self.attrs.update(attrs)

    def add_event(self, name: str, **attrs: Any) -> None:
        if len(self.events) >= MAX_EVENTS_PER_SPAN:
            self.events_dropped += 1
            return
        event = {"name": name, "t_s": time.time()}
        if attrs:
            event.update(attrs)
        self.events.append(event)

    def child(self, name: str, attrs: Optional[Dict[str, Any]] = None) -> "Span":
        """A new span parented here, filed to the same tracer on end."""
        if self._tracer is not None:
            return self._tracer.start_span(name, parent=self, attrs=attrs)
        return Span(name, trace_id=self.trace_id, parent_id=self.span_id, attrs=attrs)

    def end(self, at: Optional[float] = None) -> None:
        """Stamp the end time and hand the span to its tracer.  Idempotent
        — a second call keeps the first timestamp and does not re-file.
        *at* overrides the timestamp (stage spans whose extent was
        measured separately); it must not precede ``start_s``."""
        if self.end_s is not None:
            return
        self.end_s = at if at is not None else time.time()
        if self.end_s < self.start_s:
            self.end_s = self.start_s
        if self._tracer is not None:
            self._tracer._finish(self)

    @property
    def duration_s(self) -> float:
        end = self.end_s if self.end_s is not None else time.time()
        return end - self.start_s

    # -- serialization --------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "trace_id": self.trace_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "attrs": self.attrs,
            "events": self.events,
            "events_dropped": self.events_dropped,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Span":
        span = cls(
            payload["name"],
            trace_id=payload["trace_id"],
            parent_id=payload.get("parent_id"),
            attrs=payload.get("attrs") or {},
            span_id=payload["span_id"],
            start_s=payload["start_s"],
        )
        span.end_s = payload.get("end_s")
        span.events = list(payload.get("events") or ())
        span.events_dropped = int(payload.get("events_dropped") or 0)
        return span

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, id={self.span_id}, parent={self.parent_id}, "
            f"dur={self.duration_s * 1e3:.2f}ms, attrs={self.attrs})"
        )


class _NullSpan:
    """The do-nothing span: every recording method is a ``pass`` so
    instrumented code never branches on 'is tracing on?'."""

    __slots__ = ()

    name = "null"
    span_id = ""
    trace_id = ""
    parent_id = None
    start_s = 0.0
    end_s = 0.0
    attrs: Dict[str, Any] = {}
    events: List[Dict[str, Any]] = []
    events_dropped = 0
    duration_s = 0.0

    def set_attr(self, key: str, value: Any) -> None:
        pass

    def set_attrs(self, **attrs: Any) -> None:
        pass

    def add_event(self, name: str, **attrs: Any) -> None:
        pass

    def child(self, name: str, attrs: Optional[Dict[str, Any]] = None) -> "_NullSpan":
        return NULL_SPAN

    def end(self, at: Optional[float] = None) -> None:
        pass

    def to_dict(self) -> Dict[str, Any]:  # pragma: no cover - not exported
        return {}

    def __bool__(self) -> bool:
        return False


NULL_SPAN = _NullSpan()


class Tracer:
    """Creates spans and retains the finished ones in a bounded buffer.

    ``max_spans`` bounds memory: when the buffer is full the *oldest*
    finished spans are evicted (``spans_dropped`` counts them).  Exporters
    read :meth:`spans` (non-destructive) or :meth:`drain` (take and
    clear).
    """

    enabled = True

    def __init__(self, max_spans: int = 10_000) -> None:
        self._lock = threading.Lock()
        self._finished: deque = deque(maxlen=max_spans)
        self.spans_dropped = 0

    # -- span construction ---------------------------------------------
    def start_span(
        self,
        name: str,
        parent: Optional[Span] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> Span:
        if parent is not None and not isinstance(parent, _NullSpan):
            trace_id = parent.trace_id
            parent_id = parent.span_id
        else:
            trace_id = _new_id()
            parent_id = None
        return Span(name, trace_id=trace_id, parent_id=parent_id, attrs=attrs, tracer=self)

    @contextmanager
    def span(
        self,
        name: str,
        parent: Optional[Span] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ):
        """Start a span, make it the thread's active span, end it on exit.
        When *parent* is omitted the current active span (if any) is the
        parent — nested ``with tracer.span(...)`` blocks build a tree."""
        if parent is None:
            parent = current_span()
        span = self.start_span(name, parent=parent, attrs=attrs)
        try:
            with activate(span):
                yield span
        finally:
            span.end()

    # -- retention ------------------------------------------------------
    def _finish(self, span: Span) -> None:
        with self._lock:
            if len(self._finished) == self._finished.maxlen:
                self.spans_dropped += 1
            self._finished.append(span)

    def adopt(
        self, payloads: Iterable[Dict[str, Any]], parent: Optional[Span]
    ) -> List[Span]:
        """Re-home serialized spans (from a process-fleet worker) under
        *parent*: rootless payloads get ``parent`` as their parent and the
        whole batch joins the parent's trace.  The rebuilt spans are filed
        as finished."""
        spans = [Span.from_dict(p) for p in payloads]
        if parent is not None and not isinstance(parent, _NullSpan):
            remap = {span.span_id for span in spans}
            for span in spans:
                span.trace_id = parent.trace_id
                if span.parent_id is None or span.parent_id not in remap:
                    span.parent_id = parent.span_id
        with self._lock:
            for span in spans:
                if len(self._finished) == self._finished.maxlen:
                    self.spans_dropped += 1
                self._finished.append(span)
        return spans

    def spans(self) -> List[Span]:
        """Finished spans, oldest first (non-destructive)."""
        with self._lock:
            return list(self._finished)

    def drain(self) -> List[Span]:
        """Take every finished span and clear the buffer."""
        with self._lock:
            spans = list(self._finished)
            self._finished.clear()
            return spans

    def clear(self) -> None:
        with self._lock:
            self._finished.clear()
            self.spans_dropped = 0


class NullTracer:
    """The disabled tracer: hands out :data:`NULL_SPAN`, retains nothing.
    ``enabled`` is ``False`` so hot paths can skip attribute assembly
    entirely; code that doesn't check simply records into the void."""

    enabled = False

    def start_span(self, name, parent=None, attrs=None) -> _NullSpan:
        return NULL_SPAN

    @contextmanager
    def span(self, name, parent=None, attrs=None):
        yield NULL_SPAN

    def adopt(self, payloads, parent) -> List[Span]:
        return []

    def spans(self) -> List[Span]:
        return []

    def drain(self) -> List[Span]:
        return []

    def clear(self) -> None:
        pass
