"""Trajectory-level inverted activity lists — the IL baseline's index
(Section III-A).

"It aggregates the activities associated with each point in a trajectory,
and then builds an inverted list for each activity."  Query processing
filters to the trajectories containing *all* query activities (an
intersection of posting lists) and scores every survivor.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from repro.model.database import TrajectoryDatabase


class InvertedIndex:
    """activity ID -> sorted trajectory IDs whose activity union contains it."""

    __slots__ = ("_lists",)

    def __init__(self) -> None:
        self._lists: Dict[int, Tuple[int, ...]] = {}

    @classmethod
    def build(cls, db: TrajectoryDatabase) -> "InvertedIndex":
        index = cls()
        accum: Dict[int, List[int]] = {}
        for trajectory in db:  # trajectories arrive in ascending-ID order
            tid = trajectory.trajectory_id
            for activity in trajectory.activity_union:
                accum.setdefault(activity, []).append(tid)
        index._lists = {a: tuple(sorted(tids)) for a, tids in accum.items()}
        return index

    def posting(self, activity: int) -> Tuple[int, ...]:
        """Trajectory IDs containing *activity* anywhere."""
        return self._lists.get(activity, ())

    def trajectories_with_all(self, activities: Iterable[int]) -> Set[int]:
        """Intersection of posting lists: the IL candidate set for a query
        whose union activity set is *activities*.  Intersects smallest-first
        so the working set shrinks as fast as possible."""
        postings = [self.posting(a) for a in activities]
        if not postings:
            return set()
        postings.sort(key=len)
        if not postings[0]:
            return set()
        result = set(postings[0])
        for p in postings[1:]:
            result.intersection_update(p)
            if not result:
                break
        return result

    def trajectories_with_any(self, activities: Iterable[int]) -> Set[int]:
        """Union of posting lists."""
        out: Set[int] = set()
        for activity in activities:
            out.update(self.posting(activity))
        return out

    def n_activities(self) -> int:
        return len(self._lists)

    def memory_cost_bytes(self) -> int:
        return sum(8 * len(tids) + 16 for tids in self._lists.values())
