"""Trajectory-level inverted activity lists — the IL baseline's index
(Section III-A).

"It aggregates the activities associated with each point in a trajectory,
and then builds an inverted list for each activity."  Query processing
filters to the trajectories containing *all* query activities (an
intersection of posting lists) and scores every survivor.

The set operations are the IL baseline's whole retrieval cost (its
posting lists cover sizeable shares of the database for the head
activities the workloads query), so both combinators run over cached
sorted int64 arrays when NumPy is importable — ``np.intersect1d`` /
``np.union1d`` on ``assume_unique`` inputs — with the original
set-algebra fallback kept for NumPy-less installs and for short lists,
where fixed NumPy call overhead loses to the C-level set operations.
Results are identical: both compute exact set intersection/union.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from repro.model.database import TrajectoryDatabase

try:  # pragma: no cover - exercised implicitly by the IL baseline tests
    import numpy as _np
except ImportError:  # pragma: no cover - the image bakes numpy in
    _np = None

#: Below this combined size the scalar set path wins on call overhead.
MIN_BATCH = 64


class InvertedIndex:
    """activity ID -> sorted trajectory IDs whose activity union contains it."""

    __slots__ = ("_lists", "_arrays")

    def __init__(self) -> None:
        self._lists: Dict[int, Tuple[int, ...]] = {}
        self._arrays: Dict[int, object] = {}

    @classmethod
    def build(cls, db: TrajectoryDatabase) -> "InvertedIndex":
        index = cls()
        accum: Dict[int, List[int]] = {}
        for trajectory in db:  # trajectories arrive in ascending-ID order
            tid = trajectory.trajectory_id
            for activity in trajectory.activity_union:
                accum.setdefault(activity, []).append(tid)
        index._lists = {a: tuple(sorted(tids)) for a, tids in accum.items()}
        if _np is not None:
            index._arrays = {
                a: _np.asarray(tids, dtype=_np.int64)
                for a, tids in index._lists.items()
            }
        return index

    def posting(self, activity: int) -> Tuple[int, ...]:
        """Trajectory IDs containing *activity* anywhere."""
        return self._lists.get(activity, ())

    def _posting_arrays(self, activities: Iterable[int]):
        """The distinct activities' posting arrays, or ``None`` when the
        NumPy path should not run (missing NumPy, an empty posting — the
        scalar paths short-circuit those — or inputs too small to beat
        the per-call overhead)."""
        if _np is None:
            return None
        arrays = []
        total = 0
        for activity in dict.fromkeys(activities):
            arr = self._arrays.get(activity)
            if arr is None:
                return None
            arrays.append(arr)
            total += len(arr)
        if total < MIN_BATCH:
            return None
        return arrays

    def trajectories_with_all(self, activities: Iterable[int]) -> Set[int]:
        """Intersection of posting lists: the IL candidate set for a query
        whose union activity set is *activities*.  Intersects smallest-first
        so the working set shrinks as fast as possible."""
        activities = list(activities)
        arrays = self._posting_arrays(activities)
        if arrays:
            arrays.sort(key=len)
            result = arrays[0]
            for arr in arrays[1:]:
                if not len(result):
                    break
                result = _np.intersect1d(result, arr, assume_unique=True)
            return set(result.tolist())
        postings = [self.posting(a) for a in activities]
        if not postings:
            return set()
        postings.sort(key=len)
        if not postings[0]:
            return set()
        result = set(postings[0])
        for p in postings[1:]:
            result.intersection_update(p)
            if not result:
                break
        return result

    def trajectories_with_any(self, activities: Iterable[int]) -> Set[int]:
        """Union of posting lists."""
        activities = list(activities)
        arrays = self._posting_arrays(activities)
        if arrays:
            if len(arrays) == 1:
                return set(arrays[0].tolist())
            return set(_np.unique(_np.concatenate(arrays)).tolist())
        out: Set[int] = set()
        for activity in activities:
            out.update(self.posting(activity))
        return out

    def n_activities(self) -> int:
        return len(self._lists)

    def memory_cost_bytes(self) -> int:
        return sum(8 * len(tids) + 16 for tids in self._lists.values())
