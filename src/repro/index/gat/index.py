"""GATIndex — assembly of the four GAT components over one database.

Defaults follow the paper's experimental settings (Section VII-A): grid
depth ``d = 8`` (256 x 256 leaf cells), levels 1-6 in main memory with
levels 7-8 on disk, and a small number of TAS intervals (the paper leaves
``M`` to the memory budget; we default to 2, matching the Figure 2 example
where every sketch has two intervals).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.geometry.grid import HierarchicalGrid
from repro.index.gat.apl import APLStore
from repro.index.gat.hicl import HICL
from repro.index.gat.itl import ITL
from repro.index.gat.tas import TrajectorySketch, build_sketches, sketch_memory_bytes
from repro.model.database import TrajectoryDatabase
from repro.storage.disk import SimulatedDisk


@dataclass(frozen=True, slots=True)
class GATConfig:
    """Build-time knobs of the GAT index."""

    depth: int = 8
    memory_levels: int = 6
    sketch_intervals: int = 2

    def __post_init__(self) -> None:
        if self.depth < 1:
            raise ValueError("grid depth must be >= 1")
        if not 0 <= self.memory_levels <= self.depth:
            raise ValueError("memory_levels must be within [0, depth]")
        if self.sketch_intervals < 1:
            raise ValueError("sketch_intervals must be >= 1")


class GATIndex:
    """The hybrid grid index: grid + HICL + ITL + TAS + APL."""

    def __init__(
        self,
        db: TrajectoryDatabase,
        grid: HierarchicalGrid,
        hicl: HICL,
        itl: ITL,
        sketches: Dict[int, TrajectorySketch],
        apl: APLStore,
        config: GATConfig,
        disk: SimulatedDisk,
    ) -> None:
        self.db = db
        self.grid = grid
        self.hicl = hicl
        self.itl = itl
        self.sketches = sketches
        self.apl = apl
        self.config = config
        self.disk = disk
        #: Monotone mutation counter — bumped by every
        #: :meth:`insert_trajectory` so result caches keyed on query
        #: signatures (:class:`repro.service.QueryService`) can detect
        #: that their entries may be stale and drop them.
        self.version = 0

    @classmethod
    def build(
        cls,
        db: TrajectoryDatabase,
        config: Optional[GATConfig] = None,
        disk: Optional[SimulatedDisk] = None,
        bounding_box=None,
    ) -> "GATIndex":
        """Build all four components over *db*.

        A fresh :class:`SimulatedDisk` is created unless one is supplied
        (sharing a disk lets experiments aggregate I/O across components).
        Build-time writes are excluded from the returned disk's counters so
        query-time statistics start clean.

        *bounding_box* overrides the grid universe (default: the database's
        own padded box).  A sharded deployment passes the *global* box so
        every shard grid covers the same universe: inserts then route to any
        shard regardless of where the shard's initial trajectories happened
        to lie, and MINDIST lower bounds stay sound for points anywhere in
        the full dataset.  The box must cover every point of *db*.
        """
        if config is None:
            config = GATConfig()
        if disk is None:  # explicit: an empty SimulatedDisk is falsy (len 0)
            disk = SimulatedDisk()
        grid = HierarchicalGrid(
            db.bounding_box if bounding_box is None else bounding_box, config.depth
        )
        hicl = HICL.build(db, grid, config.memory_levels, disk)
        itl = ITL.build(db, grid)
        sketches = build_sketches(db, config.sketch_intervals)
        apl = APLStore.build(db, disk)
        disk.reset_stats()
        return cls(db, grid, hicl, itl, sketches, apl, config, disk)

    # ------------------------------------------------------------------
    # Dynamic maintenance (extension; the paper builds statically)
    # ------------------------------------------------------------------
    def insert_trajectory(self, trajectory) -> None:
        """Insert one new trajectory into the database and all four index
        components.

        Requires exclusive access: the mutators update plain dicts, so
        inserts must not run concurrently with queries (quiesce any
        :class:`~repro.service.QueryService` around maintenance).

        Constraint: the trajectory's points must lie inside the grid's
        bounding box (built from the original database).  Points outside
        would be clamped into edge cells whose MINDIST can exceed the true
        point distance, breaking the lower bound's soundness — rebuild the
        index instead when the spatial universe grows.
        """
        box = self.grid.box
        for p in trajectory:
            if not (box.min_x <= p.x <= box.max_x and box.min_y <= p.y <= box.max_y):
                raise ValueError(
                    f"point {p.coord} outside the index bounding box; rebuild required"
                )
        self.db.add(trajectory)  # validates ID freshness first
        tid = trajectory.trajectory_id
        leaf = self.grid.leaf_level
        for point in trajectory:
            if not point.activities:
                continue
            code = leaf.locate(point.coord)
            self.hicl.add_point(code, point.activities)
            for activity in point.activities:
                self.itl.add_posting(code, activity, tid)
        self.sketches[tid] = TrajectorySketch.from_activities(
            trajectory.activity_union, self.config.sketch_intervals
        )
        self.apl.store(trajectory)
        self.version += 1

    # ------------------------------------------------------------------
    # Sizing (Figure 8's memory-cost series)
    # ------------------------------------------------------------------
    def memory_cost_bytes(self) -> int:
        """In-memory footprint: memory-resident HICL levels + ITL + TAS."""
        return (
            self.hicl.memory_cost_bytes()
            + self.itl.memory_cost_bytes()
            + sketch_memory_bytes(len(self.db), self.config.sketch_intervals)
        )

    def disk_cost_bytes(self) -> int:
        """Bytes parked on the simulated disk (low HICL levels + APL)."""
        return self.disk.total_bytes()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GATIndex(d={self.config.depth}, mem_levels={self.config.memory_levels}, "
            f"M={self.config.sketch_intervals}, trajectories={len(self.db)})"
        )
