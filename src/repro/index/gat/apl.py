"""APL — Activity Posting List (Section IV, component iv).

"For each trajectory Tr in the database, we construct an activity posting
list for each activity α existing in Tr, which is a list of the trajectory
points that contain α.  This data structure is stored on disk due to its
high space requirement, and will be retrieved only when the distance with
the query needs to be evaluated."

The store persists, per trajectory, the mapping ``activity -> point
positions`` on the simulated disk.  Fetching a trajectory's APL is one
counted disk read; the search engine fetches it exactly once per surviving
candidate (validation + distance computation share the fetched record).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional, Tuple

from repro.model.database import TrajectoryDatabase
from repro.storage.cache import LRUCache
from repro.storage.disk import SimulatedDisk

PostingLists = Dict[int, Tuple[int, ...]]


class APLStore:
    """Disk-resident activity posting lists, one record per trajectory."""

    __slots__ = ("disk", "_known")

    def __init__(self, disk: SimulatedDisk) -> None:
        self.disk = disk
        self._known: set[int] = set()

    @classmethod
    def build(cls, db: TrajectoryDatabase, disk: SimulatedDisk) -> "APLStore":
        # ``posting_lists`` comes straight from the columnar activity
        # columns for array-backed trajectories (no point objects are
        # materialised), and its pickled record size — what the simulated
        # disk's page accounting sees — is identical either way.
        store = cls(disk)
        for trajectory in db:
            store.disk.put(("apl", trajectory.trajectory_id), trajectory.posting_lists)
            store._known.add(trajectory.trajectory_id)
        return store

    def store(self, trajectory) -> None:
        """Persist one trajectory's posting lists (dynamic insertion)."""
        self.disk.put(("apl", trajectory.trajectory_id), trajectory.posting_lists)
        self._known.add(trajectory.trajectory_id)

    def fetch(self, trajectory_id: int) -> PostingLists:
        """Read the posting lists of one trajectory (a counted disk read).

        Raises
        ------
        KeyError
            If the trajectory was never stored.
        """
        return self.disk.get(("apl", trajectory_id))

    def fetch_cached(self, trajectory_id: int, cache: Optional[LRUCache]) -> PostingLists:
        """Like :meth:`fetch` but served from *cache* when warm.

        Posting lists are written once at build/insert time and treated as
        immutable afterwards, so a shared cache is safe across concurrent
        queries; a hit skips the counted disk read entirely (the engine
        uses this for hot-trajectory fetches).  ``cache=None`` degrades to
        a plain :meth:`fetch`.
        """
        if cache is None:
            return self.fetch(trajectory_id)
        return cache.get_or_load(
            trajectory_id, lambda: self.fetch(trajectory_id)
        )

    _MISS = object()

    def fetch_many(
        self,
        trajectory_ids: Iterable[int],
        cache: Optional[LRUCache] = None,
        executor=None,
    ) -> Dict[int, PostingLists]:
        """Fetch a whole validation round's posting lists in one call.

        One pass over *cache* splits the round into hits and misses, the
        misses go to the simulated disk as a single grouped read
        (:meth:`SimulatedDisk.get_many` — optionally overlapped on
        *executor*), and the fresh records are cached.  Counted reads and
        cache hit/miss accounting are identical to fetching each
        trajectory individually; only the wall-clock shape of the I/O
        changes.
        """
        out: Dict[int, PostingLists] = {}
        missing: list[int] = []
        miss = self._MISS
        for tid in dict.fromkeys(trajectory_ids):
            if cache is not None:
                value = cache.get(tid, miss)
                if value is not miss:
                    out[tid] = value
                    continue
            missing.append(tid)
        if missing:
            values = self.disk.get_many(
                [("apl", tid) for tid in missing], executor=executor
            )
            for tid, value in zip(missing, values):
                out[tid] = value
                if cache is not None:
                    cache.put(tid, value)
        return out

    def __contains__(self, trajectory_id: int) -> bool:
        return trajectory_id in self._known

    def __len__(self) -> int:
        return len(self._known)

    @staticmethod
    def covers_query(posting: PostingLists, activities: Iterable[int]) -> bool:
        """The exact validation of Section V-C: a posting list must exist
        for every query activity."""
        return all(activity in posting for activity in activities)

    @staticmethod
    def candidate_positions(
        posting: PostingLists, activities: Iterable[int]
    ) -> Tuple[int, ...]:
        """``CP`` positions for one query point: the sorted union of the
        posting lists of its activities (Algorithm 3, line 1)."""
        return union_positions(posting, activities)


def union_positions(posting: PostingLists, activities: Iterable[int]) -> Tuple[int, ...]:
    """Sorted union of a trajectory's posting lists over *activities*.

    Used both for one query point's candidate positions (Algorithm 3,
    line 1) and — with the whole query's activity set — for the relevant
    sub-sequence ``rel(Tr)`` the scoring kernels compress a candidate to.
    The block kernel builds its per-round tensors directly from the
    batched-fetch APL records through this helper, so the engine's exact
    validation and its scoring read the same posting-list image.
    """
    out: set[int] = set()
    for activity in activities:
        ps = posting.get(activity)
        if ps:
            out.update(ps)
    return tuple(sorted(out))
