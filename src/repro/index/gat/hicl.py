"""HICL — Hierarchical Inverted Cell List (Section IV, component i).

For every activity ``α`` and every grid level, the set of cell codes whose
region contains at least one trajectory point carrying ``α``.  Built
bottom-up: leaf-cell membership comes straight from the points; each higher
level aggregates four children into their parent (a two-bit shift of the
Morton code).

Memory split: "we can just keep the high levels of the structure within
main memory and the low levels on the secondary storage".  The paper's
default keeps levels 1-6 in memory and levels 7-8 on disk; here the split
level is a constructor argument and the low levels live on the
:class:`~repro.storage.disk.SimulatedDisk` (one record per (activity,
level) inverted list) so lookups are counted as logical I/O.

The paper's memory-budget formula — the largest ``h`` with
``sum_{i=1..h} 4^i * C <= B`` i.e. ``h = log4(3B/(4C) + 1)`` — is exposed
as :func:`memory_level_budget`.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple

from repro.geometry.grid import HierarchicalGrid
from repro.model.database import TrajectoryDatabase
from repro.storage.cache import CacheStats, LRUCache
from repro.storage.disk import SimulatedDisk

#: Default bound on the shared cache of disk-resident (level, activity)
#: lists.  At ~8 bytes per cell code a full cache stays well under the
#: in-memory levels' own footprint; the bound only matters for huge
#: vocabularies, where LRU keeps exactly the query-hot head resident.
DEFAULT_CACHE_CAPACITY = 4096


def memory_level_budget(budget_bytes: int, vocabulary_size: int) -> int:
    """Highest level count ``h`` whose inverted cell lists fit in *budget_bytes*.

    Implements the paper's estimate ``h = log4(3B/(4C) + 1)`` where ``B`` is
    the memory budget and ``C`` the cardinality of the activity vocabulary
    (each level ``i`` is charged ``4^i * C``).
    """
    if budget_bytes <= 0 or vocabulary_size <= 0:
        raise ValueError("budget and vocabulary size must be positive")
    h = math.log(3.0 * budget_bytes / (4.0 * vocabulary_size) + 1.0, 4.0)
    return max(0, int(h))


class HICL:
    """Per-activity hierarchy of inverted cell lists.

    Parameters
    ----------
    grid:
        The hierarchical grid the cells belong to.
    memory_levels:
        Levels ``1..memory_levels`` stay in main memory; deeper levels are
        written to *disk* and each query-time lookup is a counted read.
    disk:
        The simulated disk for the low levels (required when
        ``memory_levels < grid.depth``).
    cache_capacity:
        Bound on the shared LRU cache of disk-resident lists; ``0``
        disables caching entirely (every lookup is a counted disk read —
        the paper-faithful cold accounting, matching the engine's
        ``apl_cache_size=0`` convention).
    """

    def __init__(
        self,
        grid: HierarchicalGrid,
        memory_levels: int,
        disk: Optional[SimulatedDisk] = None,
        cache_capacity: int = DEFAULT_CACHE_CAPACITY,
    ) -> None:
        if not 0 <= memory_levels <= grid.depth:
            raise ValueError(
                f"memory_levels must be in [0, {grid.depth}], got {memory_levels}"
            )
        if memory_levels < grid.depth and disk is None:
            raise ValueError("a disk is required when some levels are disk-resident")
        self.grid = grid
        self.memory_levels = memory_levels
        self.disk = disk
        # _memory[level][activity] -> frozenset of cell codes (levels 1-based)
        self._memory: Dict[int, Dict[int, FrozenSet[int]]] = {}
        # Shared cache of disk-resident lists.  The paper's own remedy for
        # limited memory is to "retrieve the block(s) around the query
        # location into main memory at query time"; a bounded LRU keeps the
        # query-hot lists warm *across* queries (and across concurrent
        # queries — the cache is thread-safe), so each (activity, level)
        # list costs one counted read per eviction cycle, not one per
        # query.  Cell lists are immutable frozensets, so on a static
        # index sharing them between queries can never change a result;
        # add_point invalidates the cache after its writes (and requires
        # exclusive access, see its docstring).
        self._cache: Optional[LRUCache] = (
            LRUCache(cache_capacity) if cache_capacity > 0 else None
        )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        db: TrajectoryDatabase,
        grid: HierarchicalGrid,
        memory_levels: int,
        disk: Optional[SimulatedDisk] = None,
        cache_capacity: int = DEFAULT_CACHE_CAPACITY,
    ) -> "HICL":
        """Build the full hierarchy from the database's points."""
        hicl = cls(grid, memory_levels, disk, cache_capacity)
        depth = grid.depth
        leaf_level = grid.leaf_level

        leaf_sets: Dict[int, Set[int]] = {}
        for trajectory in db:
            for point in trajectory:
                if not point.activities:
                    continue
                code = leaf_level.locate(point.coord)
                for activity in point.activities:
                    leaf_sets.setdefault(activity, set()).add(code)

        level_sets: Dict[int, Dict[int, Set[int]]] = {depth: leaf_sets}
        for level in range(depth - 1, 0, -1):
            below = level_sets[level + 1]
            here: Dict[int, Set[int]] = {}
            for activity, codes in below.items():
                here[activity] = {code >> 2 for code in codes}
            level_sets[level] = here

        for level, sets in level_sets.items():
            frozen = {activity: frozenset(codes) for activity, codes in sets.items()}
            if level <= memory_levels:
                hicl._memory[level] = frozen
            else:
                assert disk is not None
                for activity, codes in frozen.items():
                    disk.put(("hicl", level, activity), codes)
                # An empty in-memory shell marks the level as disk-resident.
                hicl._memory.setdefault(level, {})
        return hicl

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def cells_with_activity(self, activity: int, level: int) -> FrozenSet[int]:
        """Cell codes at *level* containing *activity* (possibly empty)."""
        if not 1 <= level <= self.grid.depth:
            raise ValueError(f"level {level} outside [1, {self.grid.depth}]")
        if level <= self.memory_levels:
            return self._memory.get(level, {}).get(activity, frozenset())

        def _load() -> FrozenSet[int]:
            assert self.disk is not None
            stored = self.disk.get_or_none(("hicl", level, activity))
            return stored if stored is not None else frozenset()

        if self._cache is None:
            return _load()
        return self._cache.get_or_load((level, activity), _load)

    def clear_cache(self) -> None:
        """Drop the cache of disk-resident lists (forces every next lookup
        back to counted disk reads — useful for cold-cache measurements)."""
        if self._cache is not None:
            self._cache.clear()

    def cache_stats(self) -> CacheStats:
        """Hit/miss accounting of the shared disk-list cache (all zeros
        when caching is disabled)."""
        if self._cache is None:
            return CacheStats(hits=0, misses=0, size=0, capacity=0)
        return self._cache.stats()

    # ------------------------------------------------------------------
    # Dynamic maintenance (extension; the paper only builds statically)
    # ------------------------------------------------------------------
    def add_point(self, leaf_code: int, activities: Iterable[int]) -> None:
        """Register a new point's activities in its leaf cell and all
        ancestors.  Disk-resident levels are read-modified-written (counted
        I/O); the shared list cache is invalidated *after* the writes so a
        subsequent lookup can only load the updated lists.

        Dynamic maintenance requires exclusive access: like the rest of
        the index's mutators it updates plain dicts, so it must not run
        concurrently with queries (build once, serve many — or quiesce
        the service around inserts).
        """
        depth = self.grid.depth
        activity_list = list(activities)
        code = leaf_code
        for level in range(depth, 0, -1):
            if level <= self.memory_levels:
                table = self._memory.setdefault(level, {})
                for activity in activity_list:
                    existing = table.get(activity, frozenset())
                    if code not in existing:
                        table[activity] = existing | {code}
            else:
                assert self.disk is not None
                for activity in activity_list:
                    key = ("hicl", level, activity)
                    stored = self.disk.get_or_none(key) or frozenset()
                    if code not in stored:
                        self.disk.put(key, stored | {code})
            code >>= 2
        self.clear_cache()

    def cells_with_any(self, activities: Iterable[int], level: int) -> FrozenSet[int]:
        """Union of the per-activity cell lists (candidate regions for a
        query point whose ``q.Φ`` is *activities*)."""
        out: Set[int] = set()
        for activity in activities:
            out |= self.cells_with_activity(activity, level)
        return frozenset(out)

    def cell_has_any(self, code: int, activities: Iterable[int], level: int) -> bool:
        """Does the cell contain at least one of *activities*?"""
        return any(
            code in self.cells_with_activity(activity, level) for activity in activities
        )

    def cell_activity_overlap(
        self, code: int, activities: Iterable[int], level: int
    ) -> FrozenSet[int]:
        """``c.Φ ∩ activities`` — the subset of *activities* present in the
        cell.  Used to equip Algorithm 2's virtual points."""
        return frozenset(
            activity
            for activity in activities
            if code in self.cells_with_activity(activity, level)
        )

    def children_with_any(
        self, code: int, level: int, activities: Iterable[int]
    ) -> List[int]:
        """The (up to four) children of cell *code* at ``level + 1`` that
        contain at least one of *activities* — the pruned child expansion of
        the best-first candidate retrieval (Section V-A)."""
        child_level = level + 1
        activity_list = list(activities)
        lists = [self.cells_with_activity(a, child_level) for a in activity_list]
        base = code << 2
        out = []
        for child in (base, base + 1, base + 2, base + 3):
            if any(child in cells for cells in lists):
                out.append(child)
        return out

    # ------------------------------------------------------------------
    # Sizing (Figure 8's memory-cost series)
    # ------------------------------------------------------------------
    def memory_cost_bytes(self) -> int:
        """Rough in-memory footprint: 8 bytes per (activity, cell) entry in
        the memory-resident levels plus dict overhead ignored — comparable
        across granularities, which is what Figure 8 plots."""
        total = 0
        for level, table in self._memory.items():
            if level > self.memory_levels:
                continue
            for codes in table.values():
                total += 8 * len(codes) + 16
        return total
