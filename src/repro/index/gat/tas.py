"""TAS — Trajectory Activity Sketch (Section IV, component iii).

A per-trajectory, in-memory summary of the trajectory's activity set as
``M`` integer intervals over the (frequency-ordered) activity IDs.  The
sketch supports a superset test with *no false dismissals*: if an activity
ID falls outside every interval, the trajectory certainly does not contain
it; if it falls inside, the trajectory *may* contain it (false positives
are later removed by the APL check).

Interval construction (paper): sort the trajectory's activity IDs, compute
consecutive gaps, and split at the ``M - 1`` largest gaps.  That choice
minimises the total interval span — "relocating any split point (with gap
g) to other places (with gap g') will result in increase by g - g' on the
overall size of the intervals" — and is verified against brute force in the
test suite.

Each interval costs two integers, so the paper prices the whole structure
at ``8 * M * N`` bytes for N trajectories; :func:`sketch_memory_bytes`
reproduces that accounting.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.model.database import TrajectoryDatabase


def optimal_intervals(sorted_ids: Sequence[int], m: int) -> Tuple[Tuple[int, int], ...]:
    """Partition ascending *sorted_ids* into at most *m* intervals with
    minimum total span, by splitting at the ``m - 1`` largest gaps.

    Returns ``((lo, hi), ...)`` intervals in ascending order.  Fewer than
    *m* intervals come back when there are fewer than *m* distinct IDs.
    """
    if m <= 0:
        raise ValueError("the number of intervals must be positive")
    ids = list(dict.fromkeys(sorted_ids))  # dedupe, keep sorted order
    if not ids:
        return ()
    if any(ids[i] > ids[i + 1] for i in range(len(ids) - 1)):
        raise ValueError("activity IDs must be sorted ascending")
    if len(ids) <= m:
        return tuple((v, v) for v in ids)

    # Gaps between consecutive IDs; split at the m-1 largest.
    gaps = [(ids[i + 1] - ids[i], i) for i in range(len(ids) - 1)]
    gaps.sort(key=lambda g: (-g[0], g[1]))
    split_after = sorted(i for _gap, i in gaps[: m - 1])

    intervals: List[Tuple[int, int]] = []
    start = 0
    for cut in split_after:
        intervals.append((ids[start], ids[cut]))
        start = cut + 1
    intervals.append((ids[start], ids[-1]))
    return tuple(intervals)


class TrajectorySketch:
    """The interval sketch of one trajectory."""

    __slots__ = ("intervals",)

    def __init__(self, intervals: Tuple[Tuple[int, int], ...]) -> None:
        self.intervals = intervals

    @classmethod
    def from_activities(cls, activities: Iterable[int], m: int) -> "TrajectorySketch":
        return cls(optimal_intervals(sorted(activities), m))

    def covers(self, activity_id: int) -> bool:
        """Is *activity_id* inside some interval?  (May be a false positive.)"""
        for lo, hi in self.intervals:
            if lo <= activity_id <= hi:
                return True
            if activity_id < lo:
                return False  # intervals are ascending and disjoint
        return False

    def covers_all(self, activity_ids: Iterable[int]) -> bool:
        """Superset test for the whole query activity set ``Q.Φ`` — the
        candidate-validation filter of Section V-C."""
        return all(self.covers(a) for a in activity_ids)

    def total_span(self) -> int:
        """``sum |I_a|`` — the objective the split placement minimises."""
        return sum(hi - lo for lo, hi in self.intervals)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "TrajectorySketch(" + " ".join(f"[{lo},{hi}]" for lo, hi in self.intervals) + ")"


def build_sketches(db: TrajectoryDatabase, m: int) -> Dict[int, TrajectorySketch]:
    """Sketch every trajectory of *db* with *m* intervals."""
    return {
        tr.trajectory_id: TrajectorySketch.from_activities(tr.activity_union, m)
        for tr in db
    }


def sketch_memory_bytes(n_trajectories: int, m: int) -> int:
    """The paper's cost model: each interval keeps two integers (8 bytes),
    so N trajectories cost ``8 * M * N`` bytes."""
    return 8 * m * n_trajectories
