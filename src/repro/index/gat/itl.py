"""ITL — Inverted Trajectory List (Section IV, component ii).

"In each cell of the d-Grid, we build an inverted trajectory list for each
activity α existing in this cell, which is a list of trajectory IDs whose
segment contains α within this cell."

The ITL answers the leaf step of candidate retrieval: once best-first
search reaches a leaf cell for query point ``q``, the ITL yields the
trajectories that perform one of ``q.Φ``'s activities *inside that cell*.
It stays in main memory ("ITL can be accommodated within the main memory of
a mainstream server in most cases").
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from repro.geometry.grid import HierarchicalGrid
from repro.model.database import TrajectoryDatabase


class ITL:
    """Leaf-cell activity -> trajectory-ID inverted lists."""

    __slots__ = ("_cells",)

    def __init__(self) -> None:
        # cell code -> {activity -> sorted tuple of trajectory IDs}
        self._cells: Dict[int, Dict[int, Tuple[int, ...]]] = {}

    @classmethod
    def build(cls, db: TrajectoryDatabase, grid: HierarchicalGrid) -> "ITL":
        itl = cls()
        leaf = grid.leaf_level
        accum: Dict[int, Dict[int, Set[int]]] = {}
        for trajectory in db:
            tid = trajectory.trajectory_id
            for point in trajectory:
                if not point.activities:
                    continue
                code = leaf.locate(point.coord)
                cell_lists = accum.setdefault(code, {})
                for activity in point.activities:
                    cell_lists.setdefault(activity, set()).add(tid)
        itl._cells = {
            code: {a: tuple(sorted(tids)) for a, tids in lists.items()}
            for code, lists in accum.items()
        }
        return itl

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def trajectories_with(self, code: int, activity: int) -> Tuple[int, ...]:
        """Trajectory IDs carrying *activity* inside leaf cell *code*."""
        return self._cells.get(code, {}).get(activity, ())

    def trajectories_with_any(self, code: int, activities: Iterable[int]) -> Set[int]:
        """Union over *activities* of the cell's inverted lists."""
        out: Set[int] = set()
        lists = self._cells.get(code)
        if not lists:
            return out
        for activity in activities:
            tids = lists.get(activity)
            if tids:
                out.update(tids)
        return out

    def activities_in(self, code: int) -> FrozenSet[int]:
        """All activities present in leaf cell *code* (``c.Φ``)."""
        return frozenset(self._cells.get(code, {}))

    def has_cell(self, code: int) -> bool:
        return code in self._cells

    def n_cells(self) -> int:
        return len(self._cells)

    def add_posting(self, code: int, activity: int, trajectory_id: int) -> None:
        """Register *trajectory_id* under (cell, activity); keeps the list
        sorted.  Extension for dynamic insertion."""
        lists = self._cells.setdefault(code, {})
        existing = lists.get(activity, ())
        if trajectory_id not in existing:
            lists[activity] = tuple(sorted((*existing, trajectory_id)))

    def memory_cost_bytes(self) -> int:
        """8 bytes per posted trajectory ID plus 16 per list — the ITL share
        of Figure 8's memory series."""
        total = 0
        for lists in self._cells.values():
            for tids in lists.values():
                total += 8 * len(tids) + 16
        return total
