"""GAT — the Grid index for Activity Trajectories (Section IV).

Four components, mirroring Figure 2 of the paper:

i.   :class:`~repro.index.gat.hicl.HICL` — Hierarchical Inverted Cell
     List: per activity, per grid level, the set of cells containing it.
ii.  :class:`~repro.index.gat.itl.ITL` — Inverted Trajectory List: per
     leaf cell, per activity, the trajectories whose segment carries the
     activity inside the cell.
iii. :class:`~repro.index.gat.tas.TrajectorySketch` — Trajectory Activity
     Sketch: per trajectory, M compact ID intervals summarising its
     activity set.
iv.  :class:`~repro.index.gat.apl.APLStore` — Activity Posting List: per
     trajectory, per activity, the point positions, persisted on the
     simulated disk.

:class:`~repro.index.gat.index.GATIndex` builds and owns all four.
"""

from repro.index.gat.hicl import HICL
from repro.index.gat.itl import ITL
from repro.index.gat.tas import TrajectorySketch, optimal_intervals, build_sketches
from repro.index.gat.apl import APLStore
from repro.index.gat.index import GATIndex

__all__ = [
    "HICL",
    "ITL",
    "TrajectorySketch",
    "optimal_intervals",
    "build_sketches",
    "APLStore",
    "GATIndex",
]
