"""Index structures: the paper's GAT plus the three baseline indexes.

* :mod:`repro.index.gat` — the Grid index for Activity Trajectories
  (Section IV): HICL, ITL, TAS and APL assembled by
  :class:`~repro.index.gat.index.GATIndex`.
* :mod:`repro.index.inverted` — the activity inverted list of the IL
  baseline (Section III-A).
* :mod:`repro.index.rtree` — an R-tree built from scratch (Guttman insert
  + STR bulk load) for the RT baseline (Section III-B).
* :mod:`repro.index.irtree` — the IR-tree: the R-tree augmented with
  per-node inverted activity files (Section III-C).
"""

from repro.index.inverted import InvertedIndex
from repro.index.rtree import RTree, RTreeNode
from repro.index.irtree import IRTree
from repro.index.gat import GATIndex

__all__ = ["InvertedIndex", "RTree", "RTreeNode", "IRTree", "GATIndex"]
