"""IR-tree: the R-tree augmented with per-node inverted activity files
(Section III-C, after Cong et al., VLDB 2009).

"Each leaf node ... contains ... a pointer to an inverted file for the text
descriptions of the objects stored in this node.  Each non-leaf node R
contains ... a pointer to an inverted file for the union of the text
descriptions of its child nodes."

For query processing only one operation on the inverted file matters:
*does this node contain any of the query's activities?* — so each node
stores the union of its subtree's activity IDs (the set of terms of its
inverted file), and leaf entries keep their own activity sets.  The
searcher skips any node whose term set is disjoint from the query's
(Section III-C: "If not, all the places enclosed in this node can be pruned
directly").
"""

from __future__ import annotations

from typing import Any, FrozenSet, Sequence, Tuple

from repro.index.rtree import RTree, RTreeEntry, RTreeNode


class IRTree:
    """An R-tree whose nodes carry activity-term sets.

    Build with :meth:`bulk_load` from ``(x, y, payload, activities)``
    tuples; the payload convention is the same as the RT baseline's
    (``(trajectory_id, position)``).
    """

    def __init__(self, tree: RTree) -> None:
        self.tree = tree

    @classmethod
    def bulk_load(
        cls,
        items: Sequence[Tuple[float, float, Any, FrozenSet[int]]],
        max_entries: int = 32,
    ) -> "IRTree":
        base = RTree.bulk_load(
            [(x, y, (payload, activities)) for x, y, payload, activities in items],
            max_entries=max_entries,
        )
        irtree = cls(base)
        if base.size:
            irtree._annotate(base.root)
        return irtree

    def _annotate(self, node: RTreeNode) -> FrozenSet[int]:
        """Bottom-up union of activity sets (building the inverted files)."""
        union: set[int] = set()
        if node.is_leaf:
            for entry in node.children:
                _payload, activities = entry.payload
                union |= activities
        else:
            for child in node.children:
                union |= self._annotate(child)
        node.activities = frozenset(union)
        return node.activities

    # ------------------------------------------------------------------
    # Accessors used by the searcher
    # ------------------------------------------------------------------
    @property
    def root(self) -> RTreeNode:
        return self.tree.root

    @property
    def size(self) -> int:
        return self.tree.size

    @staticmethod
    def node_has_any(node: RTreeNode, activities: FrozenSet[int]) -> bool:
        """Inverted-file check: does the node's subtree contain at least one
        of *activities*?  ``frozenset.isdisjoint`` runs the membership loop
        in C — this check fires once per (stream, child) and dominated the
        per-child Python work of the IRT expansion."""
        terms = node.activities
        if terms is None:
            return True  # unannotated (empty tree edge case) — never prune
        return not terms.isdisjoint(activities)

    @staticmethod
    def entry_payload(entry: RTreeEntry) -> Any:
        payload, _activities = entry.payload
        return payload

    @staticmethod
    def entry_activities(entry: RTreeEntry) -> FrozenSet[int]:
        _payload, activities = entry.payload
        return activities
