"""An R-tree over trajectory points, built from scratch (Section III-B).

The RT baseline "treat[s] the points of all trajectories as a point set and
index[es] these points using an R-tree" [Guttman 1984].  Two construction
paths are provided:

* :meth:`RTree.bulk_load` — Sort-Tile-Recursive (STR) packing, the standard
  way to build a static R-tree over a known point set (what the benchmarks
  use: the paper's trees are also built once over a static database);
* :meth:`RTree.insert` — classic Guttman insertion with quadratic split,
  so the dynamic code path exists and is tested too.

Leaf entries carry an opaque payload — the searchers store
``(trajectory_id, position)`` so a popped point immediately identifies its
trajectory.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple

from repro.geometry.primitives import Coord, Rect

try:  # pragma: no cover - exercised implicitly by the baseline tests
    import numpy as _np
except ImportError:  # pragma: no cover - the image bakes numpy in
    _np = None

DEFAULT_MAX_ENTRIES = 32

#: Below this fan-out the scalar loop beats NumPy's fixed call overhead;
#: the default node size (32) sits comfortably above it.
MIN_BATCH = 8


class RTreeEntry:
    """A leaf entry: a point (degenerate rectangle) plus payload."""

    __slots__ = ("x", "y", "payload")

    def __init__(self, x: float, y: float, payload: Any) -> None:
        self.x = x
        self.y = y
        self.payload = payload

    @property
    def coord(self) -> Coord:
        return (self.x, self.y)

    def rect(self) -> Rect:
        return Rect(self.x, self.y, self.x, self.y)


class RTreeNode:
    """Internal or leaf node.  ``children`` holds nodes (internal) or
    :class:`RTreeEntry` objects (leaf)."""

    __slots__ = ("rect", "children", "is_leaf", "activities")

    def __init__(self, is_leaf: bool) -> None:
        self.rect: Optional[Rect] = None
        self.children: List[Any] = []
        self.is_leaf = is_leaf
        # Used by the IR-tree subclass/annotator; None for a plain R-tree.
        self.activities: Optional[frozenset] = None

    def recompute_rect(self) -> None:
        rects = [
            child.rect() if isinstance(child, RTreeEntry) else child.rect
            for child in self.children
        ]
        rect = rects[0]
        for r in rects[1:]:
            rect = rect.union(r)
        self.rect = rect

    def min_dist(self, point: Coord) -> float:
        assert self.rect is not None
        return self.rect.min_dist(point)

    # ------------------------------------------------------------------
    # Batched candidate distances (the best-first searchers expand one
    # node at a time; computing all child keys in one NumPy call replaces
    # the per-child Python MINDIST loop)
    # ------------------------------------------------------------------
    def child_min_dists(self, point: Coord) -> List[float]:
        """MINDIST from *point* to every child rectangle, in child order.

        Batched via NumPy when available and worthwhile; otherwise the
        scalar :meth:`Rect.min_dist` per child.  ``np.hypot`` can differ
        from ``math.hypot`` in the last ulp on a small fraction of inputs.
        The values returned here feed heap ordering and the RT baseline's
        Lemma-2 termination bound, so a 1-ulp overestimate could in
        principle terminate one pop early and miss a candidate whose true
        distance falls inside that sub-ulp window — the same (half-ulp)
        caveat the scalar rounding already carries, measure-zero on
        continuous coordinates, and bounded by the cross-method agreement
        suite's tolerances.  Final rankings always come from the shared
        evaluator's exact distances.
        """
        children = self.children
        if _np is None or len(children) < MIN_BATCH:
            if self.is_leaf:
                x, y = point
                return [math.hypot(x - e.x, y - e.y) for e in children]
            return [child.rect.min_dist(point) for child in children]
        x, y = point
        if self.is_leaf:
            cx = _np.array([e.x for e in children])
            cy = _np.array([e.y for e in children])
            return _np.hypot(x - cx, y - cy).tolist()
        rects = [child.rect for child in children]
        min_x = _np.array([r.min_x for r in rects])
        min_y = _np.array([r.min_y for r in rects])
        max_x = _np.array([r.max_x for r in rects])
        max_y = _np.array([r.max_y for r in rects])
        # MINDIST per axis: distance to the rect's interval, zero inside
        # (the two one-sided gaps can never both be positive).
        dx = _np.maximum(_np.maximum(min_x - x, x - max_x), 0.0)
        dy = _np.maximum(_np.maximum(min_y - y, y - max_y), 0.0)
        return _np.hypot(dx, dy).tolist()


class RTree:
    """The tree proper.

    Parameters
    ----------
    max_entries:
        Node fan-out ``M``; nodes split when exceeding it.
    min_entries:
        Underflow bound ``m`` used by the quadratic split (defaults to
        ``ceil(0.4 * M)``, a common choice).
    """

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES, min_entries: int | None = None):
        if max_entries < 2:
            raise ValueError("max_entries must be >= 2")
        self.max_entries = max_entries
        self.min_entries = min_entries if min_entries is not None else max(1, math.ceil(0.4 * max_entries))
        if not 1 <= self.min_entries <= self.max_entries // 2:
            raise ValueError("min_entries must be in [1, max_entries/2]")
        self.root = RTreeNode(is_leaf=True)
        self.size = 0

    # ------------------------------------------------------------------
    # Bulk loading (Sort-Tile-Recursive)
    # ------------------------------------------------------------------
    @classmethod
    def bulk_load(
        cls,
        items: Sequence[Tuple[float, float, Any]],
        max_entries: int = DEFAULT_MAX_ENTRIES,
    ) -> "RTree":
        """Pack ``(x, y, payload)`` items into a balanced tree with STR.

        Sort by x, cut into vertical slabs of ~sqrt(P) leaves each, sort
        each slab by y, pack leaves; repeat one level up until a single
        root remains.
        """
        tree = cls(max_entries=max_entries)
        if not items:
            return tree
        entries = [RTreeEntry(x, y, payload) for x, y, payload in items]
        leaves = cls._str_pack(
            entries,
            max_entries,
            key_x=lambda e: e.x,
            key_y=lambda e: e.y,
            make_node=lambda chunk: cls._make_leaf(chunk),
        )
        level = leaves
        while len(level) > 1:
            level = cls._str_pack(
                level,
                max_entries,
                key_x=lambda n: n.rect.center[0],
                key_y=lambda n: n.rect.center[1],
                make_node=lambda chunk: cls._make_internal(chunk),
            )
        tree.root = level[0]
        tree.size = len(entries)
        return tree

    @staticmethod
    def _make_leaf(entries: List[RTreeEntry]) -> RTreeNode:
        node = RTreeNode(is_leaf=True)
        node.children = list(entries)
        node.recompute_rect()
        return node

    @staticmethod
    def _make_internal(children: List[RTreeNode]) -> RTreeNode:
        node = RTreeNode(is_leaf=False)
        node.children = list(children)
        node.recompute_rect()
        return node

    @staticmethod
    def _str_pack(
        items: List[Any],
        max_entries: int,
        key_x: Callable[[Any], float],
        key_y: Callable[[Any], float],
        make_node: Callable[[List[Any]], RTreeNode],
    ) -> List[RTreeNode]:
        n_nodes = math.ceil(len(items) / max_entries)
        n_slabs = max(1, math.ceil(math.sqrt(n_nodes)))
        per_slab = math.ceil(len(items) / n_slabs)
        by_x = sorted(items, key=key_x)
        nodes: List[RTreeNode] = []
        for s in range(0, len(by_x), per_slab):
            slab = sorted(by_x[s : s + per_slab], key=key_y)
            for c in range(0, len(slab), max_entries):
                nodes.append(make_node(slab[c : c + max_entries]))
        return nodes

    # ------------------------------------------------------------------
    # Dynamic insertion (Guttman, quadratic split)
    # ------------------------------------------------------------------
    def insert(self, x: float, y: float, payload: Any) -> None:
        entry = RTreeEntry(x, y, payload)
        split = self._insert_into(self.root, entry)
        if split is not None:
            new_root = RTreeNode(is_leaf=False)
            new_root.children = [self.root, split]
            new_root.recompute_rect()
            self.root = new_root
        self.size += 1

    def _insert_into(self, node: RTreeNode, entry: RTreeEntry) -> Optional[RTreeNode]:
        """Insert recursively; returns the sibling node if *node* split."""
        if node.is_leaf:
            node.children.append(entry)
            node.rect = entry.rect() if node.rect is None else node.rect.union(entry.rect())
            if len(node.children) > self.max_entries:
                return self._split(node)
            return None
        child = self._choose_subtree(node, entry)
        split = self._insert_into(child, entry)
        node.rect = node.rect.union(entry.rect()) if node.rect else entry.rect()
        if split is not None:
            node.children.append(split)
            if len(node.children) > self.max_entries:
                return self._split(node)
        return None

    @staticmethod
    def _choose_subtree(node: RTreeNode, entry: RTreeEntry) -> RTreeNode:
        """Least-enlargement child, ties by smaller area (Guttman's
        ChooseLeaf)."""
        rect = entry.rect()
        best = None
        best_key = (math.inf, math.inf)
        for child in node.children:
            enlargement = child.rect.enlargement(rect)
            key = (enlargement, child.rect.area)
            if key < best_key:
                best_key = key
                best = child
        assert best is not None
        return best

    def _split(self, node: RTreeNode) -> RTreeNode:
        """Quadratic split: seed with the pair wasting the most area, then
        assign each remaining child to the group whose rect grows least."""
        children = node.children
        rect_of = lambda c: c.rect() if isinstance(c, RTreeEntry) else c.rect

        # Pick seeds.
        worst = -math.inf
        seed_a = seed_b = 0
        for i in range(len(children)):
            for j in range(i + 1, len(children)):
                ri, rj = rect_of(children[i]), rect_of(children[j])
                waste = ri.union(rj).area - ri.area - rj.area
                if waste > worst:
                    worst = waste
                    seed_a, seed_b = i, j

        group_a = [children[seed_a]]
        group_b = [children[seed_b]]
        rect_a = rect_of(children[seed_a])
        rect_b = rect_of(children[seed_b])
        rest = [c for idx, c in enumerate(children) if idx not in (seed_a, seed_b)]

        for idx, child in enumerate(rest):
            remaining = len(rest) - idx
            # Underflow guard: force-assign when a group must take the rest.
            if len(group_a) + remaining == self.min_entries:
                group_a.append(child)
                rect_a = rect_a.union(rect_of(child))
                continue
            if len(group_b) + remaining == self.min_entries:
                group_b.append(child)
                rect_b = rect_b.union(rect_of(child))
                continue
            grow_a = rect_a.enlargement(rect_of(child))
            grow_b = rect_b.enlargement(rect_of(child))
            if (grow_a, rect_a.area, len(group_a)) <= (grow_b, rect_b.area, len(group_b)):
                group_a.append(child)
                rect_a = rect_a.union(rect_of(child))
            else:
                group_b.append(child)
                rect_b = rect_b.union(rect_of(child))

        node.children = group_a
        node.rect = rect_a
        sibling = RTreeNode(is_leaf=node.is_leaf)
        sibling.children = group_b
        sibling.rect = rect_b
        return sibling

    # ------------------------------------------------------------------
    # Queries / inspection
    # ------------------------------------------------------------------
    def range_search(self, rect: Rect) -> List[RTreeEntry]:
        """All entries whose point lies inside *rect*."""
        out: List[RTreeEntry] = []
        if self.root.rect is None:
            return out
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.rect is None or not node.rect.intersects(rect):
                continue
            if node.is_leaf:
                out.extend(e for e in node.children if rect.contains_point(e.coord))
            else:
                stack.extend(node.children)
        return out

    def iter_entries(self) -> Iterator[RTreeEntry]:
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                yield from node.children
            else:
                stack.extend(node.children)

    def height(self) -> int:
        h = 1
        node = self.root
        while not node.is_leaf:
            node = node.children[0]
            h += 1
        return h

    def node_count(self) -> int:
        count = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            count += 1
            if not node.is_leaf:
                stack.extend(node.children)
        return count

    def check_invariants(self) -> None:
        """Raise AssertionError if any node's rect fails to cover its
        children or leaf depth is inconsistent (bulk-load only guarantees
        the former for insert-built trees).  Test helper."""
        def walk(node: RTreeNode) -> None:
            assert node.rect is not None, "node without rect"
            for child in node.children:
                if isinstance(child, RTreeEntry):
                    assert node.is_leaf
                    assert node.rect.contains_point(child.coord)
                else:
                    assert not node.is_leaf
                    assert node.rect.contains_rect(child.rect)
                    walk(child)
        if self.size:
            walk(self.root)
