"""Plain-text tables shaped like the paper's figures.

Every benchmark prints, for each figure, a table with one row per x-axis
value and one column per method — the textual equivalent of the paper's
line plots — so EXPERIMENTS.md can quote them directly.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.bench.harness import SweepResult


def format_series_table(
    title: str,
    results: Sequence[SweepResult],
    methods: Sequence[str] = ("IL", "RT", "IRT", "GAT"),
    value: str = "avg_seconds",
    unit: str = "s/query",
) -> str:
    """Render a sweep as an aligned text table."""
    header = [results[0].x_label if results else "x"] + [f"{m} ({unit})" for m in methods]
    rows: List[List[str]] = []
    for point in results:
        row = [str(point.x_value)]
        for m in methods:
            timing = point.timings.get(m)
            if timing is None:
                row.append("-")
            elif value == "avg_seconds":
                row.append(f"{timing.avg_seconds:.4f}")
            elif value == "candidates":
                per_query = timing.candidates / max(1, timing.n_queries)
                row.append(f"{per_query:.1f}")
            else:
                row.append(f"{timing.extra.get(value, float('nan')):.4f}")
        rows.append(row)
    return _render(title, header, rows)


def format_stat_table(title: str, rows: Sequence[Tuple[str, object]]) -> str:
    """Two-column statistic table (Table IV style)."""
    return _render(title, ["statistic", "value"], [[k, str(v)] for k, v in rows])


def _render(title: str, header: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title, "-" * len(title)]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(header)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n" + "\n".join(lines) + "\n"
