"""Benchmark harness: workloads, counters, sweeps and reporting.

The package turns the paper's evaluation section into runnable code:

* :mod:`repro.bench.workloads` — query generation following Section
  VII-A's methodology (sample a trajectory, pick locations/activities,
  control the diameter δ(Q));
* :mod:`repro.bench.harness` — builds every searcher over a dataset and
  times a query batch, collecting wall-clock plus work counters;
* :mod:`repro.bench.experiments` — one sweep definition per paper figure;
* :mod:`repro.bench.reporting` — plain-text tables shaped like the
  paper's plots (one row per x-value, one column per method).
"""

from repro.bench.workloads import QueryWorkloadGenerator, WorkloadConfig
from repro.bench.harness import ExperimentHarness, MethodTiming, SweepResult
from repro.bench.reporting import format_series_table, format_stat_table

__all__ = [
    "QueryWorkloadGenerator",
    "WorkloadConfig",
    "ExperimentHarness",
    "MethodTiming",
    "SweepResult",
    "format_series_table",
    "format_stat_table",
]
