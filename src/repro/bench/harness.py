"""Experiment harness: build all four searchers once, time query batches.

The harness mirrors the paper's measurement protocol: for each parameter
setting, run a batch of queries (the paper uses 50) through each method and
report the *average running time per query*.  Work counters (candidates,
node/cell accesses, simulated-disk reads) ride along so benchmarks can
explain the timings.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.baselines import InvertedListSearch, IRTreeSearch, RTreeSearch
from repro.core.engine import GATSearchEngine
from repro.core.query import Query
from repro.index.gat.index import GATConfig, GATIndex
from repro.model.database import TrajectoryDatabase

METHOD_NAMES = ("IL", "RT", "IRT", "GAT")


@dataclass(slots=True)
class MethodTiming:
    """Aggregate result of one (method, sweep point) cell."""

    method: str
    total_seconds: float = 0.0
    n_queries: int = 0
    candidates: int = 0
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def avg_seconds(self) -> float:
        return self.total_seconds / self.n_queries if self.n_queries else 0.0


@dataclass(slots=True)
class SweepResult:
    """One x-axis value of a figure: timings for every method."""

    x_label: str
    x_value: object
    timings: Dict[str, MethodTiming] = field(default_factory=dict)


class ExperimentHarness:
    """Owns a database plus one instance of every searcher."""

    def __init__(
        self,
        db: TrajectoryDatabase,
        gat_config: Optional[GATConfig] = None,
        methods: Sequence[str] = METHOD_NAMES,
    ) -> None:
        self.db = db
        self.methods = tuple(methods)
        self.searchers: Dict[str, object] = {}
        if "IL" in self.methods:
            self.searchers["IL"] = InvertedListSearch(db)
        if "RT" in self.methods:
            self.searchers["RT"] = RTreeSearch(db)
        if "IRT" in self.methods:
            self.searchers["IRT"] = IRTreeSearch(db)
        if "GAT" in self.methods:
            self.gat_index = GATIndex.build(db, gat_config)
            self.searchers["GAT"] = GATSearchEngine(self.gat_index)

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------
    def run_batch(
        self,
        queries: Sequence[Query],
        k: int,
        order_sensitive: bool = False,
    ) -> Dict[str, MethodTiming]:
        """Run every query through every method; return per-method totals."""
        out: Dict[str, MethodTiming] = {}
        for name in self.methods:
            searcher = self.searchers[name]
            run: Callable = searcher.oatsq if order_sensitive else searcher.atsq
            timing = MethodTiming(method=name)
            for query in queries:
                t0 = time.perf_counter()
                run(query, k)
                timing.total_seconds += time.perf_counter() - t0
                timing.n_queries += 1
                stats = searcher.stats
                timing.candidates += getattr(stats, "candidates_retrieved", 0)
            out[name] = timing
        return out

    def sweep(
        self,
        x_label: str,
        x_values: Sequence[object],
        make_queries: Callable[[object], Sequence[Query]],
        k_of: Callable[[object], int],
        order_sensitive: bool = False,
    ) -> List[SweepResult]:
        """Generic parameter sweep: for each x, generate queries and time
        every method."""
        results: List[SweepResult] = []
        for x in x_values:
            queries = make_queries(x)
            timings = self.run_batch(queries, k_of(x), order_sensitive)
            results.append(SweepResult(x_label=x_label, x_value=x, timings=timings))
        return results
