"""Experiment harness: build all four searchers once, time query batches.

The harness mirrors the paper's measurement protocol: for each parameter
setting, run a batch of queries (the paper uses 50) through each method and
report the *average running time per query*.  Work counters (candidates,
node/cell accesses, simulated-disk reads) ride along so benchmarks can
explain the timings.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.baselines import InvertedListSearch, IRTreeSearch, RTreeSearch
from repro.core.engine import GATSearchEngine
from repro.core.query import Query
from repro.index.gat.index import GATConfig, GATIndex
from repro.model.database import TrajectoryDatabase
from repro.service import QueryService

METHOD_NAMES = ("IL", "RT", "IRT", "GAT")


@dataclass(slots=True)
class MethodTiming:
    """Aggregate result of one (method, sweep point) cell."""

    method: str
    total_seconds: float = 0.0
    n_queries: int = 0
    candidates: int = 0
    extra: Dict[str, float] = field(default_factory=dict)
    #: Optional ``MetricRegistry.snapshot()`` taken after the batch when
    #: the caller passed an :class:`~repro.obs.Observability` handle —
    #: JSON-ready, so ``BENCH_*.json`` rows can embed it verbatim.
    metrics: Optional[Dict[str, object]] = None

    @property
    def avg_seconds(self) -> float:
        return self.total_seconds / self.n_queries if self.n_queries else 0.0


@dataclass(slots=True)
class SweepResult:
    """One x-axis value of a figure: timings for every method."""

    x_label: str
    x_value: object
    timings: Dict[str, MethodTiming] = field(default_factory=dict)


class ExperimentHarness:
    """Owns a database plus one instance of every searcher."""

    def __init__(
        self,
        db: TrajectoryDatabase,
        gat_config: Optional[GATConfig] = None,
        methods: Sequence[str] = METHOD_NAMES,
    ) -> None:
        self.db = db
        self.gat_config = gat_config
        self.methods = tuple(methods)
        self.searchers: Dict[str, object] = {}
        if "IL" in self.methods:
            self.searchers["IL"] = InvertedListSearch(db)
        if "RT" in self.methods:
            self.searchers["RT"] = RTreeSearch(db)
        if "IRT" in self.methods:
            self.searchers["IRT"] = IRTreeSearch(db)
        if "GAT" in self.methods:
            self.gat_index = GATIndex.build(db, gat_config)
            # Paper protocol: every query pays its own counted I/O, so the
            # figure engine runs cache-less (no APL LRU; run_batch clears
            # the HICL cache per query).  run_service_batch builds its own
            # warm-cache engine for the serving-layer comparison.
            self.searchers["GAT"] = GATSearchEngine(self.gat_index, apl_cache_size=0)

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------
    def run_batch(
        self,
        queries: Sequence[Query],
        k: int,
        order_sensitive: bool = False,
    ) -> Dict[str, MethodTiming]:
        """Run every query through every method; return per-method totals."""
        out: Dict[str, MethodTiming] = {}
        for name in self.methods:
            searcher = self.searchers[name]
            run: Callable = searcher.oatsq if order_sensitive else searcher.atsq
            timing = MethodTiming(method=name)
            for query in queries:
                if name == "GAT":
                    # Seed/paper protocol: cold disk-list cache per query.
                    self.gat_index.hicl.clear_cache()
                t0 = time.perf_counter()
                run(query, k)
                timing.total_seconds += time.perf_counter() - t0
                timing.n_queries += 1
                stats = searcher.stats
                timing.candidates += getattr(stats, "candidates_retrieved", 0)
            out[name] = timing
        return out

    def run_service_batch(
        self,
        queries: Sequence[Query],
        k: int,
        order_sensitive: bool = False,
        max_workers: int = 8,
        obs=None,
    ) -> MethodTiming:
        """Serve the batch through a concurrent :class:`QueryService` over
        a warm-cache engine on the harness's GAT index (requires "GAT"
        among the harness methods).  *obs* (an
        :class:`~repro.obs.Observability`) rides into the service; its
        registry snapshot lands in ``MethodTiming.metrics``.

        ``total_seconds`` is the batch *wall* time — concurrent queries
        overlap, so ``avg_seconds`` is the amortised per-query cost the
        service achieves, comparable with :meth:`run_batch`'s GAT row as
        the cold-cache sequential baseline (the service engine is built
        fresh with the default caches; the figure engine stays cache-less
        so the paper protocol is untouched).  Service-level aggregates
        ride along in ``extra``.
        """
        if "GAT" not in self.searchers:
            raise ValueError('run_service_batch needs "GAT" among the methods')
        service = QueryService(
            GATSearchEngine(self.gat_index), max_workers=max_workers, obs=obs
        )
        t0 = time.perf_counter()
        responses = service.search_many(queries, k=k, order_sensitive=order_sensitive)
        wall = time.perf_counter() - t0
        stats = service.stats()
        timing = MethodTiming(
            method=f"GAT×{max_workers}",
            total_seconds=wall,
            n_queries=len(responses),
            candidates=sum(r.stats.candidates_retrieved for r in responses),
            extra={
                "qps": stats.qps,
                "p50_ms": stats.latency_p50_s * 1000.0,
                "p95_ms": stats.latency_p95_s * 1000.0,
                "hicl_hit_rate": stats.hicl_cache_hit_rate,
                "apl_hit_rate": stats.apl_cache_hit_rate,
            },
        )
        if obs is not None:
            timing.metrics = obs.metrics_snapshot()
        return timing

    def run_sharded_batch(
        self,
        queries: Sequence[Query],
        k: int,
        order_sensitive: bool = False,
        n_shards: int = 2,
        executor: str = "thread",
        n_clients: int = 1,
        n_replicas: int = 1,
        replica_router: str = "round-robin",
        fault_policy=None,
        disk_factory=None,
        obs=None,
    ) -> MethodTiming:
        """Serve the batch through a :class:`ShardedQueryService` over a
        fresh sharded build of the harness database — or, with
        ``n_replicas > 1``, through a
        :class:`~repro.shard.replicas.ReplicatedShardedService` holding
        that many copies of each shard behind *replica_router*.

        ``n_clients > 1`` splits the workload round-robin
        (:func:`~repro.bench.workloads.shard_workload`) and submits each
        slice from its own client thread — the service's busy-interval
        accounting makes the resulting QPS comparable with a single
        ``search_many`` call.  ``total_seconds`` is batch wall time, so
        ``avg_seconds`` is the amortised per-query cost, comparable with
        :meth:`run_batch`'s GAT row and :meth:`run_service_batch`.

        Fault-tolerance benchmarks pass *fault_policy* (a
        :class:`~repro.shard.resilience.FaultPolicy`, enabling the
        supervised fan-out) and *disk_factory* (a zero-arg
        ``SimulatedDisk`` factory handed to ``ShardedGATIndex.build``,
        called once per shard — e.g. disks wearing a
        :class:`~repro.faults.FaultInjector`).  Resilience
        counters (retries / hedges / partial responses) ride in
        ``extra`` whenever a policy is set.  *obs* (an
        :class:`~repro.obs.Observability`) rides into the service; its
        registry snapshot lands in ``MethodTiming.metrics``.
        """
        from concurrent.futures import ThreadPoolExecutor

        from repro.bench.workloads import shard_workload
        from repro.shard import (
            ReplicatedShardedService,
            ShardedGATIndex,
            ShardedQueryService,
        )

        sharded = ShardedGATIndex.build(
            self.db,
            n_shards=n_shards,
            config=self.gat_config,
            disk_factory=disk_factory,
        )
        if n_replicas > 1:
            service_cm = ReplicatedShardedService(
                sharded,
                executor=executor,
                n_replicas=n_replicas,
                replica_router=replica_router,
                fault_policy=fault_policy,
                obs=obs,
            )
        else:
            service_cm = ShardedQueryService(
                sharded, executor=executor, fault_policy=fault_policy, obs=obs
            )
        with service_cm as service:
            t0 = time.perf_counter()
            if n_clients <= 1:
                responses = service.search_many(
                    queries, k=k, order_sensitive=order_sensitive
                )
            else:
                slices = shard_workload(queries, n_clients)
                with ThreadPoolExecutor(max_workers=n_clients) as clients:
                    futures = [
                        clients.submit(
                            service.search_many, s, k, order_sensitive
                        )
                        for s in slices
                    ]
                    responses = [r for f in futures for r in f.result()]
            wall = time.perf_counter() - t0
            stats = service.stats()
        method = f"GAT/{n_shards}sh×{executor}"
        if n_replicas > 1:
            method += f"×{n_replicas}rep"
        extra = {
            "qps": stats.qps,
            "p50_ms": stats.latency_p50_s * 1000.0,
            "p95_ms": stats.latency_p95_s * 1000.0,
            "disk_reads": float(stats.disk_reads),
        }
        if fault_policy is not None:
            extra["task_retries"] = float(stats.task_retries)
            extra["task_hedges"] = float(stats.task_hedges)
            extra["partial_responses"] = float(stats.partial_responses)
            extra["complete_responses"] = float(
                sum(1 for r in responses if r.complete)
            )
        timing = MethodTiming(
            method=method,
            total_seconds=wall,
            n_queries=len(responses),
            candidates=sum(r.stats.candidates_retrieved for r in responses),
            extra=extra,
        )
        if obs is not None:
            timing.metrics = obs.metrics_snapshot()
        return timing

    def run_open_loop(
        self,
        queries: Sequence[Query],
        k: int,
        rate_qps: float,
        duration_s: float,
        slo_s: float,
        arrivals: str = "poisson",
        seed: int = 0,
        n_shards: int = 2,
        executor: str = "thread",
        serving_config=None,
        fault_policy=None,
        disk_factory=None,
        obs=None,
    ) -> MethodTiming:
        """Open-loop counterpart of :meth:`run_sharded_batch`: drive a
        seeded *arrivals* process (mean *rate_qps* for *duration_s*)
        through a :class:`~repro.serving.ServingFrontend` over a fresh
        sharded service, cycling *queries*.

        The backend's result cache is disabled — a cycled open-loop
        workload would otherwise be answered from the cache and never
        load the backend.  ``extra`` carries the goodput-centric report
        (``goodput_qps`` / ``offered_qps`` / ``shed_frac`` / latency
        percentiles); ``total_seconds`` is the offered window.
        """
        from repro.serving import (
            ServingConfig,
            ServingFrontend,
            arrival_process,
            run_open_loop,
        )
        from repro.shard import ShardedGATIndex, ShardedQueryService

        config = serving_config if serving_config is not None else ServingConfig()
        sharded = ShardedGATIndex.build(
            self.db,
            n_shards=n_shards,
            config=self.gat_config,
            disk_factory=disk_factory,
        )
        service_cm = ShardedQueryService(
            sharded,
            executor=executor,
            fault_policy=fault_policy,
            result_cache_size=0,
            obs=obs,
        )
        with service_cm as service:
            with ServingFrontend(service, config, obs=obs) as frontend:
                report = run_open_loop(
                    frontend,
                    queries,
                    arrival_process(arrivals, rate_qps, seed=seed),
                    duration_s=duration_s,
                    slo_s=slo_s,
                    k=k,
                )
        row = report.row()
        timing = MethodTiming(
            method=f"open-loop/{arrivals}@{rate_qps:g}qps",
            total_seconds=duration_s,
            n_queries=report.completed,
            extra={
                "goodput_qps": report.goodput_qps,
                "offered_qps": report.offered_qps,
                "shed_frac": report.shed_frac,
                "drop_frac": report.drop_frac,
                "p50_ms": row["latency_p50_ms"],
                "p95_ms": row["latency_p95_ms"],
                "p99_ms": row["latency_p99_ms"],
            },
        )
        if obs is not None:
            timing.metrics = obs.metrics_snapshot()
        return timing

    def sweep(
        self,
        x_label: str,
        x_values: Sequence[object],
        make_queries: Callable[[object], Sequence[Query]],
        k_of: Callable[[object], int],
        order_sensitive: bool = False,
    ) -> List[SweepResult]:
        """Generic parameter sweep: for each x, generate queries and time
        every method."""
        results: List[SweepResult] = []
        for x in x_values:
            queries = make_queries(x)
            timings = self.run_batch(queries, k_of(x), order_sensitive)
            results.append(SweepResult(x_label=x_label, x_value=x, timings=timings))
        return results
