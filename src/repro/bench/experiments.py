"""Experiment definitions: one function per paper figure.

Each function builds (or receives) a dataset, generates the figure's
workload, sweeps its parameter, and returns `SweepResult`s ready for
:func:`repro.bench.reporting.format_series_table`.  Scales are configurable
module-wide through :class:`ExperimentScale` so the same code can run a
quick smoke pass (pytest-benchmark) or a longer EXPERIMENTS.md pass.

Paper defaults (Table V): k = 9, |Q| = 4, |q.Φ| = 3, δ(Q) = 10 km.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.bench.harness import ExperimentHarness, SweepResult
from repro.bench.workloads import QueryWorkloadGenerator, WorkloadConfig
from repro.core.query import Query
from repro.data.presets import dataset_from_preset
from repro.index.gat.index import GATConfig
from repro.model.database import TrajectoryDatabase

#: Paper defaults, Table V.
DEFAULT_K = 9
DEFAULT_QUERY_POINTS = 4
DEFAULT_ACTIVITIES = 3
DEFAULT_DIAMETER_KM = 10.0

#: Paper sweep values.
K_VALUES = (5, 10, 15, 20, 25)
QUERY_POINT_VALUES = (2, 3, 4, 5, 6)
ACTIVITY_VALUES = (1, 2, 3, 4, 5)
DIAMETER_VALUES_KM = (5.0, 10.0, 20.0, 30.0, 50.0)
GRANULARITY_DEPTHS = (5, 6, 7, 8)  # 32, 64, 128, 256 partitions per side


@dataclass(frozen=True, slots=True)
class ExperimentScale:
    """How big an experiment run is.

    ``dataset_scale`` is the fraction of the paper's dataset sizes
    (DESIGN.md records the substitution); ``n_queries`` is the batch per
    sweep point (the paper uses 50).
    """

    dataset_scale: float = 0.02
    n_queries: int = 5
    seed: int = 77


def build_dataset(name: str, scale: ExperimentScale) -> TrajectoryDatabase:
    """The la/ny dataset at this experiment scale."""
    return dataset_from_preset(name, scale.dataset_scale)


def _generator(db: TrajectoryDatabase, scale: ExperimentScale) -> QueryWorkloadGenerator:
    return QueryWorkloadGenerator(
        db,
        WorkloadConfig(
            n_query_points=DEFAULT_QUERY_POINTS,
            n_activities_per_point=DEFAULT_ACTIVITIES,
            seed=scale.seed,
        ),
    )


# ----------------------------------------------------------------------
# Figure 3 — effect of k
# ----------------------------------------------------------------------
def effect_of_k(
    db: TrajectoryDatabase,
    scale: ExperimentScale,
    order_sensitive: bool = False,
    k_values: Sequence[int] = K_VALUES,
    harness: Optional[ExperimentHarness] = None,
) -> List[SweepResult]:
    harness = harness or ExperimentHarness(db)
    gen = _generator(db, scale)
    queries = gen.queries(scale.n_queries)
    return harness.sweep(
        "k",
        list(k_values),
        make_queries=lambda _k: queries,  # same batch, varying k (as in the paper)
        k_of=lambda k: int(k),
        order_sensitive=order_sensitive,
    )


# ----------------------------------------------------------------------
# Figure 4 — effect of |Q|
# ----------------------------------------------------------------------
def effect_of_query_points(
    db: TrajectoryDatabase,
    scale: ExperimentScale,
    order_sensitive: bool = False,
    nq_values: Sequence[int] = QUERY_POINT_VALUES,
    harness: Optional[ExperimentHarness] = None,
) -> List[SweepResult]:
    harness = harness or ExperimentHarness(db)
    gen = _generator(db, scale)
    return harness.sweep(
        "|Q|",
        list(nq_values),
        make_queries=lambda nq: gen.queries(scale.n_queries, n_query_points=int(nq)),
        k_of=lambda _nq: DEFAULT_K,
        order_sensitive=order_sensitive,
    )


# ----------------------------------------------------------------------
# Figure 5 — effect of |q.Φ|
# ----------------------------------------------------------------------
def effect_of_activities(
    db: TrajectoryDatabase,
    scale: ExperimentScale,
    order_sensitive: bool = False,
    na_values: Sequence[int] = ACTIVITY_VALUES,
    harness: Optional[ExperimentHarness] = None,
) -> List[SweepResult]:
    harness = harness or ExperimentHarness(db)
    gen = _generator(db, scale)
    return harness.sweep(
        "|q.phi|",
        list(na_values),
        make_queries=lambda na: gen.queries(
            scale.n_queries, n_activities_per_point=int(na)
        ),
        k_of=lambda _na: DEFAULT_K,
        order_sensitive=order_sensitive,
    )


# ----------------------------------------------------------------------
# Figure 6 — effect of δ(Q)
# ----------------------------------------------------------------------
def effect_of_diameter(
    db: TrajectoryDatabase,
    scale: ExperimentScale,
    order_sensitive: bool = False,
    diameters: Sequence[float] = DIAMETER_VALUES_KM,
    harness: Optional[ExperimentHarness] = None,
) -> List[SweepResult]:
    harness = harness or ExperimentHarness(db)
    gen = _generator(db, scale)
    return harness.sweep(
        "delta(Q) km",
        list(diameters),
        make_queries=lambda d: gen.queries_with_diameter(scale.n_queries, float(d)),
        k_of=lambda _d: DEFAULT_K,
        order_sensitive=order_sensitive,
    )


# ----------------------------------------------------------------------
# Figure 7 — scalability in |D|
# ----------------------------------------------------------------------
def effect_of_dataset_size(
    full_db: TrajectoryDatabase,
    scale: ExperimentScale,
    sizes: Sequence[int],
    order_sensitive: bool = False,
) -> List[SweepResult]:
    """Sample the NY dataset down to each size (the paper samples 10K-50K;
    our sizes stand in proportionally) and time the defaults on each."""
    import random

    results: List[SweepResult] = []
    rng = random.Random(scale.seed)
    for size in sizes:
        db = full_db.sample(size, rng)
        harness = ExperimentHarness(db)
        gen = _generator(db, scale)
        queries = gen.queries(scale.n_queries)
        timings = harness.run_batch(queries, DEFAULT_K, order_sensitive)
        results.append(SweepResult(x_label="|D|", x_value=size, timings=timings))
    return results


# ----------------------------------------------------------------------
# Figure 8 — partition granularity (GAT only, time + memory)
# ----------------------------------------------------------------------
def effect_of_granularity(
    db: TrajectoryDatabase,
    scale: ExperimentScale,
    depths: Sequence[int] = GRANULARITY_DEPTHS,
) -> List[Dict[str, object]]:
    """For each grid depth, build GAT, time ATSQ and OATSQ batches and
    record the in-memory index size — the three series of Figure 8."""
    import time as _time

    gen = _generator(db, scale)
    queries = gen.queries(scale.n_queries)
    rows: List[Dict[str, object]] = []
    for depth in depths:
        config = GATConfig(depth=depth, memory_levels=min(6, depth))
        harness = ExperimentHarness(db, gat_config=config, methods=("GAT",))
        engine = harness.searchers["GAT"]

        t0 = _time.perf_counter()
        for q in queries:
            engine.atsq(q, DEFAULT_K)
        atsq_avg = (_time.perf_counter() - t0) / len(queries)

        t0 = _time.perf_counter()
        for q in queries:
            engine.oatsq(q, DEFAULT_K)
        oatsq_avg = (_time.perf_counter() - t0) / len(queries)

        rows.append(
            {
                "partitions": 1 << depth,
                "depth": depth,
                "atsq_avg_s": atsq_avg,
                "oatsq_avg_s": oatsq_avg,
                "memory_bytes": harness.gat_index.memory_cost_bytes(),
            }
        )
    return rows
