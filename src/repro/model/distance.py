"""Distance metrics between query locations and trajectory points.

All match-distance algorithms (:mod:`repro.core.match`,
:mod:`repro.core.order_match`) take a :class:`DistanceMetric` strategy
instead of hard-coding Euclidean distance.  This buys two things:

* the paper's worked examples (Figure 1, Tables II-III) supply raw distance
  *matrices*, which :class:`MatrixDistance` reproduces exactly in tests;
* datasets expressed in longitude/latitude can either be projected up front
  (:func:`project_lonlat_to_km`, what our generator does) or measured with
  :class:`HaversineDistance` directly.
"""

from __future__ import annotations

import math
from typing import Mapping, Protocol, Sequence, Tuple

Coord = Tuple[float, float]

EARTH_RADIUS_KM = 6371.0088


class DistanceMetric(Protocol):
    """Distance between a query coordinate and a point coordinate."""

    def __call__(self, a: Coord, b: Coord) -> float:  # pragma: no cover - protocol
        ...


class EuclideanDistance:
    """Planar straight-line distance (the library default)."""

    __slots__ = ()

    def __call__(self, a: Coord, b: Coord) -> float:
        return math.hypot(a[0] - b[0], a[1] - b[1])

    def __repr__(self) -> str:  # pragma: no cover
        return "EuclideanDistance()"


class HaversineDistance:
    """Great-circle distance in kilometres between ``(lon, lat)`` pairs."""

    __slots__ = ()

    def __call__(self, a: Coord, b: Coord) -> float:
        lon1, lat1 = map(math.radians, a)
        lon2, lat2 = map(math.radians, b)
        dlat = lat2 - lat1
        dlon = lon2 - lon1
        h = math.sin(dlat / 2.0) ** 2 + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2.0) ** 2
        return 2.0 * EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(h)))

    def prepare(self, coords: Sequence[Coord]) -> "PreparedHaversine":
        """A drop-in metric with the radian conversion of *coords* (the
        query locations) done once up front — see :class:`PreparedHaversine`."""
        return PreparedHaversine(coords)

    def __repr__(self) -> str:  # pragma: no cover
        return "HaversineDistance()"


class PreparedHaversine:
    """:class:`HaversineDistance` with the first argument's radian
    conversion hoisted out of the per-call path.

    Algorithm 3 and the order-sensitive DP call the metric with the *same*
    handful of query coordinates millions of times per workload; the seed
    implementation re-converted them (and re-took ``cos(lat)``) on every
    call.  :meth:`HaversineDistance.prepare` builds one of these per query
    (the engine does it once per :class:`~repro.core.context.ExecutionContext`),
    mapping each known first-argument coordinate to its precomputed
    ``(lon_rad, lat_rad, cos_lat)``.  The arithmetic on the precomputed
    values is exactly the sequence the plain metric performs, so results
    are bit-identical; unknown first arguments fall back to converting on
    the fly, keeping the wrapper a drop-in :class:`DistanceMetric`.
    """

    __slots__ = ("_prepared",)

    def __init__(self, coords: Sequence[Coord]) -> None:
        self._prepared = {}
        for coord in coords:
            lon_rad = math.radians(coord[0])
            lat_rad = math.radians(coord[1])
            self._prepared[coord] = (lon_rad, lat_rad, math.cos(lat_rad))

    def __call__(self, a: Coord, b: Coord) -> float:
        pre = self._prepared.get(a)
        if pre is None:
            lon1 = math.radians(a[0])
            lat1 = math.radians(a[1])
            cos1 = math.cos(lat1)
        else:
            lon1, lat1, cos1 = pre
        lon2, lat2 = map(math.radians, b)
        dlat = lat2 - lat1
        dlon = lon2 - lon1
        h = math.sin(dlat / 2.0) ** 2 + cos1 * math.cos(lat2) * math.sin(dlon / 2.0) ** 2
        return 2.0 * EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(h)))

    def __repr__(self) -> str:  # pragma: no cover
        return f"PreparedHaversine({len(self._prepared)} coords)"


def prepare_metric(metric: DistanceMetric, coords: Sequence[Coord]) -> DistanceMetric:
    """Per-query metric preparation hook.

    Haversine gets its query-side radians precomputed (bit-identical, see
    :class:`PreparedHaversine`); every other metric is returned unchanged.
    """
    if type(metric) is HaversineDistance:
        return PreparedHaversine(coords)
    return metric


# ----------------------------------------------------------------------
# NumPy fast paths (used by repro.core.kernels; numpy imported lazily so
# the scalar library keeps working without it)
# ----------------------------------------------------------------------
def euclidean_matrix(qx, qy, px, py):
    """Pairwise planar distances: rows = query points, columns = points.

    ``np.hypot`` agrees with ``math.hypot`` to the last ulp (its
    elementwise loop can round differently on a fraction of inputs), so
    each entry matches ``EuclideanDistance()(q, p)`` to ≲2e-16 relative.
    """
    import numpy as np

    return np.hypot(qx[:, None] - px[None, :], qy[:, None] - py[None, :])


def haversine_matrix(qlon_rad, qlat_rad, qcos_lat, plon_rad, plat_rad):
    """Pairwise great-circle km over *radian* inputs (query radians are
    precomputed once per query by the kernel layer).

    Same formula as :class:`HaversineDistance`; NumPy's transcendentals may
    differ from ``libm`` in the last ulp, which the parity suite bounds.
    """
    import numpy as np

    dlat = plat_rad[None, :] - qlat_rad[:, None]
    dlon = plon_rad[None, :] - qlon_rad[:, None]
    h = (
        np.sin(dlat / 2.0) ** 2
        + qcos_lat[:, None] * np.cos(plat_rad)[None, :] * np.sin(dlon / 2.0) ** 2
    )
    return 2.0 * EARTH_RADIUS_KM * np.arcsin(np.minimum(1.0, np.sqrt(h)))


class MatrixDistance:
    """Distance read from an explicit table, used to replay paper examples.

    The coordinates passed in are expected to be *labels* encoded as
    coordinates: the convention used in tests is that a query point ``q_i``
    has coordinate ``(i, -1)`` and a trajectory point ``p_j`` has coordinate
    ``(j, tr)``; the table maps such pairs to the figure's numbers.  Any
    pair missing from the table raises ``KeyError`` loudly rather than
    silently guessing.
    """

    __slots__ = ("_table",)

    def __init__(self, table: Mapping[Tuple[Coord, Coord], float]) -> None:
        self._table = dict(table)

    def __call__(self, a: Coord, b: Coord) -> float:
        try:
            return self._table[(a, b)]
        except KeyError:
            return self._table[(b, a)]

    def __repr__(self) -> str:  # pragma: no cover
        return f"MatrixDistance({len(self._table)} entries)"


def project_lonlat_to_km(
    coords: Sequence[Coord], ref: Coord | None = None
) -> Tuple[Tuple[float, float], ...]:
    """Equirectangular projection of ``(lon, lat)`` pairs to local planar km.

    Adequate at metropolitan scale (the paper's datasets span single cities,
    < ~100 km), where the error versus true great-circle distance is far
    below the distances the queries care about.

    Parameters
    ----------
    coords:
        Sequence of ``(lon, lat)`` pairs in degrees.
    ref:
        Projection origin; defaults to the centroid of *coords*.
    """
    if not coords:
        return ()
    if ref is None:
        ref = (
            sum(c[0] for c in coords) / len(coords),
            sum(c[1] for c in coords) / len(coords),
        )
    ref_lon, ref_lat = ref
    k_lat = math.pi * EARTH_RADIUS_KM / 180.0
    k_lon = k_lat * math.cos(math.radians(ref_lat))
    return tuple(((lon - ref_lon) * k_lon, (lat - ref_lat) * k_lat) for lon, lat in coords)
