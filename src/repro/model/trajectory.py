"""Activity trajectory: an ordered sequence of trajectory points.

Definition 2: ``Tr = (p1, p2, ..., pn)`` where each ``p_i`` is a geo-point
with an attached activity set.  A trajectory also exposes the derived
structures the indexes need:

* ``activity_union`` — the union of all point activity sets (what the IL
  baseline and the TAS sketch summarise);
* ``posting_lists`` — for each activity, the positions of the points that
  contain it (the on-disk Activity Posting List of Section IV is the
  per-trajectory persisted form of this).

Two construction paths share this class: the classic object path
(``__init__`` with a point sequence) and the **array-backed** path
(:meth:`ActivityTrajectory.from_arrays`), where the trajectory holds
zero-copy views into a columnar store (:mod:`repro.model.columnar`) and
materialises :class:`TrajectoryPoint` objects only when someone iterates
them.  Both paths expose equal derived structures — same points, same
posting positions, same unions — so rankings and work counters cannot
tell them apart.  (Dict/set *iteration order* is not part of that
contract and nothing downstream depends on it; see
:mod:`repro.model.columnar`.)
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Sequence, Tuple

from repro.model.point import TrajectoryPoint


class ActivityTrajectory:
    """An immutable activity trajectory with a database-unique ID.

    Positions are 0-based everywhere in the code base.  (The paper writes
    ``Tr[i, j]`` 1-based; tests that mirror paper examples translate.)
    """

    __slots__ = (
        "trajectory_id",
        "_points",
        "_activity_union",
        "_posting_lists",
        "_coord_array",
        "_posting_arrays",
        "_acts",
        "_act_off",
        "_timestamps",
        "_venues",
    )

    def __init__(self, trajectory_id: int, points: Sequence[TrajectoryPoint]) -> None:
        if not points:
            raise ValueError("a trajectory must contain at least one point")
        self.trajectory_id = trajectory_id
        self._points: Tuple[TrajectoryPoint, ...] | None = tuple(points)
        self._activity_union: FrozenSet[int] | None = None
        self._posting_lists: Dict[int, Tuple[int, ...]] | None = None
        self._coord_array = None
        self._posting_arrays = None
        self._acts = None
        self._act_off = None
        self._timestamps = None
        self._venues = None

    @classmethod
    def from_arrays(
        cls,
        trajectory_id: int,
        coords,
        act_values,
        act_offsets,
        timestamps=None,
        venues=None,
    ) -> "ActivityTrajectory":
        """Array-backed construction over columnar views (zero-copy).

        Parameters
        ----------
        coords:
            ``(n, 2)`` float64 view — becomes :meth:`coord_array` as-is.
        act_values / act_offsets:
            The store's *global* activity column plus this trajectory's
            ``(n+1,)`` slice of absolute offsets into it: point ``i``
            performed ``act_values[act_offsets[i]:act_offsets[i+1]]``,
            in the original frozenset iteration order (see
            :mod:`repro.model.columnar`).
        timestamps / venues:
            Optional ``(n,)`` views; NaN / -1 decode to ``None``.

        Points, posting structures, and the activity union materialise
        lazily on first access; the coordinate matrix is the passed view
        itself, so vectorized kernels read the shared columns directly.
        """
        n = len(coords)
        if n == 0:
            raise ValueError("a trajectory must contain at least one point")
        if len(act_offsets) != n + 1:
            raise ValueError("act_offsets must have one entry per point plus one")
        self = object.__new__(cls)
        self.trajectory_id = trajectory_id
        self._points = None
        self._activity_union = None
        self._posting_lists = None
        self._coord_array = coords
        self._posting_arrays = None
        self._acts = act_values
        self._act_off = act_offsets
        self._timestamps = timestamps
        self._venues = venues
        return self

    # ------------------------------------------------------------------
    # Point materialisation (array-backed path)
    # ------------------------------------------------------------------
    @property
    def points(self) -> Tuple[TrajectoryPoint, ...]:
        """The point tuple; array-backed trajectories build it on first
        access (and cache it — immutability makes a benign concurrent
        double-build the worst case, like the other derived structures)."""
        if self._points is None:
            self._points = self._materialize_points()
        return self._points

    def _materialize_points(self) -> Tuple[TrajectoryPoint, ...]:
        coords = self._coord_array
        base = int(self._act_off[0])
        offsets = [int(o) - base for o in self._act_off.tolist()]
        acts = self._acts[base : base + offsets[-1]].tolist()
        ts = self._timestamps.tolist() if self._timestamps is not None else None
        vn = self._venues.tolist() if self._venues is not None else None
        points = []
        for i, (x, y) in enumerate(coords.tolist()):
            timestamp = None
            if ts is not None and ts[i] == ts[i]:  # NaN encodes None
                timestamp = ts[i]
            venue = None
            if vn is not None and vn[i] >= 0:  # -1 encodes None
                venue = vn[i]
            points.append(
                TrajectoryPoint(
                    x,
                    y,
                    frozenset(acts[offsets[i] : offsets[i + 1]]),
                    timestamp=timestamp,
                    venue_id=venue,
                )
            )
        return tuple(points)

    # ------------------------------------------------------------------
    # Basic sequence protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        if self._points is not None:
            return len(self._points)
        return len(self._coord_array)

    def __iter__(self) -> Iterator[TrajectoryPoint]:
        return iter(self.points)

    def __getitem__(self, index: int) -> TrajectoryPoint:
        return self.points[index]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ActivityTrajectory(id={self.trajectory_id}, n={len(self)})"

    # ------------------------------------------------------------------
    # Derived activity structures (computed lazily, cached)
    # ------------------------------------------------------------------
    @property
    def activity_union(self) -> FrozenSet[int]:
        """Union of the activity sets of all points."""
        if self._activity_union is None:
            if self._points is None:
                lo, hi = int(self._act_off[0]), int(self._act_off[-1])
                self._activity_union = frozenset(self._acts[lo:hi].tolist())
            else:
                union: set[int] = set()
                for point in self._points:
                    union |= point.activities
                self._activity_union = frozenset(union)
        return self._activity_union

    @property
    def posting_lists(self) -> Dict[int, Tuple[int, ...]]:
        """activity ID -> ascending positions of the points that contain it.

        This is the in-memory image of the paper's Activity Posting List
        (APL).  The storage-backed APL component of the GAT index serialises
        exactly this mapping.
        """
        if self._posting_lists is None:
            lists: Dict[int, List[int]] = {}
            if self._points is None:
                # Array-backed: walk the stored postings directly instead
                # of materialising points.  Key order may differ from the
                # object path's, which is fine — posting lists are read
                # by key, and the APL's pickled size is order-independent.
                base = int(self._act_off[0])
                offsets = [int(o) - base for o in self._act_off.tolist()]
                acts = self._acts[base : base + offsets[-1]].tolist()
                for pos in range(len(offsets) - 1):
                    for activity in acts[offsets[pos] : offsets[pos + 1]]:
                        lists.setdefault(activity, []).append(pos)
            else:
                for pos, point in enumerate(self._points):
                    for activity in point.activities:
                        lists.setdefault(activity, []).append(pos)
            self._posting_lists = {a: tuple(ps) for a, ps in lists.items()}
        return self._posting_lists

    def coord_array(self):
        """Cached ``(n, 2)`` float64 coordinate matrix (requires NumPy).

        Built lazily by the vectorized scoring kernels; like the other
        derived structures it treats the trajectory as immutable, and a
        benign double-compute is the worst a concurrent first access can
        do.  Array-backed trajectories return their columnar view
        directly — the zero-copy read path into the shared store.
        """
        if self._coord_array is None:
            import numpy as np

            self._coord_array = np.array(
                [(p.x, p.y) for p in self.points], dtype=float
            )
        return self._coord_array

    def posting_arrays(self):
        """The posting lists as cached int64 NumPy arrays (requires NumPy).

        The array image of :attr:`posting_lists` — same keys, same
        ascending positions — used by the block scoring kernel's
        all-single-activity fast path, which concatenates whole posting
        arrays instead of resolving positions one by one.  Lazily built
        and cached under the same immutability assumption as the other
        derived structures.
        """
        if self._posting_arrays is None:
            import numpy as np

            self._posting_arrays = {
                a: np.asarray(ps, dtype=np.int64)
                for a, ps in self.posting_lists.items()
            }
        return self._posting_arrays

    def positions_of(self, activity: int) -> Tuple[int, ...]:
        """Positions of the points containing *activity* (possibly empty)."""
        return self.posting_lists.get(activity, ())

    def contains_all(self, activities: Iterable[int]) -> bool:
        """True when every activity in *activities* occurs somewhere."""
        union = self.activity_union
        return all(a in union for a in activities)

    def sub(self, start: int, stop: int) -> Tuple[TrajectoryPoint, ...]:
        """Points of the sub-trajectory ``Tr[start, stop]`` — both ends
        inclusive, 0-based (paper notation ``Tr[i, j]`` is 1-based)."""
        if start < 0 or stop >= len(self.points) or start > stop:
            raise IndexError(f"invalid sub-trajectory [{start}, {stop}]")
        return self.points[start : stop + 1]

    def n_checkins(self) -> int:
        """Total number of activity occurrences (Table IV's '#activity')."""
        if self._points is None:
            return int(self._act_off[-1] - self._act_off[0])
        return sum(len(p.activities) for p in self._points)
