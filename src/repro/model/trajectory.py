"""Activity trajectory: an ordered sequence of trajectory points.

Definition 2: ``Tr = (p1, p2, ..., pn)`` where each ``p_i`` is a geo-point
with an attached activity set.  A trajectory also exposes the derived
structures the indexes need:

* ``activity_union`` — the union of all point activity sets (what the IL
  baseline and the TAS sketch summarise);
* ``posting_lists`` — for each activity, the positions of the points that
  contain it (the on-disk Activity Posting List of Section IV is the
  per-trajectory persisted form of this).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Sequence, Tuple

from repro.model.point import TrajectoryPoint


class ActivityTrajectory:
    """An immutable activity trajectory with a database-unique ID.

    Positions are 0-based everywhere in the code base.  (The paper writes
    ``Tr[i, j]`` 1-based; tests that mirror paper examples translate.)
    """

    __slots__ = (
        "trajectory_id",
        "points",
        "_activity_union",
        "_posting_lists",
        "_coord_array",
        "_posting_arrays",
    )

    def __init__(self, trajectory_id: int, points: Sequence[TrajectoryPoint]) -> None:
        if not points:
            raise ValueError("a trajectory must contain at least one point")
        self.trajectory_id = trajectory_id
        self.points: Tuple[TrajectoryPoint, ...] = tuple(points)
        self._activity_union: FrozenSet[int] | None = None
        self._posting_lists: Dict[int, Tuple[int, ...]] | None = None
        self._coord_array = None
        self._posting_arrays = None

    # ------------------------------------------------------------------
    # Basic sequence protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self) -> Iterator[TrajectoryPoint]:
        return iter(self.points)

    def __getitem__(self, index: int) -> TrajectoryPoint:
        return self.points[index]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ActivityTrajectory(id={self.trajectory_id}, n={len(self.points)})"

    # ------------------------------------------------------------------
    # Derived activity structures (computed lazily, cached)
    # ------------------------------------------------------------------
    @property
    def activity_union(self) -> FrozenSet[int]:
        """Union of the activity sets of all points."""
        if self._activity_union is None:
            union: set[int] = set()
            for point in self.points:
                union |= point.activities
            self._activity_union = frozenset(union)
        return self._activity_union

    @property
    def posting_lists(self) -> Dict[int, Tuple[int, ...]]:
        """activity ID -> ascending positions of the points that contain it.

        This is the in-memory image of the paper's Activity Posting List
        (APL).  The storage-backed APL component of the GAT index serialises
        exactly this mapping.
        """
        if self._posting_lists is None:
            lists: Dict[int, List[int]] = {}
            for pos, point in enumerate(self.points):
                for activity in point.activities:
                    lists.setdefault(activity, []).append(pos)
            self._posting_lists = {a: tuple(ps) for a, ps in lists.items()}
        return self._posting_lists

    def coord_array(self):
        """Cached ``(n, 2)`` float64 coordinate matrix (requires NumPy).

        Built lazily by the vectorized scoring kernels; like the other
        derived structures it treats the trajectory as immutable, and a
        benign double-compute is the worst a concurrent first access can
        do.
        """
        if self._coord_array is None:
            import numpy as np

            self._coord_array = np.array(
                [(p.x, p.y) for p in self.points], dtype=float
            )
        return self._coord_array

    def posting_arrays(self):
        """The posting lists as cached int64 NumPy arrays (requires NumPy).

        The array image of :attr:`posting_lists` — same keys, same
        ascending positions — used by the block scoring kernel's
        all-single-activity fast path, which concatenates whole posting
        arrays instead of resolving positions one by one.  Lazily built
        and cached under the same immutability assumption as the other
        derived structures.
        """
        if self._posting_arrays is None:
            import numpy as np

            self._posting_arrays = {
                a: np.asarray(ps, dtype=np.int64)
                for a, ps in self.posting_lists.items()
            }
        return self._posting_arrays

    def positions_of(self, activity: int) -> Tuple[int, ...]:
        """Positions of the points containing *activity* (possibly empty)."""
        return self.posting_lists.get(activity, ())

    def contains_all(self, activities: Iterable[int]) -> bool:
        """True when every activity in *activities* occurs somewhere."""
        union = self.activity_union
        return all(a in union for a in activities)

    def sub(self, start: int, stop: int) -> Tuple[TrajectoryPoint, ...]:
        """Points of the sub-trajectory ``Tr[start, stop]`` — both ends
        inclusive, 0-based (paper notation ``Tr[i, j]`` is 1-based)."""
        if start < 0 or stop >= len(self.points) or start > stop:
            raise IndexError(f"invalid sub-trajectory [{start}, {stop}]")
        return self.points[start : stop + 1]

    def n_checkins(self) -> int:
        """Total number of activity occurrences (Table IV's '#activity')."""
        return sum(len(p.activities) for p in self.points)
