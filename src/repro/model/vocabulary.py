"""Activity vocabulary: the mapping between activity names and integer IDs.

Definition 1 of the paper treats each activity as "a unique entry of a
pre-defined activity vocabulary".  Two requirements shape this module:

1. Query processing wants dense integer IDs (bitmask- and array-friendly).
2. The Trajectory Activity Sketch (Section IV) requires that IDs be
   assigned *in order of occurrence frequency*: "we sort all the activities
   in the vocabulary by their occurrence frequencies in the whole database,
   and assign continuous numerical ID to each activity".  Frequency-ordered
   IDs make co-occurring popular activities numerically close, which is what
   lets the sketch intervals stay compact.

:meth:`Vocabulary.from_frequencies` implements requirement 2; the plain
constructor enumerates names in first-seen order for tests and ad-hoc data.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Sequence


class Vocabulary:
    """Bidirectional activity-name <-> dense-integer-ID mapping.

    The mapping is append-only: IDs are never reassigned once handed out, so
    any frozenset of IDs stored in an index stays valid for the lifetime of
    the vocabulary.
    """

    __slots__ = ("_id_of", "_name_of")

    def __init__(self, names: Iterable[str] = ()) -> None:
        self._id_of: Dict[str, int] = {}
        self._name_of: List[str] = []
        for name in names:
            self.add(name)

    @classmethod
    def from_frequencies(cls, frequencies: Mapping[str, int]) -> "Vocabulary":
        """Build a vocabulary with IDs in descending frequency order.

        Ties are broken alphabetically so construction is deterministic.
        """
        ordered = sorted(frequencies.items(), key=lambda kv: (-kv[1], kv[0]))
        return cls(name for name, _count in ordered)

    @classmethod
    def from_activity_sets(cls, activity_sets: Iterable[Iterable[str]]) -> "Vocabulary":
        """Build a frequency-ordered vocabulary by counting occurrences in
        an iterable of per-point activity-name sets (one pass)."""
        counts: Counter[str] = Counter()
        for activities in activity_sets:
            counts.update(activities)
        return cls.from_frequencies(counts)

    def add(self, name: str) -> int:
        """Register *name* (idempotent) and return its ID."""
        existing = self._id_of.get(name)
        if existing is not None:
            return existing
        new_id = len(self._name_of)
        self._id_of[name] = new_id
        self._name_of.append(name)
        return new_id

    def id_of(self, name: str) -> int:
        """ID of a known activity name.

        Raises
        ------
        KeyError
            If *name* was never registered.
        """
        return self._id_of[name]

    def name_of(self, activity_id: int) -> str:
        """Name of a known activity ID."""
        return self._name_of[activity_id]

    def encode(self, names: Iterable[str]) -> FrozenSet[int]:
        """Translate a set of names to a frozenset of IDs (names must exist)."""
        return frozenset(self._id_of[name] for name in names)

    def encode_adding(self, names: Iterable[str]) -> FrozenSet[int]:
        """Like :meth:`encode` but registers unknown names on the fly."""
        return frozenset(self.add(name) for name in names)

    def decode(self, ids: Iterable[int]) -> FrozenSet[str]:
        """Translate a set of IDs back to names."""
        return frozenset(self._name_of[i] for i in ids)

    def __contains__(self, name: object) -> bool:
        return name in self._id_of

    def __len__(self) -> int:
        return len(self._name_of)

    def __iter__(self) -> Iterator[str]:
        return iter(self._name_of)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Vocabulary({len(self)} activities)"

    def names(self) -> Sequence[str]:
        """All names, index == ID."""
        return tuple(self._name_of)
