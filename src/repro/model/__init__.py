"""Data model: activities, vocabulary, trajectory points, trajectories,
and the in-memory trajectory database.

This is the substrate every index and query algorithm operates on.  The
model follows Section II of the paper:

* an **activity** is an entry of a pre-defined vocabulary (Definition 1);
  internally we use dense integer IDs assigned in descending frequency
  order, because the Trajectory Activity Sketch of Section IV requires
  frequency-ordered IDs;
* an **activity trajectory** is a sequence of geo-points, each with a
  (possibly empty) set of activities (Definition 2).
"""

from repro.model.vocabulary import Vocabulary
from repro.model.point import TrajectoryPoint
from repro.model.trajectory import ActivityTrajectory
from repro.model.database import TrajectoryDatabase
from repro.model.distance import (
    DistanceMetric,
    EuclideanDistance,
    HaversineDistance,
    MatrixDistance,
    project_lonlat_to_km,
)

__all__ = [
    "Vocabulary",
    "TrajectoryPoint",
    "ActivityTrajectory",
    "TrajectoryDatabase",
    "DistanceMetric",
    "EuclideanDistance",
    "HaversineDistance",
    "MatrixDistance",
    "project_lonlat_to_km",
]
