"""Trajectory point: a geo-location plus its (possibly empty) activity set."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple


@dataclass(frozen=True, slots=True)
class TrajectoryPoint:
    """One point ``p_i`` of an activity trajectory (Definition 2).

    Attributes
    ----------
    x, y:
        Planar coordinates (kilometres in our datasets; tests sometimes use
        abstract units since distances can be matrix-backed).
    activities:
        ``p.Φ`` — the set of activity IDs performed at this place.  Empty is
        legal: the paper explicitly allows points with no activities.
    timestamp:
        Optional check-in time (seconds).  Not used by the queries, which
        are purely spatio-textual, but preserved because the datasets carry
        it and trajectory construction sorts by it.
    venue_id:
        Optional ID of the venue the check-in happened at; used by dataset
        statistics (Table IV counts distinct venues).
    """

    x: float
    y: float
    activities: FrozenSet[int] = field(default_factory=frozenset)
    timestamp: Optional[float] = None
    venue_id: Optional[int] = None

    @property
    def coord(self) -> Tuple[float, float]:
        return (self.x, self.y)

    def has_any(self, activity_ids: FrozenSet[int]) -> bool:
        """True when this point shares at least one activity with the set."""
        return not self.activities.isdisjoint(activity_ids)

    def covers(self, activity_ids: FrozenSet[int]) -> bool:
        """True when this point's activities are a superset of the set."""
        return activity_ids <= self.activities

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        acts = ",".join(map(str, sorted(self.activities)))
        return f"TrajectoryPoint(({self.x:.3f}, {self.y:.3f}), {{{acts}}})"
