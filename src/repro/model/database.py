"""In-memory activity-trajectory database.

The database owns the trajectories, the vocabulary, and the derived global
facts everything else needs (bounding box, activity frequencies, dataset
statistics a la Table IV).  Indexes are built *over* a database; they never
mutate it.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.geometry.primitives import BoundingBox
from repro.model.point import TrajectoryPoint
from repro.model.trajectory import ActivityTrajectory
from repro.model.vocabulary import Vocabulary

RawPoint = Tuple[float, float, Iterable[str]]


@dataclass(frozen=True, slots=True)
class DatasetStatistics:
    """The four statistics the paper reports per dataset in Table IV."""

    n_trajectories: int
    n_venues: int
    n_activities: int
    n_distinct_activities: int

    def as_rows(self) -> List[Tuple[str, int]]:
        return [
            ("#trajectory", self.n_trajectories),
            ("#venue", self.n_venues),
            ("#activity", self.n_activities),
            ("#distinct activity", self.n_distinct_activities),
        ]


class TrajectoryDatabase:
    """A set ``D`` of activity trajectories plus shared metadata.

    Construction normally goes through :meth:`from_raw` (names -> IDs with a
    frequency-ordered vocabulary) or :meth:`from_trajectories` when the
    caller already has encoded trajectories and a vocabulary.
    """

    def __init__(
        self,
        trajectories: Sequence[ActivityTrajectory],
        vocabulary: Vocabulary,
        name: str = "dataset",
    ) -> None:
        if not trajectories:
            raise ValueError("a trajectory database cannot be empty")
        self.name = name
        self.vocabulary = vocabulary
        self.trajectories: Tuple[ActivityTrajectory, ...] = tuple(trajectories)
        self._by_id: Dict[int, ActivityTrajectory] = {
            tr.trajectory_id: tr for tr in self.trajectories
        }
        if len(self._by_id) != len(self.trajectories):
            raise ValueError("duplicate trajectory IDs in database")
        self._bounding_box: Optional[BoundingBox] = None
        self._activity_frequencies: Optional[Dict[int, int]] = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_raw(
        cls,
        raw_trajectories: Sequence[Sequence[RawPoint]],
        name: str = "dataset",
    ) -> "TrajectoryDatabase":
        """Build from ``[[(x, y, [activity names...]), ...], ...]``.

        Two passes: the first counts activity-name frequencies so the
        vocabulary is frequency-ordered (required by the TAS sketch); the
        second encodes the points.
        """
        counts: Counter[str] = Counter()
        for raw in raw_trajectories:
            for _x, _y, names in raw:
                counts.update(names)
        vocabulary = Vocabulary.from_frequencies(counts)
        trajectories = []
        for tid, raw in enumerate(raw_trajectories):
            points = [
                TrajectoryPoint(x, y, vocabulary.encode(names)) for x, y, names in raw
            ]
            trajectories.append(ActivityTrajectory(tid, points))
        return cls(trajectories, vocabulary, name=name)

    @classmethod
    def from_trajectories(
        cls,
        trajectories: Sequence[ActivityTrajectory],
        vocabulary: Vocabulary,
        name: str = "dataset",
    ) -> "TrajectoryDatabase":
        return cls(trajectories, vocabulary, name=name)

    @classmethod
    def from_arrays(
        cls,
        arrays,
        vocabulary: Vocabulary,
        name: str = "dataset",
    ) -> "TrajectoryDatabase":
        """Build an **array-backed** database over a columnar image
        (:class:`~repro.model.columnar.ColumnarArrays`): every trajectory
        views the shared columns zero-copy and materialises points
        lazily.  Lossless inverse of :meth:`to_arrays` — same IDs, same
        derived structures, byte-identical query behaviour."""
        from repro.model.columnar import arrays_to_trajectories

        return cls(arrays_to_trajectories(arrays), vocabulary, name=name)

    def to_arrays(self):
        """Flatten the trajectory set into one columnar image
        (:class:`~repro.model.columnar.ColumnarArrays`) — the unit the
        shared-memory store maps so process workers attach instead of
        rebuilding.  See :meth:`from_arrays` for the inverse."""
        from repro.model.columnar import trajectories_to_arrays

        return trajectories_to_arrays(self.trajectories)

    # ------------------------------------------------------------------
    # Lookup / iteration
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.trajectories)

    def __iter__(self) -> Iterator[ActivityTrajectory]:
        return iter(self.trajectories)

    def get(self, trajectory_id: int) -> ActivityTrajectory:
        """Fetch a trajectory by ID (KeyError when absent)."""
        return self._by_id[trajectory_id]

    def __contains__(self, trajectory_id: object) -> bool:
        return trajectory_id in self._by_id

    def add(self, trajectory: ActivityTrajectory) -> None:
        """Append one trajectory (extension for dynamic index maintenance).

        The trajectory's ID must be fresh.  Cached global facts (bounding
        box, activity frequencies) are invalidated; indexes built over the
        database are NOT updated automatically — use
        :meth:`repro.index.gat.index.GATIndex.insert_trajectory`.
        """
        if trajectory.trajectory_id in self._by_id:
            raise ValueError(f"trajectory id {trajectory.trajectory_id} already present")
        self.trajectories = (*self.trajectories, trajectory)
        self._by_id[trajectory.trajectory_id] = trajectory
        self._bounding_box = None
        self._activity_frequencies = None

    def sample(self, n: int, rng) -> "TrajectoryDatabase":
        """A database over a random *n*-trajectory subset (for Figure 7's
        scalability sweep).  IDs are preserved so results remain comparable.
        """
        if n >= len(self.trajectories):
            return self
        picked = rng.sample(range(len(self.trajectories)), n)
        subset = [self.trajectories[i] for i in sorted(picked)]
        return TrajectoryDatabase(subset, self.vocabulary, name=f"{self.name}[{n}]")

    # ------------------------------------------------------------------
    # Derived global facts
    # ------------------------------------------------------------------
    @property
    def bounding_box(self) -> BoundingBox:
        """Padded bounding box of all points (the grid's universe)."""
        if self._bounding_box is None:
            coords = [p.coord for tr in self.trajectories for p in tr]
            self._bounding_box = BoundingBox.from_points(coords)
        return self._bounding_box

    @property
    def activity_frequencies(self) -> Mapping[int, int]:
        """activity ID -> number of occurrences across all points."""
        if self._activity_frequencies is None:
            counts: Counter[int] = Counter()
            for tr in self.trajectories:
                for point in tr:
                    counts.update(point.activities)
            self._activity_frequencies = dict(counts)
        return self._activity_frequencies

    def statistics(self) -> DatasetStatistics:
        """Table IV's row set for this database."""
        venues = set()
        n_activity_occurrences = 0
        distinct: set[int] = set()
        for tr in self.trajectories:
            for point in tr:
                if point.venue_id is not None:
                    venues.add(point.venue_id)
                else:
                    venues.add(point.coord)
                n_activity_occurrences += len(point.activities)
                distinct |= point.activities
        return DatasetStatistics(
            n_trajectories=len(self.trajectories),
            n_venues=len(venues),
            n_activities=n_activity_occurrences,
            n_distinct_activities=len(distinct),
        )

    def n_points(self) -> int:
        return sum(len(tr) for tr in self.trajectories)
