"""Columnar (structure-of-arrays) image of a trajectory set.

The object model — :class:`~repro.model.trajectory.ActivityTrajectory`
holding tuples of frozen :class:`~repro.model.point.TrajectoryPoint`s —
is what the paper's definitions talk about, but it is a terrible shape to
ship across process boundaries: pickling a fleet snapshot serialises
millions of tiny Python objects, and every worker re-materialises all of
them.  This module defines the flat alternative: the whole trajectory set
as seven contiguous NumPy arrays (coordinates, per-point activity
postings, and the offset arrays that delimit trajectories and postings),
convertible losslessly to and from the object model.

The columnar image is the unit the shared-memory store
(:mod:`repro.storage.shm`) maps into one segment, so process workers can
*attach* to the dataset instead of rebuilding it.

Layout (``T`` trajectories, ``P`` points, ``A`` activity occurrences)::

    traj_ids       (T,)    int64   trajectory IDs, in database order
    point_offsets  (T+1,)  int64   trajectory t owns points
                                   [point_offsets[t], point_offsets[t+1])
    xy             (P, 2)  float64 point coordinates
    act_offsets    (P+1,)  int64   point p owns activity occurrences
                                   [act_offsets[p], act_offsets[p+1])
    act_values     (A,)    int64   activity IDs, grouped by point
    timestamps     (P,)    float64 check-in time; NaN encodes None
    venues         (P,)    int64   venue ID; -1 encodes None

Determinism: within one point, ``act_values`` keeps the iteration order
of the point's ``activities`` frozenset, so a round-tripped trajectory's
derived structures equal the original's (``==`` on every point, posting
list, and union).  Dict/set *iteration* order is not guaranteed to
survive (frozenset layout is not a pure function of insertion order),
and nothing depends on it: posting lists are read by key, set reductions
are order-free, and the APL's pickled size — the only thing disk
accounting sees — is key-order independent.  Rankings and work counters
therefore stay byte-identical between the object- and array-backed
paths.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import List, Sequence, Tuple

import numpy as np

from repro.model.trajectory import ActivityTrajectory

#: Sentinel for "no venue" in the int64 venue column (real IDs are >= 0).
NO_VENUE = -1


@dataclass(frozen=True)
class ColumnarArrays:
    """One trajectory set as seven flat arrays (see module docstring)."""

    traj_ids: np.ndarray
    point_offsets: np.ndarray
    xy: np.ndarray
    act_offsets: np.ndarray
    act_values: np.ndarray
    timestamps: np.ndarray
    venues: np.ndarray

    @property
    def n_trajectories(self) -> int:
        return len(self.traj_ids)

    @property
    def n_points(self) -> int:
        return len(self.xy)

    @property
    def n_postings(self) -> int:
        return len(self.act_values)

    def field_arrays(self) -> List[Tuple[str, np.ndarray]]:
        """``(name, array)`` pairs in declaration order (the store packs
        and re-views segments in exactly this order)."""
        return [(f.name, getattr(self, f.name)) for f in fields(self)]

    def nbytes(self) -> int:
        return sum(arr.nbytes for _name, arr in self.field_arrays())


def trajectories_to_arrays(
    trajectories: Sequence[ActivityTrajectory],
) -> ColumnarArrays:
    """Flatten *trajectories* into one :class:`ColumnarArrays`.

    Raises
    ------
    ValueError
        On a NaN timestamp or negative venue ID — both collide with the
        columns' None sentinels and would silently decode as None.
    """
    traj_ids: List[int] = []
    point_offsets: List[int] = [0]
    xy: List[Tuple[float, float]] = []
    act_offsets: List[int] = [0]
    act_values: List[int] = []
    timestamps: List[float] = []
    venues: List[int] = []
    for trajectory in trajectories:
        traj_ids.append(trajectory.trajectory_id)
        for point in trajectory.points:
            xy.append((point.x, point.y))
            # Frozenset iteration order, preserved verbatim — the decode
            # side rebuilds each point's frozenset from exactly this
            # sequence (values are what matter; see the module docstring
            # on iteration order).
            acts = tuple(point.activities)
            act_values.extend(acts)
            act_offsets.append(len(act_values))
            if point.timestamp is None:
                timestamps.append(np.nan)
            else:
                ts = float(point.timestamp)
                if np.isnan(ts):
                    raise ValueError(
                        "NaN timestamp collides with the None sentinel"
                    )
                timestamps.append(ts)
            if point.venue_id is None:
                venues.append(NO_VENUE)
            else:
                vid = int(point.venue_id)
                if vid < 0:
                    raise ValueError(
                        f"negative venue id {vid} collides with the None sentinel"
                    )
                venues.append(vid)
        point_offsets.append(len(xy))
    return ColumnarArrays(
        traj_ids=np.asarray(traj_ids, dtype=np.int64),
        point_offsets=np.asarray(point_offsets, dtype=np.int64),
        xy=np.asarray(xy, dtype=np.float64).reshape(len(xy), 2),
        act_offsets=np.asarray(act_offsets, dtype=np.int64),
        act_values=np.asarray(act_values, dtype=np.int64),
        timestamps=np.asarray(timestamps, dtype=np.float64),
        venues=np.asarray(venues, dtype=np.int64),
    )


def arrays_to_trajectories(arrays: ColumnarArrays) -> List[ActivityTrajectory]:
    """Rebuild array-backed :class:`ActivityTrajectory` objects over the
    columns of *arrays* — points, posting lists, and coordinate matrices
    all view (never copy) the shared columns and materialise lazily."""
    traj_ids = arrays.traj_ids.tolist()
    point_offsets = arrays.point_offsets.tolist()
    out: List[ActivityTrajectory] = []
    for t, tid in enumerate(traj_ids):
        lo, hi = point_offsets[t], point_offsets[t + 1]
        out.append(
            ActivityTrajectory.from_arrays(
                tid,
                coords=arrays.xy[lo:hi],
                act_values=arrays.act_values,
                act_offsets=arrays.act_offsets[lo : hi + 1],
                timestamps=arrays.timestamps[lo:hi],
                venues=arrays.venues[lo:hi],
            )
        )
    return out
