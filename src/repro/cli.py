"""Command-line interface.

Four subcommands cover the library's end-to-end workflow:

* ``generate`` — synthesise a dataset (preset or custom) to JSON-lines;
* ``stats``    — print a dataset's Table IV statistics;
* ``query``    — run one ATSQ/OATSQ against a dataset file, or a whole
  workload batch through the concurrent :class:`QueryService`
  (``--batch N --workers W``);
* ``trace``    — serve queries with the tracer on and print (or dump as
  JSONL) the per-query span trees;
* ``metrics``  — serve queries and print a Prometheus text-exposition
  snapshot of the serving metrics;
* ``sweep``    — run one of the paper's figure sweeps and print the table;
* ``serve-bench`` — drive a seeded open-loop arrival process (Poisson /
  diurnal / square-wave burst) through the admission-controlled
  :class:`~repro.serving.ServingFrontend` and print the goodput /
  shed / latency report;
* ``shm-sweep`` — reclaim shared-memory segments orphaned by killed
  store writers (``--dry-run`` to only report).

Usage examples::

    python -m repro.cli generate --preset la --scale 0.02 -o la.jsonl
    python -m repro.cli stats la.jsonl
    python -m repro.cli query la.jsonl --k 5 --order-sensitive --seed 3
    python -m repro.cli query la.jsonl --k 5 --batch 50 --workers 8
    python -m repro.cli query la.jsonl --k 5 --batch 50 --shards 4 --executor process
    python -m repro.cli query la.jsonl --k 5 --batch 50 --shards 4 \
        --replicas 2 --deadline-ms 200 --task-retries 2 --hedge-ms 50
    python -m repro.cli trace la.jsonl --k 5 --shards 2 --replicas 2 \
        --task-retries 2 -o spans.jsonl
    python -m repro.cli metrics la.jsonl --k 5 --batch 20 --shards 2
    python -m repro.cli sweep la.jsonl --figure k
    python -m repro.cli serve-bench la.jsonl --rate 50 --duration 5 \
        --arrivals square --slo-ms 250 --shards 2
    python -m repro.cli shm-sweep --dry-run
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional, Sequence

from repro.bench.experiments import (
    ExperimentScale,
    effect_of_activities,
    effect_of_diameter,
    effect_of_k,
    effect_of_query_points,
)
from repro.bench.reporting import format_series_table, format_stat_table
from repro.bench.workloads import QueryWorkloadGenerator, WorkloadConfig
from repro.core.engine import EngineConfig, GATSearchEngine
from repro.data.generator import CheckInGenerator, GeneratorConfig
from repro.data.loader import load_database_jsonl, save_database_jsonl
from repro.data.presets import dataset_from_preset
from repro.index.gat.index import GATConfig, GATIndex
from repro.model.database import TrajectoryDatabase
from repro.service import QueryRequest, QueryService
from repro.serving import (
    ARRIVAL_KINDS,
    ServingConfig,
    ServingFrontend,
    arrival_process,
    run_open_loop,
)
from repro.shard import (
    REPLICA_ROUTERS,
    FaultPolicy,
    ReplicatedShardedService,
    ShardedGATIndex,
    ShardedQueryService,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Activity trajectory search (ICDE 2013 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_gen = sub.add_parser("generate", help="synthesise a check-in dataset")
    p_gen.add_argument("--preset", choices=["la", "ny"], help="Table IV preset")
    p_gen.add_argument("--scale", type=float, default=0.02, help="preset scale (0,1]")
    p_gen.add_argument("--users", type=int, help="custom: number of users")
    p_gen.add_argument("--venues", type=int, help="custom: number of venues")
    p_gen.add_argument("--vocabulary", type=int, help="custom: vocabulary size")
    p_gen.add_argument("--seed", type=int, default=7)
    p_gen.add_argument("-o", "--output", required=True, help="output .jsonl path")

    p_stats = sub.add_parser("stats", help="print Table IV statistics")
    p_stats.add_argument("dataset", help=".jsonl dataset path")

    p_query = sub.add_parser("query", help="run one ATSQ/OATSQ")
    _add_query_args(p_query)

    p_trace = sub.add_parser(
        "trace",
        help="run traced queries and dump the per-query span trees",
    )
    _add_query_args(p_trace)
    p_trace.add_argument(
        "-o", "--output", help="also write the spans as JSONL to this path"
    )
    p_trace.add_argument(
        "--max-spans",
        type=int,
        default=10_000,
        help="tracer retention bound (oldest finished spans evicted)",
    )

    p_metrics = sub.add_parser(
        "metrics",
        help="run queries and print a Prometheus text-exposition snapshot",
    )
    _add_query_args(p_metrics)

    p_sweep = sub.add_parser("sweep", help="run a paper figure sweep")
    p_sweep.add_argument("dataset", help=".jsonl dataset path")
    p_sweep.add_argument(
        "--figure",
        choices=["k", "qpoints", "activities", "diameter"],
        default="k",
        help="which parameter to sweep (Figures 3-6)",
    )
    p_sweep.add_argument("--queries", type=int, default=3, help="queries per point")
    p_sweep.add_argument("--order-sensitive", action="store_true")
    p_sweep.add_argument("--seed", type=int, default=77)

    p_serve = sub.add_parser(
        "serve-bench",
        help="drive an open-loop arrival process through the admission-"
        "controlled serving front-end",
    )
    _add_query_args(p_serve)
    p_serve.add_argument(
        "--rate", type=float, default=50.0, help="mean offered load (QPS)"
    )
    p_serve.add_argument(
        "--duration", type=float, default=5.0, help="offered window (seconds)"
    )
    p_serve.add_argument(
        "--arrivals",
        choices=list(ARRIVAL_KINDS),
        default="poisson",
        help="arrival process shape (all seeded and deterministic)",
    )
    p_serve.add_argument(
        "--period",
        type=float,
        default=4.0,
        help="diurnal/square-wave period (seconds)",
    )
    p_serve.add_argument(
        "--slo-ms",
        type=float,
        default=250.0,
        help="latency SLO: goodput counts requests answered within this",
    )
    p_serve.add_argument(
        "--queue-capacity",
        type=int,
        default=64,
        help="bounded admission queue; arrivals beyond it are rejected",
    )
    p_serve.add_argument(
        "--concurrency",
        type=int,
        default=8,
        help="requests concurrently in the backend (the permit pool)",
    )
    p_serve.add_argument(
        "--no-shed",
        action="store_true",
        help="disable SLO-aware shedding (the collapse-prone baseline; "
        "only the bounded queue protects the service)",
    )
    p_serve.add_argument(
        "--shed-headroom",
        type=float,
        default=1.0,
        help="shed when estimated wait × headroom exceeds the remaining "
        "budget (>1.0 sheds earlier)",
    )
    p_serve.add_argument(
        "--workload",
        type=int,
        default=32,
        help="distinct workload queries cycled through the arrival stream",
    )

    p_shm = sub.add_parser(
        "shm-sweep",
        help="reclaim shared-memory segments orphaned by killed store writers",
    )
    p_shm.add_argument(
        "--dry-run",
        action="store_true",
        help="report orphaned segments without unlinking them",
    )
    return parser


def _add_query_args(p_query: argparse.ArgumentParser) -> None:
    """The serving-stack flags shared by ``query``/``trace``/``metrics``
    (they all build and drive the same stack)."""
    p_query.add_argument("dataset", help=".jsonl dataset path")
    p_query.add_argument("--k", type=int, default=9)
    p_query.add_argument("--query-points", type=int, default=4)
    p_query.add_argument("--activities", type=int, default=3)
    p_query.add_argument("--order-sensitive", action="store_true")
    p_query.add_argument("--seed", type=int, default=1)
    p_query.add_argument("--depth", type=int, default=6, help="GAT grid depth")
    p_query.add_argument(
        "--kernel",
        choices=["auto", "scalar", "vectorized", "block"],
        default="auto",
        help="scoring kernel: auto (block when numpy is available), "
        "scalar (the seed oracles), vectorized (one NumPy matrix per "
        "candidate), or block (one tensor per validation round with "
        "early candidate abandonment)",
    )
    p_query.add_argument("--explain", action="store_true", help="show matched points")
    p_query.add_argument(
        "--batch",
        type=int,
        default=0,
        help="serve N workload queries through the QueryService instead of one",
    )
    p_query.add_argument(
        "--workers",
        type=int,
        default=None,
        help="fan-out width: QueryService thread-pool width for --batch "
        "(default 8), or the shard executor's worker budget with "
        "--shards > 1 (default: 4 threads per shard, or one process per "
        "shard with --executor process)",
    )
    p_query.add_argument(
        "--shards",
        type=int,
        default=1,
        help="partition the index over N shards and serve through the "
        "ShardedQueryService (1 = the plain single index)",
    )
    p_query.add_argument(
        "--executor",
        choices=["serial", "thread", "process"],
        default="thread",
        help="shard fan-out backend for --shards > 1 (process pools bypass "
        "the GIL for CPU-bound workloads)",
    )
    p_query.add_argument(
        "--shard-strategy",
        choices=["hash", "range", "spatial"],
        default="hash",
        help="trajectory partitioning for --shards > 1: hash (id mod n), "
        "range (contiguous id chunks), or spatial (Morton-ordered "
        "centroids — compact shard regions that pair with the "
        "shard-local grids)",
    )
    p_query.add_argument(
        "--replicas",
        type=int,
        default=1,
        help="copies of each shard served by the ReplicatedShardedService "
        "(read scaling beyond one device per shard; 1 = unreplicated)",
    )
    p_query.add_argument(
        "--replica-router",
        choices=list(REPLICA_ROUTERS),
        default="round-robin",
        help="replica load-balancing for --replicas > 1: round-robin, "
        "least-in-flight, or power-of-two (two random choices, pick the "
        "less loaded)",
    )
    p_query.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="per-query deadline for the sharded stack: shards still "
        "pending at the deadline are dropped and the response degrades "
        "to partial coverage (requires --shards > 1 or --replicas > 1)",
    )
    p_query.add_argument(
        "--task-retries",
        type=int,
        default=None,
        help="bounded retries per shard task before that shard counts as "
        "failed (sharded stack; default 2 when any fault flag is set)",
    )
    p_query.add_argument(
        "--hedge-ms",
        type=float,
        default=None,
        help="hedge a straggling shard task after this many ms (the "
        "latency tracker's tail quantile takes over once warmed up); "
        "most useful with --replicas > 1, where the hedge lands on a "
        "sibling copy",
    )


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.preset:
        db = dataset_from_preset(args.preset, args.scale, seed=args.seed)
    else:
        if not (args.users and args.venues and args.vocabulary):
            print(
                "either --preset or all of --users/--venues/--vocabulary required",
                file=sys.stderr,
            )
            return 2
        config = GeneratorConfig(
            n_users=args.users,
            n_venues=args.venues,
            vocabulary_size=args.vocabulary,
            seed=args.seed,
        )
        db = CheckInGenerator(config).generate(name="custom")
    save_database_jsonl(db, args.output)
    stats = db.statistics()
    print(f"wrote {args.output}: {stats.n_trajectories} trajectories, "
          f"{stats.n_activities} activity occurrences")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    db = load_database_jsonl(args.dataset)
    print(format_stat_table(f"Table IV — {db.name}", db.statistics().as_rows()))
    return 0


def _serving_stack(args: argparse.Namespace):
    """One place decides which stack serves and how output labels it:
    ``(on_sharded_stack, label)``.  ``--replicas > 1`` promotes even a
    1-shard run onto the sharded stack, since replication lives there."""
    sharded = args.shards > 1 or args.replicas > 1
    if not sharded:
        return False, ""
    label = f"{args.shards} shards/{args.executor}"
    if args.replicas > 1:
        label += f"×{args.replicas} replicas ({args.replica_router})"
    return True, label


def _fault_policy_from_args(args: argparse.Namespace) -> Optional[FaultPolicy]:
    """Build the sharded stack's :class:`FaultPolicy` from the CLI fault
    flags; ``None`` (all flags unset) keeps the historical all-or-nothing
    fan-out."""
    if args.deadline_ms is None and args.task_retries is None and args.hedge_ms is None:
        return None
    return FaultPolicy(
        deadline_s=args.deadline_ms / 1000.0 if args.deadline_ms is not None else None,
        max_retries=args.task_retries if args.task_retries is not None else 2,
        hedge_after_s=args.hedge_ms / 1000.0 if args.hedge_ms is not None else None,
    )


def _build_query_service(db, args: argparse.Namespace, obs=None, result_cache_size=None):
    """The serving stack the ``query``/``trace``/``metrics``/
    ``serve-bench`` subcommands run against: a plain
    :class:`QueryService` for ``--shards 1``, a sharded fleet otherwise —
    replicated when ``--replicas > 1``.  ``result_cache_size`` overrides
    each service's default (``serve-bench`` passes 0: a cycled open-loop
    workload would otherwise be answered from the result cache and never
    load the backend)."""
    cache_kw = {} if result_cache_size is None else {
        "result_cache_size": result_cache_size
    }
    gat_config = GATConfig(depth=args.depth, memory_levels=min(6, args.depth))
    if _serving_stack(args)[0]:
        fault_policy = _fault_policy_from_args(args)
        sharded = ShardedGATIndex.build(
            db, n_shards=args.shards, config=gat_config,
            strategy=args.shard_strategy,
        )
        if args.replicas > 1:
            return ReplicatedShardedService(
                sharded,
                engine_config=EngineConfig(kernel=args.kernel),
                executor=args.executor,
                n_replicas=args.replicas,
                replica_router=args.replica_router,
                max_workers=args.workers,  # None -> the executor's default
                fault_policy=fault_policy,
                obs=obs,
                **cache_kw,
            )
        return ShardedQueryService(
            sharded,
            engine_config=EngineConfig(kernel=args.kernel),
            executor=args.executor,
            max_workers=args.workers,  # None -> the executor's default
            fault_policy=fault_policy,
            obs=obs,
            **cache_kw,
        )
    engine = GATSearchEngine(GATIndex.build(db, gat_config), kernel=args.kernel)
    return QueryService(
        engine, max_workers=args.workers if args.workers else 8, obs=obs,
        **cache_kw,
    )


def _cmd_query(args: argparse.Namespace) -> int:
    # Validate flags before the expensive load + index build.
    if args.batch < 0:
        print("--batch must be >= 0", file=sys.stderr)
        return 2
    if args.workers is not None and args.workers < 1:
        print("--workers must be >= 1", file=sys.stderr)
        return 2
    if args.shards < 1:
        print("--shards must be >= 1", file=sys.stderr)
        return 2
    if args.replicas < 1:
        print("--replicas must be >= 1", file=sys.stderr)
        return 2
    fault_flags = (args.deadline_ms, args.task_retries, args.hedge_ms)
    if any(f is not None for f in fault_flags) and not _serving_stack(args)[0]:
        print(
            "--deadline-ms/--task-retries/--hedge-ms need the sharded stack "
            "(--shards > 1 or --replicas > 1)",
            file=sys.stderr,
        )
        return 2
    db = load_database_jsonl(args.dataset)
    service = _build_query_service(db, args)
    workload = QueryWorkloadGenerator(
        db,
        WorkloadConfig(
            n_query_points=args.query_points,
            n_activities_per_point=args.activities,
            seed=args.seed,
        ),
    )
    if args.batch > 0:
        return _run_query_batch(service, workload, args)
    query = workload.query()
    print("query:")
    for i, q in enumerate(query, start=1):
        names = sorted(db.vocabulary.decode(q.activities))
        print(f"  q{i}: ({q.x:.2f}, {q.y:.2f})  {names}")
    t0 = time.perf_counter()
    response = service.search(
        query, k=args.k, order_sensitive=args.order_sensitive, explain=args.explain
    )
    elapsed = time.perf_counter() - t0
    label = "Dmom" if args.order_sensitive else "Dmm"
    # The sharded path annotates the header; the default path keeps the
    # seed's exact format.
    on_sharded, stack_label = _serving_stack(args)
    where = f", {stack_label}" if on_sharded else ""
    print(f"\ntop-{args.k} ({label}{where}), {elapsed * 1000:.1f} ms:")
    for rank, r in enumerate(response.results, start=1):
        line = f"  #{rank}: trajectory {r.trajectory_id}  {label}={r.distance:.3f}"
        if args.explain and r.matches is not None:
            line += f"  matches={r.matches}"
        print(line)
    stats = response.stats
    print(f"\nwork: {stats.cells_popped} cells, {stats.candidates_retrieved} candidates, "
          f"{stats.tas_pruned} TAS-pruned, {stats.disk_reads} disk reads")
    service.close()
    return 0


def _run_query_batch(service, workload, args: argparse.Namespace) -> int:
    """Serve ``args.batch`` workload queries through the (possibly
    sharded) query service."""
    requests = [
        QueryRequest(
            q, k=args.k, order_sensitive=args.order_sensitive, explain=args.explain
        )
        for q in workload.queries(args.batch)
    ]
    responses = service.search_many(requests)
    label = "Dmom" if args.order_sensitive else "Dmm"
    on_sharded, stack_label = _serving_stack(args)
    spread = stack_label if on_sharded else f"{args.workers if args.workers else 8} workers"
    print(f"batch of {len(responses)} queries ({label}, {spread}):")
    for i, resp in enumerate(responses):
        best = resp.results[0] if resp.results else None
        head = (
            f"trajectory {best.trajectory_id}  {label}={best.distance:.3f}"
            if best
            else "no match"
        )
        if args.explain and best is not None and best.matches is not None:
            head += f"  matches={best.matches}"
        line = (f"  q{i + 1}: top-1 {head}  ({resp.latency_s * 1000:.1f} ms, "
                f"{resp.stats.disk_reads} disk reads)")
        if not resp.complete:
            line += f"  [partial {resp.shards_answered}/{resp.shards_total} shards]"
        print(line)
    stats = service.stats()
    print(f"\nservice: {stats.qps:.1f} QPS, "
          f"p50 {stats.latency_p50_s * 1000:.1f} ms, "
          f"p95 {stats.latency_p95_s * 1000:.1f} ms, "
          f"HICL cache hit rate {stats.hicl_cache_hit_rate:.1%}, "
          f"APL cache hit rate {stats.apl_cache_hit_rate:.1%}")
    if stats.task_retries or stats.task_hedges or stats.partial_responses:
        print(f"faults: {stats.task_retries} retries, "
              f"{stats.task_hedges} hedges, "
              f"{stats.partial_responses} partial responses")
    service.close()
    return 0


def _drive_workload(args: argparse.Namespace, obs) -> int:
    """Shared driver for ``trace``/``metrics``: load the dataset, build
    the serving stack with *obs* attached, and serve ``--batch`` workload
    queries (one when the flag is unset)."""
    db = load_database_jsonl(args.dataset)
    service = _build_query_service(db, args, obs=obs)
    workload = QueryWorkloadGenerator(
        db,
        WorkloadConfig(
            n_query_points=args.query_points,
            n_activities_per_point=args.activities,
            seed=args.seed,
        ),
    )
    n = args.batch if args.batch > 0 else 1
    requests = [
        QueryRequest(
            q, k=args.k, order_sensitive=args.order_sensitive, explain=args.explain
        )
        for q in workload.queries(n)
    ]
    try:
        service.search_many(requests)
    finally:
        service.close()
    return n


def _print_span_tree(spans) -> None:
    """Render span dicts as indented per-trace trees, children under
    parents, siblings in start order."""
    by_parent: dict = {}
    for span in spans:
        by_parent.setdefault(span.get("parent_id"), []).append(span)
    for children in by_parent.values():
        children.sort(key=lambda s: (s["start_s"], s["span_id"]))

    def render(span, depth):
        end = span.get("end_s")
        dur = f"{(end - span['start_s']) * 1000:.2f} ms" if end else "open"
        attrs = span.get("attrs") or {}
        noted = ", ".join(f"{k}={v}" for k, v in attrs.items())
        events = len(span.get("events") or ())
        tail = f"  [{noted}]" if noted else ""
        if events:
            tail += f"  ({events} events)"
        print(f"{'  ' * depth}{span['name']}  {dur}{tail}")
        for child in by_parent.get(span["span_id"], ()):
            render(child, depth + 1)

    for root in by_parent.get(None, ()):
        render(root, 0)


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import Observability, validate_spans, write_spans_jsonl

    obs = Observability.enabled(max_spans=args.max_spans)
    n = _drive_workload(args, obs)
    payloads = [span.to_dict() for span in obs.tracer.drain()]
    validate_spans(payloads)
    if args.output:
        write_spans_jsonl(args.output, payloads)
        print(f"wrote {len(payloads)} spans to {args.output}")
    print(f"{n} quer{'y' if n == 1 else 'ies'}, {len(payloads)} spans:")
    _print_span_tree(payloads)
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.obs import Observability

    obs = Observability.disabled()  # registry only; tracing stays a no-op
    _drive_workload(args, obs)
    sys.stdout.write(obs.prometheus())
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    db = load_database_jsonl(args.dataset)
    scale = ExperimentScale(dataset_scale=1.0, n_queries=args.queries, seed=args.seed)
    sweeps = {
        "k": (effect_of_k, "Figure 3 — effect of k"),
        "qpoints": (effect_of_query_points, "Figure 4 — effect of |Q|"),
        "activities": (effect_of_activities, "Figure 5 — effect of |q.phi|"),
        "diameter": (effect_of_diameter, "Figure 6 — effect of delta(Q)"),
    }
    fn, title = sweeps[args.figure]
    results = fn(db, scale, order_sensitive=args.order_sensitive)
    qtype = "OATSQ" if args.order_sensitive else "ATSQ"
    print(format_series_table(f"{title} ({qtype}, {db.name})", results))
    return 0


def _cmd_shm_sweep(args: argparse.Namespace) -> int:
    from repro.storage.shm import cleanup_orphans

    orphans = cleanup_orphans(dry_run=args.dry_run)
    verb = "orphaned (left in place)" if args.dry_run else "reclaimed"
    if not orphans:
        print("no orphaned shared-memory segments")
        return 0
    print(f"{len(orphans)} segment(s) {verb}:")
    for name in orphans:
        print(f"  {name}")
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    if args.rate <= 0 or args.duration <= 0:
        print("--rate and --duration must be > 0", file=sys.stderr)
        return 2
    db = load_database_jsonl(args.dataset)
    # The sharded stack needs a FaultPolicy for per-request deadline
    # propagation to bite; default one in when no fault flag was given.
    if (
        _serving_stack(args)[0]
        and _fault_policy_from_args(args) is None
    ):
        args.task_retries = 2
    service = _build_query_service(db, args, result_cache_size=0)
    workload = QueryWorkloadGenerator(db, WorkloadConfig(seed=args.seed))
    queries = workload.queries(args.workload)
    slo_s = args.slo_ms / 1000.0
    deadline_s = (
        args.deadline_ms / 1000.0 if args.deadline_ms is not None else slo_s
    )
    config = ServingConfig(
        queue_capacity=args.queue_capacity,
        max_concurrency=args.concurrency,
        default_deadline_s=deadline_s,
        shed=not args.no_shed,
        shed_headroom=args.shed_headroom,
    )
    arrivals = arrival_process(
        args.arrivals, args.rate, seed=args.seed, period_s=args.period
    )
    try:
        with ServingFrontend(service, config) as frontend:
            report = run_open_loop(
                frontend,
                queries,
                arrivals,
                duration_s=args.duration,
                slo_s=slo_s,
                k=args.k,
            )
            row = report.row()
    finally:
        service.close()
    sharded = _serving_stack(args)[0]
    stats = service.stats()
    print(
        f"open-loop {args.arrivals} @ {args.rate:.1f} QPS for "
        f"{args.duration:.1f}s (SLO {args.slo_ms:.0f} ms, deadline "
        f"{deadline_s * 1e3:.0f} ms, shed={'off' if args.no_shed else 'on'})"
    )
    print(
        f"  offered {row['offered']} ({row['offered_qps']:.1f}/s): "
        f"completed {row['completed']} (within SLO "
        f"{row['completed_within_slo']}), shed {row['shed']}, "
        f"rejected {row['rejected']}, expired {row['expired']}, "
        f"failed {row['failed']}"
    )
    print(
        f"  goodput {row['goodput_qps']:.1f}/s  latency p50 "
        f"{row['latency_p50_ms']:.1f} ms  p95 {row['latency_p95_ms']:.1f} ms  "
        f"p99 {row['latency_p99_ms']:.1f} ms"
    )
    if sharded:
        print(
            f"  backend: retries {stats.task_retries}, hedges "
            f"{stats.task_hedges} (denied {stats.task_hedges_denied}), "
            f"partials {stats.partial_responses}"
        )
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "stats": _cmd_stats,
    "query": _cmd_query,
    "trace": _cmd_trace,
    "metrics": _cmd_metrics,
    "sweep": _cmd_sweep,
    "serve-bench": _cmd_serve_bench,
    "shm-sweep": _cmd_shm_sweep,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
