"""ShardRouter — trajectory-id partitioning for the sharded GAT index.

Sharding is by *trajectory*: every trajectory lives wholly inside exactly
one shard, so a shard's top-k over its own trajectories is exact, and
merging per-shard ranked lists reproduces the unsharded ranking
byte-for-byte (distances are functions of (query, trajectory) alone).
Partitioning the *grid* instead would split one trajectory's points
across shards and turn per-shard scores into partial sums — every merge
would need a cross-shard repair pass.

Three strategies:

* ``hash`` — ``trajectory_id mod n_shards``.  Stateless, uniform for the
  dense sequential ids our generators produce, and inserts route without
  consulting any directory.
* ``range`` — contiguous id ranges, computed once from the ids present at
  build time.  Keeps id-adjacent trajectories (often crawled together)
  co-resident, which matters when shards are rebuilt or migrated in id
  order; inserts route by binary search over the range starts, with ids
  beyond the last boundary landing on the last shard.
* ``spatial`` — trajectories sorted by the Morton code of their centroid
  and cut into ``n_shards`` equal-cardinality chunks, recorded as an
  explicit id→shard directory.  Spatially-close trajectories land on the
  same shard, so each shard's data occupies a compact region: combined
  with shard-local grids (``ShardedGATIndex.build(shard_box='local')``)
  a query's best-first expansion does real work only on the shards whose
  region it touches, instead of every shard re-traversing the same cells
  at ``1/n_shards`` density.  Ids unknown to the directory (inserted
  later) fall back to ``hash`` routing — the sharded index's
  insert-overflow handling rebuilds the target shard's grid when the
  newcomer lies outside its local box.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, Iterable, List, Optional, Sequence

STRATEGIES = ("hash", "range", "spatial")


class ShardRouter:
    """Maps a trajectory id to the shard that owns it.

    Build through :meth:`for_ids` / :meth:`for_database` for the ``range``
    strategy (it needs the build-time id population); ``hash`` routers can
    be constructed directly.
    """

    __slots__ = ("n_shards", "strategy", "_range_starts", "_assignments")

    def __init__(
        self,
        n_shards: int,
        strategy: str = "hash",
        range_starts: Optional[Sequence[int]] = None,
        assignments: Optional[Dict[int, int]] = None,
    ) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if strategy not in STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r}; expected one of {STRATEGIES}")
        if strategy == "range":
            if range_starts is None:
                raise ValueError(
                    "range routing needs range_starts (build via ShardRouter.for_ids)"
                )
            if len(range_starts) != n_shards:
                raise ValueError("range_starts must hold one start per shard")
            if list(range_starts) != sorted(set(range_starts)):
                raise ValueError("range_starts must be strictly increasing")
        elif range_starts is not None:
            raise ValueError("range_starts only applies to the range strategy")
        if strategy == "spatial":
            if assignments is None:
                raise ValueError(
                    "spatial routing needs assignments (build via "
                    "ShardRouter.for_database)"
                )
            bad = [s for s in assignments.values() if not 0 <= s < n_shards]
            if bad:
                raise ValueError(f"assignments reference unknown shards: {bad[:3]}")
        elif assignments is not None:
            raise ValueError("assignments only apply to the spatial strategy")
        self.n_shards = n_shards
        self.strategy = strategy
        self._range_starts: Optional[List[int]] = (
            list(range_starts) if range_starts is not None else None
        )
        self._assignments: Optional[Dict[int, int]] = (
            dict(assignments) if assignments is not None else None
        )

    # ------------------------------------------------------------------
    # Construction from data
    # ------------------------------------------------------------------
    @classmethod
    def for_ids(
        cls, trajectory_ids: Iterable[int], n_shards: int, strategy: str = "hash"
    ) -> "ShardRouter":
        """A router sized to the ids present at build time.

        ``range`` cuts the sorted ids into ``n_shards`` contiguous chunks
        of near-equal cardinality and records each chunk's first id as the
        shard boundary.  ``hash`` ignores the ids (kept in the signature so
        callers can switch strategies without changing call sites).
        """
        if strategy == "spatial":
            raise ValueError(
                "spatial routing needs trajectory geometry (build via "
                "ShardRouter.for_database)"
            )
        if strategy != "range":
            return cls(n_shards, strategy)
        ids = sorted(set(trajectory_ids))
        if len(ids) < n_shards:
            raise ValueError(
                f"range routing needs at least one trajectory per shard "
                f"({len(ids)} ids for {n_shards} shards)"
            )
        starts = [ids[(len(ids) * s) // n_shards] for s in range(n_shards)]
        return cls(n_shards, "range", range_starts=starts)

    @classmethod
    def for_database(cls, db, n_shards: int, strategy: str = "hash") -> "ShardRouter":
        """A router over *db*'s current trajectory ids.

        ``spatial`` sorts trajectories by the Morton code of their centroid
        on a ``1024 x 1024`` grid over the database bounding box and cuts
        the order into ``n_shards`` equal-cardinality chunks — balanced
        shard sizes with spatially compact shard regions.  Centroid ties
        (and everything else) break by trajectory id, so the directory is
        deterministic.
        """
        if strategy != "spatial":
            return cls.for_ids((tr.trajectory_id for tr in db), n_shards, strategy)
        if len(db) < n_shards:
            raise ValueError(
                f"spatial routing needs at least one trajectory per shard "
                f"({len(db)} trajectories for {n_shards} shards)"
            )
        from repro.geometry.grid import GridLevel

        leaf = GridLevel(db.bounding_box, 10)
        keyed = sorted(
            (
                leaf.locate(
                    (
                        sum(p.x for p in tr) / len(tr),
                        sum(p.y for p in tr) / len(tr),
                    )
                ),
                tr.trajectory_id,
            )
            for tr in db
        )
        n = len(keyed)
        assignments = {
            tid: min(n_shards - 1, (i * n_shards) // n)
            for i, (_code, tid) in enumerate(keyed)
        }
        return cls(n_shards, "spatial", assignments=assignments)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def shard_of(self, trajectory_id: int) -> int:
        """The shard owning *trajectory_id* (total: every id routes, so
        freshly inserted trajectories always have a home)."""
        if self.strategy == "hash":
            return trajectory_id % self.n_shards
        if self.strategy == "spatial":
            # Directory hit for build-time ids; unknown (inserted) ids fall
            # back to hash so they always have a home — the sharded index
            # rebuilds/expands the target shard's grid when needed.
            shard = self._assignments.get(trajectory_id)
            return shard if shard is not None else trajectory_id % self.n_shards
        # Range: the last shard whose start is <= id; ids below the first
        # boundary clamp to shard 0, ids beyond the last to the last shard.
        return max(0, bisect_right(self._range_starts, trajectory_id) - 1)

    def partition(self, trajectory_ids: Iterable[int]) -> List[List[int]]:
        """Split ids into per-shard lists (input order preserved per shard)."""
        parts: List[List[int]] = [[] for _ in range(self.n_shards)]
        for tid in trajectory_ids:
            parts[self.shard_of(tid)].append(tid)
        return parts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShardRouter(n_shards={self.n_shards}, strategy={self.strategy!r})"
