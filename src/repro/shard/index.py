"""ShardedGATIndex — one GAT index per trajectory partition.

Each shard owns a full vertical slice of the storage stack: its own
:class:`~repro.model.database.TrajectoryDatabase` subset, its own
:class:`~repro.storage.disk.SimulatedDisk`, and a complete
:class:`~repro.index.gat.index.GATIndex` (grid + HICL + ITL + TAS + APL)
built over that subset.  Nothing is shared between shards except the
vocabulary and the *global* bounding box — every shard grid spans the full
spatial universe so inserts route anywhere and per-shard MINDIST bounds
stay sound for arbitrary query locations.

Exactness: trajectories are partitioned whole (see
:class:`~repro.shard.router.ShardRouter`), so a shard's top-k over its own
trajectories is the restriction of the global ranking to that shard, and a
k-way merge of per-shard top-k lists equals the unsharded top-k —
distances depend only on (query, trajectory), never on which shard scored
them.

Mutation: :meth:`insert_trajectory` routes to the owning shard and bumps
that shard's version counter; :attr:`version` exposes the *composite*
tuple of per-shard versions, so result caches keyed on it are invalidated
by an insert into any shard — including inserts issued directly against a
shard's own :class:`GATIndex`.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.index.gat.index import GATConfig, GATIndex
from repro.model.database import TrajectoryDatabase
from repro.shard.router import ShardRouter
from repro.storage.cache import CacheStats
from repro.storage.disk import DiskStats, SimulatedDisk


class ShardedGATIndex:
    """A fleet of per-partition GAT indexes behind one routing facade."""

    def __init__(
        self,
        db: TrajectoryDatabase,
        router: ShardRouter,
        shards: List[GATIndex],
    ) -> None:
        if len(shards) != router.n_shards:
            raise ValueError("one GATIndex per router shard required")
        self.db = db
        self.router = router
        self.shards = list(shards)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        db: TrajectoryDatabase,
        n_shards: int = 2,
        config: Optional[GATConfig] = None,
        strategy: str = "hash",
        router: Optional[ShardRouter] = None,
        disk_factory: Optional[Callable[[], SimulatedDisk]] = None,
    ) -> "ShardedGATIndex":
        """Partition *db* and build one complete GAT index per shard.

        Parameters
        ----------
        n_shards / strategy / router:
            Either pass a prebuilt :class:`ShardRouter` or let one be
            derived from the database (``hash`` by default).
        config:
            The per-shard :class:`GATConfig` (every shard uses the same
            build knobs so merged rankings compare like for like).
        disk_factory:
            Called once per shard to create its simulated disk — inject
            per-read latency here for serving benchmarks.  Defaults to a
            fresh zero-latency :class:`SimulatedDisk` per shard.

        Every shard must end up non-empty: a GAT index needs at least one
        trajectory, and an accidentally empty shard almost always means the
        shard count outgrew the dataset (or a pathological id distribution
        defeated hash routing) — fail loudly instead of serving a silently
        degraded fleet.
        """
        if router is None:
            router = ShardRouter.for_database(db, n_shards, strategy)
        parts = router.partition(tr.trajectory_id for tr in db)
        empty = [sid for sid, part in enumerate(parts) if not part]
        if empty:
            raise ValueError(
                f"shards {empty} would be empty ({len(db)} trajectories over "
                f"{router.n_shards} {router.strategy!r} shards); lower n_shards "
                "or use range routing"
            )
        box = db.bounding_box
        shards: List[GATIndex] = []
        for part in parts:
            shard_db = TrajectoryDatabase.from_trajectories(
                [db.get(tid) for tid in part],
                db.vocabulary,
                name=f"{db.name}/shard{len(shards)}",
            )
            disk = disk_factory() if disk_factory is not None else SimulatedDisk()
            shards.append(
                GATIndex.build(shard_db, config, disk=disk, bounding_box=box)
            )
        return cls(db, router, shards)

    # ------------------------------------------------------------------
    # Routing / mutation
    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return self.router.n_shards

    def shard_of(self, trajectory_id: int) -> int:
        return self.router.shard_of(trajectory_id)

    @property
    def version(self) -> Tuple[int, ...]:
        """Composite mutation counter: the tuple of per-shard versions.

        Reading through to the shards (instead of keeping a counter here)
        means even an insert issued directly against one shard's
        :class:`GATIndex` moves the composite, so cross-shard result caches
        can never serve pre-insert rankings.
        """
        return tuple(shard.version for shard in self.shards)

    def insert_trajectory(self, trajectory) -> None:
        """Insert one trajectory into its owning shard (and the global
        registry).  Requires exclusive access, like the single-index
        mutator: quiesce any sharded service around maintenance.

        The global id-freshness check runs first — the shard database only
        knows its own ids, and a duplicate living on *another* shard must
        be rejected before any index is touched.
        """
        tid = trajectory.trajectory_id
        if tid in self.db:
            raise ValueError(f"trajectory id {tid} already present")
        shard = self.shards[self.shard_of(tid)]
        shard.insert_trajectory(trajectory)  # validates the bounding box
        self.db.add(trajectory)

    # ------------------------------------------------------------------
    # Aggregate accounting (fleet-wide views; per-shard detail stays on
    # each GATIndex)
    # ------------------------------------------------------------------
    def memory_cost_bytes(self) -> int:
        return sum(shard.memory_cost_bytes() for shard in self.shards)

    def disk_cost_bytes(self) -> int:
        return sum(shard.disk_cost_bytes() for shard in self.shards)

    def disk_stats(self) -> DiskStats:
        """Summed logical-I/O counters over every shard disk."""
        total = DiskStats()
        for shard in self.shards:
            total.merge(shard.disk.stats)
        return total

    def hicl_cache_stats(self) -> CacheStats:
        """Combined HICL cell-list cache accounting across shards."""
        return CacheStats.combined([shard.hicl.cache_stats() for shard in self.shards])

    def __len__(self) -> int:
        return sum(len(shard.db) for shard in self.shards)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sizes = "+".join(str(len(shard.db)) for shard in self.shards)
        return (
            f"ShardedGATIndex({self.n_shards} shards [{sizes}], "
            f"strategy={self.router.strategy!r})"
        )
