"""ShardedGATIndex — one GAT index per trajectory partition.

Each shard owns a full vertical slice of the storage stack: its own
:class:`~repro.model.database.TrajectoryDatabase` subset, its own
:class:`~repro.storage.disk.SimulatedDisk`, and a complete
:class:`~repro.index.gat.index.GATIndex` (grid + HICL + ITL + TAS + APL)
built over that subset.  Nothing is shared between shards except the
vocabulary.

Shard grids: by default (``shard_box='local'``) every shard's grid spans
its **own** trajectories' bounding box, so per-shard retrieval cost scales
with the shard's spatial footprint instead of the fleet's.  MINDIST
bounds stay sound for arbitrary query locations — cell geometry is exact
for any point, and a shard only ever needs bounds to *its own* points,
all of which lie inside its box.  Under a spatial partition
(``strategy='spatial'``) the local boxes are disjoint-ish compact
regions: a query's expansion does real cell work only on the shards whose
region it touches, where the global-box build made every shard re-walk
the same neighbourhood at ``1/n_shards`` density (the replicated
traversal the ROADMAP called out).  ``shard_box='global'`` restores the
old behaviour — every grid over the full universe — for comparison and
for deployments that insert far outside the build-time footprint.

Exactness: trajectories are partitioned whole (see
:class:`~repro.shard.router.ShardRouter`), so a shard's top-k over its own
trajectories is the restriction of the global ranking to that shard, and a
k-way merge of per-shard top-k lists equals the unsharded top-k —
distances depend only on (query, trajectory), never on which shard scored
them; the grid box moves retrieval order and cost, never scores.

Mutation: :meth:`insert_trajectory` routes to the owning shard and bumps
that shard's version counter; :attr:`version` exposes the *composite*
tuple of per-shard versions, so result caches keyed on it are invalidated
by an insert into any shard — including inserts issued directly against a
shard's own :class:`GATIndex`.  An insert landing outside its shard's
local box triggers that shard's **overflow rebuild**: the grid is rebuilt
over the union of the old box and the newcomer (monotonically expanded,
version still moving forward), so local boxes never reject an insert.
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import Callable, List, Optional, Tuple

from repro.geometry.primitives import BoundingBox
from repro.index.gat.index import GATConfig, GATIndex
from repro.model.database import TrajectoryDatabase
from repro.shard.router import ShardRouter
from repro.storage.cache import CacheStats
from repro.storage.disk import DiskStats, SimulatedDisk

SHARD_BOXES = ("local", "global")
TRAJECTORY_STORES = ("object", "shared")


class ShardedGATIndex:
    """A fleet of per-partition GAT indexes behind one routing facade."""

    def __init__(
        self,
        db: TrajectoryDatabase,
        router: ShardRouter,
        shards: List[GATIndex],
    ) -> None:
        if len(shards) != router.n_shards:
            raise ValueError("one GATIndex per router shard required")
        self.db = db
        self.router = router
        self.shards = list(shards)
        #: The shared-memory trajectory store behind ``db`` when built
        #: with ``store='shared'`` (``None`` under the object store).
        #: Owned here: :meth:`close` unlinks its segments.
        self.store = None
        # Running (sum_x, sum_y, n) per shard — the locality signal behind
        # the service's nearest-shard-first fan-out ordering.  A heuristic
        # (it moves retrieval order and work, never results); inserts fold
        # the newcomer's point sums in incrementally.
        self._centroid_sums: List[List[float]] = [
            self._point_sums(shard.db) for shard in self.shards
        ]
        #: The un-adapted build config, kept so an overflow rebuild can
        #: re-derive the depth for the expanded box; ``None`` for fleets
        #: assembled directly from prebuilt shards (those rebuild with the
        #: shard's current config).
        self._base_config: Optional[GATConfig] = None

    @staticmethod
    def _point_sums(shard_db) -> List[float]:
        sx = sy = 0.0
        n = 0
        for trajectory in shard_db:
            for p in trajectory:
                sx += p.x
                sy += p.y
                n += 1
        return [sx, sy, float(n)]

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        db: TrajectoryDatabase,
        n_shards: int = 2,
        config: Optional[GATConfig] = None,
        strategy: str = "hash",
        router: Optional[ShardRouter] = None,
        disk_factory: Optional[Callable[[], SimulatedDisk]] = None,
        shard_box: str = "local",
        store: str = "object",
    ) -> "ShardedGATIndex":
        """Partition *db* and build one complete GAT index per shard.

        Parameters
        ----------
        n_shards / strategy / router:
            Either pass a prebuilt :class:`ShardRouter` or let one be
            derived from the database (``hash`` by default; ``spatial``
            keeps each shard's data in a compact region).
        config:
            The per-shard :class:`GATConfig` (every shard uses the same
            build knobs so merged rankings compare like for like).
        disk_factory:
            Called once per shard to create its simulated disk — inject
            per-read latency here for serving benchmarks.  Defaults to a
            fresh zero-latency :class:`SimulatedDisk` per shard.
        shard_box:
            ``'local'`` (default) builds each shard's grid over its own
            trajectories' bounding box, depth-adapted so leaf cells keep
            the global grid's physical size (see :meth:`_local_config`) —
            per-shard retrieval cost then scales with the shard's
            footprint, and out-of-box inserts trigger an overflow rebuild
            of just that shard.  ``'global'`` spans every grid over the
            full database box (the pre-local behaviour).  Rankings are
            identical either way.
        store:
            ``'object'`` (default) keeps the classic object-backed
            database — the oracle the shared path is verified against.
            ``'shared'`` packs the trajectory set into a
            :class:`~repro.storage.shm.SharedTrajectoryStore` and builds
            the fleet over the **array-backed** database viewing those
            segments: one copy of the data for the parent, every replica,
            and — via the sharded service's engine spec — every process
            worker, which attaches by name instead of unpickling the
            world.  Rankings, pruning counters, and disk accounting are
            byte-identical either way; the owner must call :meth:`close`
            to unlink the segments.

        Every shard must end up non-empty: a GAT index needs at least one
        trajectory, and an accidentally empty shard almost always means the
        shard count outgrew the dataset (or a pathological id distribution
        defeated hash routing) — fail loudly instead of serving a silently
        degraded fleet.
        """
        if shard_box not in SHARD_BOXES:
            raise ValueError(
                f"unknown shard_box {shard_box!r}; expected one of {SHARD_BOXES}"
            )
        if store not in TRAJECTORY_STORES:
            raise ValueError(
                f"unknown store {store!r}; expected one of {TRAJECTORY_STORES}"
            )
        shm_store = None
        if store == "shared":
            from repro.storage.shm import SharedTrajectoryStore

            shm_store = SharedTrajectoryStore.for_database(db)
            db = TrajectoryDatabase.from_arrays(
                shm_store.base_arrays(), db.vocabulary, name=db.name
            )
        if router is None:
            router = ShardRouter.for_database(db, n_shards, strategy)
        parts = router.partition(tr.trajectory_id for tr in db)
        empty = [sid for sid, part in enumerate(parts) if not part]
        if empty:
            raise ValueError(
                f"shards {empty} would be empty ({len(db)} trajectories over "
                f"{router.n_shards} {router.strategy!r} shards); lower n_shards "
                "or use range routing"
            )
        global_box = db.bounding_box
        base_config = config if config is not None else GATConfig()
        shards: List[GATIndex] = []
        for part in parts:
            shard_db = TrajectoryDatabase.from_trajectories(
                [db.get(tid) for tid in part],
                db.vocabulary,
                name=f"{db.name}/shard{len(shards)}",
            )
            disk = disk_factory() if disk_factory is not None else SimulatedDisk()
            if shard_box == "local":
                box = shard_db.bounding_box
                shard_config = cls._local_config(base_config, global_box, box)
            else:
                box = global_box
                shard_config = base_config
            shards.append(
                GATIndex.build(shard_db, shard_config, disk=disk, bounding_box=box)
            )
        sharded = cls(db, router, shards)
        sharded._base_config = base_config
        sharded.store = shm_store
        return sharded

    @staticmethod
    def _local_config(config: GATConfig, global_box, box) -> GATConfig:
        """Depth-adapt a shard's grid to its local box.

        A local box with the global depth would cut the same ``4^d`` cells
        over a smaller area — finer cells, and a best-first expansion that
        pops *more* of them to cover the same k-NN radius.  Dropping one
        level per 4x area shrink keeps leaf cells at roughly the global
        grid's physical size, so a shard's expansion over its own region
        costs what the single index would pay there, scaled to the shard's
        footprint.  Retrieval is exact at any granularity — only work
        counters move, never rankings.
        """
        global_area = global_box.width * global_box.height
        local_area = box.width * box.height
        if local_area <= 0 or global_area <= local_area:
            return config
        drop = int(math.log(global_area / local_area, 4))
        if drop <= 0:
            return config
        depth = max(1, config.depth - drop)
        if depth == config.depth:
            return config
        return replace(
            config, depth=depth, memory_levels=min(config.memory_levels, depth)
        )

    def replicate(
        self, disk_factory: Optional[Callable[[], SimulatedDisk]] = None
    ) -> List[GATIndex]:
        """One fresh :class:`GATIndex` per shard over the **same**
        trajectory subset — a read replica set for the replicated serving
        tier (:class:`~repro.shard.replicas.ReplicatedShardedService`).

        Each replica is a full vertical slice of its own: the shard's
        database subset re-indexed onto its own simulated disk, with the
        shard's exact build config and grid bounding box, so replica
        rankings are byte-identical to the primary's.  Replicas share the
        primary's ``shard.db`` — under ``store='shared'`` that means every
        replica's trajectories view the **same** shared-memory columns as
        the primary's; a replica owns only its index structures, caches,
        and disk, never another copy of the data.  Without a
        *disk_factory* every replica disk inherits the primary shard
        disk's cost model (page size, read latency, and the
        ``concurrent_reads`` command depth) — a replica is another copy of
        the data on another device, not a faster device.

        Replicas are read-only snapshots: they carry the primary's current
        version, and a later :meth:`insert_trajectory` moves only the
        primary's composite version.  The replicated service watches that
        version and rebuilds its replica banks before serving the next
        query, so inserts must quiesce serving exactly as they already
        must for the primary.
        """
        replicas: List[GATIndex] = []
        for shard in self.shards:
            if disk_factory is not None:
                disk = disk_factory()
            else:
                disk = SimulatedDisk(
                    page_size=shard.disk.page_size,
                    read_latency_s=shard.disk.read_latency_s,
                    concurrent_reads=shard.disk.concurrent_reads,
                )
            replica = GATIndex.build(
                shard.db, shard.config, disk=disk, bounding_box=shard.grid.box
            )
            replica.version = shard.version
            replicas.append(replica)
        return replicas

    # ------------------------------------------------------------------
    # Routing / mutation
    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return self.router.n_shards

    def shard_of(self, trajectory_id: int) -> int:
        return self.router.shard_of(trajectory_id)

    @property
    def version(self) -> Tuple[int, ...]:
        """Composite mutation counter: the tuple of per-shard versions.

        Reading through to the shards (instead of keeping a counter here)
        means even an insert issued directly against one shard's
        :class:`GATIndex` moves the composite, so cross-shard result caches
        can never serve pre-insert rankings.
        """
        return tuple(shard.version for shard in self.shards)

    @property
    def shard_boxes(self) -> Tuple[object, ...]:
        """Each shard grid's bounding box (per-shard under ``'local'``,
        all equal to the database box under ``'global'``)."""
        return tuple(shard.grid.box for shard in self.shards)

    @property
    def shard_centroids(self) -> Tuple[Tuple[float, float], ...]:
        """Each shard's mean data location — the nearest-shard-first
        fan-out ordering key."""
        return tuple(
            (sx / n, sy / n) if n else (0.0, 0.0)
            for sx, sy, n in self._centroid_sums
        )

    def insert_trajectory(self, trajectory) -> None:
        """Insert one trajectory into its owning shard (and the global
        registry).  Requires exclusive access, like the single-index
        mutator: quiesce any sharded service around maintenance.

        The global id-freshness check runs first — the shard database only
        knows its own ids, and a duplicate living on *another* shard must
        be rejected before any index is touched.

        Overflow: when the newcomer lies outside the owning shard's
        (local) grid box — where the single :class:`GATIndex` demands a
        rebuild — the shard is rebuilt in place over the union of its old
        box and the new points, then the insert is retried; the shard's
        version keeps moving forward so result caches watching the
        composite version still invalidate.
        """
        tid = trajectory.trajectory_id
        if tid in self.db:
            raise ValueError(f"trajectory id {tid} already present")
        sid = self.shard_of(tid)
        shard = self.shards[sid]
        box = shard.grid.box
        if not all(
            box.min_x <= p.x <= box.max_x and box.min_y <= p.y <= box.max_y
            for p in trajectory
        ):
            shard = self.shards[sid] = self._rebuild_expanded(shard, trajectory)
        shard.insert_trajectory(trajectory)  # validates the bounding box
        self.db.add(trajectory)
        sums = self._centroid_sums[sid]
        for p in trajectory:
            sums[0] += p.x
            sums[1] += p.y
            sums[2] += 1.0

    def _rebuild_expanded(self, shard: GATIndex, trajectory) -> GATIndex:
        """Rebuild one shard's index over its box expanded to cover
        *trajectory* (same database subset, same disk — the APL/HICL
        records are simply rewritten).  The grid depth is re-derived from
        the base config for the expanded box (see :meth:`_local_config`),
        so leaf cells keep the global physical size as the footprint
        grows.  The rebuilt index resumes the old version counter so the
        caller's subsequent insert bump keeps the composite version
        strictly moving.
        """
        old = shard.grid.box
        xs = [p.x for p in trajectory] + [old.min_x, old.max_x]
        ys = [p.y for p in trajectory] + [old.min_y, old.max_y]
        expanded = BoundingBox.from_points(list(zip(xs, ys)))
        if self._base_config is not None:
            config = self._local_config(
                self._base_config, self.db.bounding_box, expanded
            )
        else:
            config = shard.config
        rebuilt = GATIndex.build(
            shard.db, config, disk=shard.disk, bounding_box=expanded
        )
        rebuilt.version = shard.version
        return rebuilt

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release fleet-owned shared resources (idempotent).  Under
        ``store='shared'`` this unlinks the trajectory store's segments —
        the fleet, its replicas, and any services over it must be done
        first, since their array-backed trajectories view those bytes.
        A no-op under the object store."""
        if self.store is not None:
            self.store.close()

    def __enter__(self) -> "ShardedGATIndex":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Aggregate accounting (fleet-wide views; per-shard detail stays on
    # each GATIndex)
    # ------------------------------------------------------------------
    def memory_cost_bytes(self) -> int:
        return sum(shard.memory_cost_bytes() for shard in self.shards)

    def disk_cost_bytes(self) -> int:
        return sum(shard.disk_cost_bytes() for shard in self.shards)

    def disk_stats(self) -> DiskStats:
        """Summed logical-I/O counters over every shard disk."""
        total = DiskStats()
        for shard in self.shards:
            total.merge(shard.disk.stats)
        return total

    def hicl_cache_stats(self) -> CacheStats:
        """Combined HICL cell-list cache accounting across shards."""
        return CacheStats.combined([shard.hicl.cache_stats() for shard in self.shards])

    def __len__(self) -> int:
        return sum(len(shard.db) for shard in self.shards)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sizes = "+".join(str(len(shard.db)) for shard in self.shards)
        return (
            f"ShardedGATIndex({self.n_shards} shards [{sizes}], "
            f"strategy={self.router.strategy!r})"
        )
