"""Sharded serving: partitioned GAT indexes with parallel fan-out/merge.

The scale-out layer above the single-machine engine:

* :class:`~repro.shard.router.ShardRouter` — trajectory-id partitioning
  (hash or contiguous ranges); whole trajectories per shard, so per-shard
  top-k is exact.
* :class:`~repro.shard.index.ShardedGATIndex` — one complete GAT index
  (own database subset, own simulated disk) per shard, with routed
  inserts and a composite version for cache invalidation.
* :class:`~repro.shard.service.ShardedQueryService` — fans each query out
  across shards through a pluggable executor (serial / thread / process)
  and k-way merges the ranked lists; results are byte-identical to the
  unsharded engine.
"""

from repro.shard.executor import (
    EXECUTOR_KINDS,
    ProcessShardExecutor,
    SerialShardExecutor,
    ShardEngineSpec,
    ShardResult,
    ShardTask,
    ThreadShardExecutor,
    build_shard_engine,
)
from repro.shard.index import ShardedGATIndex
from repro.shard.router import ShardRouter
from repro.shard.service import ShardedQueryService

__all__ = [
    "ShardRouter",
    "ShardedGATIndex",
    "ShardedQueryService",
    "ShardTask",
    "ShardResult",
    "ShardEngineSpec",
    "SerialShardExecutor",
    "ThreadShardExecutor",
    "ProcessShardExecutor",
    "EXECUTOR_KINDS",
    "build_shard_engine",
]
