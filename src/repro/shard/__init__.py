"""Sharded serving: partitioned GAT indexes with parallel fan-out/merge.

The scale-out layer above the single-machine engine:

* :class:`~repro.shard.router.ShardRouter` — trajectory-id partitioning
  (hash or contiguous ranges); whole trajectories per shard, so per-shard
  top-k is exact.
* :class:`~repro.shard.index.ShardedGATIndex` — one complete GAT index
  (own database subset, own simulated disk) per shard, with routed
  inserts and a composite version for cache invalidation.  Built with
  ``store='shared'`` the trajectory data plane lives in one shared-memory
  columnar store (:mod:`repro.storage.shm`) that process workers attach
  to instead of rebuilding.
* :class:`~repro.shard.service.ShardedQueryService` — fans each query out
  across shards through a pluggable executor (serial / thread / process)
  and k-way merges the ranked lists; results are byte-identical to the
  unsharded engine.
* :class:`~repro.shard.replicas.ReplicatedShardedService` — N copies of
  every shard behind a pluggable :class:`~repro.shard.replicas.ReplicaRouter`
  (round-robin / least-in-flight / power-of-two-choices), for read
  scaling beyond one device per shard; rankings stay byte-identical.
* :mod:`~repro.shard.resilience` — fault-tolerant serving: per-query
  deadlines, bounded backoff'd retries, hedged attempts, per-replica
  circuit breakers, and graceful degradation to partial coverage
  (opt in with a :class:`~repro.shard.resilience.FaultPolicy`).
"""

from repro.shard.executor import (
    EXECUTOR_KINDS,
    ProcessShardExecutor,
    SerialShardExecutor,
    ShardEngineSpec,
    ShardResult,
    ShardTask,
    ShardTaskError,
    ThreadShardExecutor,
    build_shard_engine,
)
from repro.shard.index import TRAJECTORY_STORES, ShardedGATIndex
from repro.shard.replicas import (
    REPLICA_ROUTERS,
    BreakerConfig,
    LeastInFlightRouter,
    PowerOfTwoRouter,
    ReplicaHealth,
    ReplicaRouter,
    ReplicatedShardedService,
    RoundRobinRouter,
    make_replica_router,
)
from repro.shard.resilience import (
    DeadlineExceeded,
    FanoutOutcome,
    FanoutSupervisor,
    FaultPolicy,
    TaskLatencyTracker,
)
from repro.shard.router import ShardRouter
from repro.shard.service import ShardedQueryService

__all__ = [
    "ShardRouter",
    "ShardedGATIndex",
    "ShardedQueryService",
    "ReplicatedShardedService",
    "ReplicaRouter",
    "RoundRobinRouter",
    "LeastInFlightRouter",
    "PowerOfTwoRouter",
    "REPLICA_ROUTERS",
    "make_replica_router",
    "BreakerConfig",
    "ReplicaHealth",
    "FaultPolicy",
    "FanoutSupervisor",
    "FanoutOutcome",
    "TaskLatencyTracker",
    "DeadlineExceeded",
    "ShardTask",
    "ShardResult",
    "ShardTaskError",
    "ShardEngineSpec",
    "SerialShardExecutor",
    "ThreadShardExecutor",
    "ProcessShardExecutor",
    "EXECUTOR_KINDS",
    "TRAJECTORY_STORES",
    "build_shard_engine",
]
