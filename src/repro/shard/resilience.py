"""Fault-tolerant fan-out: deadlines, bounded retries, hedged requests.

The sharded service's plain fan-out (`executor.run`) is all-or-nothing:
one failed or stalled shard task fails or hangs the whole batch.  This
module supervises the fan-out instead.  Each query's shard tasks are
submitted individually (every backend exposes ``submit``); a single
event loop then waits on whatever is in flight and reacts to time:

* **deadline** — a per-query wall budget (:attr:`FaultPolicy.deadline_s`).
  When it expires, the query's unresolved shards are abandoned (their
  attempts keep running in the pool; nothing waits on them) and the query
  resolves with whatever coverage it has.
* **retries** — a failed attempt is retried after exponential backoff
  (:attr:`FaultPolicy.retry_backoff_s` doubling per failure), at most
  :attr:`FaultPolicy.max_retries` times per shard, never past the
  deadline.  Under a replica tier each retry is *re-routed* — the router
  picks a (healthier) sibling replica, which is what turns a retry into
  failover.
* **hedges** — when an attempt has been running longer than the fleet's
  observed latency quantile (:class:`TaskLatencyTracker`; the fixed
  :attr:`FaultPolicy.hedge_after_s` until enough samples exist), a single
  backup attempt is launched on a re-routed lease.  First completion
  wins; the loser's result is discarded (result offers dedup by
  trajectory id, so a straggler finishing later is harmless).  An
  optional global budget (:attr:`FaultPolicy.hedge_budget`) caps live
  hedges as a fraction of in-flight attempts so hedging cuts tails
  without amplifying overload; denied hedges are counted
  (:attr:`FanoutOutcome.hedges_denied`).

Exactness: retried and hedged attempts run the *same* frozen task against
byte-identical replicas, and the shared top-k collector dedups offers by
trajectory id — supervision moves latency and availability, never
rankings.  When every shard answers, the merged result is byte-identical
to the unsupervised path.

The supervisor is deliberately executor-agnostic: it sees only
``submit(task) -> Future`` plus optional hooks (``reroute`` for
replica-failover of process-backend tasks, ``heal`` to retire a broken
process pool, ``on_success``/``on_failure`` for router health).  The
serial backend's inline futures degenerate it to a plain loop — correct,
but nothing can preempt an inline task, so policies only bite under a
concurrent backend.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from dataclasses import replace as dc_replace
from typing import Callable, Dict, List, Optional, Sequence

from repro.obs.metrics import nearest_rank
from repro.shard.executor import ShardResult, ShardTask

#: Hedge delays below this would fire backup leases faster than the pool
#: can drain them on fast workloads; the quantile is floored here.
_MIN_HEDGE_DELAY_S = 1e-3


class DeadlineExceeded(RuntimeError):
    """A shard had not answered when its query's deadline budget expired."""

    def __init__(self, task: ShardTask, deadline_s: float) -> None:
        self.task = task
        self.shard_id = task.shard_id
        self.deadline_s = deadline_s
        super().__init__(
            f"shard {task.shard_id} missed the {deadline_s:.3f}s query "
            f"deadline (group {task.group})"
        )


@dataclass(frozen=True)
class FaultPolicy:
    """Per-query fault-tolerance budget for the sharded services.

    ``deadline_s=None`` disables the deadline, ``hedge_after_s=None``
    disables hedging; ``max_retries=0`` disables retries.  The default
    policy retries transient failures but neither deadlines nor hedges —
    turning it on changes availability, never rankings.
    ``allow_partial=False`` turns an unanswered shard into a raised
    :class:`~repro.shard.executor.ShardTaskError` instead of a partial
    response.
    """

    deadline_s: Optional[float] = None
    max_retries: int = 2
    retry_backoff_s: float = 0.01
    hedge_after_s: Optional[float] = None
    hedge_quantile: float = 0.95
    hedge_min_samples: int = 20
    #: Global hedge budget: a hedge may launch only while the number of
    #: live hedge attempts (across the whole supervised batch) stays
    #: under ``hedge_budget × live attempts``.  A denied hedge consumes
    #: the shard's one hedge opportunity and is counted in
    #: :attr:`FanoutOutcome.hedges_denied` — under overload hedging must
    #: amplify tail-cutting, not the overload itself.  ``None`` leaves
    #: hedging unbudgeted; ``0.0`` denies every hedge.
    hedge_budget: Optional[float] = None
    allow_partial: bool = True

    def __post_init__(self) -> None:
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be > 0 (or None)")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.retry_backoff_s < 0:
            raise ValueError("retry_backoff_s must be >= 0")
        if self.hedge_after_s is not None and self.hedge_after_s <= 0:
            raise ValueError("hedge_after_s must be > 0 (or None)")
        if not 0.0 < self.hedge_quantile <= 1.0:
            raise ValueError("hedge_quantile must be in (0, 1]")
        if self.hedge_min_samples < 1:
            raise ValueError("hedge_min_samples must be >= 1")
        if self.hedge_budget is not None and self.hedge_budget < 0:
            raise ValueError("hedge_budget must be >= 0 (or None)")


class TaskLatencyTracker:
    """Sliding window of completed shard-task latencies; the hedging
    trigger reads its quantile, so the hedge delay adapts to what the
    fleet is actually doing instead of a guessed constant."""

    def __init__(self, window: int = 512) -> None:
        self._lock = threading.Lock()
        self._window: deque = deque(maxlen=window)

    def record(self, latency_s: float) -> None:
        with self._lock:
            self._window.append(latency_s)

    def __len__(self) -> int:
        with self._lock:
            return len(self._window)

    def quantile(self, q: float) -> Optional[float]:
        """Nearest-rank quantile over the window; ``None`` when empty.
        Delegates to :func:`repro.obs.metrics.nearest_rank` — the one
        quantile definition shared with ``ServingMetrics``."""
        with self._lock:
            values = sorted(self._window)
        if not values:
            return None
        return nearest_rank(values, q)


@dataclass
class FanoutOutcome:
    """One query's supervised fan-out: per-shard results for the shards
    that answered, per-shard terminal errors for the ones that did not,
    plus the retry/hedge counts the service surfaces in its stats."""

    results: Dict[int, ShardResult] = field(default_factory=dict)
    failures: Dict[int, BaseException] = field(default_factory=dict)
    retries: int = 0
    hedges: int = 0
    hedges_denied: int = 0


@dataclass
class _ShardState:
    """Supervision state of one (query, shard) pair."""

    qi: int
    task: ShardTask
    resolved: bool = False
    failures: int = 0
    live: int = 0  # attempts currently in flight
    hedged: bool = False
    retry_due: Optional[float] = None
    last_error: Optional[BaseException] = None


@dataclass
class _Attempt:
    state: _ShardState
    task: ShardTask  # possibly re-routed (fresh replica lease)
    started: float
    hedge: bool


class FanoutSupervisor:
    """Drives one batch of per-query fan-outs under a :class:`FaultPolicy`.

    Parameters
    ----------
    submit:
        ``task -> Future`` on the serving executor.
    policy / tracker:
        The budget and the shared latency window (owned by the service so
        the hedge quantile learns across batches).
    reroute:
        Maps a task to its retry/hedge attempt — the replica tier leases a
        fresh (preferably healthier) replica here; ``None`` reuses the
        task unchanged (in-process backends route at execution time).
    heal:
        Called when an attempt dies with :class:`BrokenProcessPool`
        (retire the broken pool so resubmission lands on a fresh fleet).
    on_submit:
        Observes every *re-routed* attempt task (the service releases
        those extra replica leases after the fan-out).
    on_success / on_failure:
        Per-attempt health feedback ``(task) -> None`` /
        ``(task, exc) -> None`` — the replica tier feeds its circuit
        breaker here for process-backend attempts (in-process attempts
        report from the task runner itself).
    """

    def __init__(
        self,
        submit: Callable[[ShardTask], Future],
        policy: FaultPolicy,
        tracker: Optional[TaskLatencyTracker] = None,
        reroute: Optional[Callable[[ShardTask], ShardTask]] = None,
        heal: Optional[Callable[[], object]] = None,
        on_submit: Optional[Callable[[ShardTask], None]] = None,
        on_success: Optional[Callable[[ShardTask], None]] = None,
        on_failure: Optional[Callable[[ShardTask, BaseException], None]] = None,
    ) -> None:
        self._submit = submit
        self._policy = policy
        self._tracker = tracker
        self._reroute = reroute
        self._heal = heal
        self._on_submit = on_submit
        self._on_success = on_success
        self._on_failure = on_failure

    # ------------------------------------------------------------------
    def _hedge_delay(self) -> Optional[float]:
        policy = self._policy
        if policy.hedge_after_s is None:
            return None
        if self._tracker is not None and len(self._tracker) >= policy.hedge_min_samples:
            q = self._tracker.quantile(policy.hedge_quantile)
            if q is not None:
                return max(q, _MIN_HEDGE_DELAY_S)
        return policy.hedge_after_s

    # ------------------------------------------------------------------
    def run(
        self,
        fanouts: Sequence[Sequence[ShardTask]],
        deadlines: Optional[Sequence[Optional[float]]] = None,
    ) -> List[FanoutOutcome]:
        """Supervise one batch: ``fanouts[i]`` is query *i*'s task list.
        Returns one :class:`FanoutOutcome` per query, in order.

        ``deadlines[i]`` optionally tightens query *i*'s budget below the
        policy's — the serving front-end propagates each caller's
        *remaining* deadline here so backend retries and hedges can never
        outlive the caller.  The effective deadline is the minimum of the
        policy's and the override; overrides can only shrink the budget
        (an override larger than ``policy.deadline_s`` is clamped to it).
        All deadline arithmetic is anchored to one ``time.monotonic()``
        reading — wall-clock jumps cannot expire (or extend) a budget.
        """
        policy = self._policy
        outcomes = [FanoutOutcome() for _ in fanouts]
        states: List[_ShardState] = []
        by_query: List[List[_ShardState]] = []
        start = time.monotonic()
        effective: List[Optional[float]] = []
        for qi in range(len(fanouts)):
            caps = [policy.deadline_s]
            if deadlines is not None:
                caps.append(deadlines[qi])
            caps = [c for c in caps if c is not None]
            effective.append(min(caps) if caps else None)
        deadline_at = [
            start + d if d is not None else math.inf for d in effective
        ]
        attempts: Dict[Future, _Attempt] = {}

        def handle_failure(state: _ShardState, task: ShardTask, exc: BaseException) -> None:
            if isinstance(exc, BrokenProcessPool) and self._heal is not None:
                self._heal()
            if self._on_failure is not None:
                self._on_failure(task, exc)
            if state.resolved:
                return
            state.failures += 1
            state.last_error = exc
            if state.failures <= policy.max_retries:
                backoff = policy.retry_backoff_s * (2 ** (state.failures - 1))
                due = time.monotonic() + backoff
                if due <= deadline_at[state.qi]:
                    if state.retry_due is None or due < state.retry_due:
                        state.retry_due = due
                    return
            # Out of retry budget (or the retry would land past the
            # deadline): resolve as failed unless a sibling attempt —
            # a hedge, typically — is still live and may yet answer.
            if state.live == 0 and state.retry_due is None:
                state.resolved = True
                outcomes[state.qi].failures[state.task.shard_id] = exc

        def launch(state: _ShardState, *, first: bool = False, hedge: bool = False) -> None:
            task = state.task
            if not first:
                rerouted = self._reroute is not None
                if rerouted:
                    task = self._reroute(task)
                # Stamp the attempt ordinal and hedge flag so the span of
                # whichever attempt wins says which attempt it was (both
                # fields are trace metadata — no backend keys on them).
                task = dc_replace(task, attempt=state.failures, hedge=hedge)
                if rerouted and self._on_submit is not None:
                    self._on_submit(task)
            try:
                future = self._submit(task)
            except Exception as exc:
                # Submission itself failed (e.g. an unrecoverable pool):
                # same failure path as a dead future.
                handle_failure(state, task, exc)
                return
            state.live += 1
            attempts[future] = _Attempt(
                state=state, task=task, started=time.monotonic(), hedge=hedge
            )

        for qi, tasks in enumerate(fanouts):
            query_states = []
            for task in tasks:
                state = _ShardState(qi=qi, task=task)
                states.append(state)
                query_states.append(state)
            by_query.append(query_states)
        # Submit after registering every state: an inline (serial) backend
        # completes each attempt synchronously inside launch().
        for state in states:
            launch(state, first=True)

        while True:
            now = time.monotonic()
            # Deadline sweep: expired queries abandon their unresolved
            # shards (in-flight attempts are dropped from the wait set
            # below; the pool finishes them, nobody listens).
            for qi, query_states in enumerate(by_query):
                if now < deadline_at[qi]:
                    continue
                for state in query_states:
                    if not state.resolved:
                        state.resolved = True
                        state.retry_due = None
                        outcomes[qi].failures[state.task.shard_id] = (
                            state.last_error
                            if state.last_error is not None
                            else DeadlineExceeded(state.task, effective[qi])
                        )
            for future in [f for f, a in attempts.items() if a.state.resolved]:
                attempts.pop(future).state.live -= 1
            if all(state.resolved for state in states):
                break
            # Fire due retries.
            for state in states:
                if state.resolved or state.retry_due is None:
                    continue
                if state.retry_due <= now:
                    state.retry_due = None
                    outcomes[state.qi].retries += 1
                    launch(state)
            # Fire due hedges (one backup per shard, never hedge a hedge).
            # The global budget caps live hedge attempts at
            # hedge_budget × live attempts; a denied hedge permanently
            # consumes the shard's hedge opportunity (its timer leaves
            # the wait set — no busy-looping on a perpetually-due hedge)
            # so under saturation hedging stops adding load instead of
            # doubling it.
            hedge_delay = self._hedge_delay()
            if hedge_delay is not None:
                for attempt in list(attempts.values()):
                    state = attempt.state
                    if state.resolved or state.hedged or attempt.hedge:
                        continue
                    if now - attempt.started >= hedge_delay:
                        state.hedged = True
                        if policy.hedge_budget is not None:
                            live_hedges = sum(
                                1 for a in attempts.values() if a.hedge
                            )
                            allowed = policy.hedge_budget * len(attempts)
                            if live_hedges + 1 > allowed:
                                outcomes[state.qi].hedges_denied += 1
                                continue
                        outcomes[state.qi].hedges += 1
                        launch(state, hedge=True)
            # Next timer: earliest deadline / retry / hedge trigger.
            timers: List[float] = []
            for qi, query_states in enumerate(by_query):
                if deadline_at[qi] < math.inf and any(
                    not s.resolved for s in query_states
                ):
                    timers.append(deadline_at[qi])
            for state in states:
                if not state.resolved and state.retry_due is not None:
                    timers.append(state.retry_due)
            if hedge_delay is not None:
                for attempt in attempts.values():
                    if not attempt.state.resolved and not attempt.state.hedged:
                        if not attempt.hedge:
                            timers.append(attempt.started + hedge_delay)
            if not attempts:
                if any(
                    not s.resolved and s.retry_due is not None for s in states
                ):
                    # Only a backoff timer stands between now and the next
                    # attempt; sleep it out.
                    delay = min(timers) - time.monotonic()
                    if delay > 0:
                        time.sleep(delay)
                    continue
                # Nothing in flight, nothing scheduled: the remaining
                # shards are out of attempts.
                for state in states:
                    if not state.resolved:
                        state.resolved = True
                        outcomes[state.qi].failures[state.task.shard_id] = (
                            state.last_error
                            if state.last_error is not None
                            else RuntimeError(
                                f"shard {state.task.shard_id}: no attempt "
                                "could be submitted"
                            )
                        )
                break
            timeout = max(0.0, min(timers) - time.monotonic()) if timers else None
            done, _ = wait(set(attempts), timeout=timeout, return_when=FIRST_COMPLETED)
            for future in done:
                attempt = attempts.pop(future, None)
                if attempt is None:  # pragma: no cover - defensive
                    continue
                state = attempt.state
                state.live -= 1
                try:
                    result = future.result()
                except Exception as exc:
                    handle_failure(state, attempt.task, exc)
                else:
                    if self._tracker is not None:
                        self._tracker.record(time.monotonic() - attempt.started)
                    if self._on_success is not None:
                        self._on_success(attempt.task)
                    if not state.resolved:
                        state.resolved = True
                        state.retry_due = None
                        outcomes[state.qi].results[state.task.shard_id] = result
        return outcomes
