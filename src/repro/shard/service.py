"""ShardedQueryService — parallel fan-out/merge over a ShardedGATIndex.

Every query becomes ``n_shards`` independent :class:`ShardTask` units; a
pluggable executor (serial / thread / process, see
:mod:`repro.shard.executor`) runs them, and the per-shard ranked lists are
merged in a :class:`~repro.core.results.TopKCollector` — the same
collector the engine itself uses, so tie-breaks (distance, then
trajectory id) are identical and the merged ranking matches the unsharded
engine byte-for-byte.

Batches are *flattened*: ``search_many`` submits every (query, shard)
task into one pool, so batch-level and intra-query parallelism share the
same worker budget and no shard sits idle while another query's slowest
shard finishes.  Responses keep request order.

Distributed top-k: shard tasks of one query prune and terminate against a
cross-shard threshold on every backend — the in-process backends share a
merged :class:`TopKCollector` (:class:`_SharedTopK`), and the process
backend leases a shared-memory ``multiprocessing.Value`` slot per query
into which each worker publishes its shard's local k-th distance (the
fleet minimum upper-bounds the merged k-th, so pruning stays exact; see
:class:`~repro.shard.executor.ProcessShardExecutor`).

Statistics aggregate without double-counting: each shard runs on its own
disk, caches, and counters, so a query's :class:`SearchStats` is the plain
field-wise sum over its shards (``SearchStats.merge``), and the service's
cache hit rates sum hits/lookups across the per-shard caches.  A query's
``latency_s`` is its *critical path* — the slowest shard's engine time.
Per-shard work counters under a concurrent backend depend on pruning
timing and are therefore not run-to-run deterministic (rankings always
are).

Result cache: identical requests are memoised exactly like
:class:`~repro.service.service.QueryService`, keyed by the same query
signature, but invalidation watches the **composite** index version (the
tuple of per-shard versions), so an insert into any shard drops the cache.
With the process backend an insert additionally refreshes the worker
snapshot: worker processes rebuild their engines from a fresh spec before
the next query runs.  As with the single index, inserts must quiesce the
service.
"""

from __future__ import annotations

import itertools
import math
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.context import SearchStats
from repro.core.engine import EngineConfig, GATSearchEngine
from repro.core.query import Query
from repro.core.results import TopKCollector
from repro.model.distance import DistanceMetric
from repro.service.service import (
    QueryRequest,
    QueryResponse,
    ServiceStats,
    ServingMetrics,
    as_request,
    delta_hit_rate,
    request_cache_key,
)
from repro.shard.executor import (
    EXECUTOR_KINDS,
    ProcessShardExecutor,
    SerialShardExecutor,
    ShardEngineSpec,
    ShardResult,
    ShardTask,
    ShardTaskError,
    ThreadShardExecutor,
    run_shard_task,
)
from repro.shard.index import ShardedGATIndex
from repro.shard.resilience import (
    FanoutOutcome,
    FanoutSupervisor,
    FaultPolicy,
    TaskLatencyTracker,
)
from repro.storage.cache import CacheStats, LRUCache


def _minus_cache_stats(
    base: Optional[CacheStats], discarded: Sequence[Optional[CacheStats]]
) -> Optional[CacheStats]:
    """Subtract discarded caches' counters from a baseline snapshot.

    When an engine or replica bank is rebuilt its caches vanish from the
    "now" side of the service's delta-hit-rate accounting; subtracting
    their final counters from the stored baseline keeps the delta
    consistent: the surviving caches' activity since the last reset stays
    measured, the vanished caches contribute exactly the lookups they
    served between the reset and the rebuild, and the rate stays within
    [0, 1].  (The adjusted baseline's fields may go negative — that is
    fine, only differences are ever read.)
    """
    gone = CacheStats.combined(list(discarded))
    if base is None or gone is None:
        return base
    return CacheStats(
        hits=base.hits - gone.hits,
        misses=base.misses - gone.misses,
        size=base.size - gone.size,
        capacity=base.capacity - gone.capacity,
    )


class _SharedTopK:
    """One query's cross-shard merged top-k, shared by its shard tasks.

    Every result entering any shard's local top-k is offered here; the
    collector's k-th distance is the *distributed-top-k threshold* each
    shard prunes and terminates against.  The per-shard local bound is
    weak (a shard's k-th best over its slice is far worse than the global
    k-th), so sharing the merged bound is what keeps a shard's retrieval
    close to its fair share of the work instead of each shard re-proving
    the whole termination condition alone.
    """

    __slots__ = ("_lock", "_collector")

    def __init__(self, k: int) -> None:
        self._lock = threading.Lock()
        self._collector = TopKCollector(k)

    def offer(self, result) -> None:
        with self._lock:
            self._collector.offer(result)

    def kth_distance(self) -> float:
        with self._lock:
            return self._collector.kth_distance()


class ShardedQueryService:
    """Query serving across a :class:`ShardedGATIndex`.

    Parameters
    ----------
    index:
        The sharded index fleet.
    metric / engine_config:
        Shared by every per-shard :class:`GATSearchEngine` (and shipped to
        process workers), so all shards score identically.
    executor:
        ``'thread'`` (default), ``'process'``, or ``'serial'``.
    max_workers:
        Width of the fan-out pool.  Thread default is ``4 × n_shards``
        (four queries' worth of shard tasks in flight); process default is
        one worker per shard.  Ignored by the serial backend.
    result_cache_size:
        Query-signature result cache capacity (``0`` disables), shared
        across shards and invalidated on the composite index version.
    mp_context:
        Optional :mod:`multiprocessing` context for the process backend.
    fault_policy:
        Optional :class:`~repro.shard.resilience.FaultPolicy`.  ``None``
        (default) keeps the historical all-or-nothing fan-out — one plain
        ``executor.run`` per batch, any shard failure raises.  With a
        policy, every fan-out runs under a
        :class:`~repro.shard.resilience.FanoutSupervisor`: per-query
        deadlines, backoff'd retries, hedged attempts (replica tier), and
        — when ``allow_partial`` — graceful degradation to partial
        coverage instead of raising.  Rankings are byte-identical to the
        legacy path whenever every shard answers.  Deadlines and hedges
        need a concurrent backend; the serial executor runs tasks inline
        where nothing can preempt them.
    obs:
        An optional :class:`~repro.obs.Observability` handle.  Metrics:
        every answered query feeds the registry.  Traces (handle with an
        enabled tracer): each request gets a ``query`` root span with one
        ``shard_task`` child per attempt — in-process attempts span
        directly (shard/replica/attempt/hedge/breaker attributes, disk
        and fault events), process-fleet attempts record spans worker-side
        and ship them home in :attr:`ShardResult.spans` for re-parenting
        under the root.  ``None`` (default) = no instrumentation.
    """

    _MISS = object()

    def __init__(
        self,
        index: ShardedGATIndex,
        metric: Optional[DistanceMetric] = None,
        engine_config: Optional[EngineConfig] = None,
        executor: str = "thread",
        max_workers: Optional[int] = None,
        result_cache_size: int = 1024,
        mp_context=None,
        fault_policy: Optional[FaultPolicy] = None,
        obs=None,
    ) -> None:
        if executor not in EXECUTOR_KINDS:
            raise ValueError(
                f"unknown executor {executor!r}; expected one of {EXECUTOR_KINDS}"
            )
        if result_cache_size < 0:
            raise ValueError("result_cache_size must be >= 0")
        self.index = index
        self.metric = metric
        self.obs = obs
        if obs is not None:
            obs.bind_index(index)
        self.engine_config = (
            engine_config if engine_config is not None else EngineConfig()
        )
        self.engines: List[GATSearchEngine] = [
            GATSearchEngine(shard, metric=metric, config=self.engine_config)
            for shard in index.shards
        ]
        if executor == "serial":
            self._executor = SerialShardExecutor(self._run_task)
        elif executor == "thread":
            width = max_workers if max_workers is not None else 4 * index.n_shards
            self._executor = ThreadShardExecutor(self._run_task, width)
        else:
            self._executor = ProcessShardExecutor(
                self._make_spec(), max_workers=max_workers, mp_context=mp_context
            )
        self._result_cache: Optional[LRUCache] = (
            LRUCache(result_cache_size) if result_cache_size > 0 else None
        )
        self._lock = threading.Lock()
        # Per-in-flight-query shared merged top-k, keyed by task group
        # (thread/serial backends; the process backend shares thresholds
        # through leased multiprocessing.Value slots instead).
        self._shared: Dict[int, _SharedTopK] = {}
        # Per-in-flight-query "query" root spans, keyed by task group
        # (group ids are unique across concurrent batches, so no reuse
        # races); shard-task spans parent here from worker threads, and
        # process-fleet spans are adopted under it after the fan-out.
        self._trace_roots: Dict[int, object] = {}
        self._group_ids = itertools.count(1)
        self._index_version: Tuple[int, ...] = index.version
        self._result_hits = 0
        self._result_lookups = 0
        self._metrics = ServingMetrics()
        self.fault_policy = fault_policy
        self._task_latency = TaskLatencyTracker()
        self._task_retries = 0
        self._task_hedges = 0
        self._task_hedges_denied = 0
        self._partial_responses = 0
        self._hicl_base: CacheStats = index.hicl_cache_stats()
        self._apl_base: Optional[CacheStats] = self._apl_cache_stats()

    # ------------------------------------------------------------------
    # Executor plumbing
    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return self.index.n_shards

    @property
    def executor_kind(self) -> str:
        return self._executor.kind

    def _run_task(self, task: ShardTask) -> ShardResult:
        """In-process task runner (serial and thread backends): shard
        tasks of one query prune against their shared merged top-k.

        Failure contract (every backend funnels through here or through a
        worker equivalent): the engine lease is *always* released, the
        replica tier's health tracker hears about the outcome, and any
        exception leaves wrapped in a :class:`ShardTaskError` naming the
        shard, replica, and query — never as a bare traceback from
        somewhere inside a pool.
        """
        obs = self.obs
        tracing = obs is not None and obs.tracer.enabled
        # _run_many mutates _shared from other threads (registering and
        # popping groups of concurrent batches), so even the read-side
        # lookup must hold the lock — an unlocked dict read races the
        # writers' rehash on free-threaded builds.
        with self._lock:
            shared = self._shared.get(task.group)
            root = self._trace_roots.get(task.group) if tracing else None
        engine, release, replica = self._lease_engine(task)
        span = None
        if tracing:
            attrs = {
                "shard": task.shard_id,
                "replica": replica,
                "attempt": task.attempt,
                "hedge": task.hedge,
            }
            breaker = self._task_breaker_state(task.shard_id, replica)
            if breaker is not None:
                attrs["breaker"] = breaker
            span = obs.tracer.start_span("shard_task", parent=root, attrs=attrs)
        try:
            if shared is None:  # defensive: run standalone, still exact
                result = run_shard_task(engine, task, trace_span=span)
            else:
                result = run_shard_task(
                    engine,
                    task,
                    external_threshold=shared.kth_distance,
                    result_sink=shared.offer,
                    trace_span=span,
                )
        except Exception as exc:
            if span is not None:
                span.set_attr("error", f"{type(exc).__name__}: {exc}")
            self._note_task_outcome(task, replica, ok=False)
            if isinstance(exc, ShardTaskError):
                raise
            raise ShardTaskError(task, exc, replica=replica) from exc
        else:
            self._note_task_outcome(task, replica, ok=True)
            return result
        finally:
            if span is not None:
                span.end()
            if release is not None:
                release()

    def _lease_engine(self, task: ShardTask):
        """Pick the engine an in-process task runs on: ``(engine,
        release, replica)`` where *release* (or ``None``) is called once
        the task finishes and *replica* names the copy serving it.  The
        base service has exactly one copy of each shard; the replicated
        tier overrides this to route the task to a replica and to return
        the router's lease release."""
        return self.engines[task.shard_id], None, 0

    def _note_task_outcome(self, task: ShardTask, replica: int, ok: bool) -> None:
        """Per-attempt health feedback; the replicated tier feeds its
        routers' circuit breakers here.  No-op for the base service."""

    def _task_breaker_state(self, shard_id, replica) -> Optional[str]:
        """Circuit-breaker state of the (shard, replica) pair serving a
        task — trace metadata stamped onto ``shard_task`` spans.  The base
        service has no breakers; the replica tier reports its router's
        view (``closed`` / ``open`` / ``probing``)."""
        return None

    def _reroute_task(self, task: ShardTask) -> ShardTask:
        """Build the retry/hedge attempt for *task*.  In-process backends
        route at execution time, so the same task object is resubmitted;
        the replica tier's process backend leases a fresh replica."""
        return task

    def _make_spec(self) -> ShardEngineSpec:
        """A picklable snapshot of the current fleet for process workers.

        Under ``store='shared'`` the index's trajectory store is synced
        (publishing any inserts since the last spec as the store's
        cumulative delta segment) and the spec ships only the attach
        recipe plus per-shard membership IDs — workers map the one copy
        of the dataset instead of unpickling per-shard trajectory tuples.
        """
        shard0 = self.index.shards[0]
        store = getattr(self.index, "store", None)
        if store is not None:
            store_spec = store.sync(self.index.db)
            shard_trajectories: tuple = ()
            shard_ids = tuple(
                tuple(tr.trajectory_id for tr in shard.db)
                for shard in self.index.shards
            )
        else:
            store_spec = None
            shard_ids = None
            shard_trajectories = tuple(
                tuple(shard.db.trajectories) for shard in self.index.shards
            )
        return ShardEngineSpec(
            db_name=self.index.db.name,
            vocabulary=self.index.db.vocabulary,
            shard_trajectories=shard_trajectories,
            bounding_boxes=self.index.shard_boxes,
            gat_configs=tuple(shard.config for shard in self.index.shards),
            engine_config=self.engine_config,
            metric=self.metric,
            read_latency_s=shard0.disk.read_latency_s,
            concurrent_reads=shard0.disk.concurrent_reads,
            store_spec=store_spec,
            shard_trajectory_ids=shard_ids,
        )

    # ------------------------------------------------------------------
    # Cache + version handling
    # ------------------------------------------------------------------
    def _check_version(self) -> Tuple[int, ...]:
        """Invalidate on composite-version movement; with the process
        backend also schedule a worker-snapshot refresh.  Returns the
        version the caller's lookups/puts are valid against."""
        version = self.index.version
        if version != self._index_version:
            with self._lock:
                if version != self._index_version:
                    if self._result_cache is not None:
                        self._result_cache.clear()
                    self._refresh_engines()
                    if isinstance(self._executor, ProcessShardExecutor):
                        self._executor.refresh(self._make_spec())
                    self._index_version = version
        return self._index_version

    def _refresh_engines(self) -> None:
        """Rebind per-shard engines whose underlying :class:`GATIndex`
        object was *replaced* since construction.  An overflow insert
        (:meth:`ShardedGATIndex._rebuild_expanded`) swaps a new index
        into ``index.shards[sid]``; the engine built at construction
        would otherwise keep serving the orphaned pre-insert snapshot.
        Mutates ``self.engines`` in place so aliases of the list (the
        replica tier's bank 0) see the rebound engines too.  Runs under
        ``self._lock`` (from :meth:`_check_version`), which also guards
        the baseline adjustment: the discarded engine's APL cache and the
        orphaned index's HICL cache vanish from the "now" side of the
        hit-rate deltas, so their counters must leave the baselines too.
        """
        discarded_hicl: List[CacheStats] = []
        discarded_apl: List[Optional[CacheStats]] = []
        for sid, shard in enumerate(self.index.shards):
            if self.engines[sid].index is not shard:
                old = self.engines[sid]
                discarded_hicl.append(old.index.hicl.cache_stats())
                discarded_apl.append(old.apl_cache_stats())
                self.engines[sid] = GATSearchEngine(
                    shard, metric=self.metric, config=self.engine_config
                )
                old.close()
        if discarded_hicl:
            self._hicl_base = _minus_cache_stats(self._hicl_base, discarded_hicl)
        if discarded_apl:
            self._apl_base = _minus_cache_stats(self._apl_base, discarded_apl)

    def _cache_lookup(self, request: QueryRequest) -> Optional[QueryResponse]:
        if self._result_cache is None:
            return None
        t0 = time.perf_counter()
        cached = self._result_cache.get(request_cache_key(request), self._MISS)
        hit = cached is not self._MISS
        with self._lock:
            self._result_lookups += 1
            if hit:
                self._result_hits += 1
        if self.obs is not None:
            self.obs.observe_cache(hit)
        if not hit:
            return None
        return QueryResponse(
            request=request,
            results=list(cached),
            stats=SearchStats(),
            latency_s=time.perf_counter() - t0,
            # Only full-coverage responses are ever cached (partials are
            # transient degradation, not answers worth replaying).
            shards_answered=self.n_shards,
            shards_total=self.n_shards,
        )

    def _cache_put(
        self, request: QueryRequest, response: QueryResponse, version: Tuple[int, ...]
    ) -> None:
        if self._result_cache is None:
            return
        # Version-guarded, like QueryService: an insert landing while the
        # fan-out ran must not re-cache pre-insert rankings after the sweep.
        with self._lock:
            if self._index_version == version:
                self._result_cache.put(
                    request_cache_key(request), tuple(response.results)
                )

    # ------------------------------------------------------------------
    # Fan-out / merge
    # ------------------------------------------------------------------
    def _tasks_for(
        self, request: QueryRequest, group: int, threshold_slot: Optional[int] = None
    ) -> List[ShardTask]:
        """One task per shard, **nearest shard first**: tasks are ordered
        by the distance from the query's centroid to each shard's data
        centroid, so the shard most likely to hold the true top-k runs (or
        is dequeued) earliest and seeds the cross-shard threshold that the
        remaining shards prune against.  Matters most under a spatial
        partition, where the far shards can then terminate after a few
        cell pops; a pure ordering heuristic — results never depend on it.
        """
        centroids = self.index.shard_centroids
        qx = sum(q.x for q in request.query) / len(request.query)
        qy = sum(q.y for q in request.query) / len(request.query)
        order = sorted(
            range(self.n_shards),
            key=lambda sid: math.hypot(centroids[sid][0] - qx, centroids[sid][1] - qy),
        )
        # Only process-fleet tasks carry the trace flag: a worker cannot
        # reach the parent's tracer, so it must be asked to record spans
        # and ship them home.  In-process attempts span in _run_task.
        trace = (
            self.obs is not None
            and self.obs.tracer.enabled
            and isinstance(self._executor, ProcessShardExecutor)
        )
        return [
            ShardTask(
                shard_id=sid,
                query=request.query,
                k=request.k,
                order_sensitive=request.order_sensitive,
                explain=request.explain,
                group=group,
                threshold_slot=threshold_slot,
                trace=trace,
            )
            for sid in order
        ]

    def _after_fanout(self, tasks: Sequence[ShardTask]) -> None:
        """Hook run after a fan-out's tasks complete (or fail), alongside
        slot/group cleanup.  No-op here; the replicated tier releases the
        submission-time replica leases of process-backend tasks."""

    @staticmethod
    def _merge(
        request: QueryRequest,
        shard_results: Sequence[ShardResult],
        shards_total: Optional[int] = None,
    ) -> QueryResponse:
        """k-way merge of per-shard rankings plus stats aggregation.
        *shards_total* stamps the coverage denominator when the merge is
        (possibly) partial — the supervised path passes the fan-out
        width; the legacy path always merges every shard."""
        collector = TopKCollector(request.k)
        for shard_result in shard_results:
            for result in shard_result.results:
                collector.offer(result)
        answered = len(shard_results)
        return QueryResponse(
            request=request,
            results=collector.results(),
            stats=SearchStats.merged([r.stats for r in shard_results]),
            latency_s=max((r.latency_s for r in shard_results), default=0.0),
            shards_answered=answered,
            shards_total=shards_total if shards_total is not None else answered,
        )

    def _run_many(self, requests: Sequence[QueryRequest]) -> List[QueryResponse]:
        version = self._check_version()
        responses: List[Optional[QueryResponse]] = [None] * len(requests)
        pending: List[int] = []
        for i, request in enumerate(requests):
            cached = self._cache_lookup(request)
            if cached is not None:
                responses[i] = cached
            else:
                pending.append(i)
        if pending:
            fanouts: List[List[ShardTask]] = []
            groups: List[int] = []
            slots: List[Optional[int]] = []
            # Every task whose creation took a lease (submission-routed
            # replicas) or whose slot must go back — including tasks built
            # before a mid-batch failure and retry/hedge attempts the
            # supervisor adds.  Inside the try so *every* failure path
            # releases them (a half-built batch used to leak the earlier
            # queries' slots and leases).
            submitted: List[ShardTask] = []
            in_process = not isinstance(self._executor, ProcessShardExecutor)
            tracing = self.obs is not None and self.obs.tracer.enabled
            try:
                for i in pending:
                    group = next(self._group_ids)
                    groups.append(group)
                    if tracing:
                        root = self.obs.tracer.start_span(
                            "query",
                            attrs={
                                "k": requests[i].k,
                                "shards": self.n_shards,
                                "group": group,
                            },
                        )
                        with self._lock:
                            self._trace_roots[group] = root
                    slot = None
                    if in_process:
                        with self._lock:
                            self._shared[group] = _SharedTopK(requests[i].k)
                    else:
                        # Process backend: lease a shared threshold slot so
                        # the query's shard tasks prune against the fleet
                        # minimum.
                        slot = self._executor.acquire_slot()
                        slots.append(slot)
                    fanout = self._tasks_for(requests[i], group, threshold_slot=slot)
                    fanouts.append(fanout)
                    submitted.extend(fanout)
                if self.fault_policy is None:
                    # Legacy all-or-nothing fan-out: one flattened run,
                    # byte-identical to the pre-supervision service.
                    tasks = [task for fanout in fanouts for task in fanout]
                    results = self._executor.run(tasks)
                    n = self.n_shards
                    for offset, i in enumerate(pending):
                        shard_results = results[offset * n : (offset + 1) * n]
                        if tracing:
                            self._adopt_worker_spans(groups[offset], shard_results)
                        response = self._merge(requests[i], shard_results)
                        self._cache_put(requests[i], response, version)
                        responses[i] = response
                        if tracing:
                            self._end_trace_root(groups[offset], response)
                else:
                    outcomes = self._supervised_fanout(
                        fanouts,
                        submitted,
                        deadlines=[requests[i].deadline_s for i in pending],
                    )
                    for outcome, i, fanout in zip(outcomes, pending, fanouts):
                        if tracing:
                            self._adopt_worker_spans(
                                fanout[0].group, list(outcome.results.values())
                            )
                        response = self._assemble(requests[i], fanout, outcome)
                        if response.complete:
                            self._cache_put(requests[i], response, version)
                        responses[i] = response
                        if tracing:
                            self._end_trace_root(fanout[0].group, response)
            finally:
                if in_process:
                    with self._lock:
                        for group in groups:
                            self._shared.pop(group, None)
                else:
                    for slot in slots:
                        self._executor.release_slot(slot)
                if tracing:
                    # Roots still registered here belong to queries that
                    # died mid-fan-out; end them so the trace buffer never
                    # accumulates open spans.
                    with self._lock:
                        leftovers = [
                            self._trace_roots.pop(group, None) for group in groups
                        ]
                    for root in leftovers:
                        if root is not None:
                            root.set_attr("error", True)
                            root.end()
                self._after_fanout(submitted)
        return responses  # type: ignore[return-value]

    def _adopt_worker_spans(
        self, group: int, shard_results: Sequence[ShardResult]
    ) -> None:
        """Re-parent spans recorded inside fleet workers under this
        query's root span.  Breaker state is stamped here, parent-side:
        the worker cannot see the router, and the adoption moment is the
        first time both the span and the breaker live in one process."""
        with self._lock:
            root = self._trace_roots.get(group)
        payloads: List[dict] = []
        for result in shard_results:
            payloads.extend(result.spans)
        if not payloads:
            return
        for span in self.obs.tracer.adopt(payloads, root):
            if span.name != "shard_task":
                continue
            breaker = self._task_breaker_state(
                span.attrs.get("shard"), span.attrs.get("replica")
            )
            if breaker is not None:
                span.set_attr("breaker", breaker)

    def _end_trace_root(self, group: int, response: QueryResponse) -> None:
        """Close one query's root span with its response-level attributes
        and deregister it (idempotent per group)."""
        with self._lock:
            root = self._trace_roots.pop(group, None)
        if root is None:
            return
        root.set_attrs(
            latency_s=response.latency_s,
            shards_answered=response.shards_answered,
            shards_total=response.shards_total,
            complete=response.complete,
        )
        root.end()

    def _supervised_fanout(
        self,
        fanouts: List[List[ShardTask]],
        submitted: List[ShardTask],
        deadlines: Optional[List[Optional[float]]] = None,
    ) -> List[FanoutOutcome]:
        """Run the batch's fan-outs under the service's fault policy.
        ``deadlines[i]`` optionally tightens fan-out *i*'s budget below
        ``fault_policy.deadline_s`` (per-request remaining budgets from
        the serving front-end)."""
        executor = self._executor
        in_process = not isinstance(executor, ProcessShardExecutor)
        if in_process:
            # Execution-time routing: retries/hedges resubmit the same
            # task, the router picks the replica when the lease happens,
            # and _run_task itself reports health.
            reroute = on_success = on_failure = None
        else:
            reroute = self._reroute_task

            def on_success(task: ShardTask) -> None:
                self._note_task_outcome(task, task.replica, ok=True)

            def on_failure(task: ShardTask, exc: BaseException) -> None:
                self._note_task_outcome(task, task.replica, ok=False)

        supervisor = FanoutSupervisor(
            executor.submit,
            self.fault_policy,
            self._task_latency,
            reroute=reroute,
            heal=executor.heal,
            on_submit=submitted.append,
            on_success=on_success,
            on_failure=on_failure,
        )
        outcomes = supervisor.run(fanouts, deadlines=deadlines)
        retries = sum(o.retries for o in outcomes)
        hedges = sum(o.hedges for o in outcomes)
        hedges_denied = sum(o.hedges_denied for o in outcomes)
        with self._lock:
            self._task_retries += retries
            self._task_hedges += hedges
            self._task_hedges_denied += hedges_denied
        if self.obs is not None:
            self.obs.observe_fanout(retries, hedges, hedges_denied)
        return outcomes

    def _assemble(
        self, request: QueryRequest, fanout: List[ShardTask], outcome: FanoutOutcome
    ) -> QueryResponse:
        """Turn one supervised fan-out into a response: a full merge when
        every shard answered (byte-identical to the legacy path), a
        partial-coverage merge when allowed, a contextual raise when not."""
        answered = [
            outcome.results[task.shard_id]
            for task in fanout
            if task.shard_id in outcome.results
        ]
        if len(answered) < len(fanout) and not self.fault_policy.allow_partial:
            for task in fanout:
                exc = outcome.failures.get(task.shard_id)
                if exc is not None:
                    if isinstance(exc, ShardTaskError):
                        raise exc
                    raise ShardTaskError(task, exc) from exc
            raise RuntimeError("fan-out incomplete without a recorded failure")
        if len(answered) < len(fanout):
            with self._lock:
                self._partial_responses += 1
        return self._merge(request, answered, shards_total=len(fanout))

    # ------------------------------------------------------------------
    # Serving API (mirrors QueryService)
    # ------------------------------------------------------------------
    _as_request = staticmethod(as_request)

    def search(
        self,
        query: Union[QueryRequest, Query],
        k: int = 10,
        order_sensitive: bool = False,
        explain: bool = False,
    ) -> QueryResponse:
        """Answer one query across every shard and merge."""
        request = self._as_request(
            query, k=k, order_sensitive=order_sensitive, explain=explain
        )
        self._metrics.enter_busy()
        try:
            response = self._run_many([request])[0]
        finally:
            self._metrics.exit_busy()
        self._metrics.record([(response.latency_s, response.stats.disk_reads)])
        if self.obs is not None:
            self.obs.observe_response(response)
        return response

    def search_many(
        self,
        queries: Sequence[Union[QueryRequest, Query]],
        k: int = 10,
        order_sensitive: bool = False,
        *,
        explain: bool = False,
    ) -> List[QueryResponse]:
        """Answer a batch; response ``i`` answers request ``i``.

        The whole batch's shard tasks share one flattened submission, so
        concurrency across queries and across shards comes from the same
        pool — no per-query barrier.  ``explain`` applies to every bare
        :class:`Query` in the batch (prebuilt requests keep their own
        flag), exactly like ``search`` — batched explain queries must not
        silently lose their matched-point annotations.
        """
        requests = [
            self._as_request(q, k=k, order_sensitive=order_sensitive, explain=explain)
            for q in queries
        ]
        self._metrics.enter_busy()
        try:
            responses = self._run_many(requests)
        finally:
            self._metrics.exit_busy()
        self._metrics.record(
            (r.latency_s, r.stats.disk_reads) for r in responses
        )
        if self.obs is not None:
            for response in responses:
                self.obs.observe_response(response)
        return responses

    def close(self) -> None:
        """Shut down the fan-out executor and the per-shard engines'
        auxiliary pools (idempotent)."""
        self._executor.close()
        for engine in self.engines:
            engine.close()

    def __enter__(self) -> "ShardedQueryService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def _apl_cache_stats(self) -> Optional[CacheStats]:
        return CacheStats.combined(
            [engine.apl_cache_stats() for engine in self._all_engines()]
        )

    def _all_engines(self) -> List[GATSearchEngine]:
        """Every in-process engine the service can route to — the replica
        tier overrides this so cache accounting spans its replica banks."""
        return self.engines

    def _hicl_cache_stats(self) -> CacheStats:
        """Fleet HICL cache accounting; the replica tier adds its banks."""
        return self.index.hicl_cache_stats()

    _delta_hit_rate = staticmethod(delta_hit_rate)

    def stats(self) -> ServiceStats:
        """Fleet-wide :class:`ServiceStats`.

        Cache hit rates sum hits/lookups across the per-shard HICL caches
        and engine APL caches (each lookup happened on exactly one shard).
        With the process backend the in-process caches are bypassed —
        worker processes own their engines — so those rates read 0.
        """
        with self._lock:
            # Both sides of each delta under one lock: _refresh_engines
            # (overflow insert) swaps zero-counter caches in and adjusts
            # the baselines atomically under this same lock, so a reader
            # must never pair the new "now" with the old baseline (or
            # vice versa) — that torn diff reads outside [0, 1].
            hicl_rate = self._delta_hit_rate(
                self._hicl_cache_stats(), self._hicl_base
            )
            apl_rate = self._delta_hit_rate(self._apl_cache_stats(), self._apl_base)
            result_hits = self._result_hits
            result_lookups = self._result_lookups
            task_retries = self._task_retries
            task_hedges = self._task_hedges
            task_hedges_denied = self._task_hedges_denied
            partial_responses = self._partial_responses
        stats = self._metrics.fill(ServiceStats())
        stats.hicl_cache_hit_rate = hicl_rate
        stats.apl_cache_hit_rate = apl_rate
        stats.result_cache_hits = result_hits
        stats.result_cache_lookups = result_lookups
        stats.task_retries = task_retries
        stats.task_hedges = task_hedges
        stats.task_hedges_denied = task_hedges_denied
        stats.partial_responses = partial_responses
        return stats

    def reset_stats(self) -> None:
        """Zero the service accounting and re-baseline the shard caches."""
        self._metrics.reset()
        with self._lock:
            self._result_hits = 0
            self._result_lookups = 0
            self._task_retries = 0
            self._task_hedges = 0
            self._task_hedges_denied = 0
            self._partial_responses = 0
            self._hicl_base = self._hicl_cache_stats()
            self._apl_base = self._apl_cache_stats()
