"""Replica-aware serving tier: N copies of every shard, load-balanced.

The last serving-scale axis.  PR 1 scaled one engine across threads,
PR 2-4 scaled the index across kernels, shards, and processes — but read
throughput stayed capped at **one copy of each shard**: every query that
touches shard *s* queues on shard *s*'s single disk.  This module holds
``n_replicas`` complete copies of each shard (replica = its own
:class:`~repro.index.gat.index.GATIndex`, engine, and simulated disk over
the *same* trajectory subset; under the process backend the worker
processes themselves are the copies — the pool is sized ``n_shards ×
n_replicas`` workers, each with its own engines and disks) and routes
every :class:`~repro.shard.executor.ShardTask` to one copy through a
pluggable :class:`ReplicaRouter`.

Exactness: replicas are byte-identical copies, so *which* replica serves
a task can never change the task's ranked list — routing moves latency
and device load, never results.  One query's shard tasks still share a
single distributed-top-k threshold (the group-keyed merged
:class:`~repro.shard.service._SharedTopK` in-process, the leased
``multiprocessing.Value`` slot under the process backend) **across
whichever replicas serve them**, so cross-shard pruning is oblivious to
replica placement and the merged ranking stays byte-identical to the
unreplicated :class:`~repro.shard.service.ShardedQueryService`.

Routing strategies (all thread-safe, all tracking per-``(shard,
replica)`` in-flight depth):

* ``round-robin`` — cycle replicas per shard; the stateless default,
  perfectly balanced for uniform tasks.
* ``least-in-flight`` — send the task to the replica currently serving
  the fewest tasks of that shard (ties to the lowest replica id); adapts
  to skewed task costs at the price of a global view.
* ``power-of-two`` — sample two replicas, pick the less loaded (the
  classic load-balancing result: two random choices get exponentially
  close to least-loaded without its coordination cost).  Seedable for
  reproducible dispatch *sequences*; results never depend on the seed.

When to route: the in-process backends (serial/thread) bind a task to a
replica at **execution** time — the moment a worker thread leases an
engine — so in-flight depth means "executing right now".  The process
backend binds at **submission** time (the task carries its replica id
across the process boundary), so depth there means "dispatched, not yet
completed"; the lease is released when the fan-out returns.

Mutation: replicas are read-only snapshots.  An insert goes through the
primary :class:`~repro.shard.index.ShardedGATIndex` (quiesce the service,
as always), moves the composite version, and the next query's version
check rebuilds the replica banks from the mutated shards — the same
snapshot-refresh contract the process backend already follows.

Memory: a replica copies index structures, caches, and its simulated
disk — never the trajectories.  Replicas share the primary shard's
``shard.db``; under ``ShardedGATIndex.build(..., store='shared')`` those
trajectories are themselves zero-copy views into one shared-memory
columnar store, so ``n_replicas × n_shards`` engines read a single copy
of the point data (and process-backend replica workers attach to the
same segments instead of each unpickling a fleet).
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from dataclasses import replace as dc_replace
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.core.engine import EngineConfig, GATSearchEngine
from repro.index.gat.index import GATIndex
from repro.model.distance import DistanceMetric
from repro.shard.executor import ProcessShardExecutor, ShardTask
from repro.shard.index import ShardedGATIndex
from repro.shard.resilience import FaultPolicy
from repro.shard.service import ShardedQueryService, _minus_cache_stats
from repro.storage.cache import CacheStats
from repro.storage.disk import SimulatedDisk

REPLICA_ROUTERS = ("round-robin", "least-in-flight", "power-of-two")


# ----------------------------------------------------------------------
# Per-replica health: the circuit breaker
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BreakerConfig:
    """Circuit-breaker knobs for per-replica health tracking.

    A replica is **ejected** (circuit opens) after ``failure_threshold``
    *consecutive* task failures; after ``probation_after_s`` it becomes a
    probation candidate: exactly one in-flight **probe** task is allowed
    through, whose outcome either restores the replica (circuit closes)
    or re-ejects it for another probation interval.
    """

    failure_threshold: int = 3
    probation_after_s: float = 1.0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.probation_after_s <= 0:
            raise ValueError("probation_after_s must be > 0")


#: Breaker states (`ReplicaHealth.state`): serving normally, ejected, or
#: serving a single probation probe.
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_PROBING = "probing"


class _ReplicaBreaker:
    __slots__ = ("state", "consecutive_failures", "opened_at", "probe_in_flight")

    def __init__(self) -> None:
        self.state = BREAKER_CLOSED
        self.consecutive_failures = 0
        self.opened_at = 0.0
        self.probe_in_flight = False


class ReplicaHealth:
    """Per-(shard, replica) circuit breakers.

    **Not** self-locking: every method runs under the owning router's
    lock, which already serialises routing decisions — a second lock here
    would only add an ordering hazard.  The *clock* is injectable so the
    eject → probation → restore timeline is unit-testable without
    sleeping.

    Health degrades routing, never availability: when every replica of a
    shard is ejected, :meth:`candidates` returns empty and the router
    falls back to considering all of them (a guess at a dead replica
    beats refusing to serve — retries and partial coverage handle the
    rest).
    """

    def __init__(
        self,
        n_shards: int,
        n_replicas: int,
        config: Optional[BreakerConfig] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config if config is not None else BreakerConfig()
        self._clock = clock
        self._breakers = [
            [_ReplicaBreaker() for _ in range(n_replicas)] for _ in range(n_shards)
        ]
        self.ejections = 0
        self.restores = 0
        self.probes = 0

    def candidates(self, shard_id: int) -> List[int]:
        """Replica ids currently routable for *shard_id*: closed breakers,
        plus open ones whose probation timer expired and have no probe in
        flight (routing one *is* the probe)."""
        now = self._clock()
        out: List[int] = []
        for replica, breaker in enumerate(self._breakers[shard_id]):
            if breaker.state == BREAKER_OPEN:
                if (
                    not breaker.probe_in_flight
                    and now - breaker.opened_at >= self.config.probation_after_s
                ):
                    out.append(replica)
            elif breaker.state == BREAKER_PROBING:
                # Re-eligible when the probe concluded — or when it has
                # been outstanding a whole probation interval (an
                # abandoned/stalled probe must not wedge the replica in
                # probing forever).
                if (
                    not breaker.probe_in_flight
                    or now - breaker.opened_at >= self.config.probation_after_s
                ):
                    out.append(replica)
            else:
                out.append(replica)
        return out

    def note_leased(self, shard_id: int, replica: int) -> None:
        """A task was routed to *replica*; an expired-probation replica's
        lease becomes its probe."""
        breaker = self._breakers[shard_id][replica]
        if breaker.state == BREAKER_OPEN:
            now = self._clock()
            if now - breaker.opened_at >= self.config.probation_after_s:
                breaker.state = BREAKER_PROBING
                breaker.probe_in_flight = True
                breaker.opened_at = now  # the probe's own timeout clock
                self.probes += 1
        elif breaker.state == BREAKER_PROBING:
            breaker.probe_in_flight = True
            breaker.opened_at = self._clock()
            self.probes += 1

    def record_success(self, shard_id: int, replica: int) -> None:
        breaker = self._breakers[shard_id][replica]
        if breaker.state == BREAKER_PROBING:
            breaker.state = BREAKER_CLOSED
            breaker.probe_in_flight = False
            breaker.consecutive_failures = 0
            self.restores += 1
        elif breaker.state == BREAKER_CLOSED:
            breaker.consecutive_failures = 0
        # BREAKER_OPEN: a straggler from before the ejection — ignored.

    def record_failure(self, shard_id: int, replica: int) -> None:
        breaker = self._breakers[shard_id][replica]
        if breaker.state == BREAKER_PROBING:
            breaker.state = BREAKER_OPEN
            breaker.opened_at = self._clock()
            breaker.probe_in_flight = False
            self.ejections += 1
        elif breaker.state == BREAKER_CLOSED:
            breaker.consecutive_failures += 1
            if breaker.consecutive_failures >= self.config.failure_threshold:
                breaker.state = BREAKER_OPEN
                breaker.opened_at = self._clock()
                self.ejections += 1

    def state(self, shard_id: int, replica: int) -> str:
        return self._breakers[shard_id][replica].state


class ReplicaRouter:
    """Base replica picker: thread-safe in-flight accounting, per-replica
    health, plus a strategy-specific :meth:`_pick`.

    ``route`` leases one replica of *shard_id* (incrementing its in-flight
    depth) and ``release`` returns the lease; the depth table is what the
    load-aware strategies read, and what tests introspect via
    :meth:`in_flight`.

    Health: every router carries a :class:`ReplicaHealth` circuit breaker.
    ``route`` restricts the strategy's choice to the healthy candidates
    (falling back to all replicas when none are — health degrades routing,
    never availability) and the serving tier reports outcomes through
    :meth:`record_success` / :meth:`record_failure`.  While every replica
    is healthy the candidate set is complete and each strategy's pick
    sequence is **bit-identical** to the pre-health routers — health
    tracking is free until something actually fails.
    """

    strategy = "?"

    def __init__(
        self,
        n_shards: int,
        n_replicas: int,
        breaker: Optional[BreakerConfig] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if n_replicas < 1:
            raise ValueError("n_replicas must be >= 1")
        self.n_shards = n_shards
        self.n_replicas = n_replicas
        self._lock = threading.Lock()
        self._in_flight: List[List[int]] = [
            [0] * n_replicas for _ in range(n_shards)
        ]
        self._routed = 0
        self.health = ReplicaHealth(n_shards, n_replicas, breaker, clock)

    def route(self, shard_id: int) -> int:
        """Lease a replica of *shard_id* for one task."""
        with self._lock:
            candidates = self.health.candidates(shard_id)
            if not candidates:
                candidates = list(range(self.n_replicas))
            replica = self._pick(shard_id, candidates)
            self.health.note_leased(shard_id, replica)
            self._in_flight[shard_id][replica] += 1
            self._routed += 1
            return replica

    def release(self, shard_id: int, replica: int) -> None:
        """Return a lease taken by :meth:`route`."""
        with self._lock:
            depths = self._in_flight[shard_id]
            if depths[replica] <= 0:
                raise RuntimeError(
                    f"release without matching route (shard {shard_id}, "
                    f"replica {replica})"
                )
            depths[replica] -= 1

    def record_success(self, shard_id: int, replica: int) -> None:
        """A task served by *replica* completed (breaker feedback)."""
        with self._lock:
            self.health.record_success(shard_id, replica)

    def record_failure(self, shard_id: int, replica: int) -> None:
        """A task served by *replica* failed (breaker feedback)."""
        with self._lock:
            self.health.record_failure(shard_id, replica)

    def replica_state(self, shard_id: int, replica: int) -> str:
        """Breaker state (``closed`` / ``open`` / ``probing``) of a copy."""
        with self._lock:
            return self.health.state(shard_id, replica)

    def health_counters(self) -> Tuple[int, int, int]:
        """One consistent ``(ejections, restores, probes)`` snapshot of
        the breaker's lifetime counters, read under the router lock.  The
        serving tier diffs these against a reset-time baseline — the
        counters themselves are monotonic and never rewind."""
        with self._lock:
            health = self.health
            return (health.ejections, health.restores, health.probes)

    def in_flight(self, shard_id: int) -> Tuple[int, ...]:
        """Current per-replica in-flight depths of one shard."""
        with self._lock:
            return tuple(self._in_flight[shard_id])

    @property
    def routed(self) -> int:
        """Total tasks routed since construction (accounting aid)."""
        with self._lock:
            return self._routed

    def _pick(
        self, shard_id: int, candidates: List[int]
    ) -> int:  # pragma: no cover - abstract
        raise NotImplementedError


class RoundRobinRouter(ReplicaRouter):
    """Cycle through a shard's replicas in order, one task each (skipping
    unhealthy copies: the scan continues from the cursor to the next
    routable replica)."""

    strategy = "round-robin"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._next = [0] * self.n_shards

    def _pick(self, shard_id: int, candidates: List[int]) -> int:
        start = self._next[shard_id]
        for step in range(self.n_replicas):
            replica = (start + step) % self.n_replicas
            if replica in candidates:
                self._next[shard_id] = (replica + 1) % self.n_replicas
                return replica
        raise RuntimeError("route() never passes an empty candidate set")


class LeastInFlightRouter(ReplicaRouter):
    """Send each task to the replica with the fewest in-flight tasks of
    its shard (ties break to the lowest replica id, deterministically)."""

    strategy = "least-in-flight"

    def _pick(self, shard_id: int, candidates: List[int]) -> int:
        depths = self._in_flight[shard_id]
        return min(candidates, key=lambda replica: (depths[replica], replica))


class PowerOfTwoRouter(ReplicaRouter):
    """Power-of-two-choices on in-flight depth: sample two distinct
    candidates uniformly, route to the shallower (ties to the lower id)."""

    strategy = "power-of-two"

    def __init__(
        self,
        n_shards: int,
        n_replicas: int,
        seed: Optional[int] = None,
        breaker: Optional[BreakerConfig] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        super().__init__(n_shards, n_replicas, breaker=breaker, clock=clock)
        self._rng = random.Random(seed)

    def _pick(self, shard_id: int, candidates: List[int]) -> int:
        if len(candidates) == 1:
            return candidates[0]
        # With all replicas healthy `candidates` is range(n_replicas), so
        # the seeded draw sequence matches the pre-health router exactly.
        a, b = self._rng.sample(candidates, 2)
        depths = self._in_flight[shard_id]
        if depths[a] != depths[b]:
            return a if depths[a] < depths[b] else b
        return min(a, b)


def make_replica_router(
    strategy: str,
    n_shards: int,
    n_replicas: int,
    seed: Optional[int] = None,
    breaker: Optional[BreakerConfig] = None,
    clock: Callable[[], float] = time.monotonic,
) -> ReplicaRouter:
    """Build a router by strategy name (see :data:`REPLICA_ROUTERS`)."""
    if strategy == "round-robin":
        return RoundRobinRouter(n_shards, n_replicas, breaker=breaker, clock=clock)
    if strategy == "least-in-flight":
        return LeastInFlightRouter(n_shards, n_replicas, breaker=breaker, clock=clock)
    if strategy == "power-of-two":
        return PowerOfTwoRouter(
            n_shards, n_replicas, seed=seed, breaker=breaker, clock=clock
        )
    raise ValueError(
        f"unknown replica router {strategy!r}; expected one of {REPLICA_ROUTERS}"
    )


class ReplicatedShardedService(ShardedQueryService):
    """A :class:`ShardedQueryService` with ``n_replicas`` copies of every
    shard behind a :class:`ReplicaRouter`.

    Parameters (beyond the base service's)
    --------------------------------------
    n_replicas:
        Copies of each shard.  ``1`` degenerates to the base service
        (every router then always picks replica 0).
    replica_router:
        A strategy name from :data:`REPLICA_ROUTERS`, or a prebuilt
        :class:`ReplicaRouter` (must match the fleet's shape).
    router_seed:
        Seed for the ``power-of-two`` sampler (reproducible dispatch
        sequences; rankings never depend on it).
    replica_disk_factory:
        Called once per replica shard to create its disk.  Default:
        every replica disk clones the primary shard disk's cost model
        (page size, latency, ``concurrent_reads``), so a replica is
        another copy on another identical device.  In-process backends
        only — process workers always rebuild replica disks from the
        spec (the primary's cost model), so passing a factory with
        ``executor='process'`` raises rather than silently ignoring it.
    max_workers:
        Defaults scale with the replica tier: ``4 × n_shards ×
        n_replicas`` threads (four queries' worth of fan-out per replica
        fleet) or ``n_shards × n_replicas`` process workers — capacity
        grows with the copies, which is the point of replication.
    fault_policy:
        Optional :class:`~repro.shard.resilience.FaultPolicy` enabling
        deadlines / bounded retries / hedging on every fan-out (see the
        base service).  Replication is what makes retries and hedges
        *useful*: a retried or hedged attempt is re-routed through the
        router, which — fed by the circuit breaker — steers it to a
        healthy sibling copy of the same shard.
    breaker:
        Optional :class:`BreakerConfig` tuning the per-replica circuit
        breaker (eject after N consecutive failures, probation probe
        after a cool-down).  Only valid when *replica_router* is a
        strategy name; a prebuilt router already owns its breaker.

    The in-process backends (serial/thread) hold the replica engine banks
    in this object; the process backend realises replicas as the worker
    processes themselves (pool sized ``n_shards × n_replicas``, each
    worker its own engines and disks) and stamps each task's replica at
    submission purely for the router's lease accounting.
    """

    def __init__(
        self,
        index: ShardedGATIndex,
        metric: Optional[DistanceMetric] = None,
        engine_config: Optional[EngineConfig] = None,
        executor: str = "thread",
        n_replicas: int = 2,
        replica_router: Union[str, ReplicaRouter] = "round-robin",
        router_seed: Optional[int] = None,
        replica_disk_factory: Optional[Callable[[], SimulatedDisk]] = None,
        max_workers: Optional[int] = None,
        result_cache_size: int = 1024,
        mp_context=None,
        fault_policy: Optional[FaultPolicy] = None,
        breaker: Optional[BreakerConfig] = None,
        obs=None,
    ) -> None:
        if n_replicas < 1:
            raise ValueError("n_replicas must be >= 1")
        if replica_disk_factory is not None and executor == "process":
            raise ValueError(
                "replica_disk_factory is in-process only: process workers "
                "rebuild replica disks from the engine spec (the primary "
                "shards' cost model)"
            )
        self.n_replicas = n_replicas
        if isinstance(replica_router, ReplicaRouter):
            if breaker is not None:
                raise ValueError(
                    "breaker is only valid with a strategy name; a prebuilt "
                    "replica_router already owns its ReplicaHealth breaker"
                )
            if (
                replica_router.n_shards != index.n_shards
                or replica_router.n_replicas != n_replicas
            ):
                raise ValueError(
                    "replica_router shape "
                    f"({replica_router.n_shards}×{replica_router.n_replicas}) "
                    f"does not match the fleet ({index.n_shards}×{n_replicas})"
                )
            self.router = replica_router
        else:
            self.router = make_replica_router(
                replica_router,
                index.n_shards,
                n_replicas,
                seed=router_seed,
                breaker=breaker,
            )
        if max_workers is None:
            if executor == "thread":
                max_workers = 4 * index.n_shards * n_replicas
            elif executor == "process":
                max_workers = index.n_shards * n_replicas
        self._replica_disk_factory = replica_disk_factory
        self._replica_indexes: List[List[GATIndex]] = []
        self._banks: List[List[GATSearchEngine]] = []
        self._bank_lock = threading.Lock()
        super().__init__(
            index,
            metric=metric,
            engine_config=engine_config,
            executor=executor,
            max_workers=max_workers,
            result_cache_size=result_cache_size,
            mp_context=mp_context,
            fault_policy=fault_policy,
            obs=obs,
        )
        # Breaker counters are monotonic on ReplicaHealth; stats() diffs
        # them against this reset-time baseline so reset_stats() actually
        # zeroes the reported trip counts (satellite: counters must not
        # survive a reset).
        self._breaker_base: Tuple[int, int, int] = (0, 0, 0)
        # The process backend keeps its replicas worker-side; building
        # in-process banks there would double memory for engines nothing
        # would ever run on.
        self._banks_in_process = not isinstance(self._executor, ProcessShardExecutor)
        self._build_banks()
        self._banks_version = self.index.version
        # Re-baseline the cache deltas now that the replica banks exist
        # (the base constructor snapshotted the primary only).
        self._hicl_base = self._hicl_cache_stats()
        self._apl_base = self._apl_cache_stats()

    # ------------------------------------------------------------------
    # Replica banks
    # ------------------------------------------------------------------
    def _build_banks(self) -> None:
        """(Re)build the engine banks: bank 0 aliases the primary
        engines; banks 1..n-1 are fresh replica slices."""
        if not self._banks_in_process:
            self._replica_indexes = []
            self._banks = [self.engines]
            return
        self._replica_indexes = [
            self.index.replicate(self._replica_disk_factory)
            for _ in range(self.n_replicas - 1)
        ]
        banks = [self.engines]
        for replica_set in self._replica_indexes:
            banks.append(
                [
                    GATSearchEngine(
                        shard, metric=self.metric, config=self.engine_config
                    )
                    for shard in replica_set
                ]
            )
        self._banks = banks
        if self.obs is not None:
            # Replica-bank disks must report into the same tracer as the
            # primaries (bank 0 aliases the primary engines, which
            # bind_index already covered).
            for replica_set in self._replica_indexes:
                for shard in replica_set:
                    self.obs.bind_disk(shard.disk)

    def _resync_banks(self) -> None:
        """Rebuild the replica banks after the primary mutated (inserts
        quiesce the service, so no task is mid-flight on a stale bank)."""
        with self._bank_lock:
            version = self.index.version
            if version == self._banks_version:
                return
            old_banks = self._banks[1:]
            discarded_hicl = [
                shard.hicl.cache_stats()
                for replica_set in self._replica_indexes
                for shard in replica_set
            ]
            discarded_apl = [
                engine.apl_cache_stats() for bank in old_banks for engine in bank
            ]
            self._build_banks()
            self._banks_version = version
            # The rebuilt banks' caches start at zero, so the discarded
            # counters must leave the baselines too — otherwise stats()
            # would diff a "now" that lost them against a "base" that
            # still holds them and report hit rates outside [0, 1].
            with self._lock:
                self._hicl_base = _minus_cache_stats(
                    self._hicl_base, discarded_hicl
                )
                self._apl_base = _minus_cache_stats(self._apl_base, discarded_apl)
            for bank in old_banks:
                for engine in bank:
                    engine.close()

    def _check_version(self):
        # Resync BEFORE the base class publishes the fresh version: a
        # concurrent search that observes the new _index_version must
        # never find stale replica banks behind it (it would skip the
        # resync and lease a pre-insert engine).  _resync_banks is keyed
        # on _banks_version under its own lock, so whichever thread gets
        # there first rebuilds and latecomers block until the new banks
        # are published.
        if (
            self._banks_in_process
            and self.n_replicas > 1
            and self.index.version != self._index_version
        ):
            self._resync_banks()
        return super()._check_version()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _lease_engine(self, task: ShardTask):
        """In-process dispatch: bind the task to a replica now, run it on
        that bank's engine, release the lease when the task finishes."""
        shard_id = task.shard_id
        replica = self.router.route(shard_id)
        try:
            engine = self._banks[replica][shard_id]
        except IndexError:  # pragma: no cover - defensive
            self.router.release(shard_id, replica)
            raise
        return engine, lambda: self.router.release(shard_id, replica), replica

    def _note_task_outcome(self, task: ShardTask, replica: int, ok: bool) -> None:
        """Feed per-task outcomes to the router's circuit breaker."""
        if ok:
            self.router.record_success(task.shard_id, replica)
        else:
            self.router.record_failure(task.shard_id, replica)

    def _reroute_task(self, task: ShardTask) -> ShardTask:
        """Re-route a retry/hedge attempt through the router (process
        backend: the attempt carries a *fresh* replica lease — it joins
        the fan-out's submitted list via the supervisor's on_submit hook
        and is released with the rest in :meth:`_after_fanout`).
        In-process backends bind replicas at execution time, so the task
        rides unchanged."""
        if self._banks_in_process:
            return task
        return dc_replace(task, replica=self.router.route(task.shard_id))

    def _tasks_for(
        self, request, group: int, threshold_slot: Optional[int] = None
    ) -> List[ShardTask]:
        tasks = super()._tasks_for(request, group, threshold_slot)
        if self._banks_in_process:
            return tasks  # replica bound at execution time instead
        # Process backend: the replica must ride the task across the
        # process boundary, so bind at submission.  The lease is released
        # in _after_fanout once the whole fan-out returns.
        return [
            dc_replace(task, replica=self.router.route(task.shard_id))
            for task in tasks
        ]

    def _after_fanout(self, tasks: Sequence[ShardTask]) -> None:
        if self._banks_in_process:
            return
        for task in tasks:
            self.router.release(task.shard_id, task.replica)

    # ------------------------------------------------------------------
    # Lifecycle / accounting
    # ------------------------------------------------------------------
    def close(self) -> None:
        super().close()  # executor + primary engines
        for bank in self._banks[1:]:
            for engine in bank:
                engine.close()

    def stats(self):
        # Serialized against _resync_banks (which holds _bank_lock for
        # the whole bank swap + baseline adjustment): a concurrent poll
        # must observe either the old banks with the old baselines or
        # the new with the new — a torn read would diff the rebuilt
        # zero-counter caches against the fat pre-rebuild baselines and
        # report hit rates outside [0, 1].  Lock order everywhere is
        # _bank_lock → _lock, so this cannot deadlock.
        with self._bank_lock:
            stats = super().stats()
            ejections, restores, probes = self.router.health_counters()
            base = self._breaker_base
            stats.breaker_ejections = ejections - base[0]
            stats.breaker_restores = restores - base[1]
            stats.breaker_probes = probes - base[2]
            return stats

    def reset_stats(self) -> None:
        with self._bank_lock:
            super().reset_stats()
            self._breaker_base = self.router.health_counters()

    def _task_breaker_state(self, shard_id, replica) -> Optional[str]:
        """Breaker state for a shard-task span's attributes.  Tolerant of
        malformed/missing attrs on adopted worker spans — observability
        must never take a query down."""
        if shard_id is None or replica is None:
            return None
        try:
            return self.router.replica_state(shard_id, replica)
        except (IndexError, TypeError):
            return None

    def _all_engines(self) -> List[GATSearchEngine]:
        banks = self._banks
        if not banks:
            return self.engines  # mid-construction: primary only
        return [engine for bank in banks for engine in bank]

    def _hicl_cache_stats(self) -> CacheStats:
        parts = [self.index.hicl_cache_stats()]
        for replica_set in self._replica_indexes:
            parts.extend(shard.hicl.cache_stats() for shard in replica_set)
        return CacheStats.combined(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ReplicatedShardedService({self.n_shards} shards × "
            f"{self.n_replicas} replicas, router={self.router.strategy!r}, "
            f"executor={self.executor_kind!r})"
        )
