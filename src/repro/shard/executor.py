"""Pluggable shard fan-out executors: serial, threads, and processes.

The sharded service expresses one query as ``n_shards`` independent
:class:`ShardTask` units and hands the whole batch to an executor; how
they run is the deployment's choice:

* :class:`SerialShardExecutor` — inline, in submission order.  The
  debugging / profiling baseline, and the reference the parity suite
  compares the concurrent backends against.
* :class:`ThreadShardExecutor` — a shared :class:`ThreadPoolExecutor`.
  The default: threads overlap the shards' simulated-disk latencies and
  the NumPy kernel sections that release the GIL, and they can run
  against the service's own in-process engines directly.
* :class:`ProcessShardExecutor` — a :class:`ProcessPoolExecutor` whose
  workers each rebuild shard engines from a picklable
  :class:`ShardEngineSpec`.  This closes the residual GIL-bound share:
  pure-Python retrieval/validation work runs truly in parallel.  Workers
  build a shard's engine lazily on the first task that touches it, so a
  fleet of ``n_shards`` workers converges to roughly one engine each.

Process-pool consistency: worker processes hold *snapshots* of the index.
They cannot observe :meth:`ShardedGATIndex.insert_trajectory`, so the
sharded service watches the composite index version and calls
:meth:`ProcessShardExecutor.refresh` with a fresh spec after any mutation.
Refreshes are **coalesced**: the executor only records the newest spec,
and the next query to run tears down and re-initialises the pool at most
once — a burst of inserts costs one re-init, and a refresh whose spec
compares equal to the live pool's costs nothing.

Everything shipped across the process boundary (tasks, specs, ranked
results, stats) is plain picklable data; engines, disks, and locks never
cross.  Under a shared trajectory store (:mod:`repro.storage.shm`) the
spec carries only segment names, offsets, and shard-membership IDs —
workers attach to the one copy of the dataset instead of unpickling it.
"""

from __future__ import annotations

import math
import os
import threading
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.context import SearchStats
from repro.core.engine import EngineConfig, GATSearchEngine
from repro.core.query import Query
from repro.core.results import SearchResult
from repro.index.gat.index import GATConfig, GATIndex
from repro.model.database import TrajectoryDatabase

EXECUTOR_KINDS = ("serial", "thread", "process")


@dataclass(frozen=True, slots=True)
class ShardTask:
    """One shard's share of one query: the request options plus the shard
    to run them on.  Frozen and picklable — the same object crosses thread
    and process boundaries.

    ``group`` labels all tasks of one fan-out.  In-process backends use it
    to find the query's shared merged-top-k (the distributed-top-k
    threshold).  Process workers instead use ``threshold_slot`` — the
    index of a ``multiprocessing.Value`` allocated at pool start-up (the
    slots are inherited by the workers; synchronised objects cannot ride
    the task queue itself).  Each worker publishes its shard's local k-th
    distance into the slot and prunes against the fleet-wide minimum — an
    upper bound on the merged k-th, hence sound — polled between
    validation rounds via the engine's external-threshold hook.
    ``threshold_slot=None`` (serial/thread backends, or slot exhaustion)
    keeps the run-to-local-completion behaviour.

    ``replica`` names which copy of the shard should serve the task under
    a replicated tier (:mod:`repro.shard.replicas`).  The in-process
    backends route dynamically at execution time (the field stays 0 and
    the service's replica router picks a copy when a worker thread leases
    an engine); the process backend routes at submission time — the field
    carries the router's parent-side lease across the process boundary.
    Worker-side it is metadata only: every worker process is already an
    independent physical copy (own engines, own disks), so the replica
    tier sizes the pool to ``n_shards × n_replicas`` workers rather than
    duplicating engines inside each worker.

    Observability fields: ``trace`` asks the runner (in-process or a
    process-fleet worker) to build a ``shard_task`` span for this task —
    worker-side spans ride home serialized in :attr:`ShardResult.spans`
    and are re-parented under the query root.  ``attempt`` counts prior
    failures of this fan-out slot (0 = first launch) and ``hedge`` marks
    a speculative duplicate; both are stamped by the
    :class:`~repro.shard.resilience.FanoutSupervisor` at launch time so
    the span of whichever attempt *wins* says which attempt it was.
    """

    shard_id: int
    query: Query
    k: int
    order_sensitive: bool = False
    explain: bool = False
    group: int = 0
    threshold_slot: Optional[int] = None
    replica: int = 0
    trace: bool = False
    attempt: int = 0
    hedge: bool = False


@dataclass(slots=True)
class ShardResult:
    """One shard's ranked answer: its local top-k, its work counters, and
    the wall time it took (the merge reports the slowest shard as the
    query's critical path)."""

    shard_id: int
    results: Tuple[SearchResult, ...]
    stats: SearchStats
    latency_s: float
    #: Serialized spans (``Span.to_dict`` payloads) recorded while running
    #: this task — only populated when the task asked for tracing
    #: (``ShardTask.trace``) and the runner was a process-fleet worker;
    #: in-process runners file spans directly with the service's tracer.
    spans: Tuple[dict, ...] = ()


ShardRunner = Callable[[ShardTask], ShardResult]


class ShardTaskError(RuntimeError):
    """A shard task failed, wrapped with serving context.

    A raw worker traceback says nothing about *which* shard, replica, or
    query died; every backend wraps task failures here so the failure
    names its place in the fleet.  ``task`` and ``original`` keep the full
    objects for the supervisor's retry/failover machinery; ``shard_id``
    and ``replica`` are the fields operators (and tests) match on.
    """

    def __init__(
        self,
        task: ShardTask,
        original: BaseException,
        replica: Optional[int] = None,
    ) -> None:
        self.task = task
        self.shard_id = task.shard_id
        self.replica = task.replica if replica is None else replica
        self.original = original
        super().__init__(
            f"shard {self.shard_id} (replica {self.replica}) failed serving "
            f"query group {task.group} (k={task.k}, "
            f"|query|={len(task.query)}): "
            f"{type(original).__name__}: {original}"
        )


# ----------------------------------------------------------------------
# Picklable engine construction (the process backend's worker side)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class ShardEngineSpec:
    """Everything a worker process needs to rebuild any shard's engine.

    Carries data, never live objects: the shared vocabulary, each shard
    grid's bounding box and build config (per-shard since the
    shard-local-grid build depth-adapts each grid to its own box — all
    equal under ``shard_box='global'``), and the engine config.  The
    metric rides along too (the stock metrics are stateless
    ``__slots__ = ()`` classes, so they pickle for free).

    The trajectory set travels one of two ways:

    * **object snapshot** — ``shard_trajectories`` holds per-shard tuples
      of :class:`ActivityTrajectory`; the whole dataset is pickled into
      every worker (the historical path, kept as the oracle);
    * **shared store** — ``store_spec`` names the shared-memory segments
      of a :class:`~repro.storage.shm.SharedTrajectoryStore` and
      ``shard_trajectory_ids`` lists each shard's membership by ID;
      workers *attach* to the one copy of the dataset and pickle only
      names, offsets, and ID tuples.

    Specs compare by value (trajectory tuples by element identity, store
    specs and ID tuples structurally), which is what
    :meth:`ProcessShardExecutor.refresh` coalesces on: an unchanged fleet
    produces an equal spec and no pool re-init."""

    db_name: str
    vocabulary: object
    shard_trajectories: Tuple[tuple, ...]
    bounding_boxes: Tuple[object, ...]
    gat_configs: Tuple[GATConfig, ...]
    engine_config: EngineConfig
    metric: Optional[object] = None
    #: Per-read latency and device command depth of the worker-side
    #: simulated disks, carried over from the parent's shard disks so the
    #: process backend reproduces the same I/O cost model as the
    #: in-process engines (``concurrent_reads=None`` = unbounded).
    read_latency_s: float = 0.0
    concurrent_reads: Optional[int] = None
    #: Shared-store attach recipe (:class:`~repro.storage.shm.SharedStoreSpec`)
    #: plus per-shard membership ID tuples; ``None`` = object snapshot.
    store_spec: Optional[object] = None
    shard_trajectory_ids: Optional[Tuple[Tuple[int, ...], ...]] = None

    @property
    def n_shards(self) -> int:
        if self.store_spec is not None:
            return len(self.shard_trajectory_ids)
        return len(self.shard_trajectories)


def _shard_database(spec: ShardEngineSpec, shard_id: int) -> TrajectoryDatabase:
    """Materialise one shard's database from a spec — attached zero-copy
    views under a shared store, unpickled objects otherwise."""
    name = f"{spec.db_name}/shard{shard_id}"
    if spec.store_spec is not None:
        from repro.storage import shm

        full = shm.attach_database(spec.store_spec, spec.vocabulary, name=spec.db_name)
        return TrajectoryDatabase.from_trajectories(
            [full.get(tid) for tid in spec.shard_trajectory_ids[shard_id]],
            spec.vocabulary,
            name=name,
        )
    return TrajectoryDatabase.from_trajectories(
        spec.shard_trajectories[shard_id], spec.vocabulary, name=name
    )


def build_shard_engine(spec: ShardEngineSpec, shard_id: int) -> GATSearchEngine:
    """Rebuild one shard's database, GAT index, and engine from a spec."""
    from repro.storage.disk import SimulatedDisk

    shard_db = _shard_database(spec, shard_id)
    index = GATIndex.build(
        shard_db,
        spec.gat_configs[shard_id],
        disk=SimulatedDisk(
            read_latency_s=spec.read_latency_s,
            concurrent_reads=spec.concurrent_reads,
        ),
        bounding_box=spec.bounding_boxes[shard_id],
    )
    return GATSearchEngine(index, metric=spec.metric, config=spec.engine_config)


def run_shard_task(
    engine: GATSearchEngine,
    task: ShardTask,
    external_threshold=None,
    result_sink=None,
    trace_span=None,
) -> ShardResult:
    """Execute one shard task against *engine* — the single code path every
    backend funnels through, in-process or in a worker.  The optional
    hooks carry the cross-shard merged-top-k (see
    :meth:`GATSearchEngine.execute`); process workers run without them.
    *trace_span* is the ``shard_task`` span the engine reports its stage
    spans and disk events into (``None`` = untraced)."""
    ctx = engine.execute(
        task.query,
        task.k,
        order_sensitive=task.order_sensitive,
        explain=task.explain,
        external_threshold=external_threshold,
        result_sink=result_sink,
        trace_span=trace_span,
    )
    return ShardResult(
        shard_id=task.shard_id,
        results=tuple(ctx.ranked if ctx.ranked is not None else ()),
        stats=ctx.stats,
        latency_s=ctx.latency_s,
    )


# Per-worker-process state: the spec and threshold slots arrive once via
# the pool initializer; engines are built lazily per shard on first use.
# Keyed by shard only, never (shard, replica): each worker process is
# already a physically independent copy (its own engines and disks), so
# per-replica keying inside one worker would only multiply engine builds
# — up to (n_shards × n_replicas) per worker — without modelling any
# extra device.
_WORKER_SPEC: Optional[ShardEngineSpec] = None
_WORKER_ENGINES: Dict[int, GATSearchEngine] = {}
_WORKER_SLOTS: Sequence = ()


def _worker_init(spec: ShardEngineSpec, slots: Sequence = ()) -> None:
    global _WORKER_SPEC, _WORKER_SLOTS
    _WORKER_SPEC = spec
    _WORKER_SLOTS = slots
    _WORKER_ENGINES.clear()


class _SlotThreshold:
    """One query's cross-process pruning threshold, backed by a shared
    ``multiprocessing.Value`` slot.

    Each worker mirrors its shard's accepted results in a local
    :class:`TopKCollector` and publishes the mirror's k-th distance into
    the slot whenever it improves on the stored fleet minimum.  The slot
    therefore holds ``min`` over shards of the *local* k-th — an upper
    bound on the merged k-th over the union (a union's k-th never exceeds
    any part's), which in turn bounds the final merged k-th from above, so
    pruning and terminating against it is exact for the merged top-k.  The
    engine polls :meth:`threshold` between validation rounds (and inside
    the Lemma-4 scoring prune) through its ``external_threshold`` hook.
    """

    __slots__ = ("_value", "_mirror")

    def __init__(self, value, k: int) -> None:
        from repro.core.results import TopKCollector

        self._value = value
        self._mirror = TopKCollector(k)

    def offer(self, result) -> None:
        self._mirror.offer(result)
        kth = self._mirror.kth_distance()
        if math.isfinite(kth):
            with self._value.get_lock():
                if kth < self._value.value:
                    self._value.value = kth

    def threshold(self) -> float:
        with self._value.get_lock():
            return self._value.value


def _worker_ping() -> int:
    """No-op worker task; :meth:`ProcessShardExecutor.warm_up` uses it to
    force the pool's processes into existence (chaos tests need live pids
    to kill before any real batch has run)."""
    return os.getpid()


def _worker_search(task: ShardTask) -> ShardResult:
    if _WORKER_SPEC is None:  # pragma: no cover - defensive
        raise RuntimeError("shard worker used before initialisation")
    engine = _WORKER_ENGINES.get(task.shard_id)
    if engine is None:
        engine = _WORKER_ENGINES[task.shard_id] = build_shard_engine(
            _WORKER_SPEC, task.shard_id
        )
    if task.threshold_slot is None or task.threshold_slot >= len(_WORKER_SLOTS):
        external_threshold = result_sink = None
    else:
        shared = _SlotThreshold(_WORKER_SLOTS[task.threshold_slot], task.k)
        external_threshold = shared.threshold
        result_sink = shared.offer
    if not task.trace:
        return run_shard_task(
            engine, task, external_threshold=external_threshold, result_sink=result_sink
        )
    # Traced: a throwaway worker-local tracer collects this task's span
    # tree (shard_task root + engine stage children + disk events); the
    # spans ride home as plain dicts in ShardResult.spans and the parent
    # re-parents them under the query root (Tracer.adopt).  The disk
    # tracer binding is per-call because the same worker serves traced
    # and untraced tasks alike.
    from repro.obs.trace import Tracer

    tracer = Tracer(max_spans=256)
    span = tracer.start_span(
        "shard_task",
        attrs={
            "shard": task.shard_id,
            "replica": task.replica,
            "attempt": task.attempt,
            "hedge": task.hedge,
            "pid": os.getpid(),
        },
    )
    disk = engine.index.disk
    prev_tracer = disk.tracer
    disk.tracer = tracer
    try:
        result = run_shard_task(
            engine,
            task,
            external_threshold=external_threshold,
            result_sink=result_sink,
            trace_span=span,
        )
    finally:
        disk.tracer = prev_tracer
        span.end()
    result.spans = tuple(s.to_dict() for s in tracer.drain())
    return result


# ----------------------------------------------------------------------
# Backends
# ----------------------------------------------------------------------
class SerialShardExecutor:
    """Runs shard tasks inline on the calling thread."""

    kind = "serial"

    def __init__(self, run_task: ShardRunner) -> None:
        self._run_task = run_task
        self._closed = False

    def run(self, tasks: Sequence[ShardTask]) -> List[ShardResult]:
        if self._closed:
            # No pool to leak, but a closed service's engines have shut
            # their auxiliary io pools — serving on would silently
            # resurrect them.  Same invariant as the pooled backends.
            raise RuntimeError("SerialShardExecutor used after close()")
        return [self._run_task(task) for task in tasks]

    def submit(self, task: ShardTask) -> Future:
        """Run *task* inline and return an already-completed future — the
        fan-out supervisor speaks one submission API across backends.
        Deadlines/hedges cannot preempt an inline task, of course; the
        serial backend is the debugging baseline, not a serving tier."""
        if self._closed:
            raise RuntimeError("SerialShardExecutor used after close()")
        future: Future = Future()
        try:
            future.set_result(self._run_task(task))
        except BaseException as exc:
            future.set_exception(exc)
        return future

    def heal(self) -> bool:
        """Nothing to heal in-process; the supervisor calls this blindly."""
        return False

    def close(self) -> None:
        self._closed = True


class ThreadShardExecutor:
    """Fan-out over a lazily created, long-lived thread pool.

    The pool is shared by every concurrent ``search``/``search_many`` call,
    so *max_workers* bounds the whole service's in-flight shard tasks —
    size it to ``n_shards × batch concurrency`` to keep every shard busy.
    """

    kind = "thread"

    def __init__(self, run_task: ShardRunner, max_workers: int) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self._run_task = run_task
        self.max_workers = max_workers
        self._lock = threading.Lock()
        self._pool: Optional[ThreadPoolExecutor] = None
        self._closed = False

    def _shared_pool(self) -> ThreadPoolExecutor:
        # Locked: concurrent first submissions (several clients hitting a
        # fresh service) must not each create a pool and leak all but one.
        with self._lock:
            if self._closed:
                # A lazily created pool must not be silently resurrected
                # after close() — the leaked pool would outlive the closed
                # service.  Fail loudly instead.
                raise RuntimeError("ThreadShardExecutor used after close()")
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.max_workers, thread_name_prefix="repro-shard"
                )
            return self._pool

    def run(self, tasks: Sequence[ShardTask]) -> List[ShardResult]:
        return list(self._shared_pool().map(self._run_task, tasks))

    def submit(self, task: ShardTask) -> Future:
        """Submit one task to the shared pool (the supervisor's API)."""
        return self._shared_pool().submit(self._run_task, task)

    def heal(self) -> bool:
        """Thread pools do not break; the supervisor calls this blindly."""
        return False

    def close(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
            self._closed = True
        if pool is not None:
            pool.shutdown(wait=True)


class ProcessShardExecutor:
    """Fan-out over worker processes built from a :class:`ShardEngineSpec`.

    Each worker pays a one-time engine build per shard it serves; after
    warm-up, shard searches run GIL-free in parallel.  Best for CPU-bound
    workloads (large candidate sets, scalar kernels, many cores); for
    I/O-dominated serving the thread backend wins on warm-up cost.

    Distributed top-k: the executor owns a fixed pool of shared
    ``multiprocessing.Value('d')`` threshold slots, created before the
    worker pool so they are inherited through the pool initializer (shared
    memory cannot ride the task queue).  The service leases one slot per
    in-flight query (:meth:`acquire_slot` / :meth:`release_slot`); all the
    query's shard tasks carry the slot index, and workers prune against
    the fleet minimum published there (see :class:`_SlotThreshold`).  When
    every slot is leased, further queries simply run without one —
    correct, just without cross-shard pruning.

    Self-healing: a SIGKILLed (OOM-killed, segfaulted) worker breaks the
    whole :class:`ProcessPoolExecutor` — every in-flight future raises
    :class:`BrokenProcessPool` and the pool is unusable forever.  Both
    :meth:`run` and :meth:`submit` treat that as a *fleet* event, not a
    task failure: the broken pool is retired, the next submission
    re-initialises a fresh pool from the (cheap, shared-memory-backed)
    spec, and :meth:`run` replays exactly the tasks whose futures died —
    at most :attr:`max_pool_repairs` times per call, after which the
    breakage surfaces as a :class:`ShardTaskError`.  Threshold slots are
    parent-owned ``mp.Value``s inherited by every pool generation, so
    leases survive a repair; a dead worker's last published threshold
    stays a sound (real-result) upper bound for the replayed task.
    """

    kind = "process"

    #: Shared threshold slots per executor — bounds the number of
    #: concurrently *pruning* queries, not the number of queries.
    N_SLOTS = 64

    def __init__(
        self,
        spec: ShardEngineSpec,
        max_workers: Optional[int] = None,
        mp_context=None,
        max_pool_repairs: int = 3,
    ) -> None:
        self.max_workers = max_workers if max_workers is not None else spec.n_shards
        if self.max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if max_pool_repairs < 0:
            raise ValueError("max_pool_repairs must be >= 0")
        self.max_pool_repairs = max_pool_repairs
        #: Broken pools retired so far (chaos tests assert recovery here).
        self.pool_repairs = 0
        self._spec = spec
        #: The spec the live pool was initialised from (``None`` before the
        #: first pool) — :meth:`_shared_pool` compares it against the
        #: latest :meth:`refresh` spec to decide whether a re-init is due.
        self._live_spec: Optional[ShardEngineSpec] = None
        #: Worker-pool initialisations so far — the refresh-coalescing
        #: regression tests count this under insert bursts.
        self.pool_inits = 0
        self._mp_context = mp_context
        self._lock = threading.Lock()
        self._pool: Optional[ProcessPoolExecutor] = None
        self._closed = False
        import multiprocessing

        ctx = mp_context if mp_context is not None else multiprocessing
        self._slots = [ctx.Value("d", math.inf) for _ in range(self.N_SLOTS)]
        self._free_slots = list(range(self.N_SLOTS))

    def acquire_slot(self) -> Optional[int]:
        """Lease a threshold slot for one query, reset to ``inf`` (no
        pruning bound yet); ``None`` when all slots are in flight."""
        with self._lock:
            if not self._free_slots:
                return None
            slot = self._free_slots.pop()
        value = self._slots[slot]
        with value.get_lock():
            value.value = math.inf
        return slot

    def release_slot(self, slot: Optional[int]) -> None:
        """Return a leased threshold slot.  Duplicate-tolerant: failure
        paths (supervisor cleanup racing the service's own ``finally``)
        may release the same lease twice, and a double-append would let
        two queries share one slot's threshold — unsound pruning."""
        if slot is None:
            return
        with self._lock:
            if slot not in self._free_slots:
                self._free_slots.append(slot)

    def _shared_pool(self) -> ProcessPoolExecutor:
        # Locked like the thread backend — a raced double-create here
        # would leak a whole pool of worker processes.
        while True:
            stale: Optional[ProcessPoolExecutor] = None
            with self._lock:
                if self._closed:
                    # Use-after-close would silently spawn a whole fresh
                    # pool of worker processes that nothing ever shuts down.
                    raise RuntimeError("ProcessShardExecutor used after close()")
                if (
                    self._pool is not None
                    and self._live_spec is not self._spec
                    and self._live_spec != self._spec
                ):
                    # A refresh landed since this pool was initialised:
                    # retire it and fall through to re-create below.
                    stale, self._pool = self._pool, None
                if stale is None:
                    if self._pool is None:
                        self._pool = ProcessPoolExecutor(
                            max_workers=self.max_workers,
                            mp_context=self._mp_context,
                            initializer=_worker_init,
                            initargs=(self._spec, self._slots),
                        )
                        self._live_spec = self._spec
                        self.pool_inits += 1
                    return self._pool
            # Shut the stale pool down outside the lock (it waits for
            # in-flight tasks) and retry; inserts quiesce the service, so
            # nothing races the snapshot swap itself.
            stale.shutdown(wait=True)

    def _retire_broken(self, pool: ProcessPoolExecutor) -> bool:
        """Drop *pool* so the next submission re-initialises from the
        spec.  Identity-checked — concurrent detectors of one breakage
        retire it once — and never raises: shutting down a pool whose
        workers are already dead must not mask the original failure."""
        retired = False
        with self._lock:
            if self._pool is pool and not self._closed:
                self._pool = None
                self.pool_repairs += 1
                retired = True
        try:
            pool.shutdown(wait=True)
        except Exception:  # pragma: no cover - defensive
            pass
        return retired

    def heal(self) -> bool:
        """Retire the live pool if it is broken (the supervisor calls this
        when a future dies with :class:`BrokenProcessPool`).  Returns
        whether anything was retired."""
        with self._lock:
            pool = self._pool
        if pool is None or not getattr(pool, "_broken", False):
            return False
        return self._retire_broken(pool)

    def submit(self, task: ShardTask) -> Future:
        """Submit one task, healing through submission-time pool breakage
        (a worker killed while the pool sat idle surfaces here, not on a
        future).  The returned future can still die with
        :class:`BrokenProcessPool` if the kill lands mid-flight — that is
        the supervisor's (or :meth:`run`'s) retry to make."""
        last_exc: Optional[BaseException] = None
        for _ in range(self.max_pool_repairs + 1):
            pool = self._shared_pool()
            try:
                return pool.submit(_worker_search, task)
            except BrokenProcessPool as exc:
                last_exc = exc
                self._retire_broken(pool)
        raise ShardTaskError(task, last_exc)

    def run(self, tasks: Sequence[ShardTask]) -> List[ShardResult]:
        """Run a batch; order of results matches *tasks*.  Futures that
        die with :class:`BrokenProcessPool` are replayed on a fresh pool
        (bounded by :attr:`max_pool_repairs`); any other worker exception
        is wrapped with its task's context and raised."""
        results: List[Optional[ShardResult]] = [None] * len(tasks)
        pending = [(i, self.submit(task)) for i, task in enumerate(tasks)]
        repairs_left = self.max_pool_repairs
        while pending:
            broken: List[int] = []
            broken_exc: Optional[BaseException] = None
            for i, future in pending:
                try:
                    results[i] = future.result()
                except BrokenProcessPool as exc:
                    broken.append(i)
                    broken_exc = exc
                except Exception as exc:
                    raise ShardTaskError(tasks[i], exc) from exc
            if not broken:
                break
            if repairs_left <= 0:
                raise ShardTaskError(tasks[broken[0]], broken_exc)
            repairs_left -= 1
            self.heal()
            pending = [(i, self.submit(tasks[i])) for i in broken]
        return results  # type: ignore[return-value]

    def worker_pids(self) -> List[int]:
        """Pids of the live pool's worker processes (chaos targets)."""
        with self._lock:
            pool = self._pool
        if pool is None:
            return []
        processes = getattr(pool, "_processes", None) or {}
        return [pid for pid, proc in list(processes.items()) if proc.is_alive()]

    def warm_up(self) -> List[int]:
        """Force every worker process into existence (they normally spawn
        lazily per submission) and return their pids."""
        pool = self._shared_pool()
        futures = [pool.submit(_worker_ping) for _ in range(self.max_workers)]
        for future in futures:
            future.result()
        return self.worker_pids()

    def refresh(self, spec: ShardEngineSpec) -> None:
        """Adopt a new worker snapshot after an index mutation —
        **coalesced**: the spec is only recorded here, and the live pool
        is torn down and re-initialised at most once, by the next query
        that actually runs.  A burst of inserts therefore costs one pool
        re-init instead of one per composite-version bump, and a refresh
        whose spec equals the live pool's (nothing really changed — e.g.
        an overflow rebuild that re-derived identical state) costs
        nothing at all."""
        with self._lock:
            self._spec = spec

    def close(self) -> None:
        """Shut the pool down (idempotent).  Must succeed even while
        degraded: closing right after a worker kill — broken pool, dead
        processes — has nothing useful left to do, and raising here would
        leak the service teardown it is part of.  The threshold slots are
        parent-owned and survive untouched either way."""
        with self._lock:
            pool, self._pool = self._pool, None
            self._closed = True
        if pool is not None:
            try:
                pool.shutdown(wait=True)
            except Exception:  # pragma: no cover - defensive
                pass
