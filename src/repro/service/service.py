"""QueryService — batched, concurrent ATSQ/OATSQ serving.

One :class:`~repro.core.engine.GATSearchEngine` is shared by all workers:
the engine is stateless per query (each call builds its own
:class:`~repro.core.context.ExecutionContext`), the HICL and APL caches
are thread-safe LRUs, and disk I/O is attributed per query through
thread-local trackers — so fan-out needs no per-worker engine copies and
every worker warms the same caches.

``search_many`` preserves input order: response ``i`` always answers
request ``i`` regardless of which worker finished first, making batched
output bitwise-comparable with a sequential loop.

Repeated requests are memoised in a **query-signature result cache**
keyed by ``(query points, k, order_sensitive, explain)``: a hot signature
costs one LRU lookup instead of a full index search.  The cache is
invalidated wholesale when the index's mutation counter moves
(``GATIndex.insert_trajectory``), so a quiesce-insert-resume cycle can
never serve pre-insert rankings.

Python threads still contend on the GIL for pure-Python compute, so the
throughput win comes from overlapping the simulated-disk latency and from
cache sharing; with a zero-latency disk the batched path is exercised for
correctness, and the benchmark (``benchmarks/bench_service_throughput.py``)
injects a realistic read latency to show the >1.5× batched speedup.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Union

from repro.core.context import SearchStats
from repro.core.engine import GATSearchEngine
from repro.core.query import Query
from repro.core.results import SearchResult
from repro.obs.metrics import nearest_rank
from repro.storage.cache import CacheStats, LRUCache

#: Latency percentiles are computed over the most recent window of
#: queries; a long-lived service must not hoard one float per query
#: forever (nor re-sort an unbounded history on every stats() call).
LATENCY_WINDOW = 10_000


@dataclass(frozen=True, slots=True)
class QueryRequest:
    """One unit of service work: a query plus its execution options.

    ``deadline_s`` is the caller's *remaining* latency budget at the
    moment the request reaches the service (seconds of ``time.monotonic``
    from now, not a wall-clock instant).  A sharded service running under
    a :class:`~repro.shard.resilience.FaultPolicy` tightens its fan-out
    deadline to it, so backend retries/hedges never outlive the caller;
    everywhere else it is advisory metadata.  It deliberately does not
    participate in the result-cache identity (:func:`request_cache_key`)
    — the answer to a query does not depend on how patient its caller is.
    """

    query: Query
    k: int = 10
    order_sensitive: bool = False
    explain: bool = False
    deadline_s: Optional[float] = None


@dataclass(slots=True)
class QueryResponse:
    """The service's answer to one :class:`QueryRequest`.

    ``shards_answered`` / ``shards_total`` are the response's *coverage*:
    how many of the index partitions behind the service contributed to
    the ranking.  The single-engine service and every non-degraded
    sharded response have full coverage; only a sharded service running
    under a :class:`~repro.shard.resilience.FaultPolicy` with
    ``allow_partial=True`` can return less — a best-effort merge of the
    shards that answered before the deadline (exactness holds per
    answering shard; trajectories living on the silent shards are simply
    absent).  Callers that must not act on degraded data check
    :attr:`complete`.
    """

    request: QueryRequest
    results: List[SearchResult]
    stats: SearchStats
    latency_s: float
    shards_answered: int = 1
    shards_total: int = 1

    @property
    def complete(self) -> bool:
        """Whether every shard contributed (full-coverage, exact result)."""
        return self.shards_answered >= self.shards_total


@dataclass(slots=True)
class ServiceStats:
    """Aggregate serving statistics since construction (or `reset_stats`).

    Latency percentiles use the nearest-rank method over the most recent
    ``LATENCY_WINDOW`` queries (the mean covers everything); ``qps``
    divides queries by the busy wall time — the union of intervals with
    at least one ``search``/``search_many`` call in flight, so neither
    summed per-query latency nor overlapping concurrent calls inflate
    the denominator.  Cache hit rates are the *delta* since this
    service's construction/reset, excluding everything that happened
    before then; the underlying counters live on the shared engine/index,
    so concurrent non-service use of the same engine still moves them.
    """

    queries: int = 0
    wall_seconds: float = 0.0
    latency_p50_s: float = 0.0
    latency_p95_s: float = 0.0
    latency_p99_s: float = 0.0
    latency_mean_s: float = 0.0
    hicl_cache_hit_rate: float = 0.0
    apl_cache_hit_rate: float = 0.0
    disk_reads: int = 0
    result_cache_hits: int = 0
    result_cache_lookups: int = 0
    #: Fault-tolerance accounting (sharded services under a FaultPolicy;
    #: always zero elsewhere): extra shard-task attempts after failures,
    #: hedged backup attempts, and responses that went out with partial
    #: shard coverage.
    task_retries: int = 0
    task_hedges: int = 0
    #: Hedges that came due but were denied by the global
    #: :attr:`~repro.shard.resilience.FaultPolicy.hedge_budget`.
    task_hedges_denied: int = 0
    partial_responses: int = 0
    #: Circuit-breaker activity (replicated services only; always zero
    #: elsewhere): replica ejections, restores to the healthy pool, and
    #: probation probes — deltas since construction/``reset_stats`` like
    #: every other field here.
    breaker_ejections: int = 0
    breaker_restores: int = 0
    breaker_probes: int = 0

    @property
    def qps(self) -> float:
        return self.queries / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def result_cache_hit_rate(self) -> float:
        """Fraction of requests answered straight from the result cache
        (0.0 when the cache is disabled or untouched)."""
        if self.result_cache_lookups <= 0:
            return 0.0
        return self.result_cache_hits / self.result_cache_lookups


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sequence.

    Thin alias over :func:`repro.obs.metrics.nearest_rank` — kept so the
    serving layer and the fault supervisor's
    :meth:`~repro.shard.resilience.TaskLatencyTracker.quantile` share one
    quantile definition instead of two divergent implementations.
    """
    return nearest_rank(sorted_values, q)


def as_request(item: Union[QueryRequest, Query], **defaults) -> QueryRequest:
    """Coerce a bare :class:`Query` (plus shared option defaults) into a
    :class:`QueryRequest`; prebuilt requests pass through untouched.
    Shared by both query services so request coercion can never diverge."""
    if isinstance(item, QueryRequest):
        return item
    return QueryRequest(query=item, **defaults)


def delta_hit_rate(now: Optional[CacheStats], base: Optional[CacheStats]) -> float:
    """Hit rate of the lookups that happened since *base* was snapshotted
    (0.0 for disabled caches or when nothing has been looked up since)."""
    if now is None or base is None:
        return 0.0
    hits = now.hits - base.hits
    lookups = now.lookups - base.lookups
    return hits / lookups if lookups > 0 else 0.0


def request_cache_key(request: QueryRequest) -> tuple:
    """The query signature used by result caches: the (hashable, frozen)
    query points plus every option that changes the answer.  Shared by
    :class:`QueryService` and the sharded service so both layers cache —
    and invalidate — under identical identities.  ``deadline_s`` is
    deliberately excluded: it changes how long we are willing to wait,
    never what the answer is."""
    return (
        request.query.points,
        request.k,
        request.order_sensitive,
        request.explain,
    )


class ServingMetrics:
    """Thread-safe serving accounting shared by the query services.

    Owns the latency window, the query/disk-read totals, and the
    busy-interval wall clock (overlapping calls must not double-count wall
    time: ``qps = queries / busy wall``).  :class:`QueryService` and the
    sharded :class:`~repro.shard.service.ShardedQueryService` both delegate
    here so their ``ServiceStats`` mean the same thing.
    """

    __slots__ = (
        "_lock",
        "_latencies",
        "_n_queries",
        "_latency_sum",
        "_wall_seconds",
        "_disk_reads",
        "_busy_depth",
        "_busy_since",
        "_generation",
        "_sorted_gen",
        "_sorted_window",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._latencies: deque = deque(maxlen=LATENCY_WINDOW)
        self._n_queries = 0
        self._latency_sum = 0.0
        self._wall_seconds = 0.0
        self._disk_reads = 0
        self._busy_depth = 0
        self._busy_since = 0.0
        # Window generation counter + the sorted window it last produced:
        # stats() used to re-sort the full latency window on *every* poll;
        # now a poll between recordings reuses the memoized sort and only
        # a moved window pays O(n log n) again.
        self._generation = 0
        self._sorted_gen = -1
        self._sorted_window: List[float] = []

    def enter_busy(self) -> None:
        with self._lock:
            if self._busy_depth == 0:
                self._busy_since = time.perf_counter()
            self._busy_depth += 1

    def exit_busy(self) -> None:
        with self._lock:
            self._busy_depth -= 1
            if self._busy_depth == 0:
                self._wall_seconds += time.perf_counter() - self._busy_since

    def record(self, samples: Iterable[tuple]) -> None:
        """Absorb ``(latency_s, disk_reads)`` pairs, one per answered query."""
        with self._lock:
            for latency_s, disk_reads in samples:
                self._latencies.append(latency_s)
                self._n_queries += 1
                self._latency_sum += latency_s
                self._disk_reads += disk_reads
                self._generation += 1

    def reset(self) -> None:
        with self._lock:
            self._latencies.clear()
            self._n_queries = 0
            self._latency_sum = 0.0
            self._wall_seconds = 0.0
            self._disk_reads = 0
            self._generation += 1
            # Queries may be in flight while stats are being zeroed: the
            # open busy interval must restart *now*, or the first
            # exit_busy() after the reset would fold the entire pre-reset
            # busy stretch back into wall_seconds and deflate qps.
            if self._busy_depth > 0:
                self._busy_since = time.perf_counter()

    def fill(self, stats: ServiceStats) -> ServiceStats:
        """Write the timing/volume fields into *stats* and return it."""
        with self._lock:
            if self._sorted_gen != self._generation:
                self._sorted_window = sorted(self._latencies)
                self._sorted_gen = self._generation
            latencies = self._sorted_window
            stats.queries = self._n_queries
            stats.wall_seconds = self._wall_seconds
            stats.latency_mean_s = (
                self._latency_sum / self._n_queries if self._n_queries else 0.0
            )
            stats.disk_reads = self._disk_reads
        stats.latency_p50_s = nearest_rank(latencies, 0.50)
        stats.latency_p95_s = nearest_rank(latencies, 0.95)
        stats.latency_p99_s = nearest_rank(latencies, 0.99)
        return stats


class QueryService:
    """Batched, concurrent query serving over one shared engine.

    Parameters
    ----------
    engine:
        The (stateless) search engine; shared by every worker thread.
    max_workers:
        Default thread-pool width for :meth:`search_many`.
    result_cache_size:
        Capacity of the query-signature result cache: identical requests
        — same query points, ``k``, ``order_sensitive`` and ``explain`` —
        are answered from a thread-safe LRU without touching the engine.
        Entries are invalidated wholesale whenever
        :meth:`~repro.index.gat.index.GATIndex.insert_trajectory` bumps
        the index's version counter (inserts must still quiesce the
        service, as the index requires).  ``0`` disables the cache.
    obs:
        An optional :class:`~repro.obs.Observability` handle.  When set,
        every answered query feeds the metric registry, the engine's
        disks report read events, and — if the handle's tracer is enabled
        — each request produces a ``query`` span tree.  ``None`` (the
        default) keeps the serving path free of instrumentation.
    """

    #: Sentinel distinguishing "cached empty result" from "cache miss".
    _MISS = object()

    def __init__(
        self,
        engine: GATSearchEngine,
        max_workers: int = 8,
        result_cache_size: int = 1024,
        obs=None,
    ) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if result_cache_size < 0:
            raise ValueError("result_cache_size must be >= 0")
        self.engine = engine
        self.obs = obs
        if obs is not None:
            obs.bind_index(engine.index)
        self.max_workers = max_workers
        self._result_cache: Optional[LRUCache] = (
            LRUCache(result_cache_size) if result_cache_size > 0 else None
        )
        self._index_version = engine.index.version
        self._result_hits = 0
        self._result_lookups = 0
        # One pool for the service's lifetime — per-batch pool setup and
        # teardown would rival the query work for small batches.  Created
        # lazily so a sequential-only service never spawns threads.
        self._pool: Optional[ThreadPoolExecutor] = None
        self._lock = threading.Lock()
        self._metrics = ServingMetrics()
        self._hicl_base: CacheStats = engine.index.hicl.cache_stats()
        self._apl_base: Optional[CacheStats] = engine.apl_cache_stats()

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    _cache_key = staticmethod(request_cache_key)

    def _check_cache_version(self) -> None:
        """Drop every cached result when the index has been mutated since
        the last check (insert_trajectory bumps ``index.version``)."""
        version = self.engine.index.version
        if version != self._index_version:
            with self._lock:
                if version != self._index_version:
                    self._result_cache.clear()
                    self._index_version = version

    def _run_one(self, request: QueryRequest) -> QueryResponse:
        obs = self.obs
        span = None
        if obs is not None and obs.tracer.enabled:
            span = obs.tracer.start_span(
                "query",
                attrs={"k": request.k, "order_sensitive": request.order_sensitive},
            )
        cache = self._result_cache
        key = None
        looked_up_version = None
        if cache is not None:
            self._check_cache_version()
            looked_up_version = self._index_version
            key = self._cache_key(request)
            t0 = time.perf_counter()
            cached = cache.get(key, self._MISS)
            hit = cached is not self._MISS
            with self._lock:
                self._result_lookups += 1
                if hit:
                    self._result_hits += 1
            if obs is not None:
                obs.observe_cache(hit)
            if hit:
                if span is not None:
                    span.set_attr("cache_hit", True)
                    span.end()
                # A fresh list per response (callers may mutate), zeroed
                # counters (no engine work happened).
                return QueryResponse(
                    request=request,
                    results=list(cached),
                    stats=SearchStats(),
                    latency_s=time.perf_counter() - t0,
                )
        try:
            ctx = self.engine.execute(
                request.query,
                request.k,
                order_sensitive=request.order_sensitive,
                explain=request.explain,
                trace_span=span,
            )
        except BaseException as exc:
            if span is not None:
                span.set_attr("error", repr(exc))
                span.end()
            raise
        results = ctx.ranked if ctx.ranked is not None else []
        if cache is not None:
            # Version-guarded put: an insert that landed while this query
            # executed must not let pre-insert rankings be re-cached after
            # the invalidation sweep.  _check_cache_version clears + bumps
            # under the same lock, so the equality check linearises the
            # put against the sweep.
            with self._lock:
                if self._index_version == looked_up_version:
                    cache.put(key, tuple(results))
        if span is not None:
            span.set_attrs(
                latency_s=ctx.latency_s,
                disk_reads=ctx.stats.disk_reads,
                rounds=ctx.stats.rounds,
            )
            span.end()
        return QueryResponse(
            request=request,
            results=results,
            stats=ctx.stats,
            latency_s=ctx.latency_s,
        )

    def _enter_busy(self) -> None:
        self._metrics.enter_busy()

    def _exit_busy(self) -> None:
        self._metrics.exit_busy()

    def _record(self, responses: Iterable[QueryResponse]) -> None:
        responses = (
            responses if isinstance(responses, (list, tuple)) else list(responses)
        )
        self._metrics.record((r.latency_s, r.stats.disk_reads) for r in responses)
        obs = self.obs
        if obs is not None:
            for response in responses:
                obs.observe_response(response)

    _as_request = staticmethod(as_request)

    def search(
        self,
        query: Union[QueryRequest, Query],
        k: int = 10,
        order_sensitive: bool = False,
        explain: bool = False,
    ) -> QueryResponse:
        """Answer one query (a :class:`Query` plus options, or a prebuilt
        :class:`QueryRequest`)."""
        request = self._as_request(
            query, k=k, order_sensitive=order_sensitive, explain=explain
        )
        self._enter_busy()
        try:
            response = self._run_one(request)
        finally:
            self._exit_busy()
        self._record((response,))
        return response

    def search_many(
        self,
        queries: Sequence[Union[QueryRequest, Query]],
        k: int = 10,
        order_sensitive: bool = False,
        *,
        explain: bool = False,
        max_workers: Optional[int] = None,
    ) -> List[QueryResponse]:
        """Answer a batch concurrently; response ``i`` answers request ``i``.

        Bare :class:`Query` items take the shared ``k``/``order_sensitive``
        /``explain`` options; :class:`QueryRequest` items keep their own.
        (``explain`` was once silently dropped here even though the result
        cache keys on it — batched explain queries are first-class now.
        It is keyword-only, as is ``max_workers``: the insertion must not
        silently rebind an old positional worker-count argument.)
        """
        requests = [
            self._as_request(q, k=k, order_sensitive=order_sensitive, explain=explain)
            for q in queries
        ]
        workers = max_workers if max_workers is not None else self.max_workers
        self._enter_busy()
        try:
            if workers == 1 or len(requests) <= 1:
                responses = [self._run_one(r) for r in requests]
            elif workers == self.max_workers:
                responses = list(self._shared_pool().map(self._run_one, requests))
            else:
                # Non-default width: a throwaway pool keeps the shared one
                # honestly sized at max_workers.
                with ThreadPoolExecutor(max_workers=workers) as pool:
                    responses = list(pool.map(self._run_one, requests))
        finally:
            self._exit_busy()
        self._record(responses)
        return responses

    def _shared_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix="repro-query",
                )
            return self._pool

    def close(self) -> None:
        """Shut down the worker pool (idempotent; the service can be
        garbage-collected without calling this, but long-running hosts
        should close explicitly)."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    _delta_hit_rate = staticmethod(delta_hit_rate)

    def stats(self) -> ServiceStats:
        with self._lock:
            hicl_base, apl_base = self._hicl_base, self._apl_base
            result_hits = self._result_hits
            result_lookups = self._result_lookups
        stats = self._metrics.fill(ServiceStats())
        stats.hicl_cache_hit_rate = self._delta_hit_rate(
            self.engine.index.hicl.cache_stats(), hicl_base
        )
        stats.apl_cache_hit_rate = self._delta_hit_rate(
            self.engine.apl_cache_stats(), apl_base
        )
        stats.result_cache_hits = result_hits
        stats.result_cache_lookups = result_lookups
        return stats

    def reset_stats(self) -> None:
        """Zero the service's own accounting and re-baseline the shared
        cache counters (which live on the engine/index and keep running)."""
        self._metrics.reset()
        with self._lock:
            self._result_hits = 0
            self._result_lookups = 0
            self._hicl_base = self.engine.index.hicl.cache_stats()
            self._apl_base = self.engine.apl_cache_stats()
