"""Concurrent query serving on top of the stateless search engine.

The engine executes one query per :class:`~repro.core.context.ExecutionContext`
with no shared mutable state, so a single engine (and its index) can serve
many threads at once.  :class:`QueryService` packages that: single-query
``search``, thread-pooled ``search_many`` with deterministic result order,
and aggregate :class:`ServiceStats` (QPS, latency percentiles, cache hit
rates) for capacity planning.
"""

from repro.service.service import (
    QueryRequest,
    QueryResponse,
    QueryService,
    ServiceStats,
)

__all__ = ["QueryService", "QueryRequest", "QueryResponse", "ServiceStats"]
