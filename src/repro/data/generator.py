"""Synthetic Foursquare-like check-in generator.

The paper's evaluation uses crawled Foursquare check-ins for Los Angeles and
New York, which cannot be redistributed.  This generator synthesises data
with the structural properties the queries and indexes are sensitive to:

* **Spatial skew** — venues are drawn from a mixture of Gaussian hot-spots
  (downtowns, malls, campuses) plus a uniform background, so grid cells have
  wildly different densities, exactly the regime where hierarchical spatial
  pruning matters.
* **Activity skew** — each venue gets a topic-biased activity pool; the
  global activity frequency follows a Zipf law, so popular activities occur
  in most cells (weak activity pruning) while rare ones are highly selective
  (strong activity pruning) — the tension the GAT index exploits.
* **User mobility** — each user is anchored to a *home* location and
  checks in at venues drawn from a popularity- and distance-weighted pool
  around it, with occasional long jumps across the city.  Check-in
  histories therefore have a bounded spatial footprint (people's venues
  cluster around home/work), which is what keeps the set of trajectories
  near any query location a small fraction of the database — the property
  all spatial pruning in the paper relies on.
* **Venue popularity skew** — check-in volume per venue follows a power
  law (a handful of airports/malls/stadiums absorb a large share of all
  check-ins).  This is what gives every query location a dense pool of
  co-visiting trajectories, the regime the paper's small GAT retrieval
  counts imply.

All randomness flows through one ``random.Random(seed)``, so a given
configuration is fully reproducible.
"""

from __future__ import annotations

import bisect
import math
import random
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.data.checkin import CheckIn, group_checkins_into_trajectories
from repro.data.zipf import ZipfSampler
from repro.model.database import TrajectoryDatabase
from repro.model.vocabulary import Vocabulary


@dataclass(frozen=True, slots=True)
class GeneratorConfig:
    """Knobs of the synthetic city.

    Defaults produce a small, test-friendly dataset; the LA/NY presets in
    :mod:`repro.data.presets` scale these up and skew them to mirror the
    ratios of the paper's Table IV.
    """

    n_users: int = 500
    n_venues: int = 2000
    vocabulary_size: int = 800
    width_km: float = 60.0
    height_km: float = 50.0
    n_hotspots: int = 12
    hotspot_sigma_km: float = 2.5
    uniform_fraction: float = 0.15
    checkins_per_user_mean: float = 12.0
    checkins_per_user_min: int = 2
    activities_per_checkin_mean: float = 2.0
    empty_activity_fraction: float = 0.1
    zipf_exponent: float = 1.0
    common_fraction: float = 0.6
    common_pool_size: int = 25
    venue_topic_size: int = 25
    venue_topic_bias: float = 0.65
    venue_popularity_exponent: float = 0.8
    walk_locality_km: float = 5.0
    user_range_km: float = 4.0
    long_jump_probability: float = 0.08
    seed: int = 7

    def __post_init__(self) -> None:
        if self.n_users <= 0 or self.n_venues <= 0 or self.vocabulary_size <= 0:
            raise ValueError("users, venues and vocabulary must be positive")
        if not 0.0 <= self.uniform_fraction <= 1.0:
            raise ValueError("uniform_fraction must be in [0, 1]")
        if not 0.0 <= self.venue_topic_bias <= 1.0:
            raise ValueError("venue_topic_bias must be in [0, 1]")
        if not 0.0 <= self.common_fraction <= 1.0:
            raise ValueError("common_fraction must be in [0, 1]")
        if self.common_pool_size < 1:
            raise ValueError("common_pool_size must be >= 1")


@dataclass(frozen=True, slots=True)
class _Venue:
    venue_id: int
    x: float
    y: float
    topic: Tuple[int, ...]  # activity ranks this venue is biased towards
    weight: float  # popularity weight (power-law distributed)


class CheckInGenerator:
    """Generates check-ins and packages them into a
    :class:`~repro.model.database.TrajectoryDatabase`."""

    def __init__(self, config: GeneratorConfig) -> None:
        self.config = config
        self._rng = random.Random(config.seed)
        self._zipf = ZipfSampler(config.vocabulary_size, config.zipf_exponent)
        pool = min(config.common_pool_size, config.vocabulary_size)
        self._common = ZipfSampler(pool, 1.0)
        self._venues: List[_Venue] = []
        self._venue_grid: dict[Tuple[int, int], List[int]] = {}
        self._venue_cumulative: List[float] = []

    # ------------------------------------------------------------------
    # Public entry point
    # ------------------------------------------------------------------
    def generate(self, name: str = "synthetic") -> TrajectoryDatabase:
        """Generate the full database."""
        self._venues = self._make_venues()
        self._build_venue_grid()
        checkins = self._make_checkins()
        vocabulary = Vocabulary.from_activity_sets(c.activities for c in checkins)
        trajectories = group_checkins_into_trajectories(checkins, vocabulary.encode)
        return TrajectoryDatabase(trajectories, vocabulary, name=name)

    # ------------------------------------------------------------------
    # Venues
    # ------------------------------------------------------------------
    def _make_venues(self) -> List[_Venue]:
        cfg = self.config
        rng = self._rng
        hotspots = [
            (rng.uniform(0.0, cfg.width_km), rng.uniform(0.0, cfg.height_km))
            for _ in range(cfg.n_hotspots)
        ]
        # Hot-spot weights themselves are skewed: a city has one dominant
        # centre and several secondary ones.
        weights = [1.0 / (i + 1) for i in range(cfg.n_hotspots)]
        total_w = sum(weights)
        cumulative = []
        acc = 0.0
        for w in weights:
            acc += w / total_w
            cumulative.append(acc)

        venues: List[_Venue] = []
        for venue_id in range(cfg.n_venues):
            if rng.random() < cfg.uniform_fraction:
                x = rng.uniform(0.0, cfg.width_km)
                y = rng.uniform(0.0, cfg.height_km)
            else:
                r = rng.random()
                spot = 0
                while cumulative[spot] < r:
                    spot += 1
                cx, cy = hotspots[spot]
                x = min(max(rng.gauss(cx, cfg.hotspot_sigma_km), 0.0), cfg.width_km)
                y = min(max(rng.gauss(cy, cfg.hotspot_sigma_km), 0.0), cfg.height_km)
            topic = tuple(self._zipf.sample_distinct(rng, cfg.venue_topic_size))
            venues.append(_Venue(venue_id, x, y, topic, 0.0))
        # Power-law popularity: shuffle ranks so popularity is independent
        # of position, then weight 1/(rank+1)^gamma.
        ranks = list(range(cfg.n_venues))
        rng.shuffle(ranks)
        gamma = cfg.venue_popularity_exponent
        venues = [
            _Venue(v.venue_id, v.x, v.y, v.topic, 1.0 / ((ranks[i] + 1) ** gamma))
            for i, v in enumerate(venues)
        ]
        # Cumulative weights for O(log V) global popularity-weighted draws.
        total = sum(v.weight for v in venues)
        acc = 0.0
        self._venue_cumulative = []
        for v in venues:
            acc += v.weight / total
            self._venue_cumulative.append(acc)
        self._venue_cumulative[-1] = 1.0
        return venues

    def _popular_venue(self) -> _Venue:
        """Global popularity-weighted venue draw (long jumps, walk starts)."""
        idx = bisect.bisect_left(self._venue_cumulative, self._rng.random())
        return self._venues[idx]

    def _build_venue_grid(self) -> None:
        """Coarse bucket grid over venues so the random walk can find
        nearby venues without an O(V) scan per step."""
        cell = max(self.config.walk_locality_km, 1e-6)
        grid: dict[Tuple[int, int], List[int]] = {}
        for venue in self._venues:
            key = (int(venue.x / cell), int(venue.y / cell))
            grid.setdefault(key, []).append(venue.venue_id)
        self._venue_grid = grid

    def _venues_near(self, x: float, y: float) -> List[int]:
        """Venue IDs in the 3x3 bucket neighbourhood of ``(x, y)``."""
        cell = max(self.config.walk_locality_km, 1e-6)
        cx, cy = int(x / cell), int(y / cell)
        found: List[int] = []
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                found.extend(self._venue_grid.get((cx + dx, cy + dy), ()))
        return found

    # ------------------------------------------------------------------
    # Check-ins
    # ------------------------------------------------------------------
    def _make_checkins(self) -> List[CheckIn]:
        cfg = self.config
        rng = self._rng
        checkins: List[CheckIn] = []
        for user_id in range(cfg.n_users):
            n = max(
                cfg.checkins_per_user_min,
                int(rng.expovariate(1.0 / cfg.checkins_per_user_mean)) + 1,
            )
            home = self._popular_venue()
            pool, cumulative = self._home_pool(home)
            t = float(rng.randrange(0, 10_000))
            for _step in range(n):
                if not pool or rng.random() < cfg.long_jump_probability:
                    venue = self._popular_venue()
                else:
                    idx = bisect.bisect_left(cumulative, rng.random() * cumulative[-1])
                    venue = self._venues[pool[min(idx, len(pool) - 1)]]
                activities = self._activities_for(venue)
                checkins.append(
                    CheckIn(
                        user_id=user_id,
                        venue_id=venue.venue_id,
                        x=venue.x,
                        y=venue.y,
                        timestamp=t,
                        activities=activities,
                    )
                )
                t += rng.uniform(1.0, 100.0)
        return checkins

    def _home_pool(self, home: _Venue) -> Tuple[List[int], List[float]]:
        """The user's habitual venue pool: venues within ~2.5 ranges of
        home, weighted by popularity x Gaussian distance decay.

        Returns the pool plus *cumulative* weights so per-check-in draws
        are a single binary search.
        """
        sigma = max(self.config.user_range_km, 1e-6)
        cell = max(self.config.walk_locality_km, 1e-6)
        reach = int(2.5 * sigma / cell) + 1
        cx, cy = int(home.x / cell), int(home.y / cell)
        pool: List[int] = []
        cumulative: List[float] = []
        acc = 0.0
        two_sigma_sq = 2.0 * sigma * sigma
        cutoff_sq = (2.5 * sigma) ** 2
        for dx in range(-reach, reach + 1):
            for dy in range(-reach, reach + 1):
                for venue_id in self._venue_grid.get((cx + dx, cy + dy), ()):
                    venue = self._venues[venue_id]
                    d_sq = (venue.x - home.x) ** 2 + (venue.y - home.y) ** 2
                    if d_sq > cutoff_sq:
                        continue
                    pool.append(venue_id)
                    acc += venue.weight * math.exp(-d_sq / two_sigma_sq)
                    cumulative.append(acc)
        return pool, cumulative

    def _activities_for(self, venue: _Venue) -> frozenset[str]:
        """Activity names for one check-in at *venue*.

        With probability ``empty_activity_fraction`` the check-in has no
        tips at all (the paper allows empty activity sets).  Otherwise each
        activity draw is three-tiered:

        * with probability ``common_fraction`` a *common word* — tip text is
          dominated by near-universal words ("good", "place", "food"), and
          this tier is what makes realistic multi-activity queries have
          sizeable candidate sets, as the paper's IL timings imply;
        * otherwise, with probability ``venue_topic_bias``, a word from the
          venue's topic pool (spatial activity correlation);
        * otherwise a global Zipf draw (the long tail).
        """
        cfg = self.config
        rng = self._rng
        if rng.random() < cfg.empty_activity_fraction:
            return frozenset()
        k = max(1, int(rng.expovariate(1.0 / cfg.activities_per_checkin_mean)) + 1)
        ranks: set[int] = set()
        for _ in range(k):
            if rng.random() < cfg.common_fraction:
                ranks.add(self._common.sample(rng))
            elif venue.topic and rng.random() < cfg.venue_topic_bias:
                ranks.add(venue.topic[rng.randrange(len(venue.topic))])
            else:
                ranks.add(self._zipf.sample(rng))
        return frozenset(_activity_name(rank) for rank in ranks)


def _activity_name(rank: int) -> str:
    """Deterministic human-ish name for an activity rank."""
    return f"act{rank:05d}"


def generate_database(config: GeneratorConfig, name: str = "synthetic") -> TrajectoryDatabase:
    """One-call convenience wrapper around :class:`CheckInGenerator`."""
    return CheckInGenerator(config).generate(name=name)
