"""LA / NY dataset presets mirroring the ratios of the paper's Table IV.

Table IV of the paper:

==================  =========  =========
statistic           LA         NY
==================  =========  =========
#trajectory         31,557     49,027
#venue              215,614    206,416
#activity           3,164,124  2,056,785
#distinct activity  87,567     64,649
==================  =========  =========

The key *ratios* the evaluation commentary relies on:

* NY has ~1.55x more trajectories than LA;
* LA trajectories carry more activities on average
  (3.16 M / 31.6 K ~ 100 occurrences per trajectory vs NY's ~ 42) — the
  paper explains LA's slower queries by "trajectories of LA contain more
  activities averagely, resulting in more candidates matching the query
  activities";
* both cities have a venue pool several times larger than the trajectory
  count and a heavy-tailed activity vocabulary.

A pure-Python reproduction cannot profitably run 50 queries x 6 sweeps over
3 M activity occurrences, so presets take a ``scale`` in (0, 1]; the default
benchmark scale is 0.1 (documented per experiment in EXPERIMENTS.md).  The
preset keeps the LA-vs-NY *contrast* intact at every scale.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict

from repro.data.generator import CheckInGenerator, GeneratorConfig
from repro.model.database import TrajectoryDatabase

#: Baseline (scale=1.0) configurations.  Activity volume per trajectory is
#: the load-bearing contrast: LA ~ 2.4x NY's activities per check-in.
PRESETS: Dict[str, GeneratorConfig] = {
    "la": GeneratorConfig(
        n_users=31_557,
        n_venues=100_000,
        vocabulary_size=50_000,
        width_km=80.0,
        height_km=60.0,
        n_hotspots=18,
        hotspot_sigma_km=3.0,
        checkins_per_user_mean=30.0,
        activities_per_checkin_mean=3.4,
        empty_activity_fraction=0.05,
        zipf_exponent=1.1,
        common_fraction=0.7,
        common_pool_size=20,
        user_range_km=5.0,
        seed=101,
    ),
    "ny": GeneratorConfig(
        n_users=49_027,
        n_venues=95_000,
        vocabulary_size=40_000,
        width_km=55.0,
        height_km=70.0,
        n_hotspots=14,
        hotspot_sigma_km=2.0,
        checkins_per_user_mean=18.0,
        activities_per_checkin_mean=2.3,
        empty_activity_fraction=0.08,
        zipf_exponent=1.1,
        common_fraction=0.65,
        common_pool_size=20,
        user_range_km=4.0,
        seed=202,
    ),
}


def preset_config(name: str, scale: float = 1.0) -> GeneratorConfig:
    """The generator config for preset *name* at the given *scale*.

    Scaling shrinks counts (users, venues, vocabulary) proportionally and
    the city extent by ``sqrt(scale)``, so trajectory density per km² —
    the quantity spatial pruning lives on — is scale-invariant.  A scaled
    dataset behaves like a district of the full city, not like the full
    city gone sparse.
    """
    if name not in PRESETS:
        raise KeyError(f"unknown preset {name!r}; available: {sorted(PRESETS)}")
    if not 0.0 < scale <= 1.0:
        raise ValueError(f"scale must be in (0, 1], got {scale}")
    base = PRESETS[name]
    side = scale ** 0.5
    return replace(
        base,
        n_users=max(20, int(base.n_users * scale)),
        n_venues=max(50, int(base.n_venues * scale)),
        vocabulary_size=max(50, int(base.vocabulary_size * scale)),
        width_km=base.width_km * side,
        height_km=base.height_km * side,
        hotspot_sigma_km=base.hotspot_sigma_km * side,
        walk_locality_km=base.walk_locality_km * side,
        user_range_km=base.user_range_km * side,
        n_hotspots=max(3, int(base.n_hotspots * side)),
    )


def dataset_from_preset(name: str, scale: float = 1.0, seed: int | None = None) -> TrajectoryDatabase:
    """Generate the LA- or NY-like dataset at *scale*.

    Parameters
    ----------
    name:
        ``"la"`` or ``"ny"``.
    scale:
        Fraction of the paper's dataset size (1.0 reproduces Table IV
        magnitudes; benchmarks default to much smaller scales).
    seed:
        Override the preset's seed (e.g. to generate disjoint replicas).
    """
    config = preset_config(name, scale)
    if seed is not None:
        config = replace(config, seed=seed)
    return CheckInGenerator(config).generate(name=f"{name}@{scale:g}")
