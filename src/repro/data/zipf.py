"""Zipf-distributed sampling over a finite vocabulary.

Activity/tag frequencies in check-in services follow a power law: a few
activities ("food", "coffee") dominate while the long tail is huge (Table IV
reports 87,567 distinct activities in LA over 3.1 M occurrences).  The
generator uses this sampler to reproduce that skew.

Implemented with an explicit cumulative table + binary search so sampling is
O(log V) and needs nothing beyond ``random.Random``.
"""

from __future__ import annotations

import bisect
import random
from typing import List, Sequence


class ZipfSampler:
    """Sample ranks ``0 .. n-1`` with probability proportional to
    ``1 / (rank + 1)^exponent``.

    Rank 0 is the most frequent item.  The default exponent of 1.0 matches
    the classic Zipf law observed for text keywords.
    """

    __slots__ = ("n", "exponent", "_cumulative")

    def __init__(self, n: int, exponent: float = 1.0) -> None:
        if n <= 0:
            raise ValueError("vocabulary size must be positive")
        if exponent < 0:
            raise ValueError("exponent must be non-negative")
        self.n = n
        self.exponent = exponent
        weights = [1.0 / ((rank + 1) ** exponent) for rank in range(n)]
        total = sum(weights)
        cumulative: List[float] = []
        acc = 0.0
        for w in weights:
            acc += w / total
            cumulative.append(acc)
        cumulative[-1] = 1.0  # guard against floating drift
        self._cumulative = cumulative

    def sample(self, rng: random.Random) -> int:
        """Draw one rank."""
        return bisect.bisect_left(self._cumulative, rng.random())

    def sample_many(self, rng: random.Random, k: int) -> List[int]:
        """Draw *k* ranks independently (duplicates possible)."""
        cumulative = self._cumulative
        return [bisect.bisect_left(cumulative, rng.random()) for _ in range(k)]

    def sample_distinct(self, rng: random.Random, k: int, max_tries: int = 64) -> List[int]:
        """Draw *k* distinct ranks, falling back to low ranks if rejection
        sampling stalls (can only happen for k close to n)."""
        if k >= self.n:
            return list(range(self.n))
        picked: set[int] = set()
        tries = 0
        while len(picked) < k and tries < max_tries * k:
            picked.add(self.sample(rng))
            tries += 1
        rank = 0
        while len(picked) < k:
            picked.add(rank)
            rank += 1
        return sorted(picked)

    def pmf(self) -> Sequence[float]:
        """Probability of each rank (mostly for tests)."""
        probs = []
        prev = 0.0
        for c in self._cumulative:
            probs.append(c - prev)
            prev = c
        return probs
