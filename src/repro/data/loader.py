"""Persistence: save/load a trajectory database as JSON-lines.

Format (one JSON object per line):

* line 1 — header: ``{"type": "header", "name": ..., "vocabulary": [names in
  ID order]}``
* following lines — one per trajectory: ``{"type": "trajectory", "id": ...,
  "points": [[x, y, [activity ids], timestamp|null, venue|null], ...]}``

JSON-lines keeps files streamable and diff-able; activity IDs (not names)
are stored per point so files stay compact, with the vocabulary in the
header making them self-contained.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Union

from repro.model.database import TrajectoryDatabase
from repro.model.point import TrajectoryPoint
from repro.model.trajectory import ActivityTrajectory
from repro.model.vocabulary import Vocabulary

PathLike = Union[str, Path]


def save_database_jsonl(db: TrajectoryDatabase, path: PathLike) -> None:
    """Write *db* to *path* in the JSON-lines format described above."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        header = {
            "type": "header",
            "name": db.name,
            "vocabulary": list(db.vocabulary.names()),
        }
        fh.write(json.dumps(header) + "\n")
        for tr in db:
            record = {
                "type": "trajectory",
                "id": tr.trajectory_id,
                "points": [
                    [
                        p.x,
                        p.y,
                        sorted(p.activities),
                        p.timestamp,
                        p.venue_id,
                    ]
                    for p in tr
                ],
            }
            fh.write(json.dumps(record) + "\n")


def load_database_jsonl(path: PathLike) -> TrajectoryDatabase:
    """Read a database previously written by :func:`save_database_jsonl`.

    Raises
    ------
    ValueError
        If the file is empty, lacks a header, or contains malformed rows.
    """
    path = Path(path)
    trajectories: List[ActivityTrajectory] = []
    vocabulary: Vocabulary | None = None
    name = "dataset"
    with path.open("r", encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.get("type")
            if kind == "header":
                vocabulary = Vocabulary(record["vocabulary"])
                name = record.get("name", name)
            elif kind == "trajectory":
                if vocabulary is None:
                    raise ValueError(f"{path}: trajectory before header (line {line_no})")
                points = [
                    TrajectoryPoint(
                        x,
                        y,
                        frozenset(activity_ids),
                        timestamp=timestamp,
                        venue_id=venue_id,
                    )
                    for x, y, activity_ids, timestamp, venue_id in record["points"]
                ]
                trajectories.append(ActivityTrajectory(record["id"], points))
            else:
                raise ValueError(f"{path}: unknown record type {kind!r} (line {line_no})")
    if vocabulary is None:
        raise ValueError(f"{path}: missing header line")
    if not trajectories:
        raise ValueError(f"{path}: no trajectories")
    return TrajectoryDatabase(trajectories, vocabulary, name=name)
