"""Dataset substrate: synthetic Foursquare-like check-in data.

The paper evaluates on crawled Foursquare check-ins for Los Angeles and New
York (Table IV).  Those crawls are not redistributable, so this package
synthesises the closest equivalent (see DESIGN.md, "Substitutions"):

* venues are drawn from a mixture of Gaussian hot-spots over a city-sized
  bounding box (check-in venues are heavily clustered downtown);
* each user's trajectory is a random walk over nearby venues, ordered
  chronologically like the paper's per-user check-in sequences;
* every check-in carries activities (tip keywords) drawn from a Zipf
  distribution over a large vocabulary — check-in tags are famously
  Zipf-skewed — with venue-topic bias so co-located activities correlate.

:mod:`repro.data.presets` provides ``la`` and ``ny`` presets whose
statistics mirror the *ratios* of Table IV at a configurable scale.
"""

from repro.data.checkin import CheckIn, group_checkins_into_trajectories
from repro.data.generator import CheckInGenerator, GeneratorConfig
from repro.data.loader import load_database_jsonl, save_database_jsonl
from repro.data.presets import dataset_from_preset, PRESETS
from repro.data.zipf import ZipfSampler

__all__ = [
    "CheckIn",
    "group_checkins_into_trajectories",
    "CheckInGenerator",
    "GeneratorConfig",
    "load_database_jsonl",
    "save_database_jsonl",
    "dataset_from_preset",
    "PRESETS",
    "ZipfSampler",
]
