"""Planar geometric primitives shared by every spatial index in the library.

The paper's datasets are metropolitan-scale (Los Angeles / New York), so all
query processing happens in a locally-projected planar coordinate system
measured in kilometres.  :mod:`repro.model.distance` provides the projection
from latitude/longitude; this module only deals with already-projected
``(x, y)`` pairs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, Tuple

Coord = Tuple[float, float]


def euclidean(a: Coord, b: Coord) -> float:
    """Straight-line distance between two planar points."""
    dx = a[0] - b[0]
    dy = a[1] - b[1]
    return math.hypot(dx, dy)


@dataclass(frozen=True, slots=True)
class Rect:
    """An axis-aligned rectangle ``[min_x, max_x] x [min_y, max_y]``.

    Instances are immutable; all combinators return new rectangles.  A
    degenerate rectangle (a point) is valid and frequently used for leaf
    entries of the R-tree.
    """

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise ValueError(
                f"malformed rectangle: ({self.min_x}, {self.min_y}, "
                f"{self.max_x}, {self.max_y})"
            )

    @classmethod
    def from_point(cls, point: Coord) -> "Rect":
        """Degenerate rectangle covering a single point."""
        x, y = point
        return cls(x, y, x, y)

    @classmethod
    def from_points(cls, points: Iterable[Coord]) -> "Rect":
        """Tightest rectangle enclosing *points* (must be non-empty)."""
        it = iter(points)
        try:
            x, y = next(it)
        except StopIteration:
            raise ValueError("cannot build a rectangle from zero points") from None
        min_x = max_x = x
        min_y = max_y = y
        for x, y in it:
            if x < min_x:
                min_x = x
            elif x > max_x:
                max_x = x
            if y < min_y:
                min_y = y
            elif y > max_y:
                max_y = y
        return cls(min_x, min_y, max_x, max_y)

    @property
    def width(self) -> float:
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        return self.max_y - self.min_y

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def margin(self) -> float:
        """Half-perimeter, used by some split heuristics."""
        return self.width + self.height

    @property
    def center(self) -> Coord:
        return ((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    def contains_point(self, point: Coord) -> bool:
        x, y = point
        return self.min_x <= x <= self.max_x and self.min_y <= y <= self.max_y

    def contains_rect(self, other: "Rect") -> bool:
        return (
            self.min_x <= other.min_x
            and self.min_y <= other.min_y
            and self.max_x >= other.max_x
            and self.max_y >= other.max_y
        )

    def intersects(self, other: "Rect") -> bool:
        return not (
            other.min_x > self.max_x
            or other.max_x < self.min_x
            or other.min_y > self.max_y
            or other.max_y < self.min_y
        )

    def union(self, other: "Rect") -> "Rect":
        """Smallest rectangle enclosing both."""
        return Rect(
            min(self.min_x, other.min_x),
            min(self.min_y, other.min_y),
            max(self.max_x, other.max_x),
            max(self.max_y, other.max_y),
        )

    def extend_point(self, point: Coord) -> "Rect":
        """Smallest rectangle enclosing ``self`` and *point*."""
        x, y = point
        return Rect(
            min(self.min_x, x),
            min(self.min_y, y),
            max(self.max_x, x),
            max(self.max_y, y),
        )

    def enlargement(self, other: "Rect") -> float:
        """Area growth incurred by absorbing *other* (R-tree ChooseLeaf)."""
        return self.union(other).area - self.area

    def min_dist(self, point: Coord) -> float:
        """Minimum Euclidean distance from *point* to this rectangle.

        Zero when the point lies inside the rectangle.  This is the classic
        ``MINDIST`` of Roussopoulos et al. used for best-first traversal of
        both the R-tree and the GAT cell hierarchy.
        """
        x, y = point
        dx = 0.0
        if x < self.min_x:
            dx = self.min_x - x
        elif x > self.max_x:
            dx = x - self.max_x
        dy = 0.0
        if y < self.min_y:
            dy = self.min_y - y
        elif y > self.max_y:
            dy = y - self.max_y
        if dx == 0.0:
            return dy
        if dy == 0.0:
            return dx
        return math.hypot(dx, dy)

    def corners(self) -> Iterator[Coord]:
        yield (self.min_x, self.min_y)
        yield (self.min_x, self.max_y)
        yield (self.max_x, self.min_y)
        yield (self.max_x, self.max_y)


def min_dist_point_rect(point: Coord, rect: Rect) -> float:
    """Function form of :meth:`Rect.min_dist` (handy for ``map``/partial)."""
    return rect.min_dist(point)


@dataclass(frozen=True, slots=True)
class BoundingBox:
    """The universe rectangle that a grid partitions, with helpers to
    normalise coordinates into ``[0, 1)^2``.

    Unlike :class:`Rect` this type knows that it is *the* space: it clamps
    slightly-out-of-range points (floating error at the far edge) instead of
    rejecting them.
    """

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.min_x >= self.max_x or self.min_y >= self.max_y:
            raise ValueError("bounding box must have positive extent")

    @classmethod
    def from_points(cls, points: Sequence[Coord], pad: float = 1e-9) -> "BoundingBox":
        """Enclosing box of *points* with a tiny pad so no point sits exactly
        on the open upper edge."""
        rect = Rect.from_points(points)
        pad_x = max(pad, rect.width * 1e-6)
        pad_y = max(pad, rect.height * 1e-6)
        return cls(
            rect.min_x - pad_x,
            rect.min_y - pad_y,
            rect.max_x + pad_x,
            rect.max_y + pad_y,
        )

    @property
    def width(self) -> float:
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        return self.max_y - self.min_y

    def as_rect(self) -> Rect:
        return Rect(self.min_x, self.min_y, self.max_x, self.max_y)

    def normalise(self, point: Coord) -> Coord:
        """Map *point* into ``[0, 1)^2``, clamping to the box."""
        nx = (point[0] - self.min_x) / self.width
        ny = (point[1] - self.min_y) / self.height
        eps = 1e-12
        nx = min(max(nx, 0.0), 1.0 - eps)
        ny = min(max(ny, 0.0), 1.0 - eps)
        return (nx, ny)
