"""Geometric substrate: points, rectangles, space-filling curves, quad-grids.

Everything in this package is pure geometry with no knowledge of
trajectories or activities.  The GAT index (:mod:`repro.index.gat`) builds
its hierarchy of cells on :class:`~repro.geometry.grid.HierarchicalGrid`,
and the R-tree / IR-tree baselines use the rectangle arithmetic from
:mod:`repro.geometry.primitives`.
"""

from repro.geometry.primitives import BoundingBox, Rect, min_dist_point_rect
from repro.geometry.zcurve import z_decode, z_encode
from repro.geometry.grid import Cell, GridLevel, HierarchicalGrid

__all__ = [
    "BoundingBox",
    "Rect",
    "min_dist_point_rect",
    "z_encode",
    "z_decode",
    "Cell",
    "GridLevel",
    "HierarchicalGrid",
]
