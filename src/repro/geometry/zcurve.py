"""Z-order (Morton) space-filling curve.

Section IV of the paper assigns every grid cell "a unique numerical ID by
using space filling curve, which maps multidimensional cells to 1-dimensional
integer domain".  We use the Morton curve: the ID of cell ``(cx, cy)`` at
grid depth ``d`` interleaves the bits of the two coordinates.  The curve is a
bijection between ``[0, 2^d)^2`` and ``[0, 4^d)``, and it preserves the
quad-tree parent/child relation: the parent of a cell at depth ``d`` is
simply ``z >> 2`` at depth ``d - 1``, which is exactly the aggregation step
used when building the hierarchical inverted cell list.
"""

from __future__ import annotations

from typing import Tuple

_MAX_DEPTH = 16  # 2^16 x 2^16 cells is far beyond anything the paper uses.


def _part1by1(n: int) -> int:
    """Spread the low 16 bits of *n* so a zero sits between each bit."""
    n &= 0x0000FFFF
    n = (n | (n << 8)) & 0x00FF00FF
    n = (n | (n << 4)) & 0x0F0F0F0F
    n = (n | (n << 2)) & 0x33333333
    n = (n | (n << 1)) & 0x55555555
    return n


def _compact1by1(n: int) -> int:
    """Inverse of :func:`_part1by1`: gather every other bit."""
    n &= 0x55555555
    n = (n | (n >> 1)) & 0x33333333
    n = (n | (n >> 2)) & 0x0F0F0F0F
    n = (n | (n >> 4)) & 0x00FF00FF
    n = (n | (n >> 8)) & 0x0000FFFF
    return n


def z_encode(cx: int, cy: int, depth: int) -> int:
    """Morton code of cell column *cx*, row *cy* at grid *depth*.

    ``depth`` is the ``d`` of the paper's d-Grid: the space is split into
    ``2^d x 2^d`` cells, so both coordinates must be in ``[0, 2^d)``.
    """
    if not 0 < depth <= _MAX_DEPTH:
        raise ValueError(f"depth must be in (0, {_MAX_DEPTH}], got {depth}")
    side = 1 << depth
    if not (0 <= cx < side and 0 <= cy < side):
        raise ValueError(f"cell ({cx}, {cy}) outside a {side}x{side} grid")
    return (_part1by1(cy) << 1) | _part1by1(cx)


def z_decode(z: int, depth: int) -> Tuple[int, int]:
    """Invert :func:`z_encode`: recover ``(cx, cy)`` from a Morton code."""
    if not 0 < depth <= _MAX_DEPTH:
        raise ValueError(f"depth must be in (0, {_MAX_DEPTH}], got {depth}")
    if not 0 <= z < (1 << (2 * depth)):
        raise ValueError(f"code {z} outside a depth-{depth} grid")
    return _compact1by1(z), _compact1by1(z >> 1)


def z_parent(z: int) -> int:
    """Morton code of the parent cell one level up the quad hierarchy."""
    return z >> 2


def z_children(z: int) -> Tuple[int, int, int, int]:
    """Morton codes of the four child cells one level down."""
    base = z << 2
    return (base, base + 1, base + 2, base + 3)
