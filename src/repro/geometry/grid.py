"""Hierarchical quad-grid: the spatial skeleton of the GAT index.

Section IV: "we construct a d-Grid by dividing the entire spatial region into
``2^d x 2^d`` quad cells.  Then we further build (d-1)-Grid, (d-2)-Grid, ...,
1-Grid, which will form a hierarchy of cells."

A :class:`HierarchicalGrid` owns the bounding box of the dataset and exposes
pure-geometry operations: locate the leaf cell of a point, compute the
rectangle and ``MINDIST`` of any cell at any level, and walk parent/child
links via the Morton code arithmetic from :mod:`repro.geometry.zcurve`.
Activity bookkeeping (which activities/trajectories live in a cell) is the
index's job, not the grid's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.geometry.primitives import BoundingBox, Coord, Rect
from repro.geometry.zcurve import z_children, z_decode, z_encode, z_parent


@dataclass(frozen=True, slots=True)
class Cell:
    """A cell identified by its grid *level* and Morton *code*.

    ``level`` counts from 1 (the 1-Grid, ``2x2`` cells) to the grid depth
    ``d`` (the leaf d-Grid).  Together ``(level, code)`` identify a cell
    uniquely across the hierarchy.
    """

    level: int
    code: int

    def parent(self) -> "Cell":
        if self.level <= 1:
            raise ValueError("a level-1 cell has no parent")
        return Cell(self.level - 1, z_parent(self.code))

    def children(self) -> Tuple["Cell", "Cell", "Cell", "Cell"]:
        lvl = self.level + 1
        return tuple(Cell(lvl, c) for c in z_children(self.code))  # type: ignore[return-value]


class GridLevel:
    """Geometry of one level of the hierarchy: a ``2^level x 2^level`` grid."""

    __slots__ = ("level", "side", "_box", "_cell_w", "_cell_h")

    def __init__(self, box: BoundingBox, level: int) -> None:
        self.level = level
        self.side = 1 << level
        self._box = box
        self._cell_w = box.width / self.side
        self._cell_h = box.height / self.side

    @property
    def n_cells(self) -> int:
        return self.side * self.side

    def locate(self, point: Coord) -> int:
        """Morton code of the cell containing *point* (clamped to the box)."""
        nx, ny = self._box.normalise(point)
        cx = int(nx * self.side)
        cy = int(ny * self.side)
        return z_encode(cx, cy, self.level)

    def rect(self, code: int) -> Rect:
        """Rectangle covered by the cell with Morton code *code*."""
        cx, cy = z_decode(code, self.level)
        min_x = self._box.min_x + cx * self._cell_w
        min_y = self._box.min_y + cy * self._cell_h
        return Rect(min_x, min_y, min_x + self._cell_w, min_y + self._cell_h)

    def min_dist(self, point: Coord, code: int) -> float:
        """``MINDIST`` from *point* to the cell *code* at this level."""
        return self.rect(code).min_dist(point)

    def iter_codes(self) -> Iterator[int]:
        return iter(range(self.n_cells))


class HierarchicalGrid:
    """The full 1-Grid ... d-Grid pyramid over a bounding box.

    Parameters
    ----------
    box:
        The universe rectangle (dataset bounding box).
    depth:
        The ``d`` of the paper's d-Grid; the leaf level has ``2^d x 2^d``
        cells.  The paper's default is ``d = 8`` (256 x 256 cells).
    """

    def __init__(self, box: BoundingBox, depth: int) -> None:
        if depth < 1:
            raise ValueError(f"grid depth must be >= 1, got {depth}")
        self.box = box
        self.depth = depth
        self.levels: List[GridLevel] = [GridLevel(box, lvl) for lvl in range(1, depth + 1)]

    def level(self, lvl: int) -> GridLevel:
        """The :class:`GridLevel` for level *lvl* (1-based)."""
        if not 1 <= lvl <= self.depth:
            raise ValueError(f"level {lvl} outside [1, {self.depth}]")
        return self.levels[lvl - 1]

    @property
    def leaf_level(self) -> GridLevel:
        return self.levels[-1]

    def locate_leaf(self, point: Coord) -> Cell:
        """Leaf cell containing *point*."""
        return Cell(self.depth, self.leaf_level.locate(point))

    def locate(self, point: Coord, lvl: int) -> Cell:
        """Cell containing *point* at level *lvl*."""
        return Cell(lvl, self.level(lvl).locate(point))

    def rect(self, cell: Cell) -> Rect:
        return self.level(cell.level).rect(cell.code)

    def min_dist(self, point: Coord, cell: Cell) -> float:
        return self.level(cell.level).min_dist(point, cell.code)

    def ancestors(self, cell: Cell) -> Iterator[Cell]:
        """Cells strictly above *cell*, from its parent up to level 1."""
        while cell.level > 1:
            cell = cell.parent()
            yield cell

    def cell_of_leaf_at(self, leaf_code: int, lvl: int) -> Cell:
        """Ancestor at level *lvl* of the leaf cell *leaf_code*.

        Works by shifting the Morton code: each level up drops two bits.
        """
        if not 1 <= lvl <= self.depth:
            raise ValueError(f"level {lvl} outside [1, {self.depth}]")
        return Cell(lvl, leaf_code >> (2 * (self.depth - lvl)))
