"""The public API surface: everything the README advertises must import
and every ``__all__`` name must resolve."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.geometry",
    "repro.model",
    "repro.storage",
    "repro.data",
    "repro.index",
    "repro.index.gat",
    "repro.core",
    "repro.baselines",
    "repro.bench",
    "repro.service",
    "repro.shard",
    "repro.faults",
    "repro.obs",
    "repro.serving",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_package_imports(name):
    module = importlib.import_module(name)
    assert module is not None


@pytest.mark.parametrize("name", PACKAGES)
def test_all_names_resolve(name):
    module = importlib.import_module(name)
    for symbol in getattr(module, "__all__", []):
        assert hasattr(module, symbol), f"{name}.{symbol} in __all__ but missing"


def test_version():
    import repro

    assert repro.__version__


def test_readme_quickstart_runs():
    """The exact code block from the README."""
    from repro import TrajectoryDatabase, GATIndex, GATConfig, GATSearchEngine, Query

    db = TrajectoryDatabase.from_raw(
        [
            [(1.0, 1.0, ["brunch", "coffee"]), (2.0, 1.8, ["jazz"])],
            [(1.1, 0.9, ["brunch"]), (2.1, 1.9, ["cocktails", "jazz"])],
        ]
    )
    engine = GATSearchEngine(GATIndex.build(db, GATConfig(depth=4, memory_levels=3)))
    query = Query.from_named(
        db.vocabulary,
        [
            (1.0, 1.0, ["brunch"]),
            (2.0, 1.9, ["jazz"]),
        ],
    )
    results = engine.atsq(query, k=2, explain=True)
    assert len(results) == 2
    assert results[0].distance <= results[1].distance
    assert all(r.matches is not None for r in results)


def test_docstring_quickstart_runs():
    """The doctest-style example in repro/__init__.py."""
    from repro import GATIndex, GATSearchEngine, Query, dataset_from_preset

    db = dataset_from_preset("la", scale=0.002)
    engine = GATSearchEngine(GATIndex.build(db))
    some_tr = db.trajectories[0]
    q = Query.from_named(
        db.vocabulary,
        [
            (
                some_tr[0].x,
                some_tr[0].y,
                [db.vocabulary.name_of(next(iter(some_tr.activity_union)))],
            ),
        ],
    )
    results = engine.atsq(q, k=3)
    assert results  # the anchor itself must match


def test_docstring_batched_quickstart_runs():
    """The batched-serving example in repro/__init__.py."""
    from repro import (
        GATConfig,
        GATIndex,
        GATSearchEngine,
        Query,
        QueryService,
        TrajectoryDatabase,
    )

    db = TrajectoryDatabase.from_raw(
        [
            [(1.0, 1.0, ["brunch", "coffee"]), (2.0, 1.8, ["jazz"])],
            [(1.1, 0.9, ["brunch"]), (2.1, 1.9, ["cocktails", "jazz"])],
        ]
    )
    engine = GATSearchEngine(GATIndex.build(db, GATConfig(depth=4, memory_levels=3)))
    q = Query.from_named(db.vocabulary, [(1.0, 1.0, ["brunch"])])
    service = QueryService(engine, max_workers=4)
    responses = service.search_many([q, q, q], k=2)
    assert len(responses) == 3
    first = [(r.trajectory_id, r.distance) for r in responses[0].results]
    assert all(
        [(r.trajectory_id, r.distance) for r in resp.results] == first
        for resp in responses
    )
    assert service.stats().queries == 3
