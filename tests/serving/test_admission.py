"""Admission control decision logic, on a fake monotonic clock."""

import pytest

from repro.serving.admission import (
    AdmissionController,
    AdmissionError,
    ExpiredError,
    RejectedError,
    ServiceTimeEWMA,
    ServingConfig,
    ShedError,
)


class FakeClock:
    def __init__(self, t: float = 100.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def controller(clock, **kwargs) -> AdmissionController:
    return AdmissionController(ServingConfig(**kwargs), clock=clock)


class TestBackpressure:
    def test_rejects_when_queue_full(self):
        clock = FakeClock()
        ctrl = controller(clock, queue_capacity=2, max_concurrency=1)
        ctrl.admit()
        ctrl.admit()
        with pytest.raises(RejectedError) as err:
            ctrl.admit()
        assert err.value.queue_depth == 2
        assert err.value.capacity == 2
        assert err.value.outcome == "rejected"

    def test_dispatch_frees_a_slot(self):
        clock = FakeClock()
        ctrl = controller(clock, queue_capacity=1, max_concurrency=1)
        ticket = ctrl.admit()
        with pytest.raises(RejectedError):
            ctrl.admit()
        ctrl.dispatch(ticket)
        ctrl.admit()  # does not raise

    def test_abandon_frees_a_slot(self):
        clock = FakeClock()
        ctrl = controller(clock, queue_capacity=1, max_concurrency=1)
        ticket = ctrl.admit()
        ctrl.abandon(ticket)
        assert ctrl.queue_depth == 0
        ctrl.admit()  # does not raise


class TestShedding:
    def test_sheds_when_estimated_wait_exceeds_budget(self):
        clock = FakeClock()
        ctrl = controller(clock, queue_capacity=64, max_concurrency=2)
        ctrl.ewma.prime(0.1)
        # 4 queued over 2 permits + our own service: (4/2 + 1) * 0.1 = 0.3.
        for _ in range(4):
            ctrl.admit(deadline_s=10.0)
        assert ctrl.estimated_wait_s() == pytest.approx(0.3)
        with pytest.raises(ShedError) as err:
            ctrl.admit(deadline_s=0.25)
        assert err.value.stage == "admission"
        assert err.value.estimated_wait_s == pytest.approx(0.3)
        assert err.value.remaining_s == pytest.approx(0.25)
        assert err.value.outcome == "shed"
        # A patient caller is still admitted.
        ctrl.admit(deadline_s=0.35)

    def test_never_sheds_blind(self):
        """No EWMA sample yet -> estimate is zero -> nothing sheds."""
        clock = FakeClock()
        ctrl = controller(clock, queue_capacity=64, max_concurrency=1)
        for _ in range(10):
            ctrl.admit(deadline_s=1e-6)

    def test_shed_disabled(self):
        clock = FakeClock()
        ctrl = controller(clock, shed=False, max_concurrency=1)
        ctrl.ewma.prime(10.0)
        ctrl.admit(deadline_s=0.001)  # does not raise

    def test_headroom_sheds_earlier(self):
        clock = FakeClock()
        ctrl = controller(clock, max_concurrency=1, shed_headroom=2.0)
        ctrl.ewma.prime(0.1)
        # estimate 0.1, x2 headroom = 0.2 > 0.15 budget -> shed.
        with pytest.raises(ShedError):
            ctrl.admit(deadline_s=0.15)
        ctrl.admit(deadline_s=0.25)

    def test_no_deadline_no_shed(self):
        clock = FakeClock()
        ctrl = controller(clock, max_concurrency=1)
        ctrl.ewma.prime(100.0)
        ctrl.admit(deadline_s=None)  # unbounded patience

    def test_default_deadline_applies(self):
        clock = FakeClock()
        ctrl = controller(clock, max_concurrency=1, default_deadline_s=0.05)
        ctrl.ewma.prime(0.1)
        with pytest.raises(ShedError):
            ctrl.admit()


class TestDispatch:
    def test_remaining_budget_shrinks_with_queue_wait(self):
        clock = FakeClock()
        ctrl = controller(clock)
        ticket = ctrl.admit(deadline_s=1.0)
        clock.advance(0.4)
        remaining = ctrl.dispatch(ticket)
        assert remaining == pytest.approx(0.6)
        assert ctrl.queue_depth == 0

    def test_sheds_at_dispatch_when_budget_gone(self):
        clock = FakeClock()
        ctrl = controller(clock)
        ticket = ctrl.admit(deadline_s=0.2)
        clock.advance(0.5)
        with pytest.raises(ShedError) as err:
            ctrl.dispatch(ticket)
        assert err.value.stage == "dispatch"
        # The queue slot is released even on the shed path.
        assert ctrl.queue_depth == 0

    def test_unbounded_ticket_dispatches_none(self):
        clock = FakeClock()
        ctrl = controller(clock)
        ticket = ctrl.admit(deadline_s=None)
        clock.advance(99.0)
        assert ctrl.dispatch(ticket) is None

    def test_no_shed_dispatch_keeps_budget_floor(self):
        """With shedding off an exhausted budget still reaches the
        backend as a small positive deadline, not zero/negative."""
        clock = FakeClock()
        ctrl = controller(clock, shed=False)
        ticket = ctrl.admit(deadline_s=0.1)
        clock.advance(1.0)
        remaining = ctrl.dispatch(ticket)
        assert remaining is not None and remaining > 0


class TestEWMA:
    def test_first_sample_initialises(self):
        ewma = ServiceTimeEWMA(alpha=0.5)
        assert ewma.value is None
        ewma.record(0.2)
        assert ewma.value == pytest.approx(0.2)

    def test_exponential_smoothing(self):
        ewma = ServiceTimeEWMA(alpha=0.5)
        ewma.record(0.2)
        ewma.record(0.4)
        assert ewma.value == pytest.approx(0.3)
        ewma.record(0.3)
        assert ewma.value == pytest.approx(0.3)

    def test_prime_overrides(self):
        ewma = ServiceTimeEWMA(alpha=0.1)
        ewma.record(1.0)
        ewma.prime(0.05)
        assert ewma.value == pytest.approx(0.05)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"queue_capacity": 0},
            {"max_concurrency": 0},
            {"default_deadline_s": 0.0},
            {"ewma_alpha": 0.0},
            {"ewma_alpha": 1.5},
            {"shed_headroom": 0.0},
        ],
    )
    def test_bad_knobs_raise(self, kwargs):
        with pytest.raises(ValueError):
            ServingConfig(**kwargs)


def test_error_taxonomy():
    """Every refusal is an AdmissionError with a stable outcome label —
    the buckets the metrics registry counts under."""
    assert issubclass(RejectedError, AdmissionError)
    assert issubclass(ShedError, AdmissionError)
    assert issubclass(ExpiredError, AdmissionError)
    assert RejectedError(1, 1).outcome == "rejected"
    assert ShedError(1.0, 0.5).outcome == "shed"
    err = ExpiredError(0.3, 0.2, response="late-answer", reason="late")
    assert err.outcome == "expired"
    assert err.response == "late-answer"
