"""ServingFrontend behaviour: admission flow, deadline propagation,
expiry, parity with the closed-loop path, metrics."""

import asyncio
import time

import pytest

from repro.core.context import SearchStats
from repro.core.engine import GATSearchEngine
from repro.index.gat.index import GATIndex
from repro.obs import Observability
from repro.serving import (
    ExpiredError,
    RejectedError,
    ServingConfig,
    ServingFrontend,
    ShedError,
)
from repro.service import QueryResponse, QueryService
from repro.service.service import QueryRequest, as_request


class StubService:
    """A backend that answers after a fixed delay, recording requests."""

    def __init__(self, service_s=0.0, shards_answered=1, shards_total=1, error=None):
        self.service_s = service_s
        self.shards_answered = shards_answered
        self.shards_total = shards_total
        self.error = error
        self.requests = []

    def search(self, request: QueryRequest) -> QueryResponse:
        self.requests.append(request)
        if self.service_s:
            time.sleep(self.service_s)
        if self.error is not None:
            raise self.error
        return QueryResponse(
            request=request,
            results=[],
            stats=SearchStats(),
            latency_s=self.service_s,
            shards_answered=self.shards_answered,
            shards_total=self.shards_total,
        )


def make_request(workload_queries, i=0, **kwargs) -> QueryRequest:
    return as_request(workload_queries[i], k=3, **kwargs)


def submit_one(frontend, request, **kwargs):
    return asyncio.run(frontend.submit(request, **kwargs))


class TestAdmissionFlow:
    def test_plain_completion(self, workload_queries):
        backend = StubService()
        with ServingFrontend(backend, ServingConfig(max_concurrency=2)) as fe:
            response = submit_one(fe, make_request(workload_queries))
            assert response.complete
            stats = fe.stats()
        assert (stats.submitted, stats.completed) == (1, 1)
        assert stats.queue_depth == 0
        assert stats.service_time_ewma_s is not None

    def test_rejects_past_queue_capacity(self, workload_queries):
        backend = StubService(service_s=0.25)
        config = ServingConfig(queue_capacity=1, max_concurrency=1)

        async def drive(fe):
            request = make_request(workload_queries)
            first = asyncio.create_task(fe.submit(request))
            await asyncio.sleep(0.05)  # first holds the permit, queue empty
            second = asyncio.create_task(fe.submit(request))
            await asyncio.sleep(0.05)  # second waits admitted (queue full)
            with pytest.raises(RejectedError):
                await fe.submit(request)
            await asyncio.gather(first, second)

        with ServingFrontend(backend, config) as fe:
            asyncio.run(drive(fe))
            stats = fe.stats()
        assert stats.rejected == 1
        assert stats.completed == 2
        assert stats.queue_depth == 0

    def test_sheds_on_estimated_wait(self, workload_queries):
        backend = StubService(service_s=0.2)
        config = ServingConfig(queue_capacity=64, max_concurrency=1)

        async def drive(fe):
            fe.prime(0.2)  # one queued request -> estimate 0.4s
            request = make_request(workload_queries)
            first = asyncio.create_task(fe.submit(request, deadline_s=5.0))
            await asyncio.sleep(0.05)
            second = asyncio.create_task(fe.submit(request, deadline_s=5.0))
            await asyncio.sleep(0.05)
            with pytest.raises(ShedError):
                await fe.submit(request, deadline_s=0.3)
            await asyncio.gather(first, second)

        with ServingFrontend(backend, config) as fe:
            asyncio.run(drive(fe))
            assert fe.stats().shed == 1

    def test_expires_late_answer(self, workload_queries):
        backend = StubService(service_s=0.15)
        with ServingFrontend(backend, ServingConfig()) as fe:
            with pytest.raises(ExpiredError) as err:
                submit_one(fe, make_request(workload_queries), deadline_s=0.05)
            assert err.value.reason == "late"
            assert err.value.response is not None  # the late answer rides along
            stats = fe.stats()
        assert (stats.expired, stats.completed) == (1, 0)

    def test_partial_coverage_expires_when_complete_required(self, workload_queries):
        backend = StubService(shards_answered=1, shards_total=2)
        with ServingFrontend(backend, ServingConfig()) as fe:
            with pytest.raises(ExpiredError) as err:
                submit_one(fe, make_request(workload_queries), deadline_s=5.0)
            assert err.value.reason == "partial"
            assert not err.value.response.complete

    def test_partial_coverage_returned_when_allowed(self, workload_queries):
        backend = StubService(shards_answered=1, shards_total=2)
        config = ServingConfig(require_complete=False)
        with ServingFrontend(backend, config) as fe:
            response = submit_one(fe, make_request(workload_queries), deadline_s=5.0)
            assert not response.complete

    def test_backend_failure_counted_and_raised(self, workload_queries):
        backend = StubService(error=RuntimeError("backend down"))
        with ServingFrontend(backend, ServingConfig()) as fe:
            with pytest.raises(RuntimeError, match="backend down"):
                submit_one(fe, make_request(workload_queries))
            stats = fe.stats()
        assert stats.failed == 1
        assert stats.queue_depth == 0

    def test_survives_successive_event_loops(self, workload_queries):
        """Bench sweeps drive one frontend from successive asyncio.run
        loops; the concurrency semaphore must rebind, not explode."""
        backend = StubService()
        request = make_request(workload_queries)
        with ServingFrontend(backend, ServingConfig()) as fe:
            for _ in range(3):
                assert submit_one(fe, request).complete
            assert fe.stats().completed == 3


class TestDeadlinePropagation:
    def test_remaining_budget_reaches_backend(self, workload_queries):
        backend = StubService()
        with ServingFrontend(backend, ServingConfig()) as fe:
            submit_one(fe, make_request(workload_queries), deadline_s=0.5)
        (seen,) = backend.requests
        assert seen.deadline_s is not None
        assert 0.0 < seen.deadline_s <= 0.5

    def test_propagation_disabled(self, workload_queries):
        backend = StubService()
        config = ServingConfig(propagate_deadline=False)
        with ServingFrontend(backend, config) as fe:
            submit_one(fe, make_request(workload_queries), deadline_s=0.5)
        (seen,) = backend.requests
        assert seen.deadline_s is None

    def test_request_carried_deadline_used(self, workload_queries):
        backend = StubService()
        request = make_request(workload_queries).__class__(
            query=workload_queries[0], k=3, deadline_s=0.4
        )
        with ServingFrontend(backend, ServingConfig()) as fe:
            submit_one(fe, request)
        (seen,) = backend.requests
        assert seen.deadline_s is not None and seen.deadline_s <= 0.4


class TestParity:
    @pytest.fixture(scope="class")
    def service(self, tiny_db):
        engine = GATSearchEngine(GATIndex.build(tiny_db))
        service = QueryService(engine, max_workers=4, result_cache_size=0)
        yield service
        service.close()

    def test_rankings_identical_to_closed_loop(self, service, workload_queries):
        direct = [service.search(q, k=5) for q in workload_queries]

        async def drive(fe):
            return await asyncio.gather(
                *(fe.submit(q, k=5, deadline_s=30.0) for q in workload_queries)
            )

        with ServingFrontend(service, ServingConfig(max_concurrency=4)) as fe:
            served = asyncio.run(drive(fe))
        for d, s in zip(direct, served):
            assert [(r.trajectory_id, r.distance) for r in d.results] == [
                (r.trajectory_id, r.distance) for r in s.results
            ]


class TestObservability:
    def test_admission_metrics_flow(self, workload_queries):
        obs = Observability.disabled()
        backend = StubService(service_s=0.05)
        # Shedding off so the tight-deadline request runs and *expires*
        # (with shedding on the warmed EWMA would shed it at admission).
        with ServingFrontend(backend, ServingConfig(shed=False), obs=obs) as fe:
            submit_one(fe, make_request(workload_queries), deadline_s=5.0)
            with pytest.raises(ExpiredError):
                submit_one(fe, make_request(workload_queries), deadline_s=0.01)
        snap = obs.metrics_snapshot()
        assert snap["repro_admission_completed_total"] == 1
        assert snap["repro_admission_expired_total"] == 1
        assert snap["repro_admission_queue_depth"] == 0
        assert snap["repro_admission_queue_wait_seconds"]["count"] == 2
        text = obs.prometheus()
        assert "repro_admission_shed_total" in text
        assert "repro_admission_rejected_total" in text

    def test_admission_spans_on_trace(self, workload_queries):
        obs = Observability.enabled()
        backend = StubService()
        with ServingFrontend(backend, ServingConfig(), obs=obs) as fe:
            submit_one(fe, make_request(workload_queries), deadline_s=5.0)
        spans = obs.tracer.drain()
        admission = [s for s in spans if s.name == "admission"]
        assert len(admission) == 1
        assert admission[0].attrs["outcome"] == "completed"
        assert "queue_wait_s" in admission[0].attrs
