"""Arrival processes: determinism, rate accuracy, and shape."""

import math

import pytest

from repro.serving.arrivals import (
    ARRIVAL_KINDS,
    DiurnalArrivals,
    PoissonArrivals,
    SquareWaveArrivals,
    arrival_process,
)


class TestDeterminism:
    @pytest.mark.parametrize("kind", ARRIVAL_KINDS)
    def test_same_seed_same_schedule(self, kind):
        a = arrival_process(kind, 80.0, seed=13)
        b = arrival_process(kind, 80.0, seed=13)
        assert a.times(3.0) == b.times(3.0)
        # And repeated calls on one instance replay identically.
        assert a.times(3.0) == a.times(3.0)

    @pytest.mark.parametrize("kind", ARRIVAL_KINDS)
    def test_different_seed_different_schedule(self, kind):
        a = arrival_process(kind, 80.0, seed=1)
        b = arrival_process(kind, 80.0, seed=2)
        assert a.times(3.0) != b.times(3.0)


@pytest.mark.parametrize("kind", ARRIVAL_KINDS)
def test_times_sorted_within_window(kind):
    times = arrival_process(kind, 120.0, seed=3).times(2.5)
    assert times == sorted(times)
    assert all(0.0 <= t < 2.5 for t in times)


@pytest.mark.parametrize("kind", ARRIVAL_KINDS)
def test_mean_rate_matches_request(kind):
    """Every factory shape offers the same mean load — the saturation
    sweep means one thing for all three.  Whole periods only, so the
    time-varying shapes average out exactly."""
    process = arrival_process(kind, 200.0, seed=11, period_s=2.0)
    assert process.mean_rate() == pytest.approx(200.0)
    duration = 20.0  # 10 whole periods
    n = len(process.times(duration))
    expected = 200.0 * duration
    # Poisson sd is sqrt(4000) ~ 63; 4 sigma ~ 250 -> 15% is comfortable.
    assert abs(n - expected) / expected < 0.15


def test_poisson_rate_curve_flat():
    p = PoissonArrivals(50.0, seed=0)
    assert p.rate(0.0) == p.rate(123.4) == p.peak_rate() == 50.0


def test_diurnal_rate_curve_shape():
    d = DiurnalArrivals(10.0, 90.0, period_s=8.0, seed=0)
    assert d.rate(0.0) == pytest.approx(10.0)  # trough at t=0
    assert d.rate(4.0) == pytest.approx(90.0)  # peak at half period
    assert d.rate(8.0) == pytest.approx(10.0)  # periodic
    assert d.mean_rate() == pytest.approx(50.0)
    for t in (0.0, 1.0, 2.5, 7.9):
        assert 10.0 <= d.rate(t) <= 90.0 == d.peak_rate()


def test_square_wave_burst_and_quiet_plateaus():
    s = SquareWaveArrivals(20.0, 180.0, period_s=2.0, duty=0.5, seed=4)
    assert s.rate(0.1) == 180.0  # burst leads each period
    assert s.rate(1.5) == 20.0
    assert s.rate(2.1) == 180.0
    assert s.mean_rate() == pytest.approx(100.0)
    # The sampled schedule actually is burstier in the burst half.
    times = s.times(20.0)
    in_burst = sum(1 for t in times if (t % 2.0) < 1.0)
    in_quiet = len(times) - in_burst
    assert in_burst > 4 * in_quiet  # true ratio is 9:1


def test_square_wave_duty_cycle():
    s = SquareWaveArrivals(0.0, 100.0, period_s=4.0, duty=0.25, seed=0)
    assert s.rate(0.9) == 100.0
    assert s.rate(1.1) == 0.0
    assert s.mean_rate() == pytest.approx(25.0)
    assert all((t % 4.0) < 1.0 for t in s.times(12.0))


def test_zero_rate_and_zero_duration_empty():
    assert PoissonArrivals(0.0).times(5.0) == []
    assert PoissonArrivals(50.0).times(0.0) == []


def test_factory_swing_bounds():
    d = arrival_process("diurnal", 100.0, swing=0.5)
    assert (d.low_qps, d.high_qps) == (50.0, 150.0)
    s = arrival_process("square", 100.0, swing=0.2)
    assert (s.low_qps, s.high_qps) == (pytest.approx(80.0), pytest.approx(120.0))


def test_validation_errors():
    with pytest.raises(ValueError):
        arrival_process("sawtooth", 10.0)
    with pytest.raises(ValueError):
        arrival_process("diurnal", 10.0, swing=1.5)
    with pytest.raises(ValueError):
        PoissonArrivals(-1.0)
    with pytest.raises(ValueError):
        DiurnalArrivals(50.0, 10.0, period_s=1.0)  # low > high
    with pytest.raises(ValueError):
        SquareWaveArrivals(1.0, 2.0, period_s=0.0)
    with pytest.raises(ValueError):
        SquareWaveArrivals(1.0, 2.0, period_s=1.0, duty=1.0)
