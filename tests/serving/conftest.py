"""Serving-suite fixtures.

Runs under the same autouse shared-memory leak probe as the shard suite
(the front-end sits over sharded services whose stores may live in
/dev/shm), plus a small deterministic query workload over ``tiny_db``.
"""

import pytest

from repro.bench.workloads import QueryWorkloadGenerator, WorkloadConfig
from repro.storage import shm


@pytest.fixture(autouse=True)
def no_leaked_shared_memory():
    before = shm.active_segments()
    yield
    leaked = [name for name in shm.active_segments() if name not in before]
    assert not leaked, (
        f"test leaked shared-memory segments {leaked}; close the owning "
        "SharedTrajectoryStore / ShardedGATIndex before returning"
    )


@pytest.fixture(scope="module")
def workload_queries(tiny_db):
    """Eight deterministic queries over the shared tiny database."""
    generator = QueryWorkloadGenerator(tiny_db, WorkloadConfig(seed=5))
    return generator.queries(8)
