"""Resource hygiene on the refusal paths.

A burst that sheds or rejects most of the offered load must leave the
stack exactly as it found it: admission permits restored, router leases
released, process-pool threshold slots back in the free list, no
shared-memory segments behind (the suite-wide autouse probe).  A single
leaked unit per refusal would wedge the service within minutes of a real
overload.
"""

from repro.storage.disk import SimulatedDisk
from repro.serving import (
    ServingConfig,
    ServingFrontend,
    SquareWaveArrivals,
    run_open_loop,
)
from repro.shard import (
    FaultPolicy,
    ReplicatedShardedService,
    ShardedGATIndex,
    ShardedQueryService,
)
from repro.shard.executor import ProcessShardExecutor

#: Slow enough that a tight deadline sheds hard, fast enough for CI.
#: (Measured per-query service time on ``tiny_db``: ~40ms thread+disk,
#: ~30ms process fleet.)
DISK_LATENCY_S = 0.002


def shedding_burst(frontend, queries, deadline_s):
    """~160 arrivals in 0.8s against a backend that cannot keep up."""
    frontend.prime(0.02)  # shed against a real estimate from arrival #1
    arrivals = SquareWaveArrivals(40.0, 360.0, period_s=0.4, seed=9)
    return run_open_loop(
        frontend,
        queries,
        arrivals,
        duration_s=0.8,
        slo_s=deadline_s,
        deadline_s=deadline_s,
        k=3,
    )


def assert_outcomes_partition(report, stats):
    assert stats.submitted == report.offered
    assert (
        report.completed
        + report.rejected
        + report.shed
        + report.expired
        + report.failed
        == report.offered
    )
    assert report.failed == 0


def test_thread_replica_burst_releases_leases_and_permits(tiny_db, workload_queries):
    """Replicated thread backend: shed >50% of a burst, then audit every
    resource pool the stack leases from."""
    index = ShardedGATIndex.build(
        tiny_db,
        n_shards=2,
        disk_factory=lambda: SimulatedDisk(read_latency_s=DISK_LATENCY_S),
    )
    config = ServingConfig(
        queue_capacity=8, max_concurrency=2, shed_headroom=1.0
    )
    with ReplicatedShardedService(
        index,
        executor="thread",
        n_replicas=2,
        fault_policy=FaultPolicy(),
        result_cache_size=0,
    ) as service:
        with ServingFrontend(service, config) as frontend:
            # ~3.7x the ~40ms service time: requests complete, but the
            # wait estimate sheds once ~6 are queued (before the queue
            # even fills).
            report = shedding_burst(frontend, workload_queries, deadline_s=0.15)
            stats = frontend.stats()
            # The burst genuinely overloaded: most of the offered load was
            # turned away, yet some requests were served.
            assert (report.shed + report.rejected) / report.offered > 0.5
            assert report.shed > 0
            assert report.completed > 0
            assert_outcomes_partition(report, stats)
            # Admission permits: queue empty, semaphore fully restored.
            assert frontend.admission.queue_depth == 0
            assert frontend._sem is not None
            assert frontend._sem._value == config.max_concurrency
            # Router leases: nothing in flight on any replica.
            for shard_id in range(service.n_shards):
                assert all(n == 0 for n in service.router.in_flight(shard_id))


def test_process_backend_burst_returns_threshold_slots(tiny_db, workload_queries):
    """Process fleet: after a shedding burst every mp.Value threshold
    slot is back in the free list (a leaked slot would eventually force
    the whole fleet to run unpruned)."""
    index = ShardedGATIndex.build(tiny_db, n_shards=2)
    config = ServingConfig(queue_capacity=8, max_concurrency=2)
    with ShardedQueryService(
        index,
        executor="process",
        fault_policy=FaultPolicy(),
        result_cache_size=0,
    ) as service:
        with ServingFrontend(service, config) as frontend:
            # Roomier deadline (cold pool warmup): refusals here are
            # mostly queue-full rejections, which is fine — the test is
            # about the slots, not the shed ratio.
            report = shedding_burst(frontend, workload_queries, deadline_s=0.4)
            stats = frontend.stats()
            assert report.completed > 0
            assert report.rejected + report.shed > 0
            assert_outcomes_partition(report, stats)
            assert frontend.admission.queue_depth == 0
            assert frontend._sem._value == config.max_concurrency
            executor = service._executor
            assert isinstance(executor, ProcessShardExecutor)
            assert sorted(executor._free_slots) == list(
                range(ProcessShardExecutor.N_SLOTS)
            )
