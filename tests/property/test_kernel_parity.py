"""Property-based parity: the vectorized kernels vs the scalar oracles.

Randomized trajectories and queries drive both implementations of every
kernelised quantity — the pairwise distance matrices, the set-cover
(`PointMatchTable` vs the array DP), ``Dmm``, ``Dmom``, and whole engine
executions — and require agreement: exact for the pure-combinatorics
covers (same additions in the same order), last-ulp (1e-9 relative is
orders of magnitude looser) wherever NumPy's elementwise rounding or the
Dmom scan's re-association can differ from the scalar fold.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import kernels
from repro.core.kernels import (
    HAVE_NUMPY,
    CandidateArrays,
    QueryKernel,
    min_cover_cost,
    resolve_kernel,
)
from repro.core.evaluator import MatchEvaluator
from repro.core.match import INFINITY, PointMatchTable
from repro.core.order_match import minimum_order_match_distance
from repro.core.query import Query, QueryPoint
from repro.model.distance import (
    EuclideanDistance,
    HaversineDistance,
    PreparedHaversine,
)
from repro.model.point import TrajectoryPoint
from repro.model.trajectory import ActivityTrajectory

pytestmark = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy unavailable")

EUCLID = EuclideanDistance()

coord_st = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False)
acts_st = st.frozensets(st.integers(min_value=0, max_value=5), max_size=3)
point_st = st.tuples(coord_st, coord_st, acts_st)
trajectory_st = st.lists(point_st, min_size=1, max_size=12)
qpoint_st = st.tuples(
    coord_st,
    coord_st,
    st.frozensets(st.integers(min_value=0, max_value=5), min_size=1, max_size=3),
)
query_st = st.lists(qpoint_st, min_size=1, max_size=4)


def _trajectory(raw, tid=0):
    return ActivityTrajectory(
        tid, [TrajectoryPoint(x, y, acts) for x, y, acts in raw]
    )


def _query(raw):
    return Query([QueryPoint(x, y, acts) for x, y, acts in raw])


def _close(a, b):
    if a == INFINITY or b == INFINITY:
        return a == b
    return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-12)


# ----------------------------------------------------------------------
# Kernel resolution
# ----------------------------------------------------------------------
def test_resolve_kernel():
    assert resolve_kernel("auto") == "block"  # numpy is present here
    assert resolve_kernel("scalar") == "scalar"
    assert resolve_kernel("vectorized") == "vectorized"
    assert resolve_kernel("block") == "block"
    with pytest.raises(ValueError):
        resolve_kernel("simd")


# ----------------------------------------------------------------------
# Distance matrices vs per-pair metric calls
# ----------------------------------------------------------------------
@given(query_st, trajectory_st)
@settings(max_examples=100, deadline=None)
def test_euclidean_matrix_matches_metric(qraw, traw):
    query, trajectory = _query(qraw), _trajectory(traw)
    qk = QueryKernel(query, EUCLID)
    positions = list(range(len(trajectory)))
    rows = qk.distance_rows(trajectory, positions)
    for i, q in enumerate(query):
        for j, p in enumerate(trajectory.points):
            want = EUCLID(q.coord, p.coord)
            assert math.isclose(rows[i][j], want, rel_tol=1e-12, abs_tol=1e-12)


@given(query_st, trajectory_st)
@settings(max_examples=50, deadline=None)
def test_haversine_matrix_matches_metric(qraw, traw):
    # Coordinates are reinterpreted as (lon, lat) degrees; the strategy's
    # [-50, 50] range keeps them legal.
    metric = HaversineDistance()
    query, trajectory = _query(qraw), _trajectory(traw)
    qk = QueryKernel(query, metric)
    positions = list(range(len(trajectory)))
    rows = qk.distance_rows(trajectory, positions)
    for i, q in enumerate(query):
        for j, p in enumerate(trajectory.points):
            want = metric(q.coord, p.coord)
            assert math.isclose(rows[i][j], want, rel_tol=1e-9, abs_tol=1e-9)


@given(query_st, st.lists(coord_st, min_size=1, max_size=8))
@settings(max_examples=50, deadline=None)
def test_prepared_haversine_is_bit_identical(qraw, xs):
    metric = HaversineDistance()
    coords = [(x, y) for x, y, _ in qraw]
    prepared = PreparedHaversine(coords)
    targets = [(x, -x / 2.0) for x in xs]
    for a in coords:
        for b in targets:
            assert prepared(a, b) == metric(a, b)
    # Unknown first arguments fall back to on-the-fly conversion.
    assert prepared((1.25, 2.5), targets[0]) == metric((1.25, 2.5), targets[0])


# ----------------------------------------------------------------------
# Array set-cover vs PointMatchTable
# ----------------------------------------------------------------------
cover_entries_st = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        st.integers(min_value=0, max_value=15),
    ),
    max_size=10,
)


@given(cover_entries_st, st.integers(min_value=1, max_value=4))
@settings(max_examples=300, deadline=None)
def test_min_cover_cost_matches_point_match_table(entries, n_bits):
    table = PointMatchTable(range(n_bits))
    mask_cap = (1 << n_bits) - 1
    clipped = [(d, pm & mask_cap) for d, pm in entries]
    for d, pm in clipped:
        table.add(pm, d)
    got = min_cover_cost(clipped, n_bits)
    assert got == table.best()  # exact: same additions in the same order


# ----------------------------------------------------------------------
# Dmm / Dmom: vectorized evaluator vs scalar evaluator
# ----------------------------------------------------------------------
@given(query_st, trajectory_st)
@settings(max_examples=150, deadline=None)
def test_dmm_parity(qraw, traw):
    query, trajectory = _query(qraw), _trajectory(traw)
    scalar = MatchEvaluator(kernel="scalar")
    vector = MatchEvaluator(kernel="vectorized")
    a = scalar.dmm(query, trajectory)
    b = vector.dmm(query, trajectory)
    assert _close(a, b)
    assert scalar.stats.point_match_points == vector.stats.point_match_points
    assert scalar.stats.dmm_evaluations == vector.stats.dmm_evaluations


@given(query_st, trajectory_st)
@settings(max_examples=150, deadline=None)
def test_dmom_parity(qraw, traw):
    query, trajectory = _query(qraw), _trajectory(traw)
    scalar = MatchEvaluator(kernel="scalar")
    vector = MatchEvaluator(kernel="vectorized")
    a = scalar.dmom(query, trajectory)
    b = vector.dmom(query, trajectory)
    assert _close(a, b)
    assert scalar.stats.dmom_evaluations == vector.stats.dmom_evaluations
    assert scalar.stats.dmm_evaluations == vector.stats.dmm_evaluations


@given(query_st, trajectory_st, st.floats(min_value=0.0, max_value=200.0))
@settings(max_examples=100, deadline=None)
def test_dmom_threshold_parity(qraw, traw, threshold):
    """The Lemma-4 row early-exit fires identically under both kernels."""
    query, trajectory = _query(qraw), _trajectory(traw)
    a = MatchEvaluator(kernel="scalar").dmom(query, trajectory, threshold=threshold)
    b = MatchEvaluator(kernel="vectorized").dmom(query, trajectory, threshold=threshold)
    # At a threshold landing exactly on the distance the two kernels'
    # last-ulp values may fall on opposite sides; hypothesis never finds
    # such a tie with continuous floats, so equality is required.
    assert _close(a, b)


@given(query_st, trajectory_st)
@settings(max_examples=100, deadline=None)
def test_dmom_prepared_matches_scalar_dp(qraw, traw):
    """dmom_prepared against the raw Algorithm 4 (no gates), including
    trajectories with no relevant points."""
    query, trajectory = _query(qraw), _trajectory(traw)
    want = minimum_order_match_distance(query, trajectory, EUCLID)
    qk = QueryKernel(query, EUCLID)
    cand = kernels.prepare_candidate(qk, trajectory)
    got = INFINITY if cand is None else kernels.dmom_prepared(qk, cand)
    assert _close(got, want)


# ----------------------------------------------------------------------
# Row-vectorized Dmom (single-activity query points)
# ----------------------------------------------------------------------
finite_or_inf_st = st.one_of(
    st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
    st.just(INFINITY),
)


@given(
    st.lists(
        st.tuples(
            finite_or_inf_st,
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            st.booleans(),
        ),
        min_size=1,
        max_size=30,
    )
)
@settings(max_examples=300, deadline=None)
def test_dmom_single_activity_row_numpy_is_bit_identical(cells):
    """The NumPy prefix-min/segment-min row equals the scalar recurrence
    *exactly* — same additions, same mins, same order — including inf
    guardian values and all-masked-out rows."""
    prev = [0.0] + [p for p, _d, _m in cells]
    row = [d for _p, d, _m in cells]
    mrow = [1 if m else 0 for _p, _d, m in cells]
    assert kernels._dmom_row_single_np(prev, row, mrow) == kernels._dmom_row_single(
        prev, row, mrow
    )


class _TabulatedEuclid:
    """Euclidean distance behind an opaque type: QueryKernel falls back to
    per-pair metric calls (its 'generic' mode), so the scalar DP and the
    vectorized row scan see *identical* distances and any difference would
    come from the recurrence itself."""

    def __call__(self, a, b):
        return EUCLID(a, b)


single_act_query_st = st.lists(
    st.tuples(coord_st, coord_st, st.integers(min_value=0, max_value=5)),
    min_size=1,
    max_size=4,
)


@given(single_act_query_st, trajectory_st)
@settings(max_examples=150, deadline=None)
def test_dmom_single_activity_queries_exact_vs_scalar_oracle(qraw, traw):
    """End to end, a query of single-activity points (the row-vectorized
    fast path) scores every trajectory exactly like the scalar Algorithm 4
    when both paths share per-pair distances."""
    metric = _TabulatedEuclid()
    query = Query([QueryPoint(x, y, frozenset({a})) for x, y, a in qraw])
    trajectory = _trajectory(traw)
    want = minimum_order_match_distance(query, trajectory, metric)
    qk = QueryKernel(query, metric)
    cand = kernels.prepare_candidate(qk, trajectory)
    got = INFINITY if cand is None else kernels.dmom_prepared(qk, cand)
    assert got == want  # exact, not approximate
