"""Property-based tests (hypothesis) for the minimum point match."""

import math

from hypothesis import given, settings, strategies as st

from repro.core.match import (
    INFINITY,
    PointMatchTable,
    minimum_point_match,
    minimum_point_match_distance,
    mpm_oracle_mask_dp,
    mpm_oracle_subset_enum,
)
from repro.model.distance import EuclideanDistance
from repro.model.point import TrajectoryPoint

EUCLID = EuclideanDistance()
ORIGIN = (0.0, 0.0)

# A candidate point: distance in [0, 100], activity subset of a 5-universe.
point_st = st.tuples(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    st.frozensets(st.integers(min_value=0, max_value=4), max_size=4),
)
points_st = st.lists(point_st, max_size=10)
query_st = st.frozensets(st.integers(min_value=0, max_value=4), min_size=1, max_size=4)


def _as_trajectory_points(scored):
    return [
        (i, TrajectoryPoint(d, 0.0, acts)) for i, (d, acts) in enumerate(scored)
    ]


@given(points_st, query_st)
@settings(max_examples=300, deadline=None)
def test_algorithm3_matches_mask_dp_oracle(scored, query):
    got = minimum_point_match_distance(
        ORIGIN, query, _as_trajectory_points(scored), EUCLID
    )
    want = mpm_oracle_mask_dp(scored, query)
    if want == INFINITY:
        assert got == INFINITY
    else:
        assert math.isclose(got, want, rel_tol=1e-12, abs_tol=1e-9)


@given(st.lists(point_st, max_size=7), query_st)
@settings(max_examples=150, deadline=None)
def test_algorithm3_matches_subset_enumeration(scored, query):
    got = minimum_point_match_distance(
        ORIGIN, query, _as_trajectory_points(scored), EUCLID
    )
    want = mpm_oracle_subset_enum(scored, query)
    if want == INFINITY:
        assert got == INFINITY
    else:
        assert math.isclose(got, want, rel_tol=1e-12, abs_tol=1e-9)


@given(points_st, query_st, st.randoms(use_true_random=False))
@settings(max_examples=150, deadline=None)
def test_table_insertion_order_invariance(scored, query, rng):
    """The incremental table must be exact under any insertion order —
    Algorithm 4 relies on right-to-left insertion."""
    baseline = None
    order = list(scored)
    for _trial in range(3):
        rng.shuffle(order)
        t = PointMatchTable(query)
        for d, acts in order:
            t.add(t.overlap_mask(acts), d)
        if baseline is None:
            baseline = t.best()
        else:
            assert t.best() == baseline or math.isclose(t.best(), baseline, rel_tol=1e-12)


@given(points_st, query_st)
@settings(max_examples=150, deadline=None)
def test_reconstruction_is_a_valid_minimum_match(scored, query):
    pts = _as_trajectory_points(scored)
    dist, positions = minimum_point_match(ORIGIN, query, pts, EUCLID)
    if dist == INFINITY:
        assert positions == ()
        return
    covered = set()
    cost = 0.0
    for pos in positions:
        covered |= pts[pos][1].activities
        cost += EUCLID(ORIGIN, pts[pos][1].coord)
    assert query <= covered  # it is a point match (Definition 3)
    assert math.isclose(cost, dist, rel_tol=1e-12, abs_tol=1e-9)  # and minimal


@given(points_st, query_st, point_st)
@settings(max_examples=150, deadline=None)
def test_adding_points_never_increases_distance(scored, query, extra):
    """Monotonicity: a superset of candidate points can only help."""
    base = minimum_point_match_distance(
        ORIGIN, query, _as_trajectory_points(scored), EUCLID
    )
    more = minimum_point_match_distance(
        ORIGIN, query, _as_trajectory_points(scored + [extra]), EUCLID
    )
    assert more <= base + 1e-9
