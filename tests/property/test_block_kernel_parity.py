"""Property-based parity: the block kernel vs the per-candidate kernels.

Randomized trajectories and queries drive whole validation rounds through
the round-batched block entries (``prepare_block`` + ``block_dmm`` /
``block_dmom`` / ``block_dmm_all_single``) and through the per-candidate
vectorized and scalar paths, and require:

* identical ``Dmm`` / ``Dmom`` values — exact where the block performs
  the same float operations (single-activity rows, the batched DP, the
  duplicated-layout ``Dmm``), last-ulp (1e-9 relative is orders looser)
  where the partition-decomposed cover may re-associate 3+-term sums;
* *exactly* identical evaluator counters (``dmm_evaluations`` /
  ``dmom_evaluations`` / ``point_match_points``), abandonment
  notwithstanding — the accounting is mask-derived by construction;
* whole-engine agreement: identical top-k ids, distances, and every
  ``SearchStats`` counter (disk reads included) across
  ``kernel='block'|'vectorized'|'scalar'``, for Euclidean and Haversine,
  mixed activity sets, and ragged trajectory lengths.

Threshold abandonment is also exercised directly: with a finite running
k-th threshold, a block value may flip to ``inf`` but only when the exact
value exceeds the threshold — never the other way around.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import kernels
from repro.core.evaluator import MatchEvaluator
from repro.core.kernels import HAVE_NUMPY, INFINITY, QueryKernel
from repro.core.query import Query, QueryPoint
from repro.model.distance import EuclideanDistance, HaversineDistance
from repro.model.point import TrajectoryPoint
from repro.model.trajectory import ActivityTrajectory

pytestmark = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy unavailable")

EUCLID = EuclideanDistance()

coord_st = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False)
acts_st = st.frozensets(st.integers(min_value=0, max_value=5), max_size=3)
point_st = st.tuples(coord_st, coord_st, acts_st)
#: Ragged lengths: rounds mix 1-point and 15-point trajectories.
trajectory_st = st.lists(point_st, min_size=1, max_size=15)
round_st = st.lists(trajectory_st, min_size=1, max_size=8)
qpoint_st = st.tuples(
    coord_st,
    coord_st,
    st.frozensets(st.integers(min_value=0, max_value=5), min_size=1, max_size=3),
)
query_st = st.lists(qpoint_st, min_size=1, max_size=4)
single_query_st = st.lists(
    st.tuples(coord_st, coord_st, st.integers(min_value=0, max_value=5)),
    min_size=1,
    max_size=4,
)
threshold_st = st.one_of(
    st.just(INFINITY), st.floats(min_value=0.0, max_value=300.0)
)


def _round(raws):
    return [
        (ActivityTrajectory(tid, [TrajectoryPoint(x, y, a) for x, y, a in raw]), None)
        for tid, raw in enumerate(raws)
    ]


def _query(raw):
    return Query([QueryPoint(x, y, acts) for x, y, acts in raw])


def _close(a, b):
    if a == INFINITY or b == INFINITY:
        return a == b
    return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-12)


class _Stats:
    def __init__(self):
        self.point_match_points = 0


# ----------------------------------------------------------------------
# Block Dmm vs per-candidate Dmm
# ----------------------------------------------------------------------
@given(query_st, round_st, st.booleans())
@settings(max_examples=150, deadline=None)
def test_block_dmm_values_and_counts(qraw, raws, haversine):
    metric = HaversineDistance() if haversine else EUCLID
    query = _query(qraw)
    items = _round(raws)
    qk = QueryKernel(query, metric)

    block_stats = _Stats()
    block = kernels.prepare_block(qk, items)
    got = kernels.block_dmm(qk, block, block_stats)

    cand_stats = _Stats()
    for c, (trajectory, _p) in enumerate(items):
        cand = kernels.prepare_candidate(qk, trajectory)
        want = (
            INFINITY
            if cand is None
            else kernels.dmm_prepared(qk, cand, cand_stats)
        )
        assert _close(float(got[c]), want), (c, float(got[c]), want)
    assert block_stats.point_match_points == cand_stats.point_match_points


@given(single_query_st, round_st)
@settings(max_examples=150, deadline=None)
def test_all_single_fast_dmm_is_bit_identical(qraw, raws):
    """The duplicated-layout Dmm equals the per-candidate all-single path
    exactly — same masked minima, same left-to-right row fold."""
    query = Query([QueryPoint(x, y, frozenset({a})) for x, y, a in qraw])
    items = _round(raws)
    qk = QueryKernel(query, EUCLID)
    assert qk.all_single

    fast_stats = _Stats()
    got = kernels.block_dmm_all_single(qk, items, fast_stats)

    cand_stats = _Stats()
    for c, (trajectory, _p) in enumerate(items):
        cand = kernels.prepare_candidate(qk, trajectory)
        want = (
            INFINITY
            if cand is None
            else kernels.dmm_prepared(qk, cand, cand_stats)
        )
        assert float(got[c]) == want  # exact, not approximate
    assert fast_stats.point_match_points == cand_stats.point_match_points


@given(query_st, round_st, threshold_st)
@settings(max_examples=100, deadline=None)
def test_block_dmom_matches_gated_per_candidate_path(qraw, raws, threshold):
    """block_dmom vs evaluator.dmom per candidate at the same round-start
    threshold: identical counters always; identical values except that
    block abandonment may turn an over-threshold value into inf."""
    query = _query(qraw)
    items = _round(raws)

    block_eval = MatchEvaluator(kernel="block")
    got = block_eval.dmom_batch(query, items, threshold)

    cand_eval = MatchEvaluator(kernel="vectorized")
    for c, (trajectory, _p) in enumerate(items):
        want = cand_eval.dmom(query, trajectory, threshold=threshold)
        if _close(got[c], want):
            continue
        # Abandonment: block may report inf where the per-candidate path
        # computed a finite value — but only above the threshold, where
        # the top-k collector would have rejected it anyway.
        assert got[c] == INFINITY and want > threshold, (c, got[c], want)
    assert block_eval.stats.dmom_evaluations == cand_eval.stats.dmom_evaluations
    assert block_eval.stats.dmm_evaluations == cand_eval.stats.dmm_evaluations
    assert (
        block_eval.stats.point_match_points == cand_eval.stats.point_match_points
    )


@given(query_st, round_st)
@settings(max_examples=100, deadline=None)
def test_dmm_batch_counters_match_per_candidate_loop(qraw, raws):
    query = _query(qraw)
    items = _round(raws)

    batch_eval = MatchEvaluator(kernel="block")
    got = batch_eval.dmm_batch(query, items)

    loop_eval = MatchEvaluator(kernel="vectorized")
    for c, (trajectory, _p) in enumerate(items):
        want = loop_eval.dmm(query, trajectory)
        assert _close(got[c], want), (c, got[c], want)
    assert batch_eval.stats.dmm_evaluations == loop_eval.stats.dmm_evaluations
    assert (
        batch_eval.stats.point_match_points == loop_eval.stats.point_match_points
    )


# ----------------------------------------------------------------------
# Whole-engine agreement across kernels
# ----------------------------------------------------------------------
@pytest.mark.parametrize("order_sensitive", [False, True])
@pytest.mark.parametrize("kernel", ["scalar", "vectorized"])
def test_engine_block_agreement(small_db, kernel, order_sensitive):
    from dataclasses import fields

    from repro.bench.workloads import QueryWorkloadGenerator, WorkloadConfig
    from repro.core.engine import GATSearchEngine
    from repro.index.gat.index import GATConfig, GATIndex

    index = GATIndex.build(small_db, GATConfig(depth=4, memory_levels=3))
    gen = QueryWorkloadGenerator(
        small_db, WorkloadConfig(n_query_points=3, n_activities_per_point=2, seed=23)
    )
    queries = gen.queries(6)

    def run(k):
        engine = GATSearchEngine(index, apl_cache_size=0, kernel=k)
        answers, stats = [], []
        for q in queries:
            index.hicl.clear_cache()
            ctx = engine.execute(q, 5, order_sensitive=order_sensitive)
            answers.append([(r.trajectory_id, r.distance) for r in ctx.ranked])
            stats.append({f.name: getattr(ctx.stats, f.name) for f in fields(ctx.stats)})
        return answers, stats

    block_ans, block_stats = run("block")
    other_ans, other_stats = run(kernel)
    assert [[t for t, _ in q] for q in block_ans] == [
        [t for t, _ in q] for q in other_ans
    ]
    for qa, qb in zip(block_ans, other_ans):
        for (_, da), (_, db) in zip(qa, qb):
            assert math.isclose(da, db, rel_tol=1e-9, abs_tol=1e-12)
    assert block_stats == other_stats
