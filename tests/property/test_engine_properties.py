"""Property-style tests of whole-engine invariants on the tiny database.

These are seeded-random rather than hypothesis-driven because each case
needs an indexed database (expensive to rebuild per example); the query
space is fuzzed instead.
"""

import math
import random

import pytest

from repro.core.engine import GATSearchEngine
from repro.core.evaluator import MatchEvaluator
from repro.core.query import Query, QueryPoint
from repro.index.gat.index import GATConfig, GATIndex


@pytest.fixture(scope="module")
def engine(tiny_db):
    return GATSearchEngine(GATIndex.build(tiny_db, GATConfig(depth=5, memory_levels=4)))


def _fuzz_query(db, rng):
    """Queries both anchored in the data and fully random (possibly with no
    match at all)."""
    if rng.random() < 0.7:
        while True:
            tr = db.trajectories[rng.randrange(len(db))]
            pts = [p for p in tr if p.activities]
            if pts:
                nq = min(len(pts), rng.randint(1, 3))
                qps = [
                    QueryPoint(
                        p.x, p.y, frozenset(rng.sample(sorted(p.activities), 1))
                    )
                    for p in rng.sample(pts, nq)
                ]
                return Query(qps)
    box = db.bounding_box
    nq = rng.randint(1, 3)
    return Query(
        [
            QueryPoint(
                rng.uniform(box.min_x, box.max_x),
                rng.uniform(box.min_y, box.max_y),
                frozenset(rng.sample(range(len(db.vocabulary)), rng.randint(1, 3))),
            )
            for _ in range(nq)
        ]
    )


def test_topk_always_matches_bruteforce(engine, tiny_db):
    ev = MatchEvaluator()
    rng = random.Random(1)
    for _ in range(25):
        q = _fuzz_query(tiny_db, rng)
        k = rng.randint(1, 8)
        brute = sorted(
            d
            for d in (ev.dmm(q, tr) for tr in tiny_db)
            if not math.isinf(d)
        )[:k]
        got = [r.distance for r in engine.atsq(q, k)]
        assert got == pytest.approx(brute)


def test_every_result_is_a_full_match(engine, tiny_db):
    rng = random.Random(2)
    for _ in range(15):
        q = _fuzz_query(tiny_db, rng)
        for r in engine.atsq(q, 5):
            tr = tiny_db.get(r.trajectory_id)
            assert q.all_activities <= tr.activity_union


def test_results_monotone_in_k(engine, tiny_db):
    """Top-(k) must be a prefix of top-(k+5) distances."""
    rng = random.Random(3)
    for _ in range(10):
        q = _fuzz_query(tiny_db, rng)
        small = [r.distance for r in engine.atsq(q, 3)]
        large = [r.distance for r in engine.atsq(q, 8)]
        assert large[: len(small)] == pytest.approx(small)


def test_oatsq_results_have_order_matches(engine, tiny_db):
    rng = random.Random(4)
    ev = MatchEvaluator()
    for _ in range(10):
        q = _fuzz_query(tiny_db, rng)
        for r in engine.oatsq(q, 4):
            d = ev.dmom(q, tiny_db.get(r.trajectory_id))
            assert d == pytest.approx(r.distance)


def test_no_match_queries_return_empty(engine, tiny_db):
    """A query demanding an activity no trajectory has yields no results
    (and must terminate)."""
    ghost = len(tiny_db.vocabulary) + 5
    q = Query([QueryPoint(0.0, 0.0, frozenset({ghost}))])
    assert engine.atsq(q, 5) == []
    assert engine.oatsq(q, 5) == []
