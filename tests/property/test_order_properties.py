"""Property-based tests for the order-sensitive match (Algorithm 4) and the
paper's lemmas."""

import math

from hypothesis import given, settings, strategies as st

from repro.core.evaluator import MatchEvaluator
from repro.core.match import INFINITY
from repro.core.order_match import (
    dmom_oracle_enum,
    minimum_order_match_distance,
    order_feasible,
    order_feasible_strict,
)
from repro.core.query import Query, QueryPoint
from repro.model.distance import EuclideanDistance
from repro.model.point import TrajectoryPoint
from repro.model.trajectory import ActivityTrajectory

EUCLID = EuclideanDistance()

coord_st = st.floats(min_value=0.0, max_value=20.0, allow_nan=False)
acts_st = st.frozensets(st.integers(min_value=0, max_value=3), max_size=3)
nonempty_acts_st = st.frozensets(
    st.integers(min_value=0, max_value=3), min_size=1, max_size=2
)

trajectory_st = st.lists(st.tuples(coord_st, coord_st, acts_st), min_size=1, max_size=7)
query_st = st.lists(
    st.tuples(coord_st, coord_st, nonempty_acts_st), min_size=1, max_size=3
)


def _tr(spec):
    return ActivityTrajectory(
        0, [TrajectoryPoint(x, y, a) for x, y, a in spec]
    )


def _q(spec):
    return Query([QueryPoint(x, y, a) for x, y, a in spec])


@given(trajectory_st, query_st)
@settings(max_examples=120, deadline=None)
def test_algorithm4_matches_enumeration_oracle(tr_spec, q_spec):
    tr, q = _tr(tr_spec), _q(q_spec)
    got = minimum_order_match_distance(q, tr, EUCLID)
    want = dmom_oracle_enum(q, tr, EUCLID)
    if want == INFINITY:
        assert got == INFINITY
    else:
        assert math.isclose(got, want, rel_tol=1e-12, abs_tol=1e-9)


@given(trajectory_st, query_st)
@settings(max_examples=120, deadline=None)
def test_lemma3_dmm_lower_bounds_dmom(tr_spec, q_spec):
    tr, q = _tr(tr_spec), _q(q_spec)
    ev = MatchEvaluator()
    dmm = ev.dmm(q, tr)
    dmom = minimum_order_match_distance(q, tr, EUCLID)
    if dmom != INFINITY:
        assert dmm <= dmom + 1e-9


@given(trajectory_st, query_st)
@settings(max_examples=120, deadline=None)
def test_lemma2_dbm_lower_bounds_dmm(tr_spec, q_spec):
    tr, q = _tr(tr_spec), _q(q_spec)
    ev = MatchEvaluator()
    dmm = ev.dmm(q, tr)
    if dmm != INFINITY:
        assert ev.best_match_distance(q, tr) <= dmm + 1e-9


@given(trajectory_st, query_st)
@settings(max_examples=120, deadline=None)
def test_compression_equivalence(tr_spec, q_spec):
    tr, q = _tr(tr_spec), _q(q_spec)
    full = minimum_order_match_distance(q, tr, EUCLID, compress=False)
    fast = minimum_order_match_distance(q, tr, EUCLID, compress=True)
    if full == INFINITY:
        assert fast == INFINITY
    else:
        assert math.isclose(full, fast, rel_tol=1e-12, abs_tol=1e-9)


@given(trajectory_st, query_st)
@settings(max_examples=120, deadline=None)
def test_mib_check_is_sound(tr_spec, q_spec):
    """order_feasible (the paper's MIB check) must never reject a
    trajectory that has a finite Dmom."""
    tr, q = _tr(tr_spec), _q(q_spec)
    dmom = minimum_order_match_distance(q, tr, EUCLID)
    if dmom != INFINITY:
        assert order_feasible(tr, q)


@given(trajectory_st, query_st)
@settings(max_examples=120, deadline=None)
def test_strict_feasibility_is_exact(tr_spec, q_spec):
    tr, q = _tr(tr_spec), _q(q_spec)
    dmom = minimum_order_match_distance(q, tr, EUCLID)
    assert order_feasible_strict(tr, q) == (dmom != INFINITY)


@given(trajectory_st, query_st, st.floats(min_value=0.0, max_value=50.0))
@settings(max_examples=120, deadline=None)
def test_threshold_early_exit_is_sound(tr_spec, q_spec, threshold):
    """With a threshold, the DP may return inf instead of a value above the
    threshold, but must never corrupt values at or below it."""
    tr, q = _tr(tr_spec), _q(q_spec)
    exact = minimum_order_match_distance(q, tr, EUCLID)
    gated = minimum_order_match_distance(q, tr, EUCLID, threshold=threshold)
    if exact <= threshold:
        assert math.isclose(gated, exact, rel_tol=1e-12, abs_tol=1e-9)
    else:
        assert gated == INFINITY or math.isclose(gated, exact, rel_tol=1e-12)


@given(trajectory_st, st.lists(st.tuples(coord_st, coord_st, nonempty_acts_st), min_size=2, max_size=3))
@settings(max_examples=100, deadline=None)
def test_dropping_a_query_point_never_hurts(tr_spec, q_spec):
    """Monotonicity in the query (Lemma 4 property 2, reformulated):
    matching a prefix of the query costs no more than the whole query."""
    tr = _tr(tr_spec)
    whole = minimum_order_match_distance(_q(q_spec), tr, EUCLID)
    prefix = minimum_order_match_distance(_q(q_spec[:-1]), tr, EUCLID)
    if whole != INFINITY:
        assert prefix <= whole + 1e-9
