"""Lemma-level invariants checked on real generated data (not synthetic
hypothesis inputs): the paper's Lemmas 1-4 on the small fixture database.
"""

import math
import random

import pytest

from repro.core.evaluator import MatchEvaluator
from repro.core.match import INFINITY, PointMatchTable
from repro.core.order_match import minimum_order_match_distance
from repro.core.query import Query, QueryPoint


@pytest.fixture(scope="module")
def cases(small_db):
    """(query, trajectory) pairs where the trajectory matches the query."""
    rng = random.Random(2024)
    ev = MatchEvaluator()
    out = []
    attempts = 0
    while len(out) < 20 and attempts < 500:
        attempts += 1
        tr = small_db.trajectories[rng.randrange(len(small_db))]
        pts = [p for p in tr if p.activities]
        if len(pts) < 2:
            continue
        picked = rng.sample(pts, 2)
        q = Query(
            [
                QueryPoint(p.x, p.y, frozenset(rng.sample(sorted(p.activities), 1)))
                for p in picked
            ]
        )
        if ev.dmm(q, tr) < INFINITY:
            out.append((q, tr))
    assert len(out) == 20
    return out


def test_lemma1_minimum_match_decomposes(cases):
    """Lemma 1: Dmm = sum of per-query-point Dmpm."""
    ev = MatchEvaluator()
    for q, tr in cases:
        total = sum(ev.dmpm(qp, tr) for qp in q)
        assert ev.dmm(q, tr) == pytest.approx(total)


def test_lemma2_best_match_lower_bounds(cases, small_db):
    """Lemma 2: Dbm <= Dmm, for the matching trajectory AND for every
    other trajectory in the database."""
    ev = MatchEvaluator()
    for q, _tr in cases[:5]:
        for other in small_db.trajectories[::10]:
            dmm = ev.dmm(q, other)
            if dmm < INFINITY:
                assert ev.best_match_distance(q, other) <= dmm + 1e-9


def test_lemma3_order_sensitivity_never_cheaper(cases):
    """Lemma 3: Dmm <= Dmom, and equality when the per-point minima are
    already ordered."""
    ev = MatchEvaluator()
    for q, tr in cases:
        dmm, matches = ev.dmm_explained(q, tr)
        dmom = minimum_order_match_distance(q, tr, ev.metric)
        if dmom < INFINITY:
            assert dmm <= dmom + 1e-9
            ordered = all(
                max(matches[i]) <= min(matches[i + 1])
                for i in range(len(matches) - 1)
                if matches[i] and matches[i + 1]
            )
            if ordered:
                assert dmom == pytest.approx(dmm)


def test_lemma4_g_matrix_monotonicity(cases):
    """Lemma 4: G is non-increasing along rows (j grows) and
    non-decreasing down columns (i grows)."""
    ev = MatchEvaluator()
    for q, tr in cases[:8]:
        g = []
        minimum_order_match_distance(q, tr, ev.metric, g_matrix=g)
        for row in g:
            finite = [v for v in row[1:]]
            for a, b in zip(finite, finite[1:]):
                assert b <= a + 1e-9  # property 1: j' > j -> G(i,j') <= G(i,j)
        for i in range(1, len(g)):
            for j in range(1, len(g[i])):
                assert g[i][j] >= g[i - 1][j] - 1e-9  # property 2


def test_theorem1_lower_bound_soundness_on_engine(small_db):
    """Theorem 1 applied: no trajectory the engine returns may beat the
    lower bound that terminated the search — indirectly verified by
    agreement with exhaustive scan on fresh random queries."""
    from repro.core.engine import GATSearchEngine
    from repro.index.gat.index import GATConfig, GATIndex

    ev = MatchEvaluator()
    engine = GATSearchEngine(GATIndex.build(small_db, GATConfig(depth=5, memory_levels=4)))
    rng = random.Random(7)
    for _ in range(8):
        tr = small_db.trajectories[rng.randrange(len(small_db))]
        pts = [p for p in tr if p.activities]
        if len(pts) < 2:
            continue
        q = Query(
            [
                QueryPoint(p.x, p.y, frozenset(rng.sample(sorted(p.activities), 1)))
                for p in rng.sample(pts, 2)
            ]
        )
        brute = sorted(
            d for d in (ev.dmm(q, t) for t in small_db) if not math.isinf(d)
        )[:4]
        got = [r.distance for r in engine.atsq(q, 4)]
        assert got == pytest.approx(brute)
