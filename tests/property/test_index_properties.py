"""Property-based tests for the index substrates."""

import random

from hypothesis import given, settings, strategies as st

from repro.geometry.primitives import BoundingBox, Rect
from repro.geometry.zcurve import z_decode, z_encode, z_parent
from repro.index.gat.tas import TrajectorySketch, optimal_intervals
from repro.index.rtree import RTree


class TestZCurveProperties:
    @given(
        st.integers(min_value=1, max_value=10),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=100, deadline=None)
    def test_roundtrip(self, depth, rng):
        cx = rng.randrange(1 << depth)
        cy = rng.randrange(1 << depth)
        assert z_decode(z_encode(cx, cy, depth), depth) == (cx, cy)

    @given(st.integers(min_value=2, max_value=10), st.randoms(use_true_random=False))
    @settings(max_examples=100, deadline=None)
    def test_parent_halves_coordinates(self, depth, rng):
        cx = rng.randrange(1 << depth)
        cy = rng.randrange(1 << depth)
        z = z_encode(cx, cy, depth)
        assert z_decode(z_parent(z), depth - 1) == (cx >> 1, cy >> 1)


class TestRectProperties:
    rect_st = st.tuples(
        st.floats(-100, 100), st.floats(-100, 100), st.floats(0, 50), st.floats(0, 50)
    ).map(lambda t: Rect(t[0], t[1], t[0] + t[2], t[1] + t[3]))
    point_st = st.tuples(st.floats(-150, 150), st.floats(-150, 150))

    @given(rect_st, rect_st)
    @settings(max_examples=200, deadline=None)
    def test_union_contains_both(self, a, b):
        u = a.union(b)
        assert u.contains_rect(a) and u.contains_rect(b)

    @given(rect_st, point_st)
    @settings(max_examples=200, deadline=None)
    def test_min_dist_zero_iff_contained(self, r, p):
        if r.contains_point(p):
            assert r.min_dist(p) == 0.0
        else:
            assert r.min_dist(p) > 0.0

    @given(rect_st, rect_st, point_st)
    @settings(max_examples=200, deadline=None)
    def test_min_dist_monotone_in_containment(self, a, b, p):
        u = a.union(b)
        assert u.min_dist(p) <= a.min_dist(p) + 1e-12


class TestTASProperties:
    ids_st = st.frozensets(st.integers(min_value=0, max_value=300), min_size=1, max_size=25)

    @given(ids_st, st.integers(min_value=1, max_value=5))
    @settings(max_examples=200, deadline=None)
    def test_no_false_dismissals(self, ids, m):
        sketch = TrajectorySketch.from_activities(ids, m)
        assert sketch.covers_all(ids)

    @given(ids_st, st.integers(min_value=1, max_value=5))
    @settings(max_examples=200, deadline=None)
    def test_intervals_sorted_and_disjoint(self, ids, m):
        intervals = optimal_intervals(sorted(ids), m)
        assert len(intervals) <= m
        for (lo1, hi1), (lo2, hi2) in zip(intervals, intervals[1:]):
            assert lo1 <= hi1 < lo2 <= hi2

    @given(ids_st)
    @settings(max_examples=100, deadline=None)
    def test_span_decreases_with_m(self, ids):
        spans = [
            TrajectorySketch.from_activities(ids, m).total_span() for m in (1, 2, 4)
        ]
        assert spans[0] >= spans[1] >= spans[2]


class TestRTreeProperties:
    @given(
        st.lists(
            st.tuples(st.floats(0, 100), st.floats(0, 100)),
            min_size=1,
            max_size=60,
        ),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_bulk_load_range_search_exact(self, coords, rng):
        items = [(x, y, i) for i, (x, y) in enumerate(coords)]
        tree = RTree.bulk_load(items, max_entries=4)
        tree.check_invariants()
        x1, x2 = sorted((rng.uniform(0, 100), rng.uniform(0, 100)))
        y1, y2 = sorted((rng.uniform(0, 100), rng.uniform(0, 100)))
        rect = Rect(x1, y1, x2, y2)
        got = {e.payload for e in tree.range_search(rect)}
        want = {i for x, y, i in items if rect.contains_point((x, y))}
        assert got == want

    @given(
        st.lists(
            st.tuples(st.floats(0, 100), st.floats(0, 100)),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_insert_preserves_entries_and_invariants(self, coords):
        tree = RTree(max_entries=4)
        for i, (x, y) in enumerate(coords):
            tree.insert(x, y, i)
        tree.check_invariants()
        assert sorted(e.payload for e in tree.iter_entries()) == list(
            range(len(coords))
        )
