"""Unit tests for the hierarchical quad-grid."""

import pytest

from repro.geometry.grid import Cell, HierarchicalGrid
from repro.geometry.primitives import BoundingBox


@pytest.fixture
def box():
    return BoundingBox(0.0, 0.0, 64.0, 64.0)


@pytest.fixture
def grid(box):
    return HierarchicalGrid(box, depth=4)  # 16 x 16 leaves


class TestStructure:
    def test_level_count(self, grid):
        assert len(grid.levels) == 4
        assert grid.level(1).side == 2
        assert grid.level(4).side == 16

    def test_bad_depth_raises(self, box):
        with pytest.raises(ValueError):
            HierarchicalGrid(box, depth=0)

    def test_level_out_of_range_raises(self, grid):
        with pytest.raises(ValueError):
            grid.level(0)
        with pytest.raises(ValueError):
            grid.level(5)


class TestLocate:
    def test_locate_leaf_contains_point(self, grid):
        for p in [(0.1, 0.1), (63.9, 63.9), (32.0, 16.0), (7.3, 55.5)]:
            cell = grid.locate_leaf(p)
            assert cell.level == 4
            assert grid.rect(cell).contains_point(p)

    def test_locate_any_level_contains_point(self, grid):
        p = (40.5, 22.25)
        for lvl in range(1, 5):
            cell = grid.locate(p, lvl)
            assert grid.rect(cell).contains_point(p)

    def test_points_outside_box_clamp(self, grid):
        cell = grid.locate_leaf((-5.0, 100.0))
        assert cell.level == 4  # clamped, no crash
        assert 0 <= cell.code < 256

    def test_locate_consistent_with_ancestors(self, grid):
        p = (13.0, 59.0)
        leaf = grid.locate_leaf(p)
        for lvl in range(1, 4):
            assert grid.locate(p, lvl) == grid.cell_of_leaf_at(leaf.code, lvl)


class TestHierarchyLinks:
    def test_parent_rect_contains_child_rect(self, grid):
        cell = grid.locate_leaf((10.0, 10.0))
        child_rect = grid.rect(cell)
        parent = cell.parent()
        assert grid.rect(parent).contains_rect(child_rect)

    def test_children_partition_parent(self, grid):
        parent = Cell(2, 5)
        kids = parent.children()
        assert len(kids) == 4
        total_area = sum(grid.rect(k).area for k in kids)
        assert total_area == pytest.approx(grid.rect(parent).area)
        for k in kids:
            assert grid.rect(parent).contains_rect(grid.rect(k))

    def test_level1_has_no_parent(self):
        with pytest.raises(ValueError):
            Cell(1, 0).parent()

    def test_ancestors_walk_to_root_level(self, grid):
        leaf = grid.locate_leaf((1.0, 1.0))
        chain = list(grid.ancestors(leaf))
        assert [c.level for c in chain] == [3, 2, 1]


class TestMinDist:
    def test_zero_inside(self, grid):
        p = (33.0, 33.0)
        cell = grid.locate_leaf(p)
        assert grid.min_dist(p, cell) == 0.0

    def test_child_min_dist_at_least_parent(self, grid):
        # MINDIST is monotone up the hierarchy: the traversal relies on it.
        p = (1.0, 1.0)
        far_leaf = grid.locate_leaf((60.0, 60.0))
        d_leaf = grid.min_dist(p, far_leaf)
        for anc in grid.ancestors(far_leaf):
            assert grid.min_dist(p, anc) <= d_leaf + 1e-12

    def test_cell_of_leaf_at_validates(self, grid):
        with pytest.raises(ValueError):
            grid.cell_of_leaf_at(0, 9)
