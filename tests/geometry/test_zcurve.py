"""Unit tests for the Morton (Z-order) curve."""

import pytest

from repro.geometry.zcurve import z_children, z_decode, z_encode, z_parent


class TestEncodeDecode:
    def test_known_small_codes(self):
        # Classic Morton layout at depth 1: (0,0)=0 (1,0)=1 (0,1)=2 (1,1)=3.
        assert z_encode(0, 0, 1) == 0
        assert z_encode(1, 0, 1) == 1
        assert z_encode(0, 1, 1) == 2
        assert z_encode(1, 1, 1) == 3

    def test_roundtrip_exhaustive_depth_3(self):
        seen = set()
        for cx in range(8):
            for cy in range(8):
                z = z_encode(cx, cy, 3)
                assert z_decode(z, 3) == (cx, cy)
                seen.add(z)
        assert seen == set(range(64))  # bijection onto [0, 4^3)

    def test_roundtrip_large_coordinates(self):
        assert z_decode(z_encode(255, 255, 8), 8) == (255, 255)
        assert z_decode(z_encode(0, 255, 8), 8) == (0, 255)
        assert z_decode(z_encode(65535, 1, 16), 16) == (65535, 1)

    def test_out_of_range_cell_raises(self):
        with pytest.raises(ValueError):
            z_encode(4, 0, 2)  # 2-grid is 4x4, max coord 3
        with pytest.raises(ValueError):
            z_encode(-1, 0, 2)

    def test_bad_depth_raises(self):
        with pytest.raises(ValueError):
            z_encode(0, 0, 0)
        with pytest.raises(ValueError):
            z_decode(0, 0)
        with pytest.raises(ValueError):
            z_encode(0, 0, 17)

    def test_decode_out_of_range_raises(self):
        with pytest.raises(ValueError):
            z_decode(16, 2)  # depth 2 codes live in [0, 16)


class TestHierarchy:
    def test_parent_is_shift(self):
        z = z_encode(13, 7, 4)
        px, py = z_decode(z_parent(z), 3)
        assert (px, py) == (13 // 2, 7 // 2)

    def test_children_cover_parent(self):
        z = z_encode(2, 3, 3)
        kids = z_children(z)
        assert len(kids) == 4
        for kid in kids:
            assert z_parent(kid) == z
        # Children decode to the 2x2 block at doubled coordinates.
        coords = sorted(z_decode(k, 4) for k in kids)
        assert coords == [(4, 6), (4, 7), (5, 6), (5, 7)]

    def test_parent_child_consistency_random(self):
        import random

        rng = random.Random(5)
        for _ in range(200):
            depth = rng.randint(2, 10)
            cx = rng.randrange(1 << depth)
            cy = rng.randrange(1 << depth)
            z = z_encode(cx, cy, depth)
            assert z_decode(z_parent(z), depth - 1) == (cx >> 1, cy >> 1)
