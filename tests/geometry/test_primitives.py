"""Unit tests for rectangles, bounding boxes and MINDIST."""

import math

import pytest

from repro.geometry.primitives import BoundingBox, Rect, euclidean, min_dist_point_rect


class TestRectConstruction:
    def test_from_point_is_degenerate(self):
        r = Rect.from_point((2.0, 3.0))
        assert r.min_x == r.max_x == 2.0
        assert r.min_y == r.max_y == 3.0
        assert r.area == 0.0

    def test_from_points_is_tight(self):
        r = Rect.from_points([(0, 0), (4, 1), (2, 5), (-1, 2)])
        assert (r.min_x, r.min_y, r.max_x, r.max_y) == (-1, 0, 4, 5)

    def test_from_points_empty_raises(self):
        with pytest.raises(ValueError):
            Rect.from_points([])

    def test_malformed_raises(self):
        with pytest.raises(ValueError):
            Rect(1.0, 0.0, 0.0, 1.0)

    def test_geometry_accessors(self):
        r = Rect(0, 0, 4, 2)
        assert r.width == 4
        assert r.height == 2
        assert r.area == 8
        assert r.margin == 6
        assert r.center == (2.0, 1.0)


class TestRectRelations:
    def test_contains_point_boundary_inclusive(self):
        r = Rect(0, 0, 1, 1)
        assert r.contains_point((0, 0))
        assert r.contains_point((1, 1))
        assert r.contains_point((0.5, 0.5))
        assert not r.contains_point((1.0001, 0.5))

    def test_contains_rect(self):
        outer = Rect(0, 0, 10, 10)
        inner = Rect(2, 2, 5, 5)
        assert outer.contains_rect(inner)
        assert not inner.contains_rect(outer)
        assert outer.contains_rect(outer)

    def test_intersects(self):
        a = Rect(0, 0, 2, 2)
        assert a.intersects(Rect(1, 1, 3, 3))
        assert a.intersects(Rect(2, 2, 3, 3))  # touching counts
        assert not a.intersects(Rect(2.1, 2.1, 3, 3))

    def test_union_and_extend(self):
        a = Rect(0, 0, 1, 1)
        b = Rect(2, 3, 4, 5)
        u = a.union(b)
        assert (u.min_x, u.min_y, u.max_x, u.max_y) == (0, 0, 4, 5)
        e = a.extend_point((-1, 0.5))
        assert e.min_x == -1 and e.max_x == 1

    def test_enlargement(self):
        a = Rect(0, 0, 2, 2)
        assert a.enlargement(Rect(0.5, 0.5, 1, 1)) == 0.0
        assert a.enlargement(Rect(0, 0, 4, 2)) == pytest.approx(4.0)


class TestMinDist:
    def test_inside_is_zero(self):
        r = Rect(0, 0, 2, 2)
        assert r.min_dist((1, 1)) == 0.0
        assert r.min_dist((0, 0)) == 0.0  # boundary

    def test_axis_aligned_gap(self):
        r = Rect(0, 0, 2, 2)
        assert r.min_dist((5, 1)) == pytest.approx(3.0)
        assert r.min_dist((1, -4)) == pytest.approx(4.0)

    def test_corner_gap(self):
        r = Rect(0, 0, 2, 2)
        assert r.min_dist((5, 6)) == pytest.approx(math.hypot(3, 4))

    def test_function_form_matches_method(self):
        r = Rect(0, 0, 2, 2)
        p = (7.3, -1.2)
        assert min_dist_point_rect(p, r) == r.min_dist(p)

    def test_min_dist_lower_bounds_any_inner_point(self):
        r = Rect(1, 1, 3, 4)
        q = (-2.0, 0.5)
        for corner in r.corners():
            assert r.min_dist(q) <= euclidean(q, corner) + 1e-12


class TestBoundingBox:
    def test_requires_positive_extent(self):
        with pytest.raises(ValueError):
            BoundingBox(0, 0, 0, 1)

    def test_from_points_pads(self):
        box = BoundingBox.from_points([(0, 0), (10, 10)])
        assert box.min_x < 0 < 10 < box.max_x
        assert box.min_y < 0 < 10 < box.max_y

    def test_normalise_in_unit_square(self):
        box = BoundingBox(0, 0, 10, 20)
        for p in [(0, 0), (10, 20), (5, 5), (-3, 25)]:  # clamps out-of-range
            nx, ny = box.normalise(p)
            assert 0.0 <= nx < 1.0
            assert 0.0 <= ny < 1.0

    def test_normalise_is_monotone(self):
        box = BoundingBox(0, 0, 10, 10)
        ax, _ = box.normalise((2, 5))
        bx, _ = box.normalise((7, 5))
        assert ax < bx

    def test_as_rect_roundtrip(self):
        box = BoundingBox(1, 2, 3, 4)
        r = box.as_rect()
        assert (r.min_x, r.min_y, r.max_x, r.max_y) == (1, 2, 3, 4)


def test_euclidean_basic():
    assert euclidean((0, 0), (3, 4)) == pytest.approx(5.0)
    assert euclidean((1, 1), (1, 1)) == 0.0
