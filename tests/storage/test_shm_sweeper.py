"""Orphaned-segment sweeper: reclaim what killed writers left behind.

A SIGKILLed store writer never unlinks its segments; the sweeper scans
``/dev/shm`` for this store's pid-stamped names and removes exactly the
ones whose creator is dead.  Fake orphans are planted as plain files in
``/dev/shm`` (same namespace POSIX shared memory uses) so the resource
tracker is never involved; the dead pid comes from a reaped subprocess.
"""

import os
import subprocess
import sys

import pytest

from repro.cli import main as cli_main
from repro.data.generator import CheckInGenerator, GeneratorConfig
from repro.storage import shm

pytestmark = pytest.mark.skipif(
    not os.path.isdir(shm._SHM_DIR), reason="needs /dev/shm (POSIX shm)"
)


@pytest.fixture()
def db():
    config = GeneratorConfig(
        n_users=12,
        n_venues=30,
        vocabulary_size=40,
        width_km=5.0,
        height_km=5.0,
        n_hotspots=2,
        checkins_per_user_mean=6.0,
        activities_per_checkin_mean=2.0,
        seed=4242,
    )
    return CheckInGenerator(config).generate(name="sweeper-db")


@pytest.fixture()
def dead_pid():
    """A pid guaranteed dead: a subprocess that already exited and was
    reaped (Popen.wait), so os.kill(pid, 0) raises ProcessLookupError."""
    proc = subprocess.Popen([sys.executable, "-c", "pass"])
    proc.wait()
    assert not shm._pid_alive(proc.pid)
    return proc.pid


def _plant(name: str) -> str:
    path = os.path.join(shm._SHM_DIR, name)
    with open(path, "wb") as fh:
        fh.write(b"\x00" * 16)
    return path


@pytest.fixture()
def planted(request):
    """Plant fake /dev/shm entries by name; always cleaned up."""
    paths = []

    def plant(name):
        path = _plant(name)
        paths.append(path)
        return path

    yield plant
    for path in paths:
        try:
            os.unlink(path)
        except FileNotFoundError:
            pass


def test_segment_names_embed_the_writer_pid(db):
    with shm.SharedTrajectoryStore.for_database(db) as store:
        prefix = f"{shm._NAME_PREFIX}{os.getpid()}-"
        assert store.spec().base.name.startswith(prefix)
        for name in shm.active_segments():
            assert name.startswith(prefix)


def test_sweeper_removes_only_dead_writers_segments(db, dead_pid, planted):
    orphan = f"{shm._NAME_PREFIX}{dead_pid}-cafe0001"
    orphan_path = planted(orphan)
    with shm.SharedTrajectoryStore.for_database(db) as store:
        removed = shm.cleanup_orphans()
        assert orphan in removed
        assert not os.path.exists(orphan_path)
        # The live writer's own segments survived the sweep.
        base = store.spec().base.name
        assert base not in removed
        assert os.path.exists(os.path.join(shm._SHM_DIR, base))


def test_dry_run_reports_but_leaves_orphans(dead_pid, planted):
    orphan = f"{shm._NAME_PREFIX}{dead_pid}-beef0002"
    path = planted(orphan)
    assert shm.cleanup_orphans(dry_run=True) == [orphan]
    assert os.path.exists(path)
    # A real sweep then reclaims it.
    assert shm.cleanup_orphans() == [orphan]
    assert not os.path.exists(path)


def test_live_pid_segments_are_never_touched(planted):
    alive = f"{shm._NAME_PREFIX}{os.getpid()}-feed0003"
    path = planted(alive)
    assert alive not in shm.cleanup_orphans()
    assert os.path.exists(path)


def test_non_pid_names_are_skipped(planted):
    weird = f"{shm._NAME_PREFIX}notapid-dead0004"
    path = planted(weird)
    assert weird not in shm.cleanup_orphans()
    assert os.path.exists(path)


def test_unrelated_shm_entries_are_ignored(dead_pid, planted):
    foreign = f"some-other-app-{dead_pid}"
    path = planted(foreign)
    assert shm.cleanup_orphans() == []
    assert os.path.exists(path)


def test_cli_shm_sweep_dry_run(dead_pid, planted, capsys):
    orphan = f"{shm._NAME_PREFIX}{dead_pid}-face0005"
    path = planted(orphan)
    assert cli_main(["shm-sweep", "--dry-run"]) == 0
    out = capsys.readouterr().out
    assert orphan in out
    assert "left in place" in out
    assert os.path.exists(path)
    assert cli_main(["shm-sweep"]) == 0
    out = capsys.readouterr().out
    assert "reclaimed" in out
    assert not os.path.exists(path)
    assert cli_main(["shm-sweep"]) == 0
    assert "no orphaned" in capsys.readouterr().out
