"""The shared thread-safe LRU cache."""

import threading

import pytest

from repro.storage.cache import LRUCache


class TestBasics:
    def test_put_get(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("missing") is None
        assert cache.get("missing", 42) == 42

    def test_capacity_evicts_lru(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a's recency
        cache.put("c", 3)  # evicts b, the least recently used
        assert "a" in cache and "c" in cache
        assert "b" not in cache
        assert len(cache) == 2

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_get_or_load_loads_once(self):
        cache = LRUCache(4)
        calls = []

        def loader():
            calls.append(1)
            return "value"

        assert cache.get_or_load("k", loader) == "value"
        assert cache.get_or_load("k", loader) == "value"
        assert len(calls) == 1

    def test_get_or_load_caches_none(self):
        """None is a legitimate cached value, not a miss sentinel."""
        cache = LRUCache(4)
        calls = []

        def loader():
            calls.append(1)
            return None

        assert cache.get_or_load("k", loader) is None
        assert cache.get_or_load("k", loader) is None
        assert len(calls) == 1

    def test_clear_keeps_accounting(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        stats = cache.stats()
        assert stats.hits == 1


class TestAccounting:
    def test_hit_miss_counters(self):
        cache = LRUCache(4)
        cache.get("a")  # miss
        cache.put("a", 1)
        cache.get("a")  # hit
        cache.get("b")  # miss
        stats = cache.stats()
        assert stats.hits == 1
        assert stats.misses == 2
        assert stats.lookups == 3
        assert stats.hit_rate == pytest.approx(1 / 3)

    def test_empty_hit_rate_is_zero(self):
        assert LRUCache(4).stats().hit_rate == 0.0


class TestConcurrency:
    def test_parallel_mixed_operations(self):
        cache = LRUCache(64)
        errors = []

        def worker(seed):
            try:
                for i in range(500):
                    key = (seed * 31 + i) % 100
                    if i % 3 == 0:
                        cache.put(key, key)
                    else:
                        value = cache.get(key)
                        assert value is None or value == key
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(s,)) for s in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors
        assert len(cache) <= 64
