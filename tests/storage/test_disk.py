"""Unit tests for the simulated disk."""

import threading

import pytest

from repro.storage.disk import SimulatedDisk
from repro.storage.serialization import deserialize_obj, serialize_obj


class TestSerialization:
    def test_roundtrip(self):
        obj = {"a": (1, 2, 3), "b": frozenset({4, 5})}
        assert deserialize_obj(serialize_obj(obj)) == obj


class TestStoreLoad:
    def test_put_get_roundtrip(self):
        disk = SimulatedDisk()
        disk.put("k", [1, 2, 3])
        assert disk.get("k") == [1, 2, 3]

    def test_get_missing_raises(self):
        with pytest.raises(KeyError):
            SimulatedDisk().get("nope")

    def test_get_or_none(self):
        disk = SimulatedDisk()
        assert disk.get_or_none("nope") is None
        disk.put("k", 7)
        assert disk.get_or_none("k") == 7

    def test_contains_len_keys(self):
        disk = SimulatedDisk()
        disk.put("a", 1)
        disk.put("b", 2)
        assert "a" in disk and "c" not in disk
        assert len(disk) == 2
        assert set(disk.keys()) == {"a", "b"}

    def test_overwrite_replaces(self):
        disk = SimulatedDisk()
        disk.put("k", 1)
        disk.put("k", 2)
        assert disk.get("k") == 2
        assert len(disk) == 1


class TestAccounting:
    def test_page_rounding_minimum_one(self):
        disk = SimulatedDisk(page_size=4096)
        pages = disk.put("small", 1)
        assert pages == 1

    def test_page_rounding_large_object(self):
        disk = SimulatedDisk(page_size=100)
        payload = list(range(1000))  # serialises to well over 100 bytes
        pages = disk.put("big", payload)
        assert pages > 1
        assert pages == disk.total_pages()

    def test_read_counters(self):
        disk = SimulatedDisk(page_size=64)
        disk.put("k", list(range(100)))
        before = disk.stats.snapshot()
        disk.get("k")
        disk.get("k")
        delta = disk.stats.delta(before)
        assert delta.reads == 2
        assert delta.pages_read == 2 * disk.total_pages()
        assert delta.bytes_read > 0

    def test_miss_counts_as_read_with_zero_pages(self):
        disk = SimulatedDisk()
        before = disk.stats.snapshot()
        disk.get_or_none("missing")
        delta = disk.stats.delta(before)
        assert delta.reads == 1
        assert delta.pages_read == 0

    def test_reset_stats(self):
        disk = SimulatedDisk()
        disk.put("k", 1)
        disk.get("k")
        disk.reset_stats()
        assert disk.stats.reads == 0
        assert disk.stats.writes == 0

    def test_snapshot_is_independent(self):
        disk = SimulatedDisk()
        disk.put("k", 1)
        snap = disk.stats.snapshot()
        disk.get("k")
        assert snap.reads == 0
        assert disk.stats.reads == 1

    def test_bad_page_size_rejected(self):
        with pytest.raises(ValueError):
            SimulatedDisk(page_size=0)

    def test_total_bytes_tracks_store(self):
        disk = SimulatedDisk()
        assert disk.total_bytes() == 0
        disk.put("k", "x" * 1000)
        assert disk.total_bytes() > 1000


class TestPerContextTracking:
    def test_track_attributes_this_threads_io(self):
        disk = SimulatedDisk()
        disk.put("k", [1, 2, 3])
        with disk.track() as tracker:
            disk.get("k")
            disk.get_or_none("missing")
        assert tracker.reads == 2
        assert tracker.pages_read == 1  # the miss transfers zero pages
        # I/O outside the block is not attributed.
        disk.get("k")
        assert tracker.reads == 2

    def test_trackers_nest(self):
        disk = SimulatedDisk()
        disk.put("k", 1)
        with disk.track() as outer:
            disk.get("k")
            with disk.track() as inner:
                disk.get("k")
        assert inner.reads == 1
        assert outer.reads == 2

    def test_nested_trackers_with_equal_counters_detach_correctly(self):
        """Regression: DiskStats compares by value, so tracker removal
        must be by identity — two equal (e.g. both-empty) nested trackers
        must not alias on exit."""
        disk = SimulatedDisk()
        disk.put("k", 1)
        with disk.track() as outer:
            with disk.track():
                pass  # inner exits with counters equal to outer's (all zero)
            disk.get("k")  # must land on outer, not the discarded inner
        assert outer.reads == 1

    def test_tracker_counts_writes(self):
        disk = SimulatedDisk()
        with disk.track() as tracker:
            disk.put("k", [1] * 100)
        assert tracker.writes == 1
        assert tracker.pages_written >= 1

    def test_concurrent_trackers_do_not_cross_attribute(self):
        """The seed's snapshot/delta protocol misattributed reads across
        concurrent queries; per-thread trackers must not."""
        disk = SimulatedDisk()
        for i in range(8):
            disk.put(i, list(range(50)))
        per_thread = [None] * 8
        barrier = threading.Barrier(8)
        errors = []

        def worker(i):
            try:
                barrier.wait(timeout=30)
                with disk.track() as tracker:
                    for _ in range(i + 1):  # thread i does i+1 reads
                        disk.get(i)
                per_thread[i] = tracker
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors
        for i, tracker in enumerate(per_thread):
            assert tracker.reads == i + 1
        # The global counters saw everything exactly once.
        assert disk.stats.reads == sum(i + 1 for i in range(8))


class TestConcurrentReadsGate:
    def test_validation(self):
        with pytest.raises(ValueError):
            SimulatedDisk(concurrent_reads=0)
        assert SimulatedDisk().concurrent_reads is None
        assert SimulatedDisk(concurrent_reads=3).concurrent_reads == 3

    def test_single_arm_serializes_concurrent_reads(self):
        """concurrent_reads=1 models one disk arm: two threads reading at
        once must queue, so total wall >= 2 x latency; the default
        (unbounded) disk overlaps the same two sleeps."""
        import threading
        import time as _time

        def timed_pair(disk):
            disk.put("x", [1, 2, 3])
            disk.put("y", [4, 5, 6])
            barrier = threading.Barrier(2)

            def reader(key):
                barrier.wait()
                disk.get(key)

            threads = [
                threading.Thread(target=reader, args=(k,)) for k in ("x", "y")
            ]
            t0 = _time.perf_counter()
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            return _time.perf_counter() - t0

        latency = 0.08
        # The serialized lower bound is sleep-guaranteed and never flaky;
        # the overlap comparison is wall-clock and scheduling-sensitive,
        # so demand a real margin (half a sleep) but allow a couple of
        # retries for a CI runner that stalls a thread mid-measurement.
        for attempt in range(3):
            serialized = timed_pair(
                SimulatedDisk(read_latency_s=latency, concurrent_reads=1)
            )
            overlapped = timed_pair(SimulatedDisk(read_latency_s=latency))
            assert serialized >= 2 * latency * 0.95
            if overlapped < serialized - latency / 2:
                break
        else:
            raise AssertionError(
                f"unbounded disk never overlapped: {overlapped:.3f}s vs "
                f"serialized {serialized:.3f}s"
            )

    def test_gate_leaves_accounting_untouched(self):
        disk = SimulatedDisk(concurrent_reads=1)
        disk.put("k", list(range(50)))
        with disk.track() as tracker:
            disk.get("k")
            disk.get_many(["k", "k"])
        assert tracker.reads == 3
        assert disk.stats.reads == 3

    def test_get_many_pays_batch_latency_through_gate(self):
        import time as _time

        disk = SimulatedDisk(read_latency_s=0.02, concurrent_reads=1)
        disk.put("a", 1)
        disk.put("b", 2)
        t0 = _time.perf_counter()
        assert disk.get_many(["a", "b"]) == [1, 2]
        assert _time.perf_counter() - t0 >= 0.04 * 0.95
