"""Shared-memory trajectory store lifecycle.

The store's contract is strict ownership: the writer that packed a
segment is the only party that ever unlinks it, does so exactly once,
and leaves nothing behind — readers attach by name, never clean up, and
get a clear error when they attach after the writer is gone.
"""

import gc
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.data.generator import CheckInGenerator, GeneratorConfig
from repro.model.trajectory import ActivityTrajectory
from repro.storage import shm


@pytest.fixture()
def db():
    config = GeneratorConfig(
        n_users=12,
        n_venues=30,
        vocabulary_size=40,
        width_km=5.0,
        height_km=5.0,
        n_hotspots=2,
        checkins_per_user_mean=6.0,
        activities_per_checkin_mean=2.0,
        seed=4242,
    )
    return CheckInGenerator(config).generate(name="shm-db")


def _segment_exists(name: str) -> bool:
    """Probe the OS directly, bypassing the module's reader cache."""
    try:
        probe = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    # Attaching registered this probe with the resource tracker as if we
    # created it; hand responsibility straight back before closing.
    from multiprocessing import resource_tracker

    try:
        resource_tracker.unregister(probe._name, "shared_memory")
    except Exception:
        pass
    probe.close()
    return True


def test_close_unlinks_segments(db):
    store = shm.SharedTrajectoryStore.for_database(db)
    spec = store.spec()
    assert _segment_exists(spec.base.name)
    assert spec.base.name in shm.active_segments()
    store.close()
    assert not _segment_exists(spec.base.name)
    assert spec.base.name not in shm.active_segments()


def test_double_close_is_idempotent(db):
    store = shm.SharedTrajectoryStore.for_database(db)
    store.close()
    store.close()  # must not raise (FileNotFoundError is swallowed)
    assert store.closed


def test_use_after_close_raises(db):
    store = shm.SharedTrajectoryStore.for_database(db)
    store.close()
    with pytest.raises(RuntimeError, match="after close"):
        store.spec()
    with pytest.raises(RuntimeError, match="after close"):
        store.base_arrays()
    with pytest.raises(RuntimeError, match="after close"):
        store.sync(db)


def test_attach_after_writer_close_is_a_clear_error(db):
    """A reader resolving a spec whose writer already unlinked must get
    the actionable RuntimeError, not a raw FileNotFoundError.  (Within
    one process this needs a name the reader cache has never seen —
    exactly the situation of a worker attaching after the parent died.)"""
    store = shm.SharedTrajectoryStore.for_database(db)
    spec = store.spec()
    store.close()
    with pytest.raises(RuntimeError, match="gone"):
        shm.attach_arrays(spec.base)
    with pytest.raises(RuntimeError, match="gone"):
        shm.attach_database(spec, db.vocabulary)


def test_finalizer_backstop_unlinks_dropped_store(db):
    store = shm.SharedTrajectoryStore.for_database(db)
    name = store.spec().base.name
    del store
    gc.collect()
    assert not _segment_exists(name)
    assert name not in shm.active_segments()


def test_context_manager_closes(db):
    with shm.SharedTrajectoryStore.for_database(db) as store:
        name = store.spec().base.name
        assert _segment_exists(name)
    assert store.closed
    assert not _segment_exists(name)


def test_attach_views_equal_source_columns(db):
    with shm.SharedTrajectoryStore.for_database(db) as store:
        packed = store.base_arrays()
        attached = shm.attach_arrays(store.spec().base)
        original = db.to_arrays()
        for (name_a, a), (_n, b), (_n2, c) in zip(
            original.field_arrays(), packed.field_arrays(), attached.field_arrays()
        ):
            assert np.array_equal(a, b), name_a
            assert np.array_equal(a, c), name_a


def test_attached_database_is_cached_per_spec(db):
    with shm.SharedTrajectoryStore.for_database(db) as store:
        first = shm.attach_database(store.spec(), db.vocabulary, name="cache-probe")
        second = shm.attach_database(store.spec(), db.vocabulary, name="cache-probe")
        assert first is second


def test_sync_publishes_cumulative_delta_and_retires_old_one(db):
    extra = CheckInGenerator(
        GeneratorConfig(
            n_users=4,
            n_venues=20,
            vocabulary_size=40,
            width_km=5.0,
            height_km=5.0,
            n_hotspots=2,
            checkins_per_user_mean=5.0,
            activities_per_checkin_mean=2.0,
            seed=777,
        )
    ).generate(name="extra")
    with shm.SharedTrajectoryStore.for_database(db) as store:
        spec0 = store.spec()
        assert spec0.delta is None
        # No growth: sync is a pure read and the spec compares equal.
        assert store.sync(db) == spec0

        newcomers = [
            ActivityTrajectory(10_000 + i, tr.points)
            for i, tr in enumerate(extra.trajectories)
        ]
        db.add(newcomers[0])
        spec1 = store.sync(db)
        assert spec1.delta is not None and spec1 != spec0
        attached1 = shm.attach_database(spec1, db.vocabulary, name="delta-probe")
        assert len(attached1) == len(db)
        assert 10_000 in attached1

        # Second growth: the delta is cumulative and the superseded delta
        # segment is unlinked (readers re-attach through the new spec).
        db.add(newcomers[1])
        spec2 = store.sync(db)
        assert spec2.delta.name != spec1.delta.name
        assert not _segment_exists(spec1.delta.name)
        attached2 = shm.attach_database(spec2, db.vocabulary, name="delta-probe")
        assert {10_000, 10_001} <= {tr.trajectory_id for tr in attached2}

        # Shrinking below the base is a contract violation, loudly.
        with pytest.raises(ValueError, match="shrank"):
            store.sync(
                type(db).from_trajectories(
                    db.trajectories[:2], db.vocabulary, name="shrunk"
                )
            )
    assert shm.active_segments() == []
