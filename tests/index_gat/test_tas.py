"""Unit tests for the Trajectory Activity Sketch (TAS)."""

import itertools

import pytest

from repro.index.gat.tas import (
    TrajectorySketch,
    build_sketches,
    optimal_intervals,
    sketch_memory_bytes,
)


class TestOptimalIntervals:
    def test_empty(self):
        assert optimal_intervals([], 3) == ()

    def test_fewer_ids_than_intervals(self):
        assert optimal_intervals([4, 9], 3) == ((4, 4), (9, 9))

    def test_single_interval_spans_all(self):
        assert optimal_intervals([1, 5, 9], 1) == ((1, 9),)

    def test_splits_at_largest_gaps(self):
        # Gaps: 1-2:1, 2-10:8, 10-11:1, 11-30:19. Two intervals -> split at 19.
        assert optimal_intervals([1, 2, 10, 11, 30], 2) == ((1, 11), (30, 30))
        # Three intervals -> split at 19 and 8.
        assert optimal_intervals([1, 2, 10, 11, 30], 3) == ((1, 2), (10, 11), (30, 30))

    def test_duplicates_removed(self):
        assert optimal_intervals([3, 3, 7, 7], 2) == ((3, 3), (7, 7))

    def test_unsorted_rejected(self):
        with pytest.raises(ValueError):
            optimal_intervals([5, 1], 2)

    def test_zero_intervals_rejected(self):
        with pytest.raises(ValueError):
            optimal_intervals([1], 0)

    def test_optimality_against_bruteforce(self):
        """The top-gap split must minimise total span over ALL possible
        contiguous partitions (the paper's optimality claim)."""
        import random

        rng = random.Random(8)

        def brute_best(ids, m):
            best = float("inf")
            n = len(ids)
            for cuts in itertools.combinations(range(1, n), min(m - 1, n - 1)):
                bounds = [0, *cuts, n]
                span = sum(
                    ids[bounds[i + 1] - 1] - ids[bounds[i]]
                    for i in range(len(bounds) - 1)
                )
                best = min(best, span)
            return best

        for _ in range(40):
            n = rng.randint(2, 10)
            ids = sorted(rng.sample(range(100), n))
            m = rng.randint(1, 4)
            got = sum(hi - lo for lo, hi in optimal_intervals(ids, m))
            want = brute_best(ids, m)
            assert got == want, (ids, m)


class TestSketchCoverage:
    def test_figure2_sketches(self):
        """Figure 2(iii): Tr1 -> [a,b][c,e]; Tr2 -> [a,c][d,f]; Tr3 -> [b,c][e,f]
        with the letters a..f as IDs 0..5."""
        a, b, c, d, e, f = range(6)
        tr1 = TrajectorySketch.from_activities({a, b, c, d, e}, 2)
        tr2 = TrajectorySketch.from_activities({a, b, c, d, e, f}, 2)
        tr3 = TrajectorySketch.from_activities({b, c, e, f}, 2)
        # Contiguous runs: the 2-interval sketch of 0..4 has total span 3.
        assert tr1.covers_all({a, b, c, d, e})
        assert tr3.intervals == ((b, c), (e, f))

    def test_no_false_dismissals(self):
        """Every activity actually present must be covered (superset
        guarantee of Section V-C)."""
        import random

        rng = random.Random(9)
        for _ in range(50):
            ids = set(rng.sample(range(200), rng.randint(1, 20)))
            sketch = TrajectorySketch.from_activities(ids, rng.randint(1, 4))
            for a in ids:
                assert sketch.covers(a)

    def test_rejects_outside_ids(self):
        sketch = TrajectorySketch.from_activities({10, 11, 50}, 2)
        assert not sketch.covers(5)
        assert not sketch.covers(30)
        assert not sketch.covers(51)

    def test_false_positive_inside_interval(self):
        """IDs inside an interval but absent from the trajectory are
        (acceptably) reported as covered — the APL check removes them."""
        sketch = TrajectorySketch.from_activities({10, 12}, 1)
        assert sketch.covers(11)  # false positive by design

    def test_covers_all_fails_on_missing(self):
        sketch = TrajectorySketch.from_activities({1, 2, 3}, 1)
        assert sketch.covers_all({1, 3})
        assert not sketch.covers_all({1, 9})

    def test_more_intervals_tighter(self):
        ids = {1, 2, 50, 51, 100}
        spans = [
            TrajectorySketch.from_activities(ids, m).total_span() for m in (1, 2, 3)
        ]
        assert spans[0] >= spans[1] >= spans[2]


class TestBuildAndCost:
    def test_build_sketches_covers_unions(self, small_db):
        sketches = build_sketches(small_db, 2)
        assert len(sketches) == len(small_db)
        for tr in small_db:
            sketch = sketches[tr.trajectory_id]
            assert sketch.covers_all(tr.activity_union)

    def test_memory_cost_formula(self):
        # The paper: 8 bytes per interval, M intervals, N trajectories.
        assert sketch_memory_bytes(1000, 4) == 32_000
