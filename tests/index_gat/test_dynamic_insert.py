"""Tests for dynamic GAT insertion (extension).

The gold standard: after inserting trajectories one by one, every query
must return exactly what a freshly built index over the final database
returns.
"""

import random

import pytest

from repro.core.engine import GATSearchEngine
from repro.core.query import Query, QueryPoint
from repro.data.generator import CheckInGenerator, GeneratorConfig
from repro.index.gat.index import GATConfig, GATIndex
from repro.model.database import TrajectoryDatabase
from repro.model.point import TrajectoryPoint
from repro.model.trajectory import ActivityTrajectory


def _make_db(seed, n_users=60):
    return CheckInGenerator(
        GeneratorConfig(
            n_users=n_users,
            n_venues=150,
            vocabulary_size=80,
            width_km=10.0,
            height_km=8.0,
            checkins_per_user_mean=7.0,
            seed=seed,
        )
    ).generate()


def _query(db, seed):
    rng = random.Random(seed)
    while True:
        tr = db.trajectories[rng.randrange(len(db))]
        pts = [p for p in tr if p.activities]
        if len(pts) >= 2:
            return Query(
                [
                    QueryPoint(p.x, p.y, frozenset(rng.sample(sorted(p.activities), 1)))
                    for p in rng.sample(pts, 2)
                ]
            )


class TestInsertTrajectory:
    def test_insert_equals_rebuild(self):
        full = _make_db(21)
        # Start the incremental index from the first 40 trajectories...
        base = TrajectoryDatabase(
            full.trajectories[:40], full.vocabulary, name="base"
        )
        config = GATConfig(depth=4, memory_levels=3)
        incremental = GATIndex.build(base, config)
        # ...but force the grid to cover the final universe (the documented
        # insertion constraint).
        incremental.grid = __import__(
            "repro.geometry.grid", fromlist=["HierarchicalGrid"]
        ).HierarchicalGrid(full.bounding_box, config.depth)
        # Rebuild the spatial components over the corrected grid.
        from repro.index.gat.hicl import HICL
        from repro.index.gat.itl import ITL

        incremental.hicl = HICL.build(base, incremental.grid, config.memory_levels, incremental.disk)
        incremental.itl = ITL.build(base, incremental.grid)

        for tr in full.trajectories[40:]:
            incremental.insert_trajectory(tr)

        fresh = GATIndex.build(full, config)
        engine_inc = GATSearchEngine(incremental)
        engine_fresh = GATSearchEngine(fresh)
        for seed in range(6):
            q = _query(full, seed)
            a = [(r.trajectory_id, round(r.distance, 9)) for r in engine_inc.atsq(q, 5)]
            b = [(r.trajectory_id, round(r.distance, 9)) for r in engine_fresh.atsq(q, 5)]
            assert a == b

    def test_duplicate_id_rejected(self, small_db):
        index = GATIndex.build(small_db, GATConfig(depth=4, memory_levels=3))
        with pytest.raises(ValueError):
            index.insert_trajectory(small_db.trajectories[0])

    def test_out_of_box_rejected(self, small_db):
        index = GATIndex.build(small_db, GATConfig(depth=4, memory_levels=3))
        far = ActivityTrajectory(
            10_000, [TrajectoryPoint(1e6, 1e6, frozenset({0}))]
        )
        with pytest.raises(ValueError):
            index.insert_trajectory(far)

    def test_inserted_trajectory_is_findable(self, small_db):
        import copy

        db = TrajectoryDatabase(
            list(small_db.trajectories), small_db.vocabulary, name="copy"
        )
        index = GATIndex.build(db, GATConfig(depth=4, memory_levels=3))
        engine = GATSearchEngine(index)
        box = db.bounding_box
        cx = (box.min_x + box.max_x) / 2
        cy = (box.min_y + box.max_y) / 2
        rare = frozenset({len(db.vocabulary) - 1, len(db.vocabulary) - 2})
        new_tr = ActivityTrajectory(
            99_999,
            [
                TrajectoryPoint(cx, cy, rare),
                TrajectoryPoint(cx + 0.1, cy + 0.1, frozenset({0})),
            ],
        )
        index.insert_trajectory(new_tr)
        q = Query([QueryPoint(cx, cy, rare)])
        results = engine.atsq(q, 3)
        assert any(r.trajectory_id == 99_999 for r in results)

    def test_insert_updates_disk_components(self, small_db):
        db = TrajectoryDatabase(
            list(small_db.trajectories), small_db.vocabulary, name="copy2"
        )
        index = GATIndex.build(db, GATConfig(depth=5, memory_levels=3))
        box = db.bounding_box
        new_tr = ActivityTrajectory(
            77_777,
            [TrajectoryPoint((box.min_x + box.max_x) / 2, (box.min_y + box.max_y) / 2, frozenset({0}))],
        )
        index.insert_trajectory(new_tr)
        assert 77_777 in index.apl
        assert index.apl.fetch(77_777) == new_tr.posting_lists
        assert index.sketches[77_777].covers(0)
