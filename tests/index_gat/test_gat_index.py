"""Unit tests for the assembled GAT index."""

import pytest

from repro.index.gat.index import GATConfig, GATIndex
from repro.storage.disk import SimulatedDisk


class TestConfig:
    def test_defaults_match_paper(self):
        cfg = GATConfig()
        assert cfg.depth == 8  # 256 x 256 cells (Section VII-A)
        assert cfg.memory_levels == 6  # levels 7-8 on disk

    def test_validation(self):
        with pytest.raises(ValueError):
            GATConfig(depth=0)
        with pytest.raises(ValueError):
            GATConfig(depth=4, memory_levels=5)
        with pytest.raises(ValueError):
            GATConfig(sketch_intervals=0)


class TestBuild:
    def test_components_present(self, small_db):
        index = GATIndex.build(small_db, GATConfig(depth=5, memory_levels=4))
        assert index.grid.depth == 5
        assert len(index.sketches) == len(small_db)
        assert len(index.apl) == len(small_db)
        assert index.itl.n_cells() > 0

    def test_build_resets_disk_stats(self, small_db):
        index = GATIndex.build(small_db, GATConfig(depth=5, memory_levels=4))
        assert index.disk.stats.reads == 0
        assert index.disk.stats.writes == 0

    def test_shared_disk(self, small_db):
        disk = SimulatedDisk()
        index = GATIndex.build(small_db, GATConfig(depth=5, memory_levels=4), disk=disk)
        assert index.disk is disk
        assert disk.total_bytes() > 0

    def test_memory_cost_grows_with_depth(self, small_db):
        small = GATIndex.build(small_db, GATConfig(depth=4, memory_levels=4))
        large = GATIndex.build(small_db, GATConfig(depth=6, memory_levels=6))
        assert large.memory_cost_bytes() > small.memory_cost_bytes()

    def test_disk_cost_includes_apl(self, small_db):
        index = GATIndex.build(small_db, GATConfig(depth=5, memory_levels=5))
        # Only the APL lives on disk when every HICL level is in memory.
        assert index.disk_cost_bytes() > 0

    def test_sketches_cover_unions(self, small_db):
        index = GATIndex.build(small_db, GATConfig(depth=5, memory_levels=4))
        for tr in small_db:
            assert index.sketches[tr.trajectory_id].covers_all(tr.activity_union)
