"""Unit tests for the Inverted Trajectory List and Activity Posting List."""

import pytest

from repro.geometry.grid import HierarchicalGrid
from repro.index.gat.apl import APLStore
from repro.index.gat.itl import ITL
from repro.model.database import TrajectoryDatabase
from repro.storage.disk import SimulatedDisk


@pytest.fixture
def db():
    return TrajectoryDatabase.from_raw(
        [
            [(1.0, 1.0, ["a"]), (9.0, 9.0, ["b"]), (1.1, 1.05, ["a", "c"])],
            [(1.05, 1.02, ["a"]), (5.0, 5.0, [])],
        ]
    )


@pytest.fixture
def grid(db):
    return HierarchicalGrid(db.bounding_box, depth=3)


class TestITL:
    def test_trajectories_with_activity_in_cell(self, db, grid):
        itl = ITL.build(db, grid)
        a = db.vocabulary.id_of("a")
        leaf = grid.leaf_level.locate((1.0, 1.0))
        tids = itl.trajectories_with(leaf, a)
        assert set(tids) == {0, 1}  # both trajectories have 'a' near (1,1)

    def test_lists_sorted(self, db, grid):
        itl = ITL.build(db, grid)
        a = db.vocabulary.id_of("a")
        leaf = grid.leaf_level.locate((1.0, 1.0))
        tids = itl.trajectories_with(leaf, a)
        assert list(tids) == sorted(tids)

    def test_activity_absent_from_cell(self, db, grid):
        itl = ITL.build(db, grid)
        b = db.vocabulary.id_of("b")
        leaf = grid.leaf_level.locate((1.0, 1.0))
        assert itl.trajectories_with(leaf, b) == ()

    def test_trajectories_with_any(self, db, grid):
        itl = ITL.build(db, grid)
        a, c = db.vocabulary.id_of("a"), db.vocabulary.id_of("c")
        leaf = grid.leaf_level.locate((1.0, 1.0))
        assert itl.trajectories_with_any(leaf, [a, c]) == {0, 1}
        assert itl.trajectories_with_any(leaf, [999]) == set()

    def test_activities_in_cell(self, db, grid):
        itl = ITL.build(db, grid)
        leaf = grid.leaf_level.locate((9.0, 9.0))
        assert itl.activities_in(leaf) == frozenset({db.vocabulary.id_of("b")})

    def test_empty_cell(self, db, grid):
        itl = ITL.build(db, grid)
        empty_leaf = grid.leaf_level.locate((5.0, 9.0))
        assert not itl.has_cell(empty_leaf)
        assert itl.activities_in(empty_leaf) == frozenset()

    def test_memory_cost_positive(self, db, grid):
        itl = ITL.build(db, grid)
        assert itl.memory_cost_bytes() > 0
        assert itl.n_cells() >= 2


class TestAPL:
    def test_build_and_fetch(self, db):
        disk = SimulatedDisk()
        apl = APLStore.build(db, disk)
        assert len(apl) == 2
        posting = apl.fetch(0)
        a = db.vocabulary.id_of("a")
        assert posting[a] == (0, 2)

    def test_fetch_matches_trajectory_posting_lists(self, db):
        apl = APLStore.build(db, SimulatedDisk())
        for tr in db:
            assert apl.fetch(tr.trajectory_id) == tr.posting_lists

    def test_fetch_counts_disk_reads(self, db):
        disk = SimulatedDisk()
        apl = APLStore.build(db, disk)
        disk.reset_stats()
        apl.fetch(0)
        apl.fetch(1)
        assert disk.stats.reads == 2

    def test_fetch_unknown_raises(self, db):
        apl = APLStore.build(db, SimulatedDisk())
        with pytest.raises(KeyError):
            apl.fetch(42)

    def test_contains(self, db):
        apl = APLStore.build(db, SimulatedDisk())
        assert 0 in apl and 1 in apl and 7 not in apl

    def test_covers_query(self, db):
        apl = APLStore.build(db, SimulatedDisk())
        posting = apl.fetch(0)
        ids = db.vocabulary
        assert APLStore.covers_query(posting, [ids.id_of("a"), ids.id_of("b")])
        assert not APLStore.covers_query(posting, [ids.id_of("a"), 999])

    def test_candidate_positions_sorted_union(self, db):
        apl = APLStore.build(db, SimulatedDisk())
        posting = apl.fetch(0)
        ids = db.vocabulary
        got = APLStore.candidate_positions(posting, [ids.id_of("a"), ids.id_of("c")])
        assert got == (0, 2)
        got = APLStore.candidate_positions(posting, [ids.id_of("a"), ids.id_of("b")])
        assert got == (0, 1, 2)
