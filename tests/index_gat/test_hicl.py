"""Unit tests for the Hierarchical Inverted Cell List (HICL)."""

import pytest

from repro.geometry.grid import HierarchicalGrid
from repro.index.gat.hicl import HICL, memory_level_budget
from repro.model.database import TrajectoryDatabase
from repro.storage.disk import SimulatedDisk


@pytest.fixture
def db():
    # Two trajectories in a unit-ish square with known activity placement.
    return TrajectoryDatabase.from_raw(
        [
            [(1.0, 1.0, ["a"]), (9.0, 9.0, ["b"])],
            [(1.2, 1.1, ["a", "b"]), (5.0, 5.0, [])],
        ]
    )


@pytest.fixture
def grid(db):
    return HierarchicalGrid(db.bounding_box, depth=4)


class TestBuild:
    def test_all_in_memory(self, db, grid):
        hicl = HICL.build(db, grid, memory_levels=4)
        a = db.vocabulary.id_of("a")
        cells = hicl.cells_with_activity(a, 4)
        assert cells  # a exists somewhere at leaf level
        # Both 'a' points are near (1,1): one or two leaf cells.
        assert 1 <= len(cells) <= 2

    def test_leaf_membership_matches_point_location(self, db, grid):
        hicl = HICL.build(db, grid, memory_levels=4)
        a = db.vocabulary.id_of("a")
        leaf = grid.leaf_level.locate((1.0, 1.0))
        assert leaf in hicl.cells_with_activity(a, 4)

    def test_parent_aggregation(self, db, grid):
        """A cell contains alpha at level L-1 iff one of its children does."""
        hicl = HICL.build(db, grid, memory_levels=4)
        for name in ("a", "b"):
            act = db.vocabulary.id_of(name)
            for level in range(1, 4):
                parents = hicl.cells_with_activity(act, level)
                children = hicl.cells_with_activity(act, level + 1)
                assert parents == {code >> 2 for code in children}

    def test_empty_activity_points_ignored(self, db, grid):
        hicl = HICL.build(db, grid, memory_levels=4)
        mid_leaf = grid.leaf_level.locate((5.0, 5.0))
        a = db.vocabulary.id_of("a")
        b = db.vocabulary.id_of("b")
        assert mid_leaf not in hicl.cells_with_activity(a, 4)
        assert mid_leaf not in hicl.cells_with_activity(b, 4)

    def test_unknown_activity_empty(self, db, grid):
        hicl = HICL.build(db, grid, memory_levels=4)
        assert hicl.cells_with_activity(999, 4) == frozenset()

    def test_level_bounds_checked(self, db, grid):
        hicl = HICL.build(db, grid, memory_levels=4)
        with pytest.raises(ValueError):
            hicl.cells_with_activity(0, 0)
        with pytest.raises(ValueError):
            hicl.cells_with_activity(0, 5)


class TestDiskResidence:
    def test_requires_disk_for_low_levels(self, db, grid):
        with pytest.raises(ValueError):
            HICL(grid, memory_levels=2, disk=None)

    def test_disk_levels_round_trip(self, db, grid):
        disk = SimulatedDisk()
        hicl = HICL.build(db, grid, memory_levels=2, disk=disk)
        full = HICL.build(db, grid, memory_levels=4)
        for name in ("a", "b"):
            act = db.vocabulary.id_of(name)
            for level in (3, 4):
                assert hicl.cells_with_activity(act, level) == full.cells_with_activity(
                    act, level
                )

    def test_disk_reads_counted_once_per_query_with_cache(self, db, grid):
        disk = SimulatedDisk()
        hicl = HICL.build(db, grid, memory_levels=2, disk=disk)
        disk.reset_stats()
        a = db.vocabulary.id_of("a")
        hicl.cells_with_activity(a, 4)
        hicl.cells_with_activity(a, 4)
        hicl.cells_with_activity(a, 4)
        assert disk.stats.reads == 1  # cached after the first read
        hicl.clear_cache()
        hicl.cells_with_activity(a, 4)
        assert disk.stats.reads == 2

    def test_memory_levels_do_not_touch_disk(self, db, grid):
        disk = SimulatedDisk()
        hicl = HICL.build(db, grid, memory_levels=2, disk=disk)
        disk.reset_stats()
        hicl.cells_with_activity(db.vocabulary.id_of("a"), 1)
        hicl.cells_with_activity(db.vocabulary.id_of("a"), 2)
        assert disk.stats.reads == 0


class TestQueries:
    def test_cells_with_any_unions(self, db, grid):
        hicl = HICL.build(db, grid, memory_levels=4)
        a, b = db.vocabulary.id_of("a"), db.vocabulary.id_of("b")
        union = hicl.cells_with_any([a, b], 4)
        assert union == hicl.cells_with_activity(a, 4) | hicl.cells_with_activity(b, 4)

    def test_cell_activity_overlap(self, db, grid):
        hicl = HICL.build(db, grid, memory_levels=4)
        a, b = db.vocabulary.id_of("a"), db.vocabulary.id_of("b")
        leaf = grid.leaf_level.locate((1.2, 1.1))  # has a and b via Tr2
        overlap = hicl.cell_activity_overlap(leaf, [a, b, 999], 4)
        assert overlap == frozenset({a, b})

    def test_children_with_any_filters(self, db, grid):
        hicl = HICL.build(db, grid, memory_levels=4)
        a = db.vocabulary.id_of("a")
        # Walk from the level-1 cell containing (1,1) down: every level must
        # offer at least one child containing 'a'.
        cell = grid.locate((1.0, 1.0), 1)
        code, level = cell.code, cell.level
        while level < 4:
            kids = hicl.children_with_any(code, level, [a])
            assert kids
            code, level = kids[0], level + 1

    def test_cell_has_any(self, db, grid):
        hicl = HICL.build(db, grid, memory_levels=4)
        a = db.vocabulary.id_of("a")
        leaf = grid.leaf_level.locate((1.0, 1.0))
        assert hicl.cell_has_any(leaf, [a], 4)
        assert not hicl.cell_has_any(leaf, [999], 4)


def test_memory_level_budget_formula():
    # h = log4(3B/(4C) + 1): with B = 4^1*C*...  check monotonicity + exact point.
    assert memory_level_budget(4 * 100, 100) == 1  # exactly level 1 fits
    assert memory_level_budget((4 + 16) * 100, 100) == 2
    assert memory_level_budget(10, 1_000_000) == 0
    with pytest.raises(ValueError):
        memory_level_budget(0, 10)
