"""Unit tests for the Hierarchical Inverted Cell List (HICL)."""

import pytest

from repro.geometry.grid import HierarchicalGrid
from repro.index.gat.hicl import HICL, memory_level_budget
from repro.model.database import TrajectoryDatabase
from repro.storage.disk import SimulatedDisk


@pytest.fixture
def db():
    # Two trajectories in a unit-ish square with known activity placement.
    return TrajectoryDatabase.from_raw(
        [
            [(1.0, 1.0, ["a"]), (9.0, 9.0, ["b"])],
            [(1.2, 1.1, ["a", "b"]), (5.0, 5.0, [])],
        ]
    )


@pytest.fixture
def grid(db):
    return HierarchicalGrid(db.bounding_box, depth=4)


class TestBuild:
    def test_all_in_memory(self, db, grid):
        hicl = HICL.build(db, grid, memory_levels=4)
        a = db.vocabulary.id_of("a")
        cells = hicl.cells_with_activity(a, 4)
        assert cells  # a exists somewhere at leaf level
        # Both 'a' points are near (1,1): one or two leaf cells.
        assert 1 <= len(cells) <= 2

    def test_leaf_membership_matches_point_location(self, db, grid):
        hicl = HICL.build(db, grid, memory_levels=4)
        a = db.vocabulary.id_of("a")
        leaf = grid.leaf_level.locate((1.0, 1.0))
        assert leaf in hicl.cells_with_activity(a, 4)

    def test_parent_aggregation(self, db, grid):
        """A cell contains alpha at level L-1 iff one of its children does."""
        hicl = HICL.build(db, grid, memory_levels=4)
        for name in ("a", "b"):
            act = db.vocabulary.id_of(name)
            for level in range(1, 4):
                parents = hicl.cells_with_activity(act, level)
                children = hicl.cells_with_activity(act, level + 1)
                assert parents == {code >> 2 for code in children}

    def test_empty_activity_points_ignored(self, db, grid):
        hicl = HICL.build(db, grid, memory_levels=4)
        mid_leaf = grid.leaf_level.locate((5.0, 5.0))
        a = db.vocabulary.id_of("a")
        b = db.vocabulary.id_of("b")
        assert mid_leaf not in hicl.cells_with_activity(a, 4)
        assert mid_leaf not in hicl.cells_with_activity(b, 4)

    def test_unknown_activity_empty(self, db, grid):
        hicl = HICL.build(db, grid, memory_levels=4)
        assert hicl.cells_with_activity(999, 4) == frozenset()

    def test_level_bounds_checked(self, db, grid):
        hicl = HICL.build(db, grid, memory_levels=4)
        with pytest.raises(ValueError):
            hicl.cells_with_activity(0, 0)
        with pytest.raises(ValueError):
            hicl.cells_with_activity(0, 5)


class TestDiskResidence:
    def test_requires_disk_for_low_levels(self, db, grid):
        with pytest.raises(ValueError):
            HICL(grid, memory_levels=2, disk=None)

    def test_disk_levels_round_trip(self, db, grid):
        disk = SimulatedDisk()
        hicl = HICL.build(db, grid, memory_levels=2, disk=disk)
        full = HICL.build(db, grid, memory_levels=4)
        for name in ("a", "b"):
            act = db.vocabulary.id_of(name)
            for level in (3, 4):
                assert hicl.cells_with_activity(act, level) == full.cells_with_activity(
                    act, level
                )

    def test_disk_reads_counted_once_per_query_with_cache(self, db, grid):
        disk = SimulatedDisk()
        hicl = HICL.build(db, grid, memory_levels=2, disk=disk)
        disk.reset_stats()
        a = db.vocabulary.id_of("a")
        hicl.cells_with_activity(a, 4)
        hicl.cells_with_activity(a, 4)
        hicl.cells_with_activity(a, 4)
        assert disk.stats.reads == 1  # cached after the first read
        hicl.clear_cache()
        hicl.cells_with_activity(a, 4)
        assert disk.stats.reads == 2

    def test_memory_levels_do_not_touch_disk(self, db, grid):
        disk = SimulatedDisk()
        hicl = HICL.build(db, grid, memory_levels=2, disk=disk)
        disk.reset_stats()
        hicl.cells_with_activity(db.vocabulary.id_of("a"), 1)
        hicl.cells_with_activity(db.vocabulary.id_of("a"), 2)
        assert disk.stats.reads == 0

    def test_cache_is_lru_bounded(self, db, grid):
        disk = SimulatedDisk()
        hicl = HICL.build(db, grid, memory_levels=2, disk=disk, cache_capacity=1)
        disk.reset_stats()
        a, b = db.vocabulary.id_of("a"), db.vocabulary.id_of("b")
        hicl.cells_with_activity(a, 4)  # load a
        hicl.cells_with_activity(b, 4)  # evicts a (capacity 1)
        hicl.cells_with_activity(a, 4)  # re-read from disk
        assert disk.stats.reads == 3

    def test_cache_capacity_zero_disables_caching(self, db, grid):
        """cache_capacity=0 = every lookup is a counted read (mirrors the
        engine's apl_cache_size=0 convention)."""
        disk = SimulatedDisk()
        hicl = HICL.build(db, grid, memory_levels=2, disk=disk, cache_capacity=0)
        disk.reset_stats()
        a = db.vocabulary.id_of("a")
        for _ in range(3):
            hicl.cells_with_activity(a, 4)
        assert disk.stats.reads == 3
        stats = hicl.cache_stats()
        assert (stats.hits, stats.misses, stats.capacity) == (0, 0, 0)
        hicl.clear_cache()  # no-op, must not raise

    def test_cache_stats_exposed(self, db, grid):
        disk = SimulatedDisk()
        hicl = HICL.build(db, grid, memory_levels=2, disk=disk)
        a = db.vocabulary.id_of("a")
        hicl.cells_with_activity(a, 4)
        hicl.cells_with_activity(a, 4)
        stats = hicl.cache_stats()
        assert stats.hits == 1
        assert stats.misses == 1


class TestWarmCacheAcrossQueries:
    """Regression for the cross-query cache thrash: the engine used to
    call ``clear_cache()`` at the start of every query, so back-to-back
    queries re-read every disk-resident cell list."""

    def _engine_and_query(self, small_db):
        from repro.core.engine import GATSearchEngine
        from repro.core.query import Query, QueryPoint
        from repro.index.gat.index import GATConfig, GATIndex

        # memory_levels < depth so leaf lookups hit the simulated disk.
        index = GATIndex.build(small_db, GATConfig(depth=5, memory_levels=3))
        engine = GATSearchEngine(index)
        tr = next(t for t in small_db if sum(1 for p in t if p.activities) >= 2)
        pts = [p for p in tr if p.activities][:2]
        query = Query(
            [QueryPoint(p.x, p.y, frozenset(list(p.activities)[:2])) for p in pts]
        )
        return engine, query

    def test_back_to_back_queries_reuse_warm_cells(self, small_db):
        engine, query = self._engine_and_query(small_db)
        first = engine.execute(query, k=3).stats
        warm_before = engine.index.hicl.cache_stats()
        second = engine.execute(query, k=3).stats
        warm_after = engine.index.hicl.cache_stats()
        # Identical answers and pruning work either way...
        assert second.tas_pruned == first.tas_pruned
        assert second.apl_pruned == first.apl_pruned
        # ...but the repeat query is served from the warm caches.
        assert second.disk_reads < first.disk_reads
        assert warm_after.hits > warm_before.hits
        assert warm_after.misses == warm_before.misses

    def test_cold_cache_restores_seed_io(self, small_db):
        """clear_cache() + a cache-less engine reproduces the seed's
        one-read-per-(activity,level)-per-query accounting."""
        from repro.core.engine import GATSearchEngine

        engine, query = self._engine_and_query(small_db)
        cold = GATSearchEngine(engine.index, apl_cache_size=0)
        engine.index.hicl.clear_cache()
        first = cold.execute(query, k=3).stats
        engine.index.hicl.clear_cache()
        second = cold.execute(query, k=3).stats
        assert second.disk_reads == first.disk_reads


class TestQueries:
    def test_cells_with_any_unions(self, db, grid):
        hicl = HICL.build(db, grid, memory_levels=4)
        a, b = db.vocabulary.id_of("a"), db.vocabulary.id_of("b")
        union = hicl.cells_with_any([a, b], 4)
        assert union == hicl.cells_with_activity(a, 4) | hicl.cells_with_activity(b, 4)

    def test_cell_activity_overlap(self, db, grid):
        hicl = HICL.build(db, grid, memory_levels=4)
        a, b = db.vocabulary.id_of("a"), db.vocabulary.id_of("b")
        leaf = grid.leaf_level.locate((1.2, 1.1))  # has a and b via Tr2
        overlap = hicl.cell_activity_overlap(leaf, [a, b, 999], 4)
        assert overlap == frozenset({a, b})

    def test_children_with_any_filters(self, db, grid):
        hicl = HICL.build(db, grid, memory_levels=4)
        a = db.vocabulary.id_of("a")
        # Walk from the level-1 cell containing (1,1) down: every level must
        # offer at least one child containing 'a'.
        cell = grid.locate((1.0, 1.0), 1)
        code, level = cell.code, cell.level
        while level < 4:
            kids = hicl.children_with_any(code, level, [a])
            assert kids
            code, level = kids[0], level + 1

    def test_cell_has_any(self, db, grid):
        hicl = HICL.build(db, grid, memory_levels=4)
        a = db.vocabulary.id_of("a")
        leaf = grid.leaf_level.locate((1.0, 1.0))
        assert hicl.cell_has_any(leaf, [a], 4)
        assert not hicl.cell_has_any(leaf, [999], 4)


def test_memory_level_budget_formula():
    # h = log4(3B/(4C) + 1): with B = 4^1*C*...  check monotonicity + exact point.
    assert memory_level_budget(4 * 100, 100) == 1  # exactly level 1 fits
    assert memory_level_budget((4 + 16) * 100, 100) == 2
    assert memory_level_budget(10, 1_000_000) == 0
    with pytest.raises(ValueError):
        memory_level_budget(0, 10)
