"""FaultInjector unit tests: rule validation, determinism, fault shapes.

The injector is the trusted instrument every chaos test leans on, so its
own behaviour is pinned here against a bare :class:`SimulatedDisk` —
no serving stack, no concurrency except the one stall test that needs a
blocked reader thread.
"""

import pickle
import threading
import time

import pytest

from repro.faults import FaultInjector, FaultRule, InjectedDiskError
from repro.storage.disk import SimulatedDisk


def _disk_with(injector, n_keys=8):
    disk = SimulatedDisk(fault_injector=injector)
    for i in range(n_keys):
        disk.put(("apl", i), list(range(i + 1)))
    return disk


# ----------------------------------------------------------------------
# FaultRule validation
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "kwargs",
    [
        {"error_rate": -0.1},
        {"error_rate": 1.5},
        {"stall_rate": 2.0},
        {"latency_rate": -1.0},
        {"extra_latency_s": -0.5},
        {"max_errors": -1},
        {"max_stalls": -2},
    ],
)
def test_rule_rejects_out_of_range(kwargs):
    with pytest.raises(ValueError):
        FaultRule(**kwargs)


def test_rule_defaults_are_inert():
    rule = FaultRule()
    assert rule.error_rate == 0.0
    assert rule.stall_rate == 0.0
    assert rule.extra_latency_s == 0.0
    assert rule.key_pattern is None


# ----------------------------------------------------------------------
# Errors
# ----------------------------------------------------------------------
def test_max_errors_caps_deterministically():
    """error_rate=1.0 + max_errors=2: exactly the first two reads fail."""
    injector = FaultInjector(FaultRule(error_rate=1.0, max_errors=2), seed=3)
    disk = _disk_with(injector)
    for _ in range(2):
        with pytest.raises(InjectedDiskError):
            disk.get(("apl", 0))
    # Third and later reads succeed: the rule's budget is spent.
    assert disk.get(("apl", 0)) == [0]
    assert disk.get(("apl", 1)) == [0, 1]
    assert injector.errors_injected == 2
    assert injector.reads_seen == 4


def test_error_counters_still_account_io():
    """Injected errors fire after accounting: the seek happened."""
    injector = FaultInjector(FaultRule(error_rate=1.0), seed=0)
    disk = _disk_with(injector)
    with pytest.raises(InjectedDiskError):
        disk.get(("apl", 0))
    assert disk.stats.reads == 1
    assert disk.stats.pages_read >= 1


def test_key_pattern_scopes_faults():
    injector = FaultInjector(
        FaultRule(error_rate=1.0, key_pattern=r"'apl', 3"), seed=5
    )
    disk = _disk_with(injector)
    assert disk.get(("apl", 0)) == [0]
    assert disk.get(("apl", 2)) == [0, 1, 2]
    with pytest.raises(InjectedDiskError):
        disk.get(("apl", 3))
    assert injector.errors_injected == 1


def test_get_many_aborts_on_first_injected_error():
    injector = FaultInjector(
        FaultRule(error_rate=1.0, key_pattern=r"'apl', 1"), seed=0
    )
    disk = _disk_with(injector)
    with pytest.raises(InjectedDiskError):
        disk.get_many([("apl", 0), ("apl", 1), ("apl", 2)])
    # All three reads were accounted (the batch's seeks happened) even
    # though the middle key aborted the gather.
    assert disk.stats.reads == 3


def test_same_seed_same_fault_sequence():
    def sequence(seed):
        injector = FaultInjector(FaultRule(error_rate=0.4), seed=seed)
        disk = _disk_with(injector)
        outcomes = []
        for i in range(40):
            try:
                disk.get(("apl", i % 8))
                outcomes.append("ok")
            except InjectedDiskError:
                outcomes.append("err")
        return outcomes

    assert sequence(99) == sequence(99)
    assert "err" in sequence(99)  # the rate actually fires at 40 draws


def test_enabled_flag_turns_disk_healthy():
    injector = FaultInjector(FaultRule(error_rate=1.0), seed=0)
    disk = _disk_with(injector)
    injector.enabled = False
    assert disk.get(("apl", 4)) == [0, 1, 2, 3, 4]
    assert injector.errors_injected == 0
    assert injector.reads_seen == 0  # disabled injector doesn't even count
    injector.enabled = True
    with pytest.raises(InjectedDiskError):
        disk.get(("apl", 4))


# ----------------------------------------------------------------------
# Latency spikes
# ----------------------------------------------------------------------
def test_latency_spike_pays_wall_time():
    injector = FaultInjector(FaultRule(extra_latency_s=0.05), seed=0)
    disk = _disk_with(injector)
    t0 = time.perf_counter()
    disk.get(("apl", 0))
    elapsed = time.perf_counter() - t0
    assert elapsed >= 0.04
    assert injector.delays_injected == 1


# ----------------------------------------------------------------------
# Stalls
# ----------------------------------------------------------------------
def test_stall_blocks_until_lifted_then_resumes_normally():
    injector = FaultInjector(FaultRule(stall_rate=1.0, max_stalls=1), seed=0)
    disk = _disk_with(injector)
    result = {}

    def read():
        result["value"] = disk.get(("apl", 2))

    reader = threading.Thread(target=read)
    reader.start()
    reader.join(timeout=0.2)
    assert reader.is_alive(), "stalled read returned before lift_stalls()"
    injector.lift_stalls()
    reader.join(timeout=5.0)
    assert not reader.is_alive()
    # The stalled read resumed *normally* — correct value, no exception.
    assert result["value"] == [0, 1, 2]
    assert injector.stalls_injected == 1
    # max_stalls=1 spent: the next read passes straight through.
    assert disk.get(("apl", 2)) == [0, 1, 2]


def test_stall_timeout_releases_reader():
    injector = FaultInjector(
        FaultRule(stall_rate=1.0, max_stalls=1), seed=0, stall_timeout_s=0.05
    )
    disk = _disk_with(injector)
    t0 = time.perf_counter()
    assert disk.get(("apl", 1)) == [0, 1]
    assert time.perf_counter() - t0 >= 0.04


# ----------------------------------------------------------------------
# Multiple rules / precedence
# ----------------------------------------------------------------------
def test_rules_evaluate_in_order_and_delays_accumulate():
    injector = FaultInjector(
        [
            FaultRule(extra_latency_s=0.02),
            FaultRule(extra_latency_s=0.03),
        ],
        seed=0,
    )
    disk = _disk_with(injector)
    t0 = time.perf_counter()
    disk.get(("apl", 0))
    assert time.perf_counter() - t0 >= 0.04  # both rules' spikes paid
    assert injector.delays_injected == 2


def test_counters_snapshot():
    injector = FaultInjector(FaultRule(error_rate=1.0, max_errors=1), seed=0)
    disk = _disk_with(injector)
    with pytest.raises(InjectedDiskError):
        disk.get(("apl", 0))
    disk.get(("apl", 0))
    counters = injector.counters()
    assert counters == {
        "reads_seen": 2,
        "errors_injected": 1,
        "stalls_injected": 0,
        "delays_injected": 0,
    }


# ----------------------------------------------------------------------
# Process boundary
# ----------------------------------------------------------------------
def test_injector_is_not_picklable():
    """The process fleet must never silently ship an injector to workers
    (its counters would diverge and its lock cannot cross exec)."""
    injector = FaultInjector(FaultRule(error_rate=0.5), seed=1)
    with pytest.raises(Exception):
        pickle.dumps(injector)
