"""Fault-suite fixtures: shared-memory leak detection.

Chaos tests SIGKILL worker processes and tear serving stacks down on
unusual paths — exactly where a forgotten ``close()`` would leave
shared-memory segments linked.  Same autouse probe as the shard suite.
"""

import pytest

from repro.storage import shm


@pytest.fixture(autouse=True)
def no_leaked_shared_memory():
    before = shm.active_segments()
    yield
    leaked = [name for name in shm.active_segments() if name not in before]
    assert not leaked, (
        f"test leaked shared-memory segments {leaked}; close the owning "
        "SharedTrajectoryStore / ShardedGATIndex before returning"
    )
