"""Chaos tests for the self-healing process fleet.

:func:`kill_fleet_workers` SIGKILLs live workers; the
:class:`ProcessShardExecutor` must retire the broken pool, re-initialise
from its spec, replay the dead futures, and keep serving exact results.
Also here: the shutdown-while-degraded regression — ``close()`` after a
pool break must neither raise nor leak threshold slots.
"""

import copy

import pytest

from repro.bench.workloads import QueryWorkloadGenerator, WorkloadConfig
from repro.faults import kill_fleet_workers
from repro.index.gat.index import GATConfig
from repro.shard import ShardedGATIndex, ShardedQueryService

CONFIG = GATConfig(depth=4, memory_levels=3)
K = 5
N_SHARDS = 2


@pytest.fixture()
def db(tiny_db):
    return copy.deepcopy(tiny_db)


@pytest.fixture()
def queries(db):
    gen = QueryWorkloadGenerator(
        db, WorkloadConfig(n_query_points=2, n_activities_per_point=2, seed=17)
    )
    return gen.queries(4)


@pytest.fixture()
def fleet(db):
    """A process-backend service over a shared-memory store (the fleet's
    production shape), yielding (service, executor)."""
    sharded = ShardedGATIndex.build(
        db, n_shards=N_SHARDS, config=CONFIG, store="shared"
    )
    try:
        with ShardedQueryService(
            sharded, executor="process", result_cache_size=0
        ) as service:
            yield service, service._executor
    finally:
        sharded.close()


def _truth(db, queries):
    with ShardedGATIndex.build(db, n_shards=N_SHARDS, config=CONFIG) as sharded:
        with ShardedQueryService(
            sharded, executor="serial", result_cache_size=0
        ) as service:
            return [
                [(r.trajectory_id, r.distance) for r in resp.results]
                for resp in service.search_many(queries, k=K)
            ]


def test_kill_cold_fleet_is_usage_error(fleet):
    """Workers spawn lazily; killing before warm-up is a misuse of the
    chaos helper, reported loudly instead of silently killing nothing."""
    service, executor = fleet
    assert executor.worker_pids() == []
    with pytest.raises(RuntimeError, match="warm the pool first"):
        kill_fleet_workers(executor, count=1)


def test_warm_up_reports_live_worker_pids(fleet):
    service, executor = fleet
    pids = executor.warm_up()
    assert pids
    assert sorted(pids) == sorted(executor.worker_pids())


def test_killed_worker_heals_and_results_stay_exact(db, queries, fleet):
    service, executor = fleet
    truth = _truth(db, queries)
    executor.warm_up()
    victims = kill_fleet_workers(executor, count=1, seed=11)
    assert len(victims) == 1
    responses = service.search_many(queries, k=K)
    got = [
        [(r.trajectory_id, r.distance) for r in resp.results]
        for resp in responses
    ]
    assert got == truth
    assert executor.pool_repairs >= 1
    assert all(r.complete for r in responses)


def test_whole_fleet_killed_heals_and_serves(db, queries, fleet):
    service, executor = fleet
    truth = _truth(db, queries)
    pids = executor.warm_up()
    kill_fleet_workers(executor, count=len(pids), seed=3)
    responses = service.search_many(queries, k=K)
    got = [
        [(r.trajectory_id, r.distance) for r in resp.results]
        for resp in responses
    ]
    assert got == truth
    assert executor.pool_repairs >= 1
    # The healed fleet runs on fresh workers.
    survivors = executor.worker_pids()
    assert survivors and not set(survivors) & set(pids)


def test_close_while_degraded_neither_raises_nor_leaks_slots(fleet):
    """Regression: close() used to propagate BrokenProcessPool from the
    pool shutdown and strand acquired mp.Value slots when the fleet died
    with work outstanding."""
    service, executor = fleet
    pids = executor.warm_up()
    slot = executor.acquire_slot()
    assert slot is not None
    kill_fleet_workers(executor, count=len(pids), seed=5)
    executor.release_slot(slot)
    executor.close()  # must not raise, even over a broken pool
    executor.close()  # idempotent
    assert sorted(executor._free_slots) == list(range(executor.N_SLOTS))


def test_release_slot_tolerates_duplicates(fleet):
    """Failure paths can race a supervisor retry into releasing the same
    threshold slot twice; the free list must never grow past N_SLOTS."""
    service, executor = fleet
    slot = executor.acquire_slot()
    executor.release_slot(slot)
    executor.release_slot(slot)
    executor.release_slot(None)  # the no-slot sentinel is a no-op
    assert len(executor._free_slots) == executor.N_SLOTS
    assert sorted(set(executor._free_slots)) == sorted(executor._free_slots)
