"""Unit tests for the IR-tree (R-tree + per-node inverted activity files)."""

import random

import pytest

from repro.index.irtree import IRTree


def _items(n, seed=0, n_acts=6):
    rng = random.Random(seed)
    out = []
    for i in range(n):
        acts = frozenset(rng.sample(range(n_acts), rng.randint(0, 3)))
        out.append((rng.uniform(0, 50), rng.uniform(0, 50), i, acts))
    return out


class TestAnnotation:
    def test_root_union_is_total_union(self):
        items = _items(200, seed=1)
        tree = IRTree.bulk_load(items, max_entries=8)
        want = frozenset().union(*(acts for _x, _y, _p, acts in items))
        assert tree.root.activities == want

    def test_node_unions_cover_children(self):
        tree = IRTree.bulk_load(_items(300, seed=2), max_entries=8)

        def walk(node):
            if node.is_leaf:
                for entry in node.children:
                    assert IRTree.entry_activities(entry) <= node.activities
            else:
                for child in node.children:
                    assert child.activities <= node.activities
                    walk(child)

        walk(tree.root)

    def test_payload_accessors(self):
        tree = IRTree.bulk_load([(1.0, 2.0, "traj7", frozenset({3}))])
        entry = tree.root.children[0]
        assert IRTree.entry_payload(entry) == "traj7"
        assert IRTree.entry_activities(entry) == frozenset({3})


class TestPruningCheck:
    def test_node_has_any(self):
        tree = IRTree.bulk_load(_items(100, seed=3))
        present = next(iter(tree.root.activities))
        assert IRTree.node_has_any(tree.root, [present])
        assert not IRTree.node_has_any(tree.root, [999])
        assert IRTree.node_has_any(tree.root, [999, present])

    def test_unannotated_node_never_pruned(self):
        from repro.index.rtree import RTreeNode

        node = RTreeNode(is_leaf=True)
        assert IRTree.node_has_any(node, [1])

    def test_size_delegates(self):
        tree = IRTree.bulk_load(_items(42, seed=4))
        assert tree.size == 42
