"""Unit tests for the trajectory-level inverted index (IL baseline)."""

import pytest

from repro.index.inverted import InvertedIndex
from repro.model.database import TrajectoryDatabase


@pytest.fixture
def db():
    return TrajectoryDatabase.from_raw(
        [
            [(0, 0, ["a", "b"]), (1, 1, ["c"])],
            [(2, 2, ["a"]), (3, 3, ["a"])],
            [(4, 4, ["b", "c"])],
        ]
    )


class TestPostings:
    def test_posting_contents(self, db):
        idx = InvertedIndex.build(db)
        v = db.vocabulary
        assert idx.posting(v.id_of("a")) == (0, 1)
        assert idx.posting(v.id_of("b")) == (0, 2)
        assert idx.posting(v.id_of("c")) == (0, 2)

    def test_posting_deduplicates_within_trajectory(self, db):
        # Trajectory 1 has 'a' twice but appears once in the posting.
        idx = InvertedIndex.build(db)
        assert idx.posting(db.vocabulary.id_of("a")).count(1) == 1

    def test_unknown_activity_empty(self, db):
        assert InvertedIndex.build(db).posting(99) == ()


class TestIntersection:
    def test_with_all(self, db):
        idx = InvertedIndex.build(db)
        v = db.vocabulary
        assert idx.trajectories_with_all([v.id_of("a"), v.id_of("b")]) == {0}
        assert idx.trajectories_with_all([v.id_of("b"), v.id_of("c")]) == {0, 2}

    def test_with_all_empty_activity_set(self, db):
        assert InvertedIndex.build(db).trajectories_with_all([]) == set()

    def test_with_all_missing_activity(self, db):
        idx = InvertedIndex.build(db)
        assert idx.trajectories_with_all([db.vocabulary.id_of("a"), 99]) == set()

    def test_with_any(self, db):
        idx = InvertedIndex.build(db)
        v = db.vocabulary
        assert idx.trajectories_with_any([v.id_of("b")]) == {0, 2}
        assert idx.trajectories_with_any([99]) == set()

    def test_matches_definition_on_random_db(self, small_db):
        """Intersection must equal the set of trajectories whose activity
        union covers the query set (Definition 5 prerequisite)."""
        import random

        idx = InvertedIndex.build(small_db)
        rng = random.Random(3)
        all_ids = list(range(len(small_db.vocabulary)))
        for _ in range(20):
            acts = rng.sample(all_ids, rng.randint(1, 4))
            want = {
                tr.trajectory_id
                for tr in small_db
                if frozenset(acts) <= tr.activity_union
            }
            assert idx.trajectories_with_all(acts) == want

    def test_counts(self, db):
        idx = InvertedIndex.build(db)
        assert idx.n_activities() == 3
        assert idx.memory_cost_bytes() > 0


class TestVectorizedSetOps:
    """The NumPy union/intersection path must agree exactly with the
    scalar set algebra, above and below the batch-size cutover."""

    @pytest.fixture
    def big_db(self):
        import random

        rng = random.Random(5)
        raw = []
        for _ in range(300):
            names = rng.sample(["a", "b", "c", "d", "e"], rng.randint(1, 3))
            raw.append([(rng.random(), rng.random(), names)])
        return TrajectoryDatabase.from_raw(raw)

    def _scalar_reference(self, idx, activities, op):
        postings = [set(idx.posting(a)) for a in activities]
        if not postings:
            return set()
        if op == "all":
            out = postings[0]
            for p in postings[1:]:
                out &= p
            return out
        out = set()
        for p in postings:
            out |= p
        return out

    @pytest.mark.parametrize("names", [["a"], ["a", "b"], ["a", "b", "c"], ["a", "zzz-missing"]])
    def test_with_all_matches_scalar(self, big_db, names):
        idx = InvertedIndex.build(big_db)
        acts = [big_db.vocabulary.id_of(n) if n != "zzz-missing" else 9999 for n in names]
        assert idx.trajectories_with_all(acts) == self._scalar_reference(idx, acts, "all")

    @pytest.mark.parametrize("names", [["a"], ["a", "b"], ["a", "b", "c", "d", "e"]])
    def test_with_any_matches_scalar(self, big_db, names):
        idx = InvertedIndex.build(big_db)
        acts = [big_db.vocabulary.id_of(n) for n in names]
        assert idx.trajectories_with_any(acts) == self._scalar_reference(idx, acts, "any")
        # Results are plain Python ints either way (set membership by id).
        assert all(type(t) is int for t in idx.trajectories_with_any(acts))

    def test_small_inputs_take_the_scalar_path(self, db):
        # The tiny fixture sits below MIN_BATCH; exercised for coverage of
        # the fallback and agreement on duplicates in the activity list.
        idx = InvertedIndex.build(db)
        v = db.vocabulary
        a = v.id_of("a")
        assert idx.trajectories_with_any([a, a]) == set(idx.posting(a))
