"""Unit tests for the from-scratch R-tree."""

import math
import random

import pytest

from repro.geometry.primitives import Rect
from repro.index.rtree import RTree


def _points(n, seed=0, extent=100.0):
    rng = random.Random(seed)
    return [(rng.uniform(0, extent), rng.uniform(0, extent), i) for i in range(n)]


def _brute_range(points, rect):
    return {
        payload
        for x, y, payload in points
        if rect.min_x <= x <= rect.max_x and rect.min_y <= y <= rect.max_y
    }


class TestBulkLoad:
    def test_empty(self):
        tree = RTree.bulk_load([])
        assert tree.size == 0
        assert tree.range_search(Rect(0, 0, 1, 1)) == []

    def test_single_point(self):
        tree = RTree.bulk_load([(5.0, 5.0, "p")])
        assert tree.size == 1
        assert [e.payload for e in tree.range_search(Rect(4, 4, 6, 6))] == ["p"]

    def test_all_entries_present(self):
        pts = _points(500)
        tree = RTree.bulk_load(pts, max_entries=16)
        assert tree.size == 500
        assert sorted(e.payload for e in tree.iter_entries()) == list(range(500))

    def test_invariants(self):
        tree = RTree.bulk_load(_points(300, seed=3), max_entries=8)
        tree.check_invariants()

    def test_balanced_height(self):
        tree = RTree.bulk_load(_points(1000, seed=1), max_entries=16)
        # STR packs tightly: height ~ ceil(log16(1000/16)) + 1.
        assert tree.height() <= 4

    def test_range_search_matches_bruteforce(self):
        pts = _points(400, seed=7)
        tree = RTree.bulk_load(pts, max_entries=12)
        rng = random.Random(8)
        for _ in range(25):
            x1, x2 = sorted((rng.uniform(0, 100), rng.uniform(0, 100)))
            y1, y2 = sorted((rng.uniform(0, 100), rng.uniform(0, 100)))
            rect = Rect(x1, y1, x2, y2)
            got = {e.payload for e in tree.range_search(rect)}
            assert got == _brute_range(pts, rect)


class TestInsert:
    def test_insert_then_search(self):
        tree = RTree(max_entries=4)
        pts = _points(120, seed=2)
        for x, y, payload in pts:
            tree.insert(x, y, payload)
        assert tree.size == 120
        rect = Rect(20, 20, 70, 70)
        got = {e.payload for e in tree.range_search(rect)}
        assert got == _brute_range(pts, rect)

    def test_insert_preserves_invariants(self):
        tree = RTree(max_entries=4)
        for x, y, payload in _points(200, seed=5):
            tree.insert(x, y, payload)
        tree.check_invariants()

    def test_root_split_grows_height(self):
        tree = RTree(max_entries=2)
        for x, y, payload in _points(30, seed=6):
            tree.insert(x, y, payload)
        assert tree.height() >= 3
        tree.check_invariants()

    def test_duplicate_coordinates_ok(self):
        tree = RTree(max_entries=4)
        for i in range(20):
            tree.insert(1.0, 1.0, i)
        got = {e.payload for e in tree.range_search(Rect(1, 1, 1, 1))}
        assert got == set(range(20))

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            RTree(max_entries=1)
        with pytest.raises(ValueError):
            RTree(max_entries=8, min_entries=5)  # > M/2


class TestNodeGeometry:
    def test_min_dist_zero_inside_root(self):
        tree = RTree.bulk_load(_points(50, seed=9))
        assert tree.root.min_dist((50.0, 50.0)) == 0.0

    def test_min_dist_monotone_down_the_tree(self):
        """MINDIST of a child is >= MINDIST of its parent: required for
        best-first search correctness."""
        tree = RTree.bulk_load(_points(400, seed=10), max_entries=8)
        q = (-10.0, -10.0)

        def walk(node):
            if node.is_leaf:
                for e in node.children:
                    d = math.hypot(q[0] - e.x, q[1] - e.y)
                    assert d >= node.min_dist(q) - 1e-9
            else:
                for child in node.children:
                    assert child.min_dist(q) >= node.min_dist(q) - 1e-9
                    walk(child)

        walk(tree.root)

    def test_node_count_reasonable(self):
        tree = RTree.bulk_load(_points(256, seed=11), max_entries=16)
        # At least ceil(256/16) leaves plus internal nodes, far fewer than entries.
        assert 17 <= tree.node_count() <= 64

    def test_child_min_dists_match_scalar(self):
        """The batched NumPy candidate distances agree with the per-child
        scalar computation on every node, leaf and internal, for query
        points inside, outside, and axis-aligned with the rects."""
        tree = RTree.bulk_load(_points(400, seed=12), max_entries=16)
        rng = random.Random(13)
        queries = [(rng.uniform(-120, 220), rng.uniform(-120, 220)) for _ in range(6)]
        # Axis-aligned with a node edge: exercises the dx==0 / dy==0 exact
        # branches of the scalar MINDIST.
        queries.append((tree.root.rect.min_x, -50.0))
        queries.append((250.0, tree.root.rect.max_y))

        def walk(node):
            for q in queries:
                got = node.child_min_dists(q)
                if node.is_leaf:
                    want = [math.hypot(q[0] - e.x, q[1] - e.y) for e in node.children]
                else:
                    want = [child.rect.min_dist(q) for child in node.children]
                assert got == pytest.approx(want, rel=1e-12, abs=1e-12)
            if not node.is_leaf:
                for child in node.children:
                    walk(child)

        walk(tree.root)
