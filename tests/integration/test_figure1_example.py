"""End-to-end reproduction of the paper's Figure 1 motivating example.

The claims verified here, quoting Section I and II:

* under the activity-blind best match distance, Tr1 looks better than Tr2
  ("Tr1 will be taken as the most promising result");
* under the minimum match distance, "Tr2 is considered to be more similar
  to the query than Tr1";
* the minimum matches are exactly the point sets printed in the paper.

Run through the full stack: database -> GAT index -> engine, plus every
baseline searcher.
"""

import pytest

from repro.baselines import InvertedListSearch, IRTreeSearch, RTreeSearch
from repro.core.engine import GATSearchEngine
from repro.core.evaluator import MatchEvaluator
from repro.index.gat.index import GATConfig, GATIndex


class TestDistanceClaims:
    def test_best_match_prefers_tr1(self, fig1):
        ev = MatchEvaluator(fig1.metric)
        assert ev.best_match_distance(fig1.query, fig1.tr1) < ev.best_match_distance(
            fig1.query, fig1.tr2
        )

    def test_minimum_match_prefers_tr2(self, fig1):
        ev = MatchEvaluator(fig1.metric)
        assert ev.dmm(fig1.query, fig1.tr2) < ev.dmm(fig1.query, fig1.tr1)
        assert ev.dmm(fig1.query, fig1.tr1) == 45.0
        assert ev.dmm(fig1.query, fig1.tr2) == 25.0

    def test_minimum_match_sets(self, fig1):
        """Section II: Tr1.MM(Q) = {{p1,2, p1,3}, {p1,1, p1,2}, {p1,5}} and
        Tr2.MM(Q) = {{p2,1, p2,2}, {p2,3}, {p2,4}} (0-based here)."""
        ev = MatchEvaluator(fig1.metric)
        _d1, m1 = ev.dmm_explained(fig1.query, fig1.tr1)
        assert m1 == ((1, 2), (0, 1), (4,))
        _d2, m2 = ev.dmm_explained(fig1.query, fig1.tr2)
        assert m2 == ((0, 1), (2,), (3,))

    def test_q2_minimum_point_match_is_p11_p12(self, fig1):
        """Section II's Definition 4 walkthrough: {p1,1, p1,2} is the
        minimum point match from Tr1 to q2 (cost 14 + 6 = 20)."""
        ev = MatchEvaluator(fig1.metric)
        assert ev.dmpm(fig1.query[1], fig1.tr1) == 20.0


class TestFullStackRanking:
    def test_all_searchers_rank_tr2_first(self, fig1):
        db = fig1.database
        searchers = [
            GATSearchEngine(
                GATIndex.build(db, GATConfig(depth=3, memory_levels=3)),
                metric=fig1.metric,
            ),
            InvertedListSearch(db, metric=fig1.metric),
            RTreeSearch(db, metric=fig1.metric),
            IRTreeSearch(db, metric=fig1.metric),
        ]
        for s in searchers:
            results = s.atsq(fig1.query, k=2)
            assert [r.trajectory_id for r in results] == [2, 1]
            assert [r.distance for r in results] == [25.0, 45.0]

    def test_all_searchers_oatsq(self, fig1):
        db = fig1.database
        searchers = [
            GATSearchEngine(
                GATIndex.build(db, GATConfig(depth=3, memory_levels=3)),
                metric=fig1.metric,
            ),
            InvertedListSearch(db, metric=fig1.metric),
            RTreeSearch(db, metric=fig1.metric),
            IRTreeSearch(db, metric=fig1.metric),
        ]
        for s in searchers:
            results = s.oatsq(fig1.query, k=2)
            assert [r.trajectory_id for r in results] == [2, 1]
            assert [r.distance for r in results] == [25.0, 56.0]
