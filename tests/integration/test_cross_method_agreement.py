"""The strongest integration property: all four searchers return identical
top-k distance sequences on randomly generated databases and queries.

A disagreement implicates index construction, candidate retrieval, pruning
or termination in at least one method — this has caught real bugs during
development.
"""

import random

import pytest

from repro.baselines import InvertedListSearch, IRTreeSearch, RTreeSearch
from repro.core.engine import GATSearchEngine
from repro.core.query import Query, QueryPoint
from repro.index.gat.index import GATConfig, GATIndex


@pytest.fixture(scope="module")
def stack(tiny_db):
    return {
        "GAT": GATSearchEngine(
            GATIndex.build(tiny_db, GATConfig(depth=5, memory_levels=4))
        ),
        "IL": InvertedListSearch(tiny_db),
        "RT": RTreeSearch(tiny_db),
        "IRT": IRTreeSearch(tiny_db),
    }


def _random_query(db, rng, nq, na):
    while True:
        tr = db.trajectories[rng.randrange(len(db))]
        pts = [p for p in tr if p.activities]
        if len(pts) >= nq:
            qps = []
            for p in rng.sample(pts, nq):
                acts = rng.sample(sorted(p.activities), min(na, len(p.activities)))
                qps.append(
                    QueryPoint(
                        p.x + rng.uniform(-0.2, 0.2),
                        p.y + rng.uniform(-0.2, 0.2),
                        frozenset(acts),
                    )
                )
            return Query(qps)


@pytest.mark.parametrize("seed", range(8))
def test_atsq_agreement(stack, tiny_db, seed):
    rng = random.Random(seed)
    q = _random_query(tiny_db, rng, nq=rng.randint(1, 3), na=rng.randint(1, 2))
    k = rng.randint(1, 6)
    distances = {
        name: tuple(round(r.distance, 9) for r in s.atsq(q, k))
        for name, s in stack.items()
    }
    reference = distances["IL"]
    for name, got in distances.items():
        assert got == reference, f"{name} disagrees with IL: {got} vs {reference}"


@pytest.mark.parametrize("seed", range(8))
def test_oatsq_agreement(stack, tiny_db, seed):
    rng = random.Random(seed + 100)
    q = _random_query(tiny_db, rng, nq=rng.randint(1, 3), na=rng.randint(1, 2))
    k = rng.randint(1, 5)
    distances = {
        name: tuple(round(r.distance, 9) for r in s.oatsq(q, k))
        for name, s in stack.items()
    }
    reference = distances["IL"]
    for name, got in distances.items():
        assert got == reference, f"{name} disagrees with IL: {got} vs {reference}"


def test_agreement_across_k_values(stack, tiny_db):
    rng = random.Random(999)
    q = _random_query(tiny_db, rng, nq=2, na=1)
    for k in (1, 3, 7, 15):
        distances = {
            name: tuple(round(r.distance, 9) for r in s.atsq(q, k))
            for name, s in stack.items()
        }
        reference = distances["IL"]
        for name, got in distances.items():
            assert got == reference


def test_agreement_on_fresh_databases():
    """Different generator seeds, full stack rebuilt each time."""
    from repro.data.generator import CheckInGenerator, GeneratorConfig

    for seed in (5, 6):
        db = CheckInGenerator(
            GeneratorConfig(
                n_users=40,
                n_venues=100,
                vocabulary_size=60,
                width_km=8.0,
                height_km=8.0,
                checkins_per_user_mean=6.0,
                seed=seed,
            )
        ).generate()
        stack = {
            "GAT": GATSearchEngine(
                GATIndex.build(db, GATConfig(depth=4, memory_levels=3))
            ),
            "IL": InvertedListSearch(db),
            "RT": RTreeSearch(db),
            "IRT": IRTreeSearch(db),
        }
        rng = random.Random(seed)
        q = _random_query(db, rng, nq=2, na=2)
        reference = tuple(round(r.distance, 9) for r in stack["IL"].atsq(q, 4))
        for name, s in stack.items():
            got = tuple(round(r.distance, 9) for r in s.atsq(q, 4))
            assert got == reference, name
