"""End-to-end pipeline: generate -> persist -> reload -> index -> query.

Exercises the full public API surface the README advertises, in one flow,
asserting results are identical before and after a save/load round trip.
"""

import math

import pytest

from repro import (
    CheckInGenerator,
    GATConfig,
    GATIndex,
    GATSearchEngine,
    GeneratorConfig,
    InvertedListSearch,
    Query,
)
from repro.bench.workloads import QueryWorkloadGenerator, WorkloadConfig
from repro.data.loader import load_database_jsonl, save_database_jsonl


@pytest.fixture(scope="module")
def pipeline(tmp_path_factory):
    db = CheckInGenerator(
        GeneratorConfig(
            n_users=80,
            n_venues=200,
            vocabulary_size=120,
            width_km=12.0,
            height_km=10.0,
            checkins_per_user_mean=8.0,
            seed=314,
        )
    ).generate(name="e2e")
    path = tmp_path_factory.mktemp("data") / "e2e.jsonl"
    save_database_jsonl(db, path)
    reloaded = load_database_jsonl(path)
    return db, reloaded


def test_roundtrip_preserves_queries(pipeline):
    db, reloaded = pipeline
    engine_a = GATSearchEngine(GATIndex.build(db, GATConfig(depth=4, memory_levels=3)))
    engine_b = GATSearchEngine(
        GATIndex.build(reloaded, GATConfig(depth=4, memory_levels=3))
    )
    gen = QueryWorkloadGenerator(
        db, WorkloadConfig(n_query_points=2, n_activities_per_point=2, seed=1)
    )
    for q in gen.queries(5):
        a = [(r.trajectory_id, round(r.distance, 9)) for r in engine_a.atsq(q, 5)]
        b = [(r.trajectory_id, round(r.distance, 9)) for r in engine_b.atsq(q, 5)]
        assert a == b


def test_named_query_api(pipeline):
    db, _ = pipeline
    engine = GATSearchEngine(GATIndex.build(db, GATConfig(depth=4, memory_levels=3)))
    # Use the two globally most frequent activity names.
    names = [db.vocabulary.name_of(0), db.vocabulary.name_of(1)]
    box = db.bounding_box
    cx = (box.min_x + box.max_x) / 2
    cy = (box.min_y + box.max_y) / 2
    q = Query.from_named(db.vocabulary, [(cx, cy, names)])
    results = engine.atsq(q, 3)
    il = InvertedListSearch(db)
    want = [round(r.distance, 9) for r in il.atsq(q, 3)]
    assert [round(r.distance, 9) for r in results] == want


def test_results_are_actionable(pipeline):
    """The explain output points at real check-ins that cover the asks."""
    db, _ = pipeline
    engine = GATSearchEngine(GATIndex.build(db, GATConfig(depth=4, memory_levels=3)))
    gen = QueryWorkloadGenerator(
        db, WorkloadConfig(n_query_points=2, n_activities_per_point=1, seed=2)
    )
    q = gen.query()
    for r in engine.atsq(q, 3, explain=True):
        tr = db.get(r.trajectory_id)
        assert not math.isinf(r.distance)
        for qp, match in zip(q, r.matches):
            assert match  # non-empty point match
            covered = set()
            for pos in match:
                covered |= tr[pos].activities
            assert qp.activities <= covered


def test_oatsq_pipeline(pipeline):
    db, _ = pipeline
    engine = GATSearchEngine(GATIndex.build(db, GATConfig(depth=4, memory_levels=3)))
    il = InvertedListSearch(db)
    gen = QueryWorkloadGenerator(
        db, WorkloadConfig(n_query_points=3, n_activities_per_point=1, seed=3)
    )
    for q in gen.queries(3):
        a = [round(r.distance, 9) for r in engine.oatsq(q, 4)]
        b = [round(r.distance, 9) for r in il.oatsq(q, 4)]
        assert a == b
