"""Reproduction of the paper's Figure 2 index walkthrough.

Figure 2 shows three 5-point trajectories on a depth-2 grid and the
resulting GAT components, including the activity sketches
(Tr1: [a,b][c,e], Tr2: [a,c][d,f], Tr3: [b,c][e,f]) and the Section V-C
claim that Tr3's sketch rejects the query {a,...,d,...} because it covers
neither a nor d.
"""

import pytest

from repro.index.gat.tas import TrajectorySketch

A, B, C, D, E, F = range(6)


class TestFigure2Sketches:
    def test_tr1_sketch(self):
        # Tr1 activities: {d}, {a,c}, {b}, {c}, {d,e} -> union {a..e}.
        sketch = TrajectorySketch.from_activities({A, B, C, D, E}, 2)
        # Contiguous 0..4: the best 2-interval split is any single-gap cut;
        # all gaps equal 1, the first largest gap is chosen deterministically.
        assert sketch.covers_all({A, B, C, D, E})
        assert not sketch.covers(F)

    def test_tr2_sketch_covers_all_six(self):
        sketch = TrajectorySketch.from_activities({A, B, C, D, E, F}, 2)
        assert sketch.covers_all({A, B, C, D, E, F})

    def test_tr3_sketch_is_bc_ef(self):
        """Figure 2(iii): Tr3 -> [b,c] [e,f]."""
        sketch = TrajectorySketch.from_activities({B, C, E, F}, 2)
        assert sketch.intervals == ((B, C), (E, F))

    def test_tr3_rejected_for_query_a_d(self):
        """Section V-C: 'its activity sketch [b,c] ∪ [e,f] does not contain
        the query activities a and d.  Hence Tr3 is not a valid candidate.'"""
        sketch = TrajectorySketch.from_activities({B, C, E, F}, 2)
        query_activities = {A, B, C, D, E}  # q1{a,b} q2{c,d} q3{e}
        assert not sketch.covers(A)
        assert not sketch.covers(D)
        assert not sketch.covers_all(query_activities)


class TestFigure2EndToEnd:
    def test_gat_over_figure2_trajectories(self):
        """Index the three Figure 2 trajectories and check ITL/HICL contents
        roughly: every activity is findable and Tr3 never survives the
        validation for the Figure 1 query activities."""
        from repro.core.engine import GATSearchEngine
        from repro.core.query import Query, QueryPoint
        from repro.index.gat.index import GATConfig, GATIndex
        from repro.model.database import TrajectoryDatabase
        from repro.model.point import TrajectoryPoint
        from repro.model.trajectory import ActivityTrajectory
        from repro.model.vocabulary import Vocabulary

        acts = {
            1: [{D}, {A, C}, {B}, {C}, {D, E}],
            2: [{A}, {B, C}, {C, D}, {E}, {F}],
            3: [{C, E}, {B}, {B, C}, {E}, {F}],
        }
        trajectories = [
            ActivityTrajectory(
                tid,
                [
                    TrajectoryPoint(float(j), float(tid), frozenset(a))
                    for j, a in enumerate(sets)
                ],
            )
            for tid, sets in acts.items()
        ]
        db = TrajectoryDatabase(trajectories, Vocabulary(list("abcdef")))
        index = GATIndex.build(db, GATConfig(depth=2, memory_levels=2))
        engine = GATSearchEngine(index)
        query = Query(
            [
                QueryPoint(0.0, 0.0, frozenset({A, B})),
                QueryPoint(2.0, 0.0, frozenset({C, D})),
                QueryPoint(4.0, 0.0, frozenset({E})),
            ]
        )
        results = engine.atsq(query, k=3)
        ids = [r.trajectory_id for r in results]
        assert 3 not in ids  # Tr3 lacks a and d
        assert set(ids) <= {1, 2}
        assert engine.stats.tas_pruned >= 1  # Tr3 died at the sketch
