"""Shared fixtures.

``fig1`` reconstructs the paper's running example (Figure 1): two
trajectories of five points each, three query points, and the exact
distance matrices printed in the figure (via a matrix-backed metric).
Activity letters a-f map to IDs 0-5.

``small_db`` / ``tiny_db`` are deterministic synthetic databases sized for
unit and integration tests respectively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import pytest

from repro.core.query import Query, QueryPoint
from repro.data.generator import CheckInGenerator, GeneratorConfig
from repro.model.database import TrajectoryDatabase
from repro.model.distance import MatrixDistance
from repro.model.point import TrajectoryPoint
from repro.model.trajectory import ActivityTrajectory
from repro.model.vocabulary import Vocabulary

# Activity letters of the paper's example.
A, B, C, D, E, F = range(6)


@dataclass(frozen=True)
class Fig1:
    """The complete Figure 1 setup."""

    tr1: ActivityTrajectory
    tr2: ActivityTrajectory
    query: Query
    metric: MatrixDistance
    vocabulary: Vocabulary

    @property
    def database(self) -> TrajectoryDatabase:
        return TrajectoryDatabase([self.tr1, self.tr2], self.vocabulary, name="fig1")


def _build_fig1() -> Fig1:
    # Per-point activity sets, exactly as printed in Figure 1.
    tr1_acts = [{D}, {A, C}, {B}, {C}, {D, E}]
    tr2_acts = [{A}, {B, C}, {C, D}, {E}, {F}]
    # Distance matrices: row i = query point q_{i+1}, column j = p_{tr, j+1}.
    d1 = [
        [2, 8, 16, 24, 32],
        [14, 6, 3, 11, 20],
        [33, 25, 17, 8, 1],
    ]
    d2 = [
        [6, 8, 17, 26, 31],
        [14, 13, 4, 13, 20],
        [32, 28, 16, 7, 3],
    ]
    q_coords = [(float(i), -1.0) for i in range(3)]
    table: Dict[Tuple[Tuple[float, float], Tuple[float, float]], float] = {}
    tr1_points, tr2_points = [], []
    for j in range(5):
        c1 = (float(j), 1.0)
        c2 = (float(j), 2.0)
        tr1_points.append(TrajectoryPoint(c1[0], c1[1], frozenset(tr1_acts[j])))
        tr2_points.append(TrajectoryPoint(c2[0], c2[1], frozenset(tr2_acts[j])))
        for i in range(3):
            table[(q_coords[i], c1)] = float(d1[i][j])
            table[(q_coords[i], c2)] = float(d2[i][j])
    query = Query(
        [
            QueryPoint(q_coords[0][0], q_coords[0][1], frozenset({A, B})),
            QueryPoint(q_coords[1][0], q_coords[1][1], frozenset({C, D})),
            QueryPoint(q_coords[2][0], q_coords[2][1], frozenset({E})),
        ]
    )
    vocabulary = Vocabulary(["a", "b", "c", "d", "e", "f"])
    return Fig1(
        tr1=ActivityTrajectory(1, tr1_points),
        tr2=ActivityTrajectory(2, tr2_points),
        query=query,
        metric=MatrixDistance(table),
        vocabulary=vocabulary,
    )


@pytest.fixture(scope="session")
def fig1() -> Fig1:
    return _build_fig1()


@pytest.fixture(scope="session")
def small_db() -> TrajectoryDatabase:
    """~200 trajectories, deterministic; fast enough for unit tests."""
    config = GeneratorConfig(
        n_users=200,
        n_venues=600,
        vocabulary_size=300,
        width_km=20.0,
        height_km=16.0,
        n_hotspots=6,
        checkins_per_user_mean=10.0,
        activities_per_checkin_mean=2.5,
        seed=1234,
    )
    return CheckInGenerator(config).generate(name="small")


@pytest.fixture(scope="session")
def tiny_db() -> TrajectoryDatabase:
    """~60 trajectories; for exhaustive cross-method comparisons."""
    config = GeneratorConfig(
        n_users=60,
        n_venues=150,
        vocabulary_size=80,
        width_km=10.0,
        height_km=8.0,
        n_hotspots=4,
        checkins_per_user_mean=8.0,
        activities_per_checkin_mean=2.0,
        seed=99,
    )
    return CheckInGenerator(config).generate(name="tiny")
