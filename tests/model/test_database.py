"""Unit tests for the trajectory database."""

import random

import pytest

from repro.model.database import TrajectoryDatabase
from repro.model.point import TrajectoryPoint
from repro.model.trajectory import ActivityTrajectory
from repro.model.vocabulary import Vocabulary


RAW = [
    [(0.0, 0.0, ["food", "coffee"]), (1.0, 1.0, ["food"])],
    [(2.0, 2.0, ["museum"]), (3.0, 3.0, ["food", "museum"]), (4.0, 4.0, [])],
    [(5.0, 5.0, ["coffee"])],
]


@pytest.fixture
def db():
    return TrajectoryDatabase.from_raw(RAW, name="unit")


class TestConstruction:
    def test_from_raw_counts(self, db):
        assert len(db) == 3
        assert db.n_points() == 6

    def test_vocabulary_is_frequency_ordered(self, db):
        # food x3, coffee x2, museum x2; ties alphabetical.
        assert db.vocabulary.id_of("food") == 0
        assert db.vocabulary.id_of("coffee") == 1
        assert db.vocabulary.id_of("museum") == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TrajectoryDatabase.from_raw([])

    def test_duplicate_ids_rejected(self):
        v = Vocabulary(["x"])
        tr = ActivityTrajectory(7, [TrajectoryPoint(0, 0, frozenset({0}))])
        with pytest.raises(ValueError):
            TrajectoryDatabase([tr, tr], v)

    def test_get_and_contains(self, db):
        assert db.get(1).trajectory_id == 1
        assert 2 in db
        assert 99 not in db
        with pytest.raises(KeyError):
            db.get(99)


class TestDerivedFacts:
    def test_bounding_box_covers_all_points(self, db):
        box = db.bounding_box
        for tr in db:
            for p in tr:
                assert box.min_x <= p.x <= box.max_x
                assert box.min_y <= p.y <= box.max_y

    def test_activity_frequencies(self, db):
        freq = db.activity_frequencies
        assert freq[db.vocabulary.id_of("food")] == 3
        assert freq[db.vocabulary.id_of("coffee")] == 2

    def test_statistics_table4_fields(self, db):
        stats = db.statistics()
        assert stats.n_trajectories == 3
        assert stats.n_activities == 7  # occurrences, not points
        assert stats.n_distinct_activities == 3
        rows = dict(stats.as_rows())
        assert rows["#trajectory"] == 3
        assert rows["#distinct activity"] == 3

    def test_statistics_counts_venues_by_id_when_present(self):
        v = Vocabulary(["x"])
        trs = [
            ActivityTrajectory(
                0,
                [
                    TrajectoryPoint(0, 0, frozenset({0}), venue_id=5),
                    TrajectoryPoint(1, 1, frozenset({0}), venue_id=5),
                ],
            )
        ]
        db = TrajectoryDatabase(trs, v)
        assert db.statistics().n_venues == 1


class TestSampling:
    def test_sample_subset_size(self, db):
        rng = random.Random(1)
        sub = db.sample(2, rng)
        assert len(sub) == 2
        assert sub.vocabulary is db.vocabulary

    def test_sample_preserves_ids(self, db):
        rng = random.Random(1)
        sub = db.sample(2, rng)
        for tr in sub:
            assert db.get(tr.trajectory_id) is tr

    def test_sample_at_or_above_size_returns_self(self, db):
        rng = random.Random(1)
        assert db.sample(3, rng) is db
        assert db.sample(10, rng) is db
