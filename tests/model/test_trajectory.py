"""Unit tests for trajectory points and activity trajectories."""

import pytest

from repro.model.point import TrajectoryPoint
from repro.model.trajectory import ActivityTrajectory


def _tr(activity_sets, tid=0):
    points = [
        TrajectoryPoint(float(i), 0.0, frozenset(acts))
        for i, acts in enumerate(activity_sets)
    ]
    return ActivityTrajectory(tid, points)


class TestTrajectoryPoint:
    def test_coord(self):
        p = TrajectoryPoint(1.5, -2.0, frozenset({1}))
        assert p.coord == (1.5, -2.0)

    def test_has_any_and_covers(self):
        p = TrajectoryPoint(0, 0, frozenset({1, 2}))
        assert p.has_any(frozenset({2, 9}))
        assert not p.has_any(frozenset({3}))
        assert p.covers(frozenset({1}))
        assert p.covers(frozenset({1, 2}))
        assert not p.covers(frozenset({1, 3}))

    def test_empty_activities_allowed(self):
        p = TrajectoryPoint(0, 0)
        assert p.activities == frozenset()
        assert not p.has_any(frozenset({1}))

    def test_points_are_immutable(self):
        p = TrajectoryPoint(0, 0)
        with pytest.raises(AttributeError):
            p.x = 5.0


class TestActivityTrajectory:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ActivityTrajectory(0, [])

    def test_sequence_protocol(self):
        tr = _tr([{1}, {2}, {}])
        assert len(tr) == 3
        assert tr[1].activities == frozenset({2})
        assert [p.x for p in tr] == [0.0, 1.0, 2.0]

    def test_activity_union(self):
        tr = _tr([{1, 2}, {}, {2, 3}])
        assert tr.activity_union == frozenset({1, 2, 3})

    def test_posting_lists_positions_ascending(self):
        tr = _tr([{1}, {2, 1}, {}, {1}])
        assert tr.positions_of(1) == (0, 1, 3)
        assert tr.positions_of(2) == (1,)
        assert tr.positions_of(99) == ()

    def test_posting_lists_match_figure2(self):
        # Figure 2(iv), Tr1: a->p1,2  b->p1,3  c->p1,2 p1,4  d->p1,1 p1,5  e->p1,5
        a, b, c, d, e = range(5)
        tr = _tr([{d}, {a, c}, {b}, {c}, {d, e}], tid=1)
        assert tr.positions_of(a) == (1,)
        assert tr.positions_of(b) == (2,)
        assert tr.positions_of(c) == (1, 3)
        assert tr.positions_of(d) == (0, 4)
        assert tr.positions_of(e) == (4,)

    def test_contains_all(self):
        tr = _tr([{1}, {2}])
        assert tr.contains_all([1, 2])
        assert tr.contains_all([])
        assert not tr.contains_all([1, 3])

    def test_sub_inclusive_bounds(self):
        tr = _tr([{1}, {2}, {3}, {4}])
        seg = tr.sub(1, 2)
        assert [p.activities for p in seg] == [frozenset({2}), frozenset({3})]
        assert len(tr.sub(0, 3)) == 4
        assert len(tr.sub(2, 2)) == 1

    def test_sub_invalid_raises(self):
        tr = _tr([{1}, {2}])
        with pytest.raises(IndexError):
            tr.sub(1, 0)
        with pytest.raises(IndexError):
            tr.sub(0, 2)
        with pytest.raises(IndexError):
            tr.sub(-1, 1)

    def test_n_checkins_counts_occurrences(self):
        tr = _tr([{1, 2}, {}, {1}])
        assert tr.n_checkins() == 3
