"""Unit tests for the distance metrics."""

import math

import pytest

from repro.model.distance import (
    EuclideanDistance,
    HaversineDistance,
    MatrixDistance,
    project_lonlat_to_km,
)


class TestEuclidean:
    def test_pythagoras(self):
        assert EuclideanDistance()((0, 0), (3, 4)) == pytest.approx(5.0)

    def test_symmetry_and_identity(self):
        d = EuclideanDistance()
        assert d((1, 2), (4, 6)) == d((4, 6), (1, 2))
        assert d((1, 2), (1, 2)) == 0.0


class TestHaversine:
    def test_equator_degree(self):
        # One degree of longitude at the equator ~ 111.19 km.
        d = HaversineDistance()((0.0, 0.0), (1.0, 0.0))
        assert d == pytest.approx(111.19, abs=0.2)

    def test_known_city_pair(self):
        # LA (-118.24, 34.05) to NY (-74.01, 40.71) ~ 3936 km.
        d = HaversineDistance()((-118.24, 34.05), (-74.01, 40.71))
        assert d == pytest.approx(3936, rel=0.01)

    def test_symmetry(self):
        d = HaversineDistance()
        a, b = (-118.0, 34.0), (-117.5, 34.2)
        assert d(a, b) == pytest.approx(d(b, a))

    def test_zero_distance(self):
        assert HaversineDistance()((10.0, 20.0), (10.0, 20.0)) == 0.0


class TestMatrixDistance:
    def test_lookup_both_orders(self):
        m = MatrixDistance({((0.0, 0.0), (1.0, 1.0)): 7.0})
        assert m((0.0, 0.0), (1.0, 1.0)) == 7.0
        assert m((1.0, 1.0), (0.0, 0.0)) == 7.0

    def test_missing_pair_raises(self):
        m = MatrixDistance({})
        with pytest.raises(KeyError):
            m((0.0, 0.0), (1.0, 1.0))


class TestProjection:
    def test_empty(self):
        assert project_lonlat_to_km([]) == ()

    def test_distances_close_to_haversine_at_city_scale(self):
        pts = [(-118.24, 34.05), (-118.30, 34.10), (-118.10, 33.95)]
        proj = project_lonlat_to_km(pts)
        hav = HaversineDistance()
        eu = EuclideanDistance()
        for i in range(len(pts)):
            for j in range(i + 1, len(pts)):
                d_true = hav(pts[i], pts[j])
                d_proj = eu(proj[i], proj[j])
                assert d_proj == pytest.approx(d_true, rel=0.01)

    def test_explicit_reference_origin(self):
        proj = project_lonlat_to_km([(10.0, 50.0)], ref=(10.0, 50.0))
        assert proj[0] == pytest.approx((0.0, 0.0))
