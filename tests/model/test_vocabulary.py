"""Unit tests for the activity vocabulary."""

import pytest

from repro.model.vocabulary import Vocabulary


class TestBasicMapping:
    def test_add_and_lookup(self):
        v = Vocabulary()
        i = v.add("coffee")
        assert v.id_of("coffee") == i
        assert v.name_of(i) == "coffee"

    def test_add_is_idempotent(self):
        v = Vocabulary()
        assert v.add("x") == v.add("x")
        assert len(v) == 1

    def test_ids_are_dense(self):
        v = Vocabulary(["a", "b", "c"])
        assert [v.id_of(n) for n in "abc"] == [0, 1, 2]

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            Vocabulary().id_of("nope")

    def test_contains_len_iter(self):
        v = Vocabulary(["a", "b"])
        assert "a" in v
        assert "z" not in v
        assert list(v) == ["a", "b"]
        assert v.names() == ("a", "b")


class TestFrequencyOrdering:
    def test_ids_descend_by_frequency(self):
        v = Vocabulary.from_frequencies({"rare": 1, "common": 100, "mid": 10})
        assert v.id_of("common") == 0
        assert v.id_of("mid") == 1
        assert v.id_of("rare") == 2

    def test_ties_break_alphabetically(self):
        v = Vocabulary.from_frequencies({"b": 5, "a": 5, "c": 5})
        assert [v.name_of(i) for i in range(3)] == ["a", "b", "c"]

    def test_from_activity_sets_counts_occurrences(self):
        sets = [{"x", "y"}, {"x"}, {"x", "z"}, {"y"}]
        v = Vocabulary.from_activity_sets(sets)
        assert v.id_of("x") == 0  # 3 occurrences
        assert v.id_of("y") == 1  # 2
        assert v.id_of("z") == 2  # 1


class TestEncodeDecode:
    def test_encode_roundtrip(self):
        v = Vocabulary(["a", "b", "c"])
        ids = v.encode(["a", "c"])
        assert ids == frozenset({0, 2})
        assert v.decode(ids) == frozenset({"a", "c"})

    def test_encode_unknown_raises(self):
        v = Vocabulary(["a"])
        with pytest.raises(KeyError):
            v.encode(["a", "b"])

    def test_encode_adding_registers(self):
        v = Vocabulary(["a"])
        ids = v.encode_adding(["a", "new"])
        assert len(v) == 2
        assert v.decode(ids) == frozenset({"a", "new"})
