"""Columnar round-trip: ``from_arrays(to_arrays(db))`` equals the original.

The array image is the transport format of the shared-memory trajectory
store, so this equivalence is what makes ``store='shared'`` safe: every
derived structure the indexes and kernels read — points, posting lists,
activity unions, bounding boxes, activity frequencies — must come out of
the columnar image exactly equal to the object path's.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.generator import CheckInGenerator, GeneratorConfig
from repro.data.presets import PRESETS, dataset_from_preset
from repro.model.columnar import (
    NO_VENUE,
    arrays_to_trajectories,
    trajectories_to_arrays,
)
from repro.model.database import TrajectoryDatabase
from repro.model.point import TrajectoryPoint
from repro.model.trajectory import ActivityTrajectory


def _assert_equivalent(original: TrajectoryDatabase, rebuilt: TrajectoryDatabase):
    assert len(rebuilt) == len(original)
    for a, b in zip(original, rebuilt):
        assert b.trajectory_id == a.trajectory_id
        assert b.points == a.points  # exact: floats round-trip through float64
        assert b.activity_union == a.activity_union
        assert b.posting_lists == a.posting_lists  # dict ==, order-free
        assert b.n_checkins() == a.n_checkins()
        assert np.array_equal(b.coord_array(), a.coord_array())
    assert rebuilt.bounding_box == original.bounding_box
    assert dict(rebuilt.activity_frequencies) == dict(original.activity_frequencies)
    assert rebuilt.statistics() == original.statistics()


@pytest.mark.parametrize("preset", sorted(PRESETS))
def test_roundtrip_across_generator_presets(preset):
    db = dataset_from_preset(preset, scale=0.002, seed=7)
    rebuilt = TrajectoryDatabase.from_arrays(db.to_arrays(), db.vocabulary, name=db.name)
    _assert_equivalent(db, rebuilt)


@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n_users=st.integers(min_value=1, max_value=25),
    acts_mean=st.floats(min_value=0.5, max_value=4.0),
    empty_fraction=st.floats(min_value=0.0, max_value=0.5),
)
@settings(max_examples=25, deadline=None)
def test_roundtrip_property(seed, n_users, acts_mean, empty_fraction):
    config = GeneratorConfig(
        n_users=n_users,
        n_venues=40,
        vocabulary_size=30,
        width_km=5.0,
        height_km=5.0,
        n_hotspots=2,
        checkins_per_user_mean=6.0,
        activities_per_checkin_mean=acts_mean,
        empty_activity_fraction=empty_fraction,
        seed=seed,
    )
    db = CheckInGenerator(config).generate(name="prop")
    rebuilt = TrajectoryDatabase.from_arrays(db.to_arrays(), db.vocabulary)
    _assert_equivalent(db, rebuilt)


def _handmade():
    return [
        ActivityTrajectory(
            5,
            [
                TrajectoryPoint(0.0, 1.0, frozenset({3, 7}), timestamp=12.5, venue_id=4),
                TrajectoryPoint(2.0, 3.0, frozenset(), timestamp=None, venue_id=None),
            ],
        ),
        ActivityTrajectory(9, [TrajectoryPoint(-1.0, -2.0, frozenset({0}))]),
    ]


def test_none_sentinels_roundtrip():
    """NaN timestamps and -1 venues decode back to ``None`` per point."""
    rebuilt = arrays_to_trajectories(trajectories_to_arrays(_handmade()))
    assert rebuilt[0].points[0].timestamp == 12.5
    assert rebuilt[0].points[0].venue_id == 4
    assert rebuilt[0].points[1].timestamp is None
    assert rebuilt[0].points[1].venue_id is None
    assert rebuilt[1].points[0].activities == frozenset({0})


def test_layout_invariants():
    arrays = trajectories_to_arrays(_handmade())
    assert arrays.n_trajectories == 2
    assert arrays.n_points == 3
    assert arrays.n_postings == 3
    assert arrays.point_offsets[0] == 0 and arrays.point_offsets[-1] == 3
    assert list(np.diff(arrays.point_offsets)) == [2, 1]
    assert all(np.diff(arrays.act_offsets) >= 0)
    assert arrays.xy.shape == (3, 2)
    assert arrays.venues[1] == NO_VENUE
    assert math.isnan(arrays.timestamps[1])
    assert arrays.nbytes() > 0


def test_real_nan_timestamp_rejected():
    bad = [ActivityTrajectory(1, [TrajectoryPoint(0.0, 0.0, timestamp=float("nan"))])]
    with pytest.raises(ValueError, match="NaN"):
        trajectories_to_arrays(bad)


def test_negative_venue_rejected():
    bad = [ActivityTrajectory(1, [TrajectoryPoint(0.0, 0.0, venue_id=-3)])]
    with pytest.raises(ValueError):
        trajectories_to_arrays(bad)


def test_array_backed_lazy_paths_match_materialized():
    """The array fast paths (union / posting lists / n_checkins computed
    without touching ``points``) agree with what materialisation yields."""
    arrays = trajectories_to_arrays(_handmade())
    lazy = arrays_to_trajectories(arrays)
    eager = arrays_to_trajectories(arrays)
    for tr in eager:
        tr.points  # force materialisation first on this copy
    for a, b in zip(lazy, eager):
        assert a.activity_union == b.activity_union
        assert a.posting_lists == b.posting_lists
        assert a.n_checkins() == b.n_checkins()
        assert len(a) == len(b)
