"""Unit tests for the LA/NY dataset presets."""

import pytest

from repro.data.presets import PRESETS, dataset_from_preset, preset_config


class TestPresetConfig:
    def test_known_presets(self):
        assert set(PRESETS) == {"la", "ny"}

    def test_unknown_preset_raises(self):
        with pytest.raises(KeyError):
            preset_config("sf")

    def test_bad_scale_raises(self):
        with pytest.raises(ValueError):
            preset_config("la", 0.0)
        with pytest.raises(ValueError):
            preset_config("la", 1.5)

    def test_scale_one_matches_table4_magnitudes(self):
        la = preset_config("la", 1.0)
        ny = preset_config("ny", 1.0)
        assert la.n_users == 31_557  # Table IV #trajectory
        assert ny.n_users == 49_027

    def test_counts_scale_linearly_extent_by_sqrt(self):
        full = preset_config("la", 1.0)
        half = preset_config("la", 0.25)
        assert half.n_users == pytest.approx(full.n_users * 0.25, rel=0.01)
        assert half.width_km == pytest.approx(full.width_km * 0.5, rel=0.01)
        assert half.height_km == pytest.approx(full.height_km * 0.5, rel=0.01)

    def test_scaling_keeps_intensities(self):
        full = preset_config("ny", 1.0)
        small = preset_config("ny", 0.1)
        assert small.checkins_per_user_mean == full.checkins_per_user_mean
        assert small.activities_per_checkin_mean == full.activities_per_checkin_mean


class TestGeneratedPresets:
    def test_la_ny_contrast(self):
        """Table IV's load-bearing ratios: NY has more trajectories; LA has
        more activity occurrences per trajectory."""
        la = dataset_from_preset("la", 0.01)
        ny = dataset_from_preset("ny", 0.01)
        assert len(ny) > len(la)
        la_stats = la.statistics()
        ny_stats = ny.statistics()
        la_per_tr = la_stats.n_activities / la_stats.n_trajectories
        ny_per_tr = ny_stats.n_activities / ny_stats.n_trajectories
        assert la_per_tr > ny_per_tr

    def test_seed_override_changes_data(self):
        a = dataset_from_preset("la", 0.005)
        b = dataset_from_preset("la", 0.005, seed=9999)
        assert [p.coord for tr in a for p in tr] != [p.coord for tr in b for p in tr]

    def test_name_encodes_scale(self):
        db = dataset_from_preset("ny", 0.005)
        assert db.name.startswith("ny@")
