"""Unit tests for JSON-lines persistence."""

import pytest

from repro.data.loader import load_database_jsonl, save_database_jsonl
from repro.model.database import TrajectoryDatabase


@pytest.fixture
def db():
    return TrajectoryDatabase.from_raw(
        [
            [(0.0, 0.5, ["a", "b"]), (1.0, 1.5, ["a"])],
            [(2.0, 2.5, []), (3.0, 3.5, ["c"])],
        ],
        name="roundtrip",
    )


class TestRoundTrip:
    def test_full_roundtrip(self, db, tmp_path):
        path = tmp_path / "db.jsonl"
        save_database_jsonl(db, path)
        loaded = load_database_jsonl(path)
        assert loaded.name == db.name
        assert len(loaded) == len(db)
        assert list(loaded.vocabulary.names()) == list(db.vocabulary.names())
        for orig, back in zip(db, loaded):
            assert orig.trajectory_id == back.trajectory_id
            assert [p.coord for p in orig] == [p.coord for p in back]
            assert [p.activities for p in orig] == [p.activities for p in back]

    def test_roundtrip_preserves_metadata(self, tmp_path):
        from repro.data.generator import CheckInGenerator, GeneratorConfig

        db = CheckInGenerator(
            GeneratorConfig(n_users=10, n_venues=30, vocabulary_size=20, seed=1)
        ).generate()
        path = tmp_path / "g.jsonl"
        save_database_jsonl(db, path)
        loaded = load_database_jsonl(path)
        for orig, back in zip(db, loaded):
            assert [p.timestamp for p in orig] == [p.timestamp for p in back]
            assert [p.venue_id for p in orig] == [p.venue_id for p in back]

    def test_statistics_survive(self, db, tmp_path):
        path = tmp_path / "db.jsonl"
        save_database_jsonl(db, path)
        loaded = load_database_jsonl(path)
        assert loaded.statistics() == db.statistics()


class TestMalformedFiles:
    def test_missing_header(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "trajectory", "id": 0, "points": []}\n')
        with pytest.raises(ValueError):
            load_database_jsonl(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError):
            load_database_jsonl(path)

    def test_header_only(self, tmp_path):
        path = tmp_path / "header.jsonl"
        path.write_text('{"type": "header", "name": "x", "vocabulary": []}\n')
        with pytest.raises(ValueError):
            load_database_jsonl(path)

    def test_unknown_record_type(self, tmp_path):
        path = tmp_path / "weird.jsonl"
        path.write_text('{"type": "banana"}\n')
        with pytest.raises(ValueError):
            load_database_jsonl(path)

    def test_blank_lines_ignored(self, db, tmp_path):
        path = tmp_path / "blank.jsonl"
        save_database_jsonl(db, path)
        content = path.read_text().replace("\n", "\n\n")
        path.write_text(content)
        loaded = load_database_jsonl(path)
        assert len(loaded) == len(db)
