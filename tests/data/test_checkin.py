"""Unit tests for check-in grouping (the paper's trajectory construction)."""

from repro.data.checkin import CheckIn, group_checkins_into_trajectories
from repro.model.vocabulary import Vocabulary


def _ci(user, venue, t, acts=("food",)):
    return CheckIn(
        user_id=user,
        venue_id=venue,
        x=float(venue),
        y=0.0,
        timestamp=float(t),
        activities=frozenset(acts),
    )


class TestGrouping:
    def test_one_trajectory_per_user(self):
        v = Vocabulary(["food"])
        records = [_ci(1, 10, 0), _ci(2, 20, 0), _ci(1, 11, 1)]
        trs = group_checkins_into_trajectories(records, v.encode)
        assert len(trs) == 2
        assert [len(t) for t in trs] == [2, 1]

    def test_chronological_order_within_user(self):
        v = Vocabulary(["food"])
        records = [_ci(1, 30, 5), _ci(1, 10, 1), _ci(1, 20, 3)]
        (tr,) = group_checkins_into_trajectories(records, v.encode)
        assert [p.venue_id for p in tr] == [10, 20, 30]
        assert [p.timestamp for p in tr] == [1.0, 3.0, 5.0]

    def test_trajectory_ids_dense_by_user_order(self):
        v = Vocabulary(["food"])
        records = [_ci(9, 1, 0), _ci(3, 2, 0), _ci(7, 3, 0)]
        trs = group_checkins_into_trajectories(records, v.encode)
        assert [t.trajectory_id for t in trs] == [0, 1, 2]
        # users sorted: 3 -> 0, 7 -> 1, 9 -> 2
        assert trs[0][0].venue_id == 2
        assert trs[1][0].venue_id == 3

    def test_activities_are_encoded(self):
        v = Vocabulary(["food", "coffee"])
        records = [_ci(1, 1, 0, acts=("coffee", "food"))]
        (tr,) = group_checkins_into_trajectories(records, v.encode)
        assert tr[0].activities == frozenset({0, 1})

    def test_timestamp_tie_broken_by_venue(self):
        v = Vocabulary(["food"])
        records = [_ci(1, 5, 0), _ci(1, 2, 0)]
        (tr,) = group_checkins_into_trajectories(records, v.encode)
        assert [p.venue_id for p in tr] == [2, 5]

    def test_empty_activity_checkins_preserved(self):
        v = Vocabulary([])
        records = [
            CheckIn(user_id=1, venue_id=1, x=0, y=0, timestamp=0, activities=frozenset())
        ]
        (tr,) = group_checkins_into_trajectories(records, v.encode)
        assert tr[0].activities == frozenset()
