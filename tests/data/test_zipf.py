"""Unit tests for the Zipf sampler."""

import random
from collections import Counter

import pytest

from repro.data.zipf import ZipfSampler


class TestConstruction:
    def test_bad_sizes_rejected(self):
        with pytest.raises(ValueError):
            ZipfSampler(0)
        with pytest.raises(ValueError):
            ZipfSampler(10, exponent=-0.5)

    def test_pmf_sums_to_one(self):
        probs = ZipfSampler(100, 1.2).pmf()
        assert sum(probs) == pytest.approx(1.0)

    def test_pmf_is_decreasing(self):
        probs = ZipfSampler(50, 1.0).pmf()
        assert all(probs[i] >= probs[i + 1] - 1e-15 for i in range(len(probs) - 1))

    def test_exponent_zero_is_uniform(self):
        probs = ZipfSampler(10, 0.0).pmf()
        for p in probs:
            assert p == pytest.approx(0.1)


class TestSampling:
    def test_samples_in_range(self):
        z = ZipfSampler(20, 1.0)
        rng = random.Random(1)
        for _ in range(500):
            assert 0 <= z.sample(rng) < 20

    def test_head_dominates(self):
        z = ZipfSampler(1000, 1.0)
        rng = random.Random(2)
        counts = Counter(z.sample_many(rng, 20_000))
        # Rank 0 should be sampled far more than rank 500.
        assert counts[0] > 20 * max(1, counts.get(500, 0))

    def test_empirical_matches_pmf(self):
        z = ZipfSampler(10, 1.0)
        rng = random.Random(3)
        n = 50_000
        counts = Counter(z.sample_many(rng, n))
        probs = z.pmf()
        for rank in range(10):
            assert counts[rank] / n == pytest.approx(probs[rank], abs=0.01)

    def test_sample_distinct_returns_k_unique(self):
        z = ZipfSampler(100, 1.0)
        rng = random.Random(4)
        picked = z.sample_distinct(rng, 10)
        assert len(picked) == len(set(picked)) == 10

    def test_sample_distinct_whole_vocabulary(self):
        z = ZipfSampler(5, 1.0)
        rng = random.Random(5)
        assert z.sample_distinct(rng, 5) == [0, 1, 2, 3, 4]
        assert z.sample_distinct(rng, 50) == [0, 1, 2, 3, 4]

    def test_deterministic_given_seed(self):
        z = ZipfSampler(50, 1.3)
        a = z.sample_many(random.Random(42), 100)
        b = z.sample_many(random.Random(42), 100)
        assert a == b
