"""Unit tests for the synthetic check-in generator."""

import math
import statistics

import pytest

from repro.data.generator import CheckInGenerator, GeneratorConfig, generate_database


def _small(**overrides) -> GeneratorConfig:
    base = dict(
        n_users=120,
        n_venues=400,
        vocabulary_size=200,
        width_km=20.0,
        height_km=16.0,
        n_hotspots=5,
        checkins_per_user_mean=10.0,
        seed=7,
    )
    base.update(overrides)
    return GeneratorConfig(**base)


class TestConfigValidation:
    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            GeneratorConfig(n_users=0)
        with pytest.raises(ValueError):
            GeneratorConfig(vocabulary_size=0)

    def test_fraction_ranges(self):
        with pytest.raises(ValueError):
            GeneratorConfig(uniform_fraction=1.5)
        with pytest.raises(ValueError):
            GeneratorConfig(venue_topic_bias=-0.1)
        with pytest.raises(ValueError):
            GeneratorConfig(common_fraction=2.0)
        with pytest.raises(ValueError):
            GeneratorConfig(common_pool_size=0)


class TestGeneratedDatabase:
    def test_one_trajectory_per_user(self):
        db = CheckInGenerator(_small()).generate()
        assert len(db) == 120

    def test_min_checkins_respected(self):
        cfg = _small(checkins_per_user_min=3)
        db = CheckInGenerator(cfg).generate()
        assert all(len(tr) >= 3 for tr in db)

    def test_points_inside_city(self):
        cfg = _small()
        db = CheckInGenerator(cfg).generate()
        for tr in db:
            for p in tr:
                assert -0.01 <= p.x <= cfg.width_km + 0.01
                assert -0.01 <= p.y <= cfg.height_km + 0.01

    def test_deterministic_for_seed(self):
        a = CheckInGenerator(_small(seed=11)).generate()
        b = CheckInGenerator(_small(seed=11)).generate()
        assert len(a) == len(b)
        for tra, trb in zip(a, b):
            assert [p.coord for p in tra] == [p.coord for p in trb]
            assert [p.activities for p in tra] == [p.activities for p in trb]

    def test_different_seed_differs(self):
        a = CheckInGenerator(_small(seed=1)).generate()
        b = CheckInGenerator(_small(seed=2)).generate()
        coords_a = [p.coord for tr in a for p in tr]
        coords_b = [p.coord for tr in b for p in tr]
        assert coords_a != coords_b

    def test_vocabulary_is_frequency_ordered(self):
        db = CheckInGenerator(_small()).generate()
        freq = db.activity_frequencies
        counts = [freq.get(i, 0) for i in range(len(db.vocabulary))]
        assert all(counts[i] >= counts[i + 1] for i in range(len(counts) - 1))

    def test_activity_skew_head_heavy(self):
        db = CheckInGenerator(_small()).generate()
        freq = db.activity_frequencies
        total = sum(freq.values())
        head = sum(freq.get(i, 0) for i in range(20))
        assert head > 0.4 * total  # the common-word tier dominates

    def test_empty_activity_fraction_zero_means_no_empty(self):
        cfg = _small(empty_activity_fraction=0.0)
        db = CheckInGenerator(cfg).generate()
        assert all(p.activities for tr in db for p in tr)

    def test_trajectories_are_spatially_local(self):
        """Home-anchored mobility: trajectory extents are a small fraction
        of the city (what keeps spatial pruning meaningful)."""
        cfg = _small(long_jump_probability=0.0, user_range_km=1.5)
        db = CheckInGenerator(cfg).generate()
        diagonals = []
        for tr in db:
            xs = [p.x for p in tr]
            ys = [p.y for p in tr]
            diagonals.append(math.hypot(max(xs) - min(xs), max(ys) - min(ys)))
        city_diag = math.hypot(cfg.width_km, cfg.height_km)
        assert statistics.median(diagonals) < 0.5 * city_diag

    def test_generate_database_wrapper(self):
        db = generate_database(_small(), name="wrapped")
        assert db.name == "wrapped"

    def test_venue_ids_recorded(self):
        db = CheckInGenerator(_small()).generate()
        assert all(p.venue_id is not None for tr in db for p in tr)

    def test_popular_venues_get_more_checkins(self):
        from collections import Counter

        db = CheckInGenerator(_small(n_users=300)).generate()
        counts = Counter(p.venue_id for tr in db for p in tr)
        sorted_counts = sorted(counts.values(), reverse=True)
        top10 = sum(sorted_counts[:10])
        total = sum(sorted_counts)
        # Power-law venue popularity: the top 10 of 400 venues should take
        # a visibly outsized share of all check-ins.
        assert top10 > 0.08 * total
