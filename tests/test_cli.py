"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.data.loader import load_database_jsonl


@pytest.fixture(scope="module")
def dataset_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "db.jsonl"
    code = main(
        [
            "generate",
            "--users", "60",
            "--venues", "150",
            "--vocabulary", "80",
            "--seed", "3",
            "-o", str(path),
        ]
    )
    assert code == 0
    return path


class TestGenerate:
    def test_custom_generation(self, dataset_path):
        db = load_database_jsonl(dataset_path)
        assert len(db) == 60

    def test_preset_generation(self, tmp_path, capsys):
        out = tmp_path / "la.jsonl"
        code = main(["generate", "--preset", "la", "--scale", "0.002", "-o", str(out)])
        assert code == 0
        assert "wrote" in capsys.readouterr().out
        assert out.exists()

    def test_missing_parameters_rejected(self, tmp_path):
        code = main(["generate", "-o", str(tmp_path / "x.jsonl")])
        assert code == 2


class TestStats:
    def test_prints_table4(self, dataset_path, capsys):
        assert main(["stats", str(dataset_path)]) == 0
        out = capsys.readouterr().out
        assert "#trajectory" in out
        assert "60" in out


class TestQuery:
    def test_atsq(self, dataset_path, capsys):
        code = main(
            [
                "query", str(dataset_path),
                "--k", "3",
                "--query-points", "2",
                "--activities", "1",
                "--depth", "4",
                "--seed", "5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "top-3 (Dmm)" in out
        assert "work:" in out

    def test_oatsq_with_explain(self, dataset_path, capsys):
        code = main(
            [
                "query", str(dataset_path),
                "--k", "2",
                "--query-points", "2",
                "--activities", "1",
                "--depth", "4",
                "--order-sensitive",
                "--explain",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Dmom" in out


class TestQueryBatch:
    def test_batch_serves_through_query_service(self, dataset_path, capsys):
        code = main(
            [
                "query", str(dataset_path),
                "--k", "3",
                "--query-points", "2",
                "--activities", "1",
                "--depth", "4",
                "--batch", "6",
                "--workers", "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "batch of 6 queries" in out
        assert "QPS" in out
        assert "cache hit rate" in out

    def test_batch_order_sensitive(self, dataset_path, capsys):
        code = main(
            [
                "query", str(dataset_path),
                "--k", "2",
                "--query-points", "2",
                "--activities", "1",
                "--depth", "4",
                "--order-sensitive",
                "--batch", "3",
                "--workers", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Dmom" in out


class TestSweep:
    def test_k_sweep(self, dataset_path, capsys):
        code = main(
            ["sweep", str(dataset_path), "--figure", "k", "--queries", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "effect of k" in out
        assert "GAT" in out and "IL" in out

    def test_bad_figure_rejected(self, dataset_path):
        with pytest.raises(SystemExit):
            main(["sweep", str(dataset_path), "--figure", "nope"])


class TestQueryReplicated:
    def test_single_query_on_replicated_stack(self, dataset_path, capsys):
        code = main(
            [
                "query", str(dataset_path),
                "--k", "3",
                "--query-points", "2",
                "--activities", "1",
                "--depth", "4",
                "--shards", "2",
                "--replicas", "2",
                "--replica-router", "least-in-flight",
                "--executor", "serial",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "2 shards/serial×2 replicas (least-in-flight)" in out
        assert "work:" in out

    def test_batch_on_replicated_stack(self, dataset_path, capsys):
        code = main(
            [
                "query", str(dataset_path),
                "--k", "3",
                "--query-points", "2",
                "--activities", "1",
                "--depth", "4",
                "--batch", "4",
                "--shards", "2",
                "--replicas", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "batch of 4 queries" in out
        assert "2 replicas (round-robin)" in out

    def test_replicas_promote_single_shard_onto_sharded_stack(
        self, dataset_path, capsys
    ):
        code = main(
            [
                "query", str(dataset_path),
                "--k", "2",
                "--query-points", "2",
                "--activities", "1",
                "--depth", "4",
                "--shards", "1",
                "--replicas", "2",
                "--executor", "serial",
            ]
        )
        assert code == 0
        assert "1 shards/serial×2 replicas" in capsys.readouterr().out

    def test_bad_replicas_rejected(self, dataset_path):
        assert main(["query", str(dataset_path), "--replicas", "0"]) == 2
