"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.data.loader import load_database_jsonl


@pytest.fixture(scope="module")
def dataset_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "db.jsonl"
    code = main(
        [
            "generate",
            "--users", "60",
            "--venues", "150",
            "--vocabulary", "80",
            "--seed", "3",
            "-o", str(path),
        ]
    )
    assert code == 0
    return path


class TestGenerate:
    def test_custom_generation(self, dataset_path):
        db = load_database_jsonl(dataset_path)
        assert len(db) == 60

    def test_preset_generation(self, tmp_path, capsys):
        out = tmp_path / "la.jsonl"
        code = main(["generate", "--preset", "la", "--scale", "0.002", "-o", str(out)])
        assert code == 0
        assert "wrote" in capsys.readouterr().out
        assert out.exists()

    def test_missing_parameters_rejected(self, tmp_path):
        code = main(["generate", "-o", str(tmp_path / "x.jsonl")])
        assert code == 2


class TestStats:
    def test_prints_table4(self, dataset_path, capsys):
        assert main(["stats", str(dataset_path)]) == 0
        out = capsys.readouterr().out
        assert "#trajectory" in out
        assert "60" in out


class TestQuery:
    def test_atsq(self, dataset_path, capsys):
        code = main(
            [
                "query", str(dataset_path),
                "--k", "3",
                "--query-points", "2",
                "--activities", "1",
                "--depth", "4",
                "--seed", "5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "top-3 (Dmm)" in out
        assert "work:" in out

    def test_oatsq_with_explain(self, dataset_path, capsys):
        code = main(
            [
                "query", str(dataset_path),
                "--k", "2",
                "--query-points", "2",
                "--activities", "1",
                "--depth", "4",
                "--order-sensitive",
                "--explain",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Dmom" in out


class TestQueryBatch:
    def test_batch_serves_through_query_service(self, dataset_path, capsys):
        code = main(
            [
                "query", str(dataset_path),
                "--k", "3",
                "--query-points", "2",
                "--activities", "1",
                "--depth", "4",
                "--batch", "6",
                "--workers", "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "batch of 6 queries" in out
        assert "QPS" in out
        assert "cache hit rate" in out

    def test_batch_order_sensitive(self, dataset_path, capsys):
        code = main(
            [
                "query", str(dataset_path),
                "--k", "2",
                "--query-points", "2",
                "--activities", "1",
                "--depth", "4",
                "--order-sensitive",
                "--batch", "3",
                "--workers", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Dmom" in out


class TestSweep:
    def test_k_sweep(self, dataset_path, capsys):
        code = main(
            ["sweep", str(dataset_path), "--figure", "k", "--queries", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "effect of k" in out
        assert "GAT" in out and "IL" in out

    def test_bad_figure_rejected(self, dataset_path):
        with pytest.raises(SystemExit):
            main(["sweep", str(dataset_path), "--figure", "nope"])


class TestTrace:
    def test_single_query_prints_a_span_tree(self, dataset_path, capsys):
        code = main(
            [
                "trace", str(dataset_path),
                "--k", "3",
                "--query-points", "2",
                "--activities", "1",
                "--depth", "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "1 query," in out
        # The tree renders the query root with its stage children indented.
        assert "query " in out
        for stage in ("retrieve", "validate", "score"):
            assert f"  {stage}" in out

    def test_sharded_trace_dumps_validating_jsonl(
        self, dataset_path, tmp_path, capsys
    ):
        from repro.obs import read_spans_jsonl, validate_spans

        spans_path = tmp_path / "spans.jsonl"
        code = main(
            [
                "trace", str(dataset_path),
                "--k", "3",
                "--query-points", "2",
                "--activities", "1",
                "--depth", "4",
                "--batch", "2",
                "--shards", "2",
                "--replicas", "2",
                "-o", str(spans_path),
            ]
        )
        assert code == 0
        assert f"wrote" in capsys.readouterr().out
        records = validate_spans(read_spans_jsonl(spans_path))
        roots = [r for r in records if r["parent_id"] is None]
        assert len(roots) == 2 and all(r["name"] == "query" for r in roots)
        shard_tasks = [r for r in records if r["name"] == "shard_task"]
        assert len(shard_tasks) >= 4  # 2 queries x 2 shards
        for rec in shard_tasks:
            assert {"shard", "replica", "attempt", "hedge"} <= set(rec["attrs"])


class TestMetrics:
    def test_prometheus_snapshot_parses(self, dataset_path, capsys):
        from repro.obs import parse_prometheus_text

        code = main(
            [
                "metrics", str(dataset_path),
                "--k", "3",
                "--query-points", "2",
                "--activities", "1",
                "--depth", "4",
                "--batch", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        samples = parse_prometheus_text(out)
        assert samples["repro_queries_total"] == 3.0
        assert samples["repro_query_latency_seconds_count"] == 3.0
        assert samples["repro_disk_reads_total"] > 0


class TestQueryReplicated:
    def test_single_query_on_replicated_stack(self, dataset_path, capsys):
        code = main(
            [
                "query", str(dataset_path),
                "--k", "3",
                "--query-points", "2",
                "--activities", "1",
                "--depth", "4",
                "--shards", "2",
                "--replicas", "2",
                "--replica-router", "least-in-flight",
                "--executor", "serial",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "2 shards/serial×2 replicas (least-in-flight)" in out
        assert "work:" in out

    def test_batch_on_replicated_stack(self, dataset_path, capsys):
        code = main(
            [
                "query", str(dataset_path),
                "--k", "3",
                "--query-points", "2",
                "--activities", "1",
                "--depth", "4",
                "--batch", "4",
                "--shards", "2",
                "--replicas", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "batch of 4 queries" in out
        assert "2 replicas (round-robin)" in out

    def test_replicas_promote_single_shard_onto_sharded_stack(
        self, dataset_path, capsys
    ):
        code = main(
            [
                "query", str(dataset_path),
                "--k", "2",
                "--query-points", "2",
                "--activities", "1",
                "--depth", "4",
                "--shards", "1",
                "--replicas", "2",
                "--executor", "serial",
            ]
        )
        assert code == 0
        assert "1 shards/serial×2 replicas" in capsys.readouterr().out

    def test_bad_replicas_rejected(self, dataset_path):
        assert main(["query", str(dataset_path), "--replicas", "0"]) == 2


class TestServeBench:
    def test_open_loop_smoke_single_service(self, dataset_path, capsys):
        code = main(
            [
                "serve-bench", str(dataset_path),
                "--rate", "30",
                "--duration", "1.0",
                "--arrivals", "poisson",
                "--slo-ms", "400",
                "--concurrency", "4",
                "--workload", "8",
                "--k", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "open-loop poisson @ 30.0 QPS" in out
        assert "offered" in out and "goodput" in out
        assert "backend:" not in out  # single-node stack, no fan-out stats

    def test_open_loop_smoke_sharded_with_shedding(self, dataset_path, capsys):
        code = main(
            [
                "serve-bench", str(dataset_path),
                "--rate", "120",
                "--duration", "1.0",
                "--arrivals", "square",
                "--period", "0.5",
                "--slo-ms", "100",
                "--queue-capacity", "8",
                "--concurrency", "2",
                "--shards", "2",
                "--workload", "8",
                "--k", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "open-loop square @ 120.0 QPS" in out
        assert "shed=on" in out
        assert "backend: retries" in out  # sharded stack surfaces fan-out stats

    def test_bad_rate_rejected(self, dataset_path):
        assert main(["serve-bench", str(dataset_path), "--rate", "0"]) == 2
