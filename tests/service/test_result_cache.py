"""QueryService result cache: signature keying and invalidation on insert.

The cache must be semantically invisible — a hit returns exactly what a
fresh execution would — except in the work counters (zero engine work)
and the service's hit-rate accounting.  Inserting a trajectory bumps the
index version, which must drop every cached entry before the next lookup.
"""

import pytest

from repro.core.engine import GATSearchEngine
from repro.data.generator import CheckInGenerator, GeneratorConfig
from repro.index.gat.index import GATConfig, GATIndex
from repro.model.point import TrajectoryPoint
from repro.model.trajectory import ActivityTrajectory
from repro.bench.workloads import QueryWorkloadGenerator, WorkloadConfig
from repro.service import QueryRequest, QueryService


@pytest.fixture()
def db():
    config = GeneratorConfig(
        n_users=80,
        n_venues=200,
        vocabulary_size=100,
        width_km=12.0,
        height_km=10.0,
        n_hotspots=4,
        checkins_per_user_mean=8.0,
        activities_per_checkin_mean=2.0,
        seed=4321,
    )
    return CheckInGenerator(config).generate(name="result-cache")


@pytest.fixture()
def index(db):
    return GATIndex.build(db, GATConfig(depth=5, memory_levels=4))


@pytest.fixture()
def engine(index):
    return GATSearchEngine(index)


@pytest.fixture()
def query(db):
    gen = QueryWorkloadGenerator(
        db, WorkloadConfig(n_query_points=2, n_activities_per_point=2, seed=5)
    )
    return gen.query()


def _answers(responses_or_results):
    return [(r.trajectory_id, r.distance) for r in responses_or_results]


class TestResultCacheHits:
    def test_repeat_request_hits_cache(self, engine, query):
        service = QueryService(engine, max_workers=2)
        first = service.search(query, k=5)
        second = service.search(query, k=5)
        assert _answers(second.results) == _answers(first.results)
        # The hit did no engine work...
        assert second.stats.rounds == 0
        assert second.stats.disk_reads == 0
        assert first.stats.rounds >= 1
        # ...and the accounting says one hit out of two lookups.
        stats = service.stats()
        assert stats.result_cache_hits == 1
        assert stats.result_cache_lookups == 2
        assert stats.result_cache_hit_rate == 0.5

    def test_signature_includes_options(self, engine, query):
        service = QueryService(engine)
        service.search(query, k=5)
        assert service.stats().result_cache_hits == 0
        service.search(query, k=6)  # different k → miss
        service.search(query, k=5, order_sensitive=True)  # different mode → miss
        service.search(query, k=5, explain=True)  # different explain → miss
        assert service.stats().result_cache_hits == 0
        service.search(query, k=5)  # exact repeat → hit
        assert service.stats().result_cache_hits == 1

    def test_cached_results_are_fresh_lists(self, engine, query):
        service = QueryService(engine)
        first = service.search(query, k=5)
        first.results.clear()  # caller mutation must not poison the cache
        second = service.search(query, k=5)
        assert len(second.results) > 0

    def test_cache_disabled(self, engine, query):
        service = QueryService(engine, result_cache_size=0)
        a = service.search(query, k=5)
        b = service.search(query, k=5)
        assert _answers(a.results) == _answers(b.results)
        assert b.stats.rounds >= 1  # really re-executed
        stats = service.stats()
        assert stats.result_cache_lookups == 0
        assert stats.result_cache_hit_rate == 0.0

    def test_search_many_hits_warm_cache(self, engine, query):
        service = QueryService(engine, max_workers=4)
        expected = _answers(service.search(query, k=5).results)
        # Concurrent identical requests against the *warm* cache all hit
        # (a cold batch may race its first wave into parallel misses —
        # duplicated work, never a wrong answer).
        responses = service.search_many([QueryRequest(query, k=5)] * 6)
        assert all(_answers(r.results) == expected for r in responses)
        assert service.stats().result_cache_hits == 6

    def test_reset_stats_clears_cache_accounting(self, engine, query):
        service = QueryService(engine)
        service.search(query, k=5)
        service.search(query, k=5)
        service.reset_stats()
        stats = service.stats()
        assert stats.result_cache_hits == 0
        assert stats.result_cache_lookups == 0


class TestInvalidationOnInsert:
    def _new_trajectory(self, db, index, query):
        """A fresh trajectory sitting exactly on the query locations and
        carrying all its activities — guaranteed to enter any top-k."""
        tid = max(t.trajectory_id for t in db.trajectories) + 1
        activities = sorted(query.all_activities)
        points = [
            TrajectoryPoint(q.x, q.y, frozenset(activities)) for q in query
        ]
        return ActivityTrajectory(tid, points)

    def test_insert_invalidates_cached_results(self, db, index, engine, query):
        service = QueryService(engine)
        before = service.search(query, k=5)
        new_tr = self._new_trajectory(db, index, query)

        version = index.version
        index.insert_trajectory(new_tr)
        assert index.version == version + 1

        after = service.search(query, k=5)
        # The post-insert answer was recomputed (not served stale): the
        # perfect-match trajectory now leads the ranking.
        assert after.stats.rounds >= 1
        assert after.results[0].trajectory_id == new_tr.trajectory_id
        assert _answers(after.results) != _answers(before.results)
        # And the recomputed answer is itself cached again.
        repeat = service.search(query, k=5)
        assert _answers(repeat.results) == _answers(after.results)
        assert repeat.stats.rounds == 0

    def test_insert_between_batches(self, db, index, engine, query):
        service = QueryService(engine, max_workers=2)
        service.search_many([QueryRequest(query, k=5)] * 3)
        index.insert_trajectory(self._new_trajectory(db, index, query))
        responses = service.search_many([QueryRequest(query, k=5)] * 3)
        tids = {r.results[0].trajectory_id for r in responses}
        assert len(tids) == 1  # consistent post-insert answers
