"""QueryService: batched serving must be indistinguishable from a
sequential loop over the engine — bitwise-identical results, any worker
count, any batch order — plus thread-safety of one shared engine."""

import random
import threading

import pytest

from repro.bench.workloads import QueryWorkloadGenerator, WorkloadConfig
from repro.core.engine import GATSearchEngine
from repro.index.gat.index import GATConfig, GATIndex
from repro.service import QueryRequest, QueryService


@pytest.fixture(scope="module")
def index(small_db):
    return GATIndex.build(small_db, GATConfig(depth=5, memory_levels=4))


@pytest.fixture(scope="module")
def engine(index):
    return GATSearchEngine(index)


@pytest.fixture(scope="module")
def mixed_requests(small_db):
    """≥50 mixed ATSQ/OATSQ requests anchored in the database."""
    gen = QueryWorkloadGenerator(
        small_db, WorkloadConfig(n_query_points=3, n_activities_per_point=2, seed=7)
    )
    queries = gen.queries(52)
    return [
        QueryRequest(q, k=5, order_sensitive=(i % 2 == 1))
        for i, q in enumerate(queries)
    ]


def _sequential_answers(engine, requests):
    out = []
    for r in requests:
        run = engine.oatsq if r.order_sensitive else engine.atsq
        out.append([(res.trajectory_id, res.distance) for res in run(r.query, r.k)])
    return out


def _response_answers(responses):
    return [
        [(res.trajectory_id, res.distance) for res in resp.results]
        for resp in responses
    ]


class TestBatchSequentialParity:
    def test_search_many_matches_sequential_loop(self, engine, mixed_requests):
        """The acceptance property: 8 workers over 50+ mixed ATSQ/OATSQ
        queries, bitwise-identical ids and distances to the loop."""
        expected = _sequential_answers(engine, mixed_requests)
        service = QueryService(engine, max_workers=8)
        responses = service.search_many(mixed_requests)
        assert _response_answers(responses) == expected

    @pytest.mark.parametrize("shuffle_seed", [0, 1, 2, 3])
    def test_shuffled_batch_property(self, engine, mixed_requests, shuffle_seed):
        """Property over batch orderings: shuffling the batch permutes the
        responses identically — answers depend only on the request."""
        expected = _sequential_answers(engine, mixed_requests)
        order = list(range(len(mixed_requests)))
        random.Random(shuffle_seed).shuffle(order)
        shuffled = [mixed_requests[i] for i in order]
        service = QueryService(engine, max_workers=8)
        responses = service.search_many(shuffled)
        got = _response_answers(responses)
        assert got == [expected[i] for i in order]

    @pytest.mark.parametrize("workers", [1, 2, 8])
    def test_worker_count_is_invisible(self, engine, mixed_requests, workers):
        subset = mixed_requests[:12]
        expected = _sequential_answers(engine, subset)
        service = QueryService(engine, max_workers=workers)
        assert _response_answers(service.search_many(subset)) == expected

    def test_bare_queries_accepted(self, engine, mixed_requests):
        queries = [r.query for r in mixed_requests[:6]]
        service = QueryService(engine)
        responses = service.search_many(queries, k=4, order_sensitive=True)
        expected = _sequential_answers(
            engine, [QueryRequest(q, k=4, order_sensitive=True) for q in queries]
        )
        assert _response_answers(responses) == expected


class TestThreadSafety:
    def test_concurrent_queries_against_one_engine(self, engine, mixed_requests):
        """≥8 raw threads fire simultaneously at one engine; every thread
        must get the same answer and its own uncorrupted counters."""
        requests = mixed_requests[:8]
        expected = _sequential_answers(engine, requests)
        barrier = threading.Barrier(len(requests))
        answers = [None] * len(requests)
        stats = [None] * len(requests)
        errors = []

        def worker(i, req):
            try:
                barrier.wait(timeout=30)
                run = engine.oatsq if req.order_sensitive else engine.atsq
                results = run(req.query, req.k)
                answers[i] = [(r.trajectory_id, r.distance) for r in results]
                stats[i] = engine.stats  # thread-local: this thread's query
            except Exception as exc:  # pragma: no cover - failure diagnostics
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i, req))
            for i, req in enumerate(requests)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors
        assert answers == expected
        # Each thread saw its own query's counters, not a neighbour's.
        for s in stats:
            assert s is not None and s.rounds >= 1
        assert len({id(s) for s in stats}) == len(stats)


class TestServiceStats:
    def test_stats_aggregate(self, engine, mixed_requests):
        service = QueryService(engine, max_workers=4)
        n = 10
        service.search_many(mixed_requests[:n])
        stats = service.stats()
        assert stats.queries == n
        assert stats.wall_seconds > 0.0
        assert stats.qps > 0.0
        assert 0.0 < stats.latency_p50_s <= stats.latency_p95_s
        assert stats.latency_mean_s > 0.0
        assert 0.0 <= stats.hicl_cache_hit_rate <= 1.0
        assert 0.0 <= stats.apl_cache_hit_rate <= 1.0
        service.reset_stats()
        assert service.stats().queries == 0

    def test_single_search(self, engine, mixed_requests):
        service = QueryService(engine)
        req = mixed_requests[0]
        resp = service.search(req)
        run = engine.oatsq if req.order_sensitive else engine.atsq
        expected = [(r.trajectory_id, r.distance) for r in run(req.query, req.k)]
        assert [(r.trajectory_id, r.distance) for r in resp.results] == expected
        assert resp.latency_s > 0.0
        assert service.stats().queries == 1

    def test_bad_workers_rejected(self, engine):
        with pytest.raises(ValueError):
            QueryService(engine, max_workers=0)


class TestServingMetricsReset:
    def test_reset_mid_flight_reanchors_busy_interval(self, monkeypatch):
        """Regression: reset() while queries are in flight must restart
        the open busy interval.  Pre-fix, the first exit_busy() after a
        reset folded the entire *pre-reset* busy stretch back into
        wall_seconds, deflating qps for the freshly zeroed window."""
        from repro.service import service as service_mod

        clock = {"now": 100.0}

        class _FakeTime:
            @staticmethod
            def perf_counter():
                return clock["now"]

        monkeypatch.setattr(service_mod, "time", _FakeTime)
        metrics = service_mod.ServingMetrics()
        metrics.enter_busy()
        clock["now"] += 50.0  # long pre-reset busy stretch
        metrics.reset()  # stats zeroed while the query is still in flight
        clock["now"] += 2.0  # post-reset serving time
        metrics.exit_busy()
        metrics.record([(2.0, 0)])
        stats = metrics.fill(service_mod.ServiceStats())
        assert stats.queries == 1
        # Only the post-reset 2 s count; the 50 s before reset must not.
        assert stats.wall_seconds == pytest.approx(2.0)
        assert stats.qps == pytest.approx(0.5)

    def test_reset_while_idle_still_zeroes(self, monkeypatch):
        from repro.service import service as service_mod

        metrics = service_mod.ServingMetrics()
        metrics.enter_busy()
        metrics.exit_busy()
        metrics.record([(0.5, 3)])
        metrics.reset()
        stats = metrics.fill(service_mod.ServiceStats())
        assert stats.queries == 0
        assert stats.wall_seconds == 0.0
        assert stats.disk_reads == 0


class TestBatchedExplain:
    def test_search_many_forwards_explain(self, engine, mixed_requests):
        """Regression: ``explain`` was silently dropped by search_many
        (there was no way to batch explain queries at all — the keyword
        did not exist), even though the result-cache key includes it."""
        queries = [r.query for r in mixed_requests[:5]]
        with QueryService(engine, result_cache_size=0) as service:
            batched = service.search_many(queries, k=4, explain=True)
            assert all(resp.request.explain for resp in batched)
            for query, response in zip(queries, batched):
                single = service.search(query, k=4, explain=True)
                assert [
                    (r.trajectory_id, r.distance, r.matches)
                    for r in response.results
                ] == [
                    (r.trajectory_id, r.distance, r.matches)
                    for r in single.results
                ]
                assert all(r.matches is not None for r in response.results)

    def test_search_many_default_stays_plain(self, engine, mixed_requests):
        queries = [r.query for r in mixed_requests[:3]]
        with QueryService(engine, result_cache_size=0) as service:
            for response in service.search_many(queries, k=3):
                assert response.request.explain is False
                assert all(r.matches is None for r in response.results)
