"""ServingMetrics: the shared quantile definition and the memoized sort.

``stats()`` used to re-sort the whole latency window on every poll; now
the sorted window is memoized per generation — a monitoring loop polling
an idle service pays O(1), and only a recording (or reset) invalidates.
"""

from repro.obs import nearest_rank
from repro.service.service import ServiceStats, ServingMetrics, _percentile


def _fill(metrics):
    return metrics.fill(ServiceStats())


class TestQuantiles:
    def test_percentiles_use_the_shared_definition(self):
        metrics = ServingMetrics()
        samples = [0.05, 0.01, 0.04, 0.02, 0.03]
        metrics.record((s, 0) for s in samples)
        stats = _fill(metrics)
        ordered = sorted(samples)
        assert stats.latency_p50_s == nearest_rank(ordered, 0.50)
        assert stats.latency_p95_s == nearest_rank(ordered, 0.95)
        assert stats.latency_p99_s == nearest_rank(ordered, 0.99)
        assert stats.latency_p50_s <= stats.latency_p95_s <= stats.latency_p99_s

    def test_percentile_alias_is_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        for q in (0.0, 0.25, 0.5, 0.95, 1.0):
            assert _percentile(values, q) == nearest_rank(values, q)

    def test_empty_window_reports_zero(self):
        stats = _fill(ServingMetrics())
        assert stats.latency_p50_s == 0.0
        assert stats.latency_p99_s == 0.0


class TestMemoizedSort:
    def test_polls_between_recordings_reuse_the_sorted_window(self):
        metrics = ServingMetrics()
        metrics.record([(0.02, 0), (0.01, 0)])
        _fill(metrics)
        # Tamper with the memoized sort: a second poll with no new samples
        # must serve it verbatim (proof it did not re-sort the deque).
        metrics._sorted_window = [9.0]
        assert _fill(metrics).latency_p50_s == 9.0

    def test_recording_invalidates_the_memo(self):
        metrics = ServingMetrics()
        metrics.record([(0.02, 0), (0.01, 0)])
        _fill(metrics)
        metrics._sorted_window = [9.0]
        metrics.record([(0.03, 0)])
        stats = _fill(metrics)
        assert stats.latency_p50_s == 0.02  # freshly re-sorted, no taint
        assert stats.latency_p99_s == 0.03

    def test_reset_invalidates_the_memo(self):
        metrics = ServingMetrics()
        metrics.record([(0.02, 0)])
        _fill(metrics)
        metrics.reset()
        stats = _fill(metrics)
        assert stats.queries == 0
        assert stats.latency_p50_s == 0.0
