"""Unit tests for the experiment harness and the table renderer."""

import pytest

from repro.bench.harness import ExperimentHarness, MethodTiming, SweepResult
from repro.bench.reporting import format_series_table, format_stat_table
from repro.bench.workloads import QueryWorkloadGenerator, WorkloadConfig
from repro.index.gat.index import GATConfig
from repro.service import QueryService


@pytest.fixture(scope="module")
def harness(tiny_db):
    return ExperimentHarness(tiny_db, gat_config=GATConfig(depth=4, memory_levels=4))


@pytest.fixture(scope="module")
def queries(tiny_db):
    gen = QueryWorkloadGenerator(
        tiny_db,
        WorkloadConfig(n_query_points=2, n_activities_per_point=1, head_size=None, seed=2),
    )
    return gen.queries(2)


class TestHarness:
    def test_builds_all_methods(self, harness):
        assert set(harness.searchers) == {"IL", "RT", "IRT", "GAT"}

    def test_method_subset(self, tiny_db):
        h = ExperimentHarness(tiny_db, methods=("IL",))
        assert set(h.searchers) == {"IL"}

    def test_run_batch_counts(self, harness, queries):
        timings = harness.run_batch(queries, k=3)
        for name, t in timings.items():
            assert t.n_queries == len(queries)
            assert t.total_seconds >= 0.0
            assert t.avg_seconds >= 0.0

    def test_run_batch_order_sensitive(self, harness, queries):
        timings = harness.run_batch(queries, k=2, order_sensitive=True)
        assert set(timings) == {"IL", "RT", "IRT", "GAT"}

    def test_sweep(self, harness, queries):
        results = harness.sweep(
            "k",
            [1, 3],
            make_queries=lambda _k: queries,
            k_of=lambda k: int(k),
        )
        assert [r.x_value for r in results] == [1, 3]
        assert all(set(r.timings) == {"IL", "RT", "IRT", "GAT"} for r in results)

    def test_avg_seconds_empty(self):
        assert MethodTiming(method="X").avg_seconds == 0.0

    def test_run_service_batch(self, harness, queries):
        timing = harness.run_service_batch(queries, k=3, max_workers=4)
        assert timing.method == "GAT×4"
        assert timing.n_queries == len(queries)
        assert timing.total_seconds > 0.0
        assert {"qps", "p50_ms", "p95_ms", "hicl_hit_rate", "apl_hit_rate"} <= set(
            timing.extra
        )
        # The service answers match the sequential GAT engine exactly.
        gat = harness.searchers["GAT"]
        service = QueryService(gat, max_workers=4)
        service_answers = [
            [(r.trajectory_id, r.distance) for r in resp.results]
            for resp in service.search_many(queries, k=3)
        ]
        sequential = [
            [(r.trajectory_id, r.distance) for r in gat.atsq(q, 3)] for q in queries
        ]
        assert service_answers == sequential

    def test_run_service_batch_needs_gat(self, tiny_db, queries):
        h = ExperimentHarness(tiny_db, methods=("IL",))
        with pytest.raises(ValueError):
            h.run_service_batch(queries, k=3)

    @pytest.mark.parametrize("n_clients", [1, 3])
    def test_run_sharded_batch(self, harness, queries, n_clients):
        timing = harness.run_sharded_batch(
            queries, k=3, n_shards=2, executor="thread", n_clients=n_clients
        )
        assert timing.method == "GAT/2sh×thread"
        assert timing.n_queries == len(queries)
        assert timing.total_seconds > 0.0
        assert {"qps", "p50_ms", "p95_ms", "disk_reads"} <= set(timing.extra)

    def test_run_sharded_batch_replicated(self, harness, queries):
        timing = harness.run_sharded_batch(
            queries,
            k=3,
            n_shards=2,
            executor="thread",
            n_replicas=2,
            replica_router="least-in-flight",
        )
        assert timing.method == "GAT/2sh×thread×2rep"
        assert timing.n_queries == len(queries)
        assert timing.total_seconds > 0.0
        assert {"qps", "p50_ms", "p95_ms", "disk_reads"} <= set(timing.extra)


class TestReporting:
    def _fake_results(self):
        timing = MethodTiming(method="IL", total_seconds=1.0, n_queries=2, candidates=10)
        return [
            SweepResult(x_label="k", x_value=5, timings={"IL": timing}),
            SweepResult(x_label="k", x_value=10, timings={"IL": timing}),
        ]

    def test_series_table_contains_values(self):
        out = format_series_table("T", self._fake_results(), methods=("IL",))
        assert "0.5000" in out  # 1.0 s / 2 queries
        assert "k" in out and "IL" in out

    def test_series_table_missing_method_dash(self):
        out = format_series_table("T", self._fake_results(), methods=("IL", "GAT"))
        assert "-" in out

    def test_series_table_candidates_mode(self):
        out = format_series_table(
            "T", self._fake_results(), methods=("IL",), value="candidates"
        )
        assert "5.0" in out  # 10 candidates / 2 queries

    def test_stat_table(self):
        out = format_stat_table("Stats", [("#trajectory", 42), ("#venue", 7)])
        assert "#trajectory" in out and "42" in out

    def test_alignment(self):
        out = format_stat_table("T", [("a", 1), ("long-statistic-name", 12345)])
        lines = [l for l in out.splitlines() if l]
        widths = {len(l) for l in lines[2:]}  # header + separator + rows align
        assert len(widths) <= 2  # rows padded to equal width
