"""Unit tests for the query workload generator."""

import pytest

from repro.bench.workloads import (
    QueryWorkloadGenerator,
    WorkloadConfig,
    mixed_order_requests,
)


@pytest.fixture(scope="module")
def gen(small_db):
    return QueryWorkloadGenerator(small_db, WorkloadConfig(seed=3))


class TestConfig:
    def test_defaults_match_table5(self):
        cfg = WorkloadConfig()
        assert cfg.n_query_points == 4
        assert cfg.n_activities_per_point == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadConfig(n_query_points=0)
        with pytest.raises(ValueError):
            WorkloadConfig(n_activities_per_point=0)
        with pytest.raises(ValueError):
            WorkloadConfig(head_size=0)


class TestQueryShape:
    def test_default_shape(self, gen):
        q = gen.query()
        assert len(q) == 4
        assert all(len(p.activities) == 3 for p in q)

    def test_custom_shape(self, gen):
        q = gen.query(n_query_points=2, n_activities_per_point=1)
        assert len(q) == 2
        assert all(len(p.activities) == 1 for p in q)

    def test_batch(self, gen):
        qs = gen.queries(5)
        assert len(qs) == 5

    def test_head_restriction(self, small_db):
        head = 30
        gen = QueryWorkloadGenerator(
            small_db, WorkloadConfig(head_size=head, seed=1)
        )
        for q in gen.queries(10):
            for p in q:
                assert all(a < head for a in p.activities)

    def test_no_head_restriction(self, small_db):
        gen = QueryWorkloadGenerator(small_db, WorkloadConfig(head_size=None, seed=1))
        q = gen.query()
        assert len(q) == 4  # shape still honoured

    def test_deterministic_for_seed(self, small_db):
        a = QueryWorkloadGenerator(small_db, WorkloadConfig(seed=11)).queries(3)
        b = QueryWorkloadGenerator(small_db, WorkloadConfig(seed=11)).queries(3)
        for qa, qb in zip(a, b):
            assert [(p.x, p.y, p.activities) for p in qa] == [
                (p.x, p.y, p.activities) for p in qb
            ]

    def test_queries_have_matches(self, gen, small_db):
        """Every anchored query must match at least one trajectory (its
        anchor), as in the paper's methodology."""
        from repro.index.inverted import InvertedIndex

        inv = InvertedIndex.build(small_db)
        for q in gen.queries(10):
            assert inv.trajectories_with_all(q.all_activities)

    def test_points_in_trajectory_order(self, gen):
        """Sampled query points follow the anchor's visiting order, so
        OATSQ queries are satisfiable by construction."""
        # Indirect check: diameters positive and queries valid; order is
        # enforced by construction (positions sorted before use).
        q = gen.query()
        assert q.diameter() >= 0.0


class TestDiameterControl:
    def test_exact_diameter(self, gen):
        for target in (1.0, 3.0):
            q = gen.query_with_diameter(target)
            assert q.diameter() == pytest.approx(target, rel=1e-6)

    def test_activities_preserved(self, gen):
        q = gen.query_with_diameter(2.0)
        assert all(p.activities for p in q)

    def test_single_point_rejected(self, gen):
        with pytest.raises(ValueError):
            gen.query_with_diameter(1.0, n_query_points=1)

    def test_batch(self, gen):
        qs = gen.queries_with_diameter(3, 2.0)
        assert len(qs) == 3
        for q in qs:
            assert q.diameter() == pytest.approx(2.0, rel=1e-6)


class TestShardWorkload:
    def test_round_robin_interleaving(self):
        from repro.bench.workloads import shard_workload

        items = list(range(10))
        slices = shard_workload(items, 3)
        assert slices == [[0, 3, 6, 9], [1, 4, 7], [2, 5, 8]]

    def test_covers_all_queries_exactly_once(self, gen):
        from repro.bench.workloads import shard_workload

        queries = gen.queries(11)
        slices = shard_workload(queries, 4)
        flat = [q for s in slices for q in s]
        assert sorted(map(id, flat)) == sorted(map(id, queries))

    def test_more_slices_than_queries(self):
        from repro.bench.workloads import shard_workload

        assert shard_workload([1, 2], 5) == [[1], [2], [], [], []]

    def test_rejects_bad_slice_count(self):
        from repro.bench.workloads import shard_workload

        with pytest.raises(ValueError):
            shard_workload([1], 0)


class TestMixedOrderRequests:
    def test_alternates_order_sensitivity(self, gen):
        queries = gen.queries(5)
        requests = mixed_order_requests(queries, k=7)
        assert [r.order_sensitive for r in requests] == [
            False, True, False, True, False,
        ]
        assert all(r.k == 7 for r in requests)
        assert [r.query for r in requests] == queries
        assert all(not r.explain for r in requests)
