"""Smoke tests for the per-figure experiment definitions (micro scale).

These don't assert performance claims — they assert the sweeps run, cover
the right x-axes, and produce well-formed results, so the benchmark suite
can't silently rot.
"""

import pytest

from repro.bench.experiments import (
    ExperimentScale,
    effect_of_activities,
    effect_of_dataset_size,
    effect_of_diameter,
    effect_of_granularity,
    effect_of_k,
    effect_of_query_points,
)
from repro.bench.harness import ExperimentHarness
from repro.index.gat.index import GATConfig

MICRO = ExperimentScale(dataset_scale=0.01, n_queries=1, seed=5)


@pytest.fixture(scope="module")
def harness(tiny_db):
    return ExperimentHarness(tiny_db, gat_config=GATConfig(depth=4, memory_levels=4))


def test_effect_of_k(tiny_db, harness):
    results = effect_of_k(tiny_db, MICRO, k_values=(1, 3), harness=harness)
    assert [r.x_value for r in results] == [1, 3]
    for point in results:
        assert set(point.timings) == {"IL", "RT", "IRT", "GAT"}
        assert all(t.n_queries == 1 for t in point.timings.values())


def test_effect_of_query_points(tiny_db, harness):
    results = effect_of_query_points(tiny_db, MICRO, nq_values=(1, 2), harness=harness)
    assert [r.x_value for r in results] == [1, 2]


def test_effect_of_activities(tiny_db, harness):
    results = effect_of_activities(tiny_db, MICRO, na_values=(1, 2), harness=harness)
    assert [r.x_value for r in results] == [1, 2]


def test_effect_of_diameter(tiny_db, harness):
    results = effect_of_diameter(tiny_db, MICRO, diameters=(1.0, 2.0), harness=harness)
    assert [r.x_value for r in results] == [1.0, 2.0]


def test_effect_of_dataset_size(tiny_db):
    results = effect_of_dataset_size(tiny_db, MICRO, sizes=(20, len(tiny_db)))
    assert [r.x_value for r in results] == [20, len(tiny_db)]


def test_effect_of_granularity(tiny_db):
    rows = effect_of_granularity(tiny_db, MICRO, depths=(3, 4))
    assert [r["depth"] for r in rows] == [3, 4]
    assert all(r["memory_bytes"] > 0 for r in rows)
    assert all(r["atsq_avg_s"] >= 0 for r in rows)
    assert rows[0]["partitions"] == 8
