"""Unit tests for the three baseline searchers."""

import math

import pytest

from repro.baselines import InvertedListSearch, IRTreeSearch, RTreeSearch
from repro.core.evaluator import MatchEvaluator
from repro.core.query import Query, QueryPoint


def _query_from(db, rng_seed=0, nq=2, na=2):
    import random

    rng = random.Random(rng_seed)
    while True:
        tr = db.trajectories[rng.randrange(len(db))]
        pts = [p for p in tr if p.activities]
        if len(pts) >= nq:
            qps = []
            for p in rng.sample(pts, nq):
                acts = rng.sample(sorted(p.activities), min(na, len(p.activities)))
                qps.append(QueryPoint(p.x, p.y, frozenset(acts)))
            return Query(qps)


@pytest.fixture(scope="module")
def searchers(small_db):
    return {
        "IL": InvertedListSearch(small_db),
        "RT": RTreeSearch(small_db),
        "IRT": IRTreeSearch(small_db),
    }


def _brute_topk(db, query, k, order_sensitive=False):
    ev = MatchEvaluator()
    dists = []
    for tr in db:
        d = ev.dmom(query, tr) if order_sensitive else ev.dmm(query, tr)
        if not math.isinf(d):
            dists.append(d)
    return sorted(dists)[:k]


@pytest.mark.parametrize("name", ["IL", "RT", "IRT"])
class TestCorrectness:
    def test_atsq_matches_bruteforce(self, searchers, small_db, name):
        s = searchers[name]
        for seed in range(4):
            q = _query_from(small_db, seed)
            got = [r.distance for r in s.atsq(q, k=5)]
            assert got == pytest.approx(_brute_topk(small_db, q, 5))

    def test_oatsq_matches_bruteforce(self, searchers, small_db, name):
        s = searchers[name]
        for seed in range(3):
            q = _query_from(small_db, seed)
            got = [r.distance for r in s.oatsq(q, k=4)]
            assert got == pytest.approx(_brute_topk(small_db, q, 4, order_sensitive=True))

    def test_results_distinct_and_sorted(self, searchers, small_db, name):
        s = searchers[name]
        q = _query_from(small_db, 7)
        results = s.atsq(q, k=6)
        ids = [r.trajectory_id for r in results]
        assert len(set(ids)) == len(ids)
        dists = [r.distance for r in results]
        assert dists == sorted(dists)

    def test_explain(self, searchers, small_db, name):
        s = searchers[name]
        q = _query_from(small_db, 8)
        for r in s.atsq(q, k=2, explain=True):
            assert r.matches is not None and len(r.matches) == len(q)


class TestWorkCounters:
    def test_il_candidates_equal_intersection(self, searchers, small_db):
        il = searchers["IL"]
        q = _query_from(small_db, 2)
        il.atsq(q, k=3)
        want = len(il.index.trajectories_with_all(q.all_activities))
        assert il.stats.candidates_retrieved == want

    def test_rt_accesses_nodes(self, searchers, small_db):
        rt = searchers["RT"]
        q = _query_from(small_db, 2)
        rt.atsq(q, k=3)
        assert rt.stats.nodes_accessed > 0
        assert rt.stats.points_popped > 0

    def test_irt_prunes_vs_rt(self, small_db):
        """With a selective (rare-activity) query, the IR-tree should pop
        no more points than the plain R-tree."""
        rt = RTreeSearch(small_db)
        irt = IRTreeSearch(small_db)
        # Rarest activity = highest ID in the frequency-ordered vocabulary.
        rare = len(small_db.vocabulary) - 1
        holder = next(
            tr for tr in small_db if rare in tr.activity_union
        )
        pos = next(p for p in holder if rare in p.activities)
        q = Query([QueryPoint(pos.x, pos.y, frozenset({rare}))])
        rt.atsq(q, k=1)
        irt.atsq(q, k=1)
        assert irt.stats.points_popped <= rt.stats.points_popped

    def test_stats_reset_between_queries(self, searchers, small_db):
        il = searchers["IL"]
        q = _query_from(small_db, 3)
        il.atsq(q, k=3)
        first = il.stats.candidates_retrieved
        il.atsq(q, k=3)
        assert il.stats.candidates_retrieved == first  # reset, not accumulated
