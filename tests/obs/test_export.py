"""Exporters: JSONL round trips, span validation, Prometheus text."""

import pytest

from repro.obs import (
    MetricRegistry,
    Tracer,
    parse_prometheus_text,
    prometheus_text,
    read_spans_jsonl,
    spans_to_jsonl,
    validate_spans,
    write_spans_jsonl,
)


def _small_trace():
    tracer = Tracer()
    root = tracer.start_span("query", attrs={"k": 5})
    child = root.child("shard_task", attrs={"shard": 0})
    child.add_event("disk_read", pages=3)
    child.end()
    root.end()
    return tracer.drain()


class TestJsonl:
    def test_write_read_validate_round_trip(self, tmp_path):
        spans = _small_trace()
        path = tmp_path / "spans.jsonl"
        n = write_spans_jsonl(path, spans)
        assert n == 2
        records = validate_spans(read_spans_jsonl(path))
        assert [r["name"] for r in records] == [s.name for s in spans]
        assert records[0]["events"][0]["pages"] == 3

    def test_empty_dump_is_empty_file(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        assert write_spans_jsonl(path, []) == 0
        assert path.read_text() == ""
        assert read_spans_jsonl(path) == []

    def test_jsonl_is_one_object_per_line(self):
        text = spans_to_jsonl(_small_trace())
        assert text.endswith("\n")
        assert len(text.strip().splitlines()) == 2


class TestValidateSpans:
    def test_accepts_span_objects_and_dicts(self):
        spans = _small_trace()
        assert len(validate_spans(spans)) == 2
        assert len(validate_spans([s.to_dict() for s in spans])) == 2

    def test_duplicate_span_id(self):
        rec = _small_trace()[1].to_dict()
        with pytest.raises(ValueError, match="duplicate span_id"):
            validate_spans([rec, dict(rec)])

    def test_missing_required_field(self):
        rec = _small_trace()[1].to_dict()
        rec["trace_id"] = None
        with pytest.raises(ValueError, match="missing required field"):
            validate_spans([rec])

    def test_unresolved_parent(self):
        child, _root = _small_trace()
        with pytest.raises(ValueError, match="not in dump"):
            validate_spans([child])

    def test_end_before_start(self):
        rec = _small_trace()[1].to_dict()
        rec["end_s"] = rec["start_s"] - 1.0
        with pytest.raises(ValueError, match="ends before it starts"):
            validate_spans([rec])

    def test_trace_id_mismatch_with_parent(self):
        child, root = (s.to_dict() for s in _small_trace())
        child["trace_id"] = "deadbeefdeadbeef"
        with pytest.raises(ValueError, match="trace_id differs"):
            validate_spans([child, root])


class TestPrometheus:
    def _registry(self):
        reg = MetricRegistry()
        reg.counter("repro_queries_total").inc(6)
        reg.gauge("repro_window", shard="0").set(3.5)
        h = reg.histogram("repro_latency_seconds", bounds=(0.01, 0.1))
        for v in (0.005, 0.05, 5.0):
            h.observe(v)
        return reg

    def test_renders_types_and_cumulative_buckets(self):
        text = prometheus_text(self._registry())
        assert "# TYPE repro_queries_total counter" in text
        assert "# TYPE repro_window gauge" in text
        assert "# TYPE repro_latency_seconds histogram" in text
        samples = parse_prometheus_text(text)
        assert samples["repro_queries_total"] == 6.0
        assert samples['repro_window{shard="0"}'] == 3.5
        # Buckets are cumulative and +Inf equals _count.
        assert samples['repro_latency_seconds_bucket{le="0.01"}'] == 1.0
        assert samples['repro_latency_seconds_bucket{le="0.1"}'] == 2.0
        assert samples['repro_latency_seconds_bucket{le="+Inf"}'] == 3.0
        assert samples["repro_latency_seconds_count"] == 3.0
        assert samples["repro_latency_seconds_sum"] == pytest.approx(5.055)

    def test_empty_registry_renders_empty(self):
        assert prometheus_text(MetricRegistry()) == ""
        assert parse_prometheus_text("") == {}

    def test_parser_is_strict(self):
        with pytest.raises(ValueError, match="malformed exposition line"):
            parse_prometheus_text("this is not a sample\n")
        with pytest.raises(ValueError, match="malformed sample value"):
            parse_prometheus_text("repro_queries_total six\n")

    def test_parser_skips_comments_and_blanks(self):
        text = "# HELP x y\n\nx 1\n"
        assert parse_prometheus_text(text) == {"x": 1.0}

    def test_invalid_metric_name_refused(self):
        reg = MetricRegistry()
        reg.counter("bad-name")
        with pytest.raises(ValueError, match="invalid metric name"):
            prometheus_text(reg)
