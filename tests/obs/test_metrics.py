"""Metric primitives: nearest_rank, counters, gauges, histograms, registry."""

import json
import math
import threading

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricRegistry, nearest_rank


class TestNearestRank:
    def test_empty_returns_zero(self):
        assert nearest_rank([], 0.5) == 0.0

    def test_single_sample_is_every_quantile(self):
        for q in (0.0, 0.5, 0.95, 1.0):
            assert nearest_rank([7.0], q) == 7.0

    def test_matches_the_classic_definition(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert nearest_rank(values, 0.5) == 3.0  # ceil(0.5*5)=3 -> idx 2
        assert nearest_rank(values, 0.95) == 5.0
        assert nearest_rank(values, 0.2) == 1.0

    def test_clamped_at_the_ends(self):
        values = [1.0, 2.0]
        assert nearest_rank(values, 0.0) == 1.0
        assert nearest_rank(values, 1.0) == 2.0


class TestCounter:
    def test_inc_and_value(self):
        c = Counter("c", ())
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5

    def test_per_thread_cells_merge(self):
        c = Counter("c", ())

        def worker():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value() == 4000


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("g", ())
        g.set(5.0)
        g.inc(2.0)
        g.dec()
        assert g.value() == 6.0


class TestHistogram:
    def test_empty_quantile_is_zero(self):
        h = Histogram("h", ())
        assert h.quantile(0.5) == 0.0
        snap = h.snapshot()
        assert snap["count"] == 0 and snap["p99"] == 0.0

    def test_quantile_never_exceeds_observed_peak(self):
        h = Histogram("h", ())
        h.observe(0.0123)
        # One sample: every quantile is that sample, not a bucket bound.
        assert h.quantile(0.5) == 0.0123
        assert h.quantile(0.99) == 0.0123

    def test_quantiles_track_bucket_bounds(self):
        h = Histogram("h", ())
        for _ in range(99):
            h.observe(0.001)
        h.observe(10.0)
        p50 = h.quantile(0.50)
        p99 = h.quantile(0.99)
        assert p50 < 0.002  # the dense low bucket's bound
        assert p99 >= 0.001
        assert h.quantile(1.0) == 10.0  # the straggler caps at the peak

    def test_overflow_bucket_reports_true_max(self):
        h = Histogram("h", (), bounds=(1.0,))
        h.observe(123.0)
        assert h.quantile(0.99) == 123.0

    def test_bounds_must_be_ascending(self):
        with pytest.raises(ValueError):
            Histogram("h", (), bounds=(2.0, 1.0))

    def test_snapshot_counts_and_sum(self):
        h = Histogram("h", ())
        for v in (0.001, 0.01, 0.1):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 3
        assert math.isclose(snap["sum"], 0.111)
        assert snap["max"] == 0.1
        assert sum(snap["buckets"]) == 3


class TestMetricRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")

    def test_labels_distinguish_series_order_insensitively(self):
        reg = MetricRegistry()
        a = reg.counter("a", shard="0", replica="1")
        b = reg.counter("a", replica="1", shard="0")
        c = reg.counter("a", shard="1", replica="1")
        assert a is b
        assert a is not c
        assert a.full_name == 'a{replica="1",shard="0"}'

    def test_type_conflict_raises(self):
        reg = MetricRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x")

    def test_snapshot_is_json_serializable(self):
        reg = MetricRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(0.02)
        snap = reg.snapshot()
        parsed = json.loads(json.dumps(snap))
        assert parsed["c"] == 3.0
        assert parsed["g"] == 1.5
        assert parsed["h"]["count"] == 1
