"""Span trees, the thread-local active span, and tracer retention."""

import threading

from repro.obs import (
    NULL_SPAN,
    NullTracer,
    Span,
    Tracer,
    activate,
    current_span,
)
from repro.obs.trace import MAX_EVENTS_PER_SPAN


class TestSpan:
    def test_child_links_trace_and_parent(self):
        tracer = Tracer()
        root = tracer.start_span("query")
        child = root.child("shard_task", attrs={"shard": 0})
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert child.attrs["shard"] == 0

    def test_end_is_idempotent(self):
        tracer = Tracer()
        span = tracer.start_span("s")
        span.end(at=span.start_s + 1.0)
        first_end = span.end_s
        span.end(at=span.start_s + 9.0)
        assert span.end_s == first_end
        assert len(tracer.spans()) == 1  # filed exactly once

    def test_end_clamps_to_start(self):
        span = Span("s", trace_id="t")
        span.end(at=span.start_s - 5.0)
        assert span.end_s == span.start_s

    def test_event_cap_counts_the_spill(self):
        span = Span("s", trace_id="t")
        for i in range(MAX_EVENTS_PER_SPAN + 7):
            span.add_event("disk_read", key=i)
        assert len(span.events) == MAX_EVENTS_PER_SPAN
        assert span.events_dropped == 7

    def test_round_trips_through_dict(self):
        span = Span("s", trace_id="t", attrs={"k": 5})
        span.add_event("fault_error", shard=1)
        span.end()
        clone = Span.from_dict(span.to_dict())
        assert clone.to_dict() == span.to_dict()


class TestActiveSpan:
    def test_activate_nests_and_restores(self):
        assert current_span() is None
        outer = Span("outer", trace_id="t")
        inner = Span("inner", trace_id="t")
        with activate(outer):
            assert current_span() is outer
            with activate(inner):
                assert current_span() is inner
            assert current_span() is outer
        assert current_span() is None

    def test_active_span_is_thread_local(self):
        span = Span("mine", trace_id="t")
        seen = []

        def probe():
            seen.append(current_span())

        with activate(span):
            t = threading.Thread(target=probe)
            t.start()
            t.join()
        assert seen == [None]

    def test_tracer_span_context_builds_a_tree(self):
        tracer = Tracer()
        with tracer.span("query") as root:
            with tracer.span("stage") as stage:
                assert stage.parent_id == root.span_id
        names = [s.name for s in tracer.spans()]
        assert names == ["stage", "query"]  # children end first


class TestTracerRetention:
    def test_buffer_is_bounded_and_counts_drops(self):
        tracer = Tracer(max_spans=3)
        for i in range(5):
            tracer.start_span(f"s{i}").end()
        kept = [s.name for s in tracer.spans()]
        assert kept == ["s2", "s3", "s4"]  # oldest evicted
        assert tracer.spans_dropped == 2

    def test_drain_takes_and_clears(self):
        tracer = Tracer()
        tracer.start_span("a").end()
        drained = tracer.drain()
        assert [s.name for s in drained] == ["a"]
        assert tracer.spans() == []


class TestAdopt:
    def _worker_payloads(self):
        """What a process-fleet worker ships back: a local root plus a
        child, serialized, with a foreign trace id."""
        worker = Tracer(max_spans=16)
        task = worker.start_span("shard_task", attrs={"shard": 1})
        stage = task.child("score")
        stage.end()
        task.end()
        return [s.to_dict() for s in worker.drain()]

    def test_reparents_rootless_spans_under_parent(self):
        payloads = self._worker_payloads()
        parent_tracer = Tracer()
        root = parent_tracer.start_span("query")
        adopted = parent_tracer.adopt(payloads, root)
        by_name = {s.name: s for s in adopted}
        assert by_name["shard_task"].parent_id == root.span_id
        # The intra-worker link survives untouched.
        assert by_name["score"].parent_id == by_name["shard_task"].span_id
        # The whole batch joins the parent's trace.
        assert {s.trace_id for s in adopted} == {root.trace_id}
        # Adopted spans are filed as finished.
        assert len(parent_tracer.spans()) == 2

    def test_unresolved_parent_is_rehomed(self):
        payloads = self._worker_payloads()
        # Simulate a dropped intermediate: keep only the child.
        orphan = [p for p in payloads if p["name"] == "score"]
        tracer = Tracer()
        root = tracer.start_span("query")
        (span,) = tracer.adopt(orphan, root)
        assert span.parent_id == root.span_id

    def test_adopt_without_parent_keeps_payloads_verbatim(self):
        payloads = self._worker_payloads()
        tracer = Tracer()
        adopted = tracer.adopt(payloads, None)
        assert [s.to_dict() for s in adopted] == payloads


class TestNullTracer:
    def test_disabled_and_inert(self):
        tracer = NullTracer()
        assert tracer.enabled is False
        span = tracer.start_span("query", attrs={"k": 5})
        assert span is NULL_SPAN
        assert not span  # falsy, so `if span:` guards work
        span.set_attr("a", 1)
        span.set_attrs(b=2)
        span.add_event("disk_read")
        assert span.child("stage") is NULL_SPAN
        span.end()
        assert tracer.spans() == [] and tracer.drain() == []
        assert tracer.adopt([{"name": "x"}], None) == []

    def test_context_manager_yields_null_span(self):
        with NullTracer().span("query") as span:
            assert span is NULL_SPAN
